// wire_client — deterministic ibgp-wire-v1 stream generator for ibgpd.
//
//   $ ./wire_client --figure fig1a --protocol modified --seed 7 --records 80 > stream.jsonl
//   $ ./wire_client --figure fig1a --seed 7 --records 80 --skip 25 > tail.jsonl
//
// The same seed always produces the same byte stream; --skip K re-emits
// the hello and then everything *after* the first K post-hello lines —
// exactly the tail a resumed daemon needs after being SIGKILLed at reply
// number K+1 (hello-ok + K line replies flushed).  The chaos gate in CI
// leans on both properties.

#include <cstdio>
#include <optional>
#include <string>

#include "daemon/stream.hpp"
#include "topo/figures.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibgp;

  util::Flags flags("wire_client", "seeded ibgp-wire-v1 stream generator");
  flags.add_string("figure", "fig1a", "figure instance");
  flags.add_string("protocol", "modified", "standard|walton|modified");
  flags.add_int("seed", 1, "stream seed");
  flags.add_int("records", 64, "state records to generate");
  flags.add_double("query-rate", 0.4, "probability of a query between records");
  flags.add_double("fault-rate", 0.3, "probability a record is a fault");
  flags.add_int("skip", 0, "re-emit hello, then skip the first N post-hello lines");
  flags.add_bool("health", false, "emit a fixed probe: hello, health query, metrics query, drain");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  std::optional<core::Instance> instance;
  for (auto& [label, figure] : topo::all_figures()) {
    if (label == flags.get_string("figure")) instance = std::move(figure);
  }
  if (!instance) {
    std::fprintf(stderr, "wire_client: unknown figure '%s'\n",
                 std::string(flags.get_string("figure")).c_str());
    return 2;
  }

  core::ProtocolKind protocol = core::ProtocolKind::kModified;
  if (flags.get_string("protocol") == "standard") protocol = core::ProtocolKind::kStandard;
  else if (flags.get_string("protocol") == "walton") protocol = core::ProtocolKind::kWalton;

  if (flags.get_bool("health")) {
    // Fixed liveness probe, independent of --seed: hello, one health query
    // (queue depth/HWM, sheds, watchdog numbers), one metrics query (full
    // registry snapshot), drain.  Pipe it through a running ibgpd to check
    // the service is answering.
    std::printf(
        "{\"ev\":\"hello\",\"schema\":\"ibgp-wire-v1\",\"instance\":\"%s\","
        "\"protocol\":\"%s\"}\n",
        instance->name().c_str(), core::protocol_name(protocol));
    std::printf("{\"ev\":\"query\",\"q\":\"health\"}\n");
    std::printf("{\"ev\":\"query\",\"q\":\"metrics\"}\n");
    std::printf("{\"ev\":\"drain\"}\n");
    return 0;
  }

  daemon::StreamOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.state_records = static_cast<std::size_t>(flags.get_int("records"));
  options.query_rate = flags.get_double("query-rate");
  options.fault_rate = flags.get_double("fault-rate");

  const auto lines = daemon::generate_stream(*instance, protocol, options);
  const std::size_t skip = static_cast<std::size_t>(flags.get_int("skip"));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i != 0 && i <= skip) continue;  // line 0 is the hello; always re-emit it
    std::fputs(lines[i].c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}
