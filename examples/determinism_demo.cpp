// determinism_demo — the operational payoff of the modified protocol
// (Sections 1 and 7): same E-BGP inputs, same routing tables, no matter the
// message order, and no matter which routers crash and restart.
//
// Runs a figure (or a random instance) under many random fair schedules and
// crash scenarios for all three protocols and prints the outcome
// distributions side by side.
//
//   $ ./determinism_demo --figure fig2 --runs 500
//   $ ./determinism_demo --random-seed 7 --runs 200 --crash

#include <cstdio>
#include <string>

#include "analysis/determinism.hpp"
#include "engine/oscillation.hpp"
#include "topo/figures.hpp"
#include "topo/random.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibgp;

  util::Flags flags("determinism_demo",
                    "outcome distributions across random schedules and crashes");
  flags.add_string("figure", "fig2", "paper figure to run");
  flags.add_int("random-seed", 0, "use a random instance with this seed instead (0=off)");
  flags.add_int("runs", 300, "random fair schedules to sample");
  flags.add_bool("crash", false, "crash+restart a random node mid-run, every run");
  flags.add_int("max-steps", 20000, "step budget per run");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  std::optional<core::Instance> loaded;
  if (flags.get_int("random-seed") != 0) {
    topo::RandomConfig config;
    config.clusters = 3;
    config.max_clients = 2;
    config.exits = 5;
    config.max_med = 3;
    loaded = topo::random_instance(config,
                                   static_cast<std::uint64_t>(flags.get_int("random-seed")));
  } else {
    for (auto& [label, figure] : topo::all_figures()) {
      if (label == flags.get_string("figure")) loaded = std::move(figure);
    }
    if (!loaded) {
      std::fprintf(stderr, "unknown figure\n");
      return 2;
    }
  }
  const core::Instance& inst = *loaded;
  const auto runs = static_cast<std::size_t>(flags.get_int("runs"));

  std::printf("instance %s — %zu runs with random fair schedules%s\n\n", inst.name().c_str(),
              runs, flags.get_bool("crash") ? " + mid-run crash/restart" : "");

  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    analysis::DeterminismOptions options;
    options.runs = runs;
    options.max_steps = static_cast<std::size_t>(flags.get_int("max-steps"));
    options.crash_prob = flags.get_bool("crash") ? 1.0 : 0.0;
    const auto report = analysis::check_determinism(inst, kind, options);

    std::printf("--- %s ---\n", core::protocol_name(kind));
    std::printf("  converged %zu/%zu; steps min/mean/max = %zu/%.1f/%zu\n",
                report.converged, report.runs, report.min_steps, report.mean_steps,
                report.max_steps);
    std::printf("  distinct outcomes: %zu%s\n", report.outcomes.size(),
                report.deterministic() ? "  => DETERMINISTIC" : "");
    std::size_t shown = 0;
    for (const auto& [best, count] : report.outcomes) {
      std::printf("    %5zu x  %s\n", count, engine::describe_best(inst, best).c_str());
      if (++shown == 8 && report.outcomes.size() > 8) {
        std::printf("    ... (%zu more)\n", report.outcomes.size() - 8);
        break;
      }
    }
    std::printf("\n");
  }
  return 0;
}
