// sat_reduction — the Section 5 NP-completeness construction, end to end.
//
// Takes a 3-SAT formula (a built-in demo, a DIMACS file, or a random one),
// reduces it to a STABLE-I-BGP-WITH-ROUTE-REFLECTION instance, solves the
// formula with DPLL, and then demonstrates the equivalence:
//   - satisfiable  => steering the variable gadgets by the satisfying
//                     assignment converges to a stable routing configuration
//                     (verified as a fixed point);
//   - unsatisfiable => deterministic schedules cycle (and exhaustive stable
//                     search, when it fits the budget, finds nothing).
//
//   $ ./sat_reduction                              # built-in demo
//   $ ./sat_reduction --dimacs formula.cnf
//   $ ./sat_reduction --random-vars 4 --random-clauses 6 --seed 7

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/stable_search.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "engine/sync_engine.hpp"
#include "sat/cnf.hpp"
#include "sat/dpll.hpp"
#include "sat/reduction.hpp"
#include "util/flags.hpp"

namespace {

using namespace ibgp;

sat::Formula demo_formula() {
  // (x1 | x2 | x3) & (~x1 | x2 | ~x3) & (x1 | ~x2 | x3)
  sat::Formula formula(3);
  formula.add_clause({sat::Lit{1}, sat::Lit{2}, sat::Lit{3}});
  formula.add_clause({sat::Lit{-1}, sat::Lit{2}, sat::Lit{-3}});
  formula.add_clause({sat::Lit{1}, sat::Lit{-2}, sat::Lit{3}});
  return formula;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags("sat_reduction", "3-SAT -> Stable-I-BGP reduction demo (Theorem 5.1)");
  flags.add_string("dimacs", "", "path to a DIMACS CNF file (3-literal clauses)");
  flags.add_int("random-vars", 0, "generate a random 3-SAT formula with this many vars");
  flags.add_int("random-clauses", 0, "clauses for the random formula");
  flags.add_int("seed", 1, "random formula seed");
  flags.add_int("max-steps", 60000, "engine step budget");
  flags.add_bool("exhaustive", false, "also run exhaustive stable-configuration search");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  sat::Formula formula;
  if (!flags.get_string("dimacs").empty()) {
    std::ifstream in{std::string(flags.get_string("dimacs"))};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", std::string(flags.get_string("dimacs")).c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    formula = sat::parse_dimacs(buffer.str());
  } else if (flags.get_int("random-vars") > 0) {
    formula = sat::random_3sat(static_cast<std::uint32_t>(flags.get_int("random-vars")),
                               static_cast<std::size_t>(flags.get_int("random-clauses")),
                               static_cast<std::uint64_t>(flags.get_int("seed")));
  } else {
    formula = demo_formula();
  }

  std::printf("formula: %u variables, %zu clauses\n%s", formula.num_vars(),
              formula.num_clauses(), formula.to_dimacs().c_str());

  const auto solved = sat::solve(formula);
  std::printf("DPLL: %s (%llu decisions, %llu propagations)\n",
              solved.satisfiable ? "SATISFIABLE" : "UNSATISFIABLE",
              static_cast<unsigned long long>(solved.decisions),
              static_cast<unsigned long long>(solved.propagations));

  const auto reduction = sat::reduce_to_ibgp(formula);
  const auto& inst = reduction.instance;
  std::printf("reduction: %zu routers, %zu exit paths, %zu sessions\n", inst.node_count(),
              inst.exits().size(), inst.sessions().session_count());

  const auto max_steps = static_cast<std::size_t>(flags.get_int("max-steps"));

  if (solved.satisfiable) {
    // Steer the gadgets into the satisfying assignment and verify stability.
    auto schedule = engine::make_scripted(inst.node_count(),
                                          reduction.steering(solved.assignment));
    engine::RunLimits limits;
    limits.max_steps = max_steps;
    const auto outcome =
        engine::run_protocol(inst, core::ProtocolKind::kStandard, *schedule, limits);
    std::printf("steered run: %s after %zu steps\n",
                engine::run_status_name(outcome.status), outcome.steps);
    if (outcome.converged()) {
      const bool stable = analysis::is_stable_standard(inst, outcome.final_best);
      std::printf("fixed point verified stable: %s\n", stable ? "yes" : "NO (bug!)");
      for (std::uint32_t v = 1; v <= formula.num_vars(); ++v) {
        std::printf("  x%u = %s\n", v, solved.assignment[v] ? "true" : "false");
      }
    }
  } else {
    auto rr = engine::make_round_robin(inst.node_count());
    engine::RunLimits limits;
    limits.max_steps = max_steps;
    const auto outcome =
        engine::run_protocol(inst, core::ProtocolKind::kStandard, *rr, limits);
    std::printf("round-robin run: %s (cycle length %zu, %zu flaps)\n",
                engine::run_status_name(outcome.status), outcome.cycle_length,
                outcome.best_flips);
  }

  if (flags.get_bool("exhaustive")) {
    analysis::StableSearchLimits limits;
    const auto search = analysis::enumerate_stable_standard(inst, limits);
    std::printf("exhaustive stable search: %zu solutions%s (%llu nodes explored)\n",
                search.solutions.size(), search.exhaustive ? "" : " [budget hit]",
                static_cast<unsigned long long>(search.nodes_explored));
    if (search.exhaustive) {
      std::printf("equivalence stable<=>satisfiable: %s\n",
                  (search.any() == solved.satisfiable) ? "HOLDS" : "VIOLATED (bug!)");
    } else if (search.any() && !solved.satisfiable) {
      std::printf("equivalence stable<=>satisfiable: VIOLATED (stable found for UNSAT!)\n");
    } else {
      std::printf("equivalence check inconclusive (budget hit before exhaustion)\n");
    }
  }
  return 0;
}
