// event_trace — a Table-1-style chronological account of an event-driven
// run: which router changed its best route, when, from what to what.
//
//   $ ./event_trace --figure fig3 --scenario churn
//   $ ./event_trace --figure fig1a --protocol standard --max-deliveries 60
//   $ ./event_trace --figure fig3 --trace-json /tmp/fig3.jsonl   # ibgp-trace-v2

#include <cstdio>
#include <string>

#include "engine/event_engine.hpp"
#include "obs/trace.hpp"
#include "topo/figures.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace ibgp;

  util::init_log_level_from_env();  // IBGP_LOG_LEVEL, case-insensitive
  util::Flags flags("event_trace", "chronological best-route trace (Table 1 shape)");
  flags.add_string("figure", "fig3", "figure instance");
  flags.add_string("protocol", "standard", "standard|walton|modified");
  flags.add_string("scenario", "all-at-once", "all-at-once|staggered|churn");
  flags.add_int("max-deliveries", 4000, "event budget");
  flags.add_string("trace-json", "", "write the ibgp-trace-v2 event stream here");
  flags.add_string("log-level", "", "trace|debug|info|warn|error|off (any case)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  std::optional<core::Instance> loaded;
  for (auto& [label, figure] : topo::all_figures()) {
    if (label == flags.get_string("figure")) loaded = std::move(figure);
  }
  if (!loaded) {
    std::fprintf(stderr, "unknown figure\n");
    return 2;
  }
  const core::Instance& inst = *loaded;

  core::ProtocolKind kind = core::ProtocolKind::kStandard;
  if (flags.get_string("protocol") == "walton") kind = core::ProtocolKind::kWalton;
  if (flags.get_string("protocol") == "modified") kind = core::ProtocolKind::kModified;

  if (!flags.get_string("log-level").empty()) {
    util::Logger::instance().set_level(util::parse_log_level(flags.get_string("log-level")));
  }

  engine::EventEngine engine(inst, kind);
  obs::TraceSink trace;
  if (!flags.get_string("trace-json").empty()) {
    const std::string path(flags.get_string("trace-json"));
    if (!trace.open_file(path)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    engine.set_trace(&trace);
  }
  const std::string scenario(flags.get_string("scenario"));
  if (scenario == "staggered") {
    for (PathId p = 0; p < inst.exits().size(); ++p) engine.inject_exit(p, 40 * p);
  } else if (scenario == "churn") {
    engine.inject_all_exits(0);
    if (inst.exits().size() >= 2) {
      engine.withdraw_exit(0, 150);
      engine.inject_exit(0, 400);
      engine.withdraw_exit(1, 300);
    }
  } else {
    engine.inject_all_exits(0);
  }

  const auto result =
      engine.run(static_cast<std::size_t>(flags.get_int("max-deliveries")));

  std::printf("%s | protocol %s | scenario %s\n\n", inst.name().c_str(),
              core::protocol_name(kind), scenario.c_str());
  std::printf("%-8s | %-6s | %-10s -> %-10s\n", "time", "router", "old best", "new best");
  std::printf("---------+--------+--------------------------\n");
  for (const auto& flap : engine.flap_log()) {
    std::printf("%8llu | %-6s | %-10s -> %-10s\n",
                static_cast<unsigned long long>(flap.time),
                inst.node_name(flap.node).c_str(),
                flap.old_best == kNoPath ? "(none)" : inst.exits()[flap.old_best].name.c_str(),
                flap.new_best == kNoPath ? "(none)" : inst.exits()[flap.new_best].name.c_str());
  }
  std::printf("\n%s after %zu deliveries (%zu updates sent, %zu best-route changes)\n",
              result.converged ? "CONVERGED" : "STILL CHURNING (budget hit)",
              result.deliveries, result.updates_sent, result.best_flips);
  return 0;
}
