// fault_storm — drive a seeded fault campaign against any figure and watch
// the protocol fight back: the applied fault timeline, the best-route flap
// trace, the invariant verdict, and the determinism fingerprint.
//
//   $ ./fault_storm --figure fig3 --protocol modified --seed 42 --flaps 3 --crashes 1 --loss 0.05
//   $ ./fault_storm --figure fig1a --protocol standard --flaps 4 --trace
//   $ ./fault_storm --figure fig1a --graceful 1 --crashes 0 --stale-timer 300
//
// Same seed -> same trace hash, bit for bit: re-run any storm from its
// command line.

#include <cstdio>
#include <string>

#include "analysis/continuity.hpp"
#include "analysis/invariants.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "obs/trace.hpp"
#include "topo/figures.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace ibgp;

  util::init_log_level_from_env();  // IBGP_LOG_LEVEL, case-insensitive
  util::Flags flags("fault_storm", "seeded fault campaign with invariant checking");
  flags.add_string("figure", "fig3", "figure instance (fig1a|fig1b|fig2|fig3|fig13|fig14)");
  flags.add_string("protocol", "modified", "standard|walton|modified");
  flags.add_int("seed", 42, "campaign seed (same seed = same trace hash)");
  flags.add_int("flaps", 3, "session down/up flap pairs");
  flags.add_int("crashes", 1, "router crash/restart pairs (cold)");
  flags.add_int("graceful", 0, "graceful-down/restart pairs (RFC 4724-style)");
  flags.add_int("stale-timer", 0, "stale retention bound in ticks (0 = until End-of-RIB)");
  flags.add_int("exit-flaps", 0, "exit withdraw/re-inject pairs");
  flags.add_double("loss", 0.05, "per-message loss probability");
  flags.add_double("dup", 0.0, "per-message duplication probability");
  flags.add_int("window", 400, "fault window end (ticks)");
  flags.add_int("max-deliveries", 200000, "event budget");
  flags.add_bool("trace", false, "print the full best-route flap trace");
  flags.add_string("trace-json", "", "write the ibgp-trace-v1 event stream here");
  flags.add_string("log-level", "", "trace|debug|info|warn|error|off (any case)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  std::optional<core::Instance> loaded;
  for (auto& [label, figure] : topo::all_figures()) {
    if (label == flags.get_string("figure")) loaded = std::move(figure);
  }
  if (!loaded) {
    std::fprintf(stderr, "unknown figure\n");
    return 2;
  }
  const core::Instance& inst = *loaded;

  core::ProtocolKind protocol = core::ProtocolKind::kModified;
  if (flags.get_string("protocol") == "standard") protocol = core::ProtocolKind::kStandard;
  else if (flags.get_string("protocol") == "walton") protocol = core::ProtocolKind::kWalton;
  else if (flags.get_string("protocol") != "modified") {
    std::fprintf(stderr, "unknown protocol\n");
    return 2;
  }

  fault::FaultScriptConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.session_flaps = static_cast<std::size_t>(flags.get_int("flaps"));
  config.crashes = static_cast<std::size_t>(flags.get_int("crashes"));
  config.graceful_restarts = static_cast<std::size_t>(flags.get_int("graceful"));
  config.stale_timer = static_cast<engine::SimTime>(flags.get_int("stale-timer"));
  config.exit_flaps = static_cast<std::size_t>(flags.get_int("exit-flaps"));
  config.loss_prob = flags.get_double("loss");
  config.dup_prob = flags.get_double("dup");
  config.window_start = 20;
  config.window_end = static_cast<engine::SimTime>(flags.get_int("window"));

  const auto script = fault::make_fault_script(inst, config);

  std::printf("%s | protocol %s | seed %llu\n", inst.name().c_str(),
              core::protocol_name(protocol),
              static_cast<unsigned long long>(config.seed));
  std::printf("scripted faults: %zu (loss %.0f%%, dup %.0f%%)\n", script.actions.size(),
              100 * script.loss_prob, 100 * script.dup_prob);

  if (!flags.get_string("log-level").empty()) {
    util::Logger::instance().set_level(util::parse_log_level(flags.get_string("log-level")));
  }

  // Replay the campaign with direct engine access so the logs are visible.
  engine::EventEngine engine(inst, protocol);
  obs::TraceSink trace_sink;
  if (!flags.get_string("trace-json").empty()) {
    const std::string path(flags.get_string("trace-json"));
    if (!trace_sink.open_file(path)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    engine.set_trace(&trace_sink);
  }
  if (script.stale_timer > 0) engine.set_stale_timer(script.stale_timer);
  fault::ScriptInjector injector(script);
  engine.set_fault_injector(&injector);
  engine.inject_all_exits(0);
  fault::apply_script(script, engine);
  const auto result =
      engine.run(static_cast<std::size_t>(flags.get_int("max-deliveries")));

  std::printf("\nfault timeline (as applied, incl. loss-repair resets):\n");
  for (const auto& fault : engine.fault_log()) {
    std::printf("  t=%-6llu %-13s %s%s%s\n",
                static_cast<unsigned long long>(fault.time),
                engine::fault_kind_name(fault.kind), inst.node_name(fault.a).c_str(),
                fault.b == kNoNode ? "" : " -- ",
                fault.b == kNoNode ? "" : inst.node_name(fault.b).c_str());
  }

  if (flags.get_bool("trace")) {
    std::printf("\nbest-route flap trace:\n");
    for (const auto& flap : engine.flap_log()) {
      std::printf("  t=%-6llu %-6s %-8s -> %s\n",
                  static_cast<unsigned long long>(flap.time),
                  inst.node_name(flap.node).c_str(),
                  flap.old_best == kNoPath ? "(none)"
                                           : inst.exits()[flap.old_best].name.c_str(),
                  flap.new_best == kNoPath ? "(none)"
                                           : inst.exits()[flap.new_best].name.c_str());
    }
  }

  std::printf("\n%s after %zu deliveries | %zu updates, %zu dropped, %zu duplicated, "
              "%zu voided in-flight | %zu best-route flaps\n",
              result.converged ? "RECONVERGED" : "STILL CHURNING (budget hit)",
              result.deliveries, result.updates_sent, result.messages_dropped,
              result.messages_duplicated, result.deliveries_voided, result.best_flips);
  if (result.stale_retained > 0 || result.eor_markers_sent > 0) {
    std::printf("graceful restart: %zu entries retained stale, %zu End-of-RIB markers, "
                "%zu swept on EoR, %zu cold-flushed on timer expiry\n",
                result.stale_retained, result.eor_markers_sent, result.stale_swept_eor,
                result.stale_swept_expired);
  }

  std::printf("\nfinal routing:\n");
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    std::printf("  %-6s -> %s%s\n", inst.node_name(v).c_str(),
                result.final_best[v] == kNoPath
                    ? "(none)"
                    : inst.exits()[result.final_best[v]].name.c_str(),
                engine.node_up(v) ? "" : "  [down]");
  }

  const auto report = analysis::check_invariants(engine);
  std::printf("\ninvariants: %s\n", analysis::describe_report(report).c_str());
  for (const auto& violation : report.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
  const auto continuity = analysis::check_continuity(engine, result.end_time);
  std::printf("forwarding continuity: %s\n",
              analysis::describe_continuity(continuity).c_str());
  std::printf("trace hash: %016llx\n",
              static_cast<unsigned long long>(fault::trace_hash(engine, result)));
  return result.converged && report.clean() ? 0 : 1;
}
