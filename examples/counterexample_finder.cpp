// counterexample_finder — randomized search for configurations that break a
// protocol, in the spirit of Section 8's counterexample to Walton et al.
//
// Samples random route-reflection configurations and classifies each under
// round-robin and synchronous schedules with provable cycle detection.  Can
// demand that the oscillation be MED-induced (vanishes with MEDs ignored)
// and that the paper's modified protocol converge on the same instance.
//
//   $ ./counterexample_finder --protocol walton --med-induced \
//         --clusters 4 --exits 5 --attempts 200000

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/finder.hpp"
#include "core/policy.hpp"
#include "engine/event_engine.hpp"
#include "engine/oscillation.hpp"
#include "topo/dsl.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ibgp;

  util::Flags flags("counterexample_finder",
                    "search random configurations for protocol-breaking instances");
  flags.add_string("protocol", "walton", "protocol to break: standard|walton|modified");
  flags.add_bool("med-induced", true, "require oscillation to vanish when MEDs are ignored");
  flags.add_bool("modified-converges", true,
                 "require the paper's modified protocol to converge on the instance");
  flags.add_bool("both-schedules", false,
                 "require cycles under BOTH round-robin and synchronous schedules");
  flags.add_int("clusters", 4, "number of clusters");
  flags.add_int("min-clients", 0, "minimum clients per cluster");
  flags.add_int("max-clients", 1, "maximum clients per cluster");
  flags.add_int("ases", 2, "number of neighboring ASes");
  flags.add_int("exits", 5, "number of exit paths");
  flags.add_int("max-med", 2, "maximum MED value");
  flags.add_int("max-cost", 8, "maximum IGP link cost");
  flags.add_int("max-exit-cost", 4, "maximum exit cost");
  flags.add_double("extra-links", 0.3, "extra IGP-only link probability");
  flags.add_bool("exits-at-clients", false, "place exits only at clients");
  flags.add_int("attempts", 100000, "instances to sample");
  flags.add_int("seed", 1, "base RNG seed");
  flags.add_int("max-steps", 4000, "step budget per classification run");
  flags.add_int("event-seed", 1, "base seed for message-level confirmation trials");
  flags.add_int("event-trials", 10,
                "seeded event-engine delay schedules to confirm the find (0 = skip)");
  flags.add_int("jobs", 0,
                "worker threads for the confirmation trials (0 = one per hardware thread)");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  topo::RandomConfig config;
  config.clusters = static_cast<std::size_t>(flags.get_int("clusters"));
  config.min_clients = static_cast<std::size_t>(flags.get_int("min-clients"));
  config.max_clients = static_cast<std::size_t>(flags.get_int("max-clients"));
  config.neighbor_ases = static_cast<std::size_t>(flags.get_int("ases"));
  config.exits = static_cast<std::size_t>(flags.get_int("exits"));
  config.max_med = static_cast<Med>(flags.get_int("max-med"));
  config.max_link_cost = flags.get_int("max-cost");
  config.max_exit_cost = flags.get_int("max-exit-cost");
  config.extra_link_prob = flags.get_double("extra-links");
  config.exits_at_clients_only = flags.get_bool("exits-at-clients");

  analysis::FinderCriteria criteria;
  const std::string protocol = std::string(flags.get_string("protocol"));
  if (protocol == "standard") {
    criteria.protocol = core::ProtocolKind::kStandard;
  } else if (protocol == "walton") {
    criteria.protocol = core::ProtocolKind::kWalton;
  } else if (protocol == "modified") {
    criteria.protocol = core::ProtocolKind::kModified;
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", protocol.c_str());
    return 2;
  }
  criteria.med_induced = flags.get_bool("med-induced");
  criteria.modified_converges = flags.get_bool("modified-converges");
  criteria.both_schedules = flags.get_bool("both-schedules");
  criteria.max_steps = static_cast<std::size_t>(flags.get_int("max-steps"));

  const auto result = analysis::find_counterexample(
      config, criteria, static_cast<std::uint64_t>(flags.get_int("seed")),
      static_cast<std::size_t>(flags.get_int("attempts")));

  if (!result.found) {
    std::printf("no counterexample for %s in %zu attempts\n", protocol.c_str(),
                result.attempts_used);
    return 1;
  }

  std::printf("found after %zu attempts (seed %llu):\n\n%s\n", result.attempts_used,
              static_cast<unsigned long long>(result.seed_found),
              topo::write_topo(*result.found).c_str());

  const auto signature = analysis::classify(*result.found, criteria.protocol,
                                            criteria.max_steps);
  std::printf("%s: round-robin=%s synchronous=%s\n", protocol.c_str(),
              engine::run_status_name(signature.round_robin),
              engine::run_status_name(signature.synchronous));
  const auto modified =
      analysis::classify(*result.found, core::ProtocolKind::kModified, criteria.max_steps);
  std::printf("modified: round-robin=%s synchronous=%s\n",
              engine::run_status_name(modified.round_robin),
              engine::run_status_name(modified.synchronous));

  // Message-level confirmation: replay the instance through the event engine
  // under seeded random per-message delays.  A schedule-level cycle is only
  // interesting if delay schedules also fail to settle; each trial is
  // reproducible from --event-seed (trial i uses derive_seed(event-seed, i)).
  // Trials are independent cells (own engine, own index-derived RNG), so the
  // batch fans out across --jobs threads; verdicts are collected in an
  // index-keyed vector and counted in order, keeping the tally and every
  // printed line identical for any --jobs value.
  const auto trials = static_cast<std::size_t>(flags.get_int("event-trials"));
  if (trials > 0) {
    const auto base_seed = static_cast<std::uint64_t>(flags.get_int("event-seed"));
    const auto jobs = util::resolve_jobs(static_cast<std::size_t>(flags.get_int("jobs")));
    const std::size_t budget = 50 * static_cast<std::size_t>(flags.get_int("max-steps"));
    for (const auto& [kind, label] :
         {std::pair{criteria.protocol, protocol.c_str()},
          std::pair{core::ProtocolKind::kModified, "modified"}}) {
      std::vector<char> converged(trials, 0);
      util::parallel_for(trials, jobs, [&, kind = kind](std::size_t i) {
        auto rng = std::make_shared<util::Xoshiro256>(util::derive_seed(base_seed, i));
        engine::EventEngine sim(*result.found, kind,
                                [rng](NodeId, NodeId, std::uint64_t) {
                                  return engine::SimTime{1 + rng->below(40)};
                                });
        sim.inject_all_exits(0);
        converged[i] = sim.run(budget).converged ? 1 : 0;
      });
      std::size_t settled = 0;
      for (const char c : converged) settled += c;
      std::printf("message-level (%zu seeded delay trials, seed %llu): %s settled %zu/%zu\n",
                  trials, static_cast<unsigned long long>(base_seed), label, settled,
                  trials);
    }
  }
  return 0;
}
