// quickstart — the five-minute tour of the library.
//
// Builds the paper's flagship example (Figure 1(a), the RFC 3345 persistent
// MED oscillation), runs all three protocols on it under deterministic
// schedules, shows the oscillation cycle, the absence of any stable
// configuration for standard I-BGP, and the unique schedule-independent
// fixed point of the paper's modified protocol.
//
//   $ ./quickstart [--figure fig1a] [--max-steps 20000]

#include <cstdio>
#include <string>

#include "analysis/determinism.hpp"
#include "analysis/finder.hpp"
#include "analysis/stable_search.hpp"
#include "core/fixed_point.hpp"
#include "core/policy.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "topo/figures.hpp"
#include "util/flags.hpp"

namespace {

using namespace ibgp;

core::Instance pick_figure(std::string_view name) {
  for (auto& [label, inst] : topo::all_figures()) {
    if (label == name) return inst;
  }
  std::fprintf(stderr, "unknown figure '%.*s' (want fig1a|fig1b|fig2|fig3|fig13|fig14)\n",
               static_cast<int>(name.size()), name.data());
  std::exit(2);
}

void show_protocol(const core::Instance& inst, core::ProtocolKind kind,
                   std::size_t max_steps) {
  std::printf("\n--- protocol: %s ---\n", core::protocol_name(kind));
  engine::RunLimits limits;
  limits.max_steps = max_steps;

  for (const char* schedule_name : {"round-robin", "synchronous"}) {
    auto schedule = std::string(schedule_name) == "round-robin"
                        ? engine::make_round_robin(inst.node_count())
                        : engine::make_full_set(inst.node_count());
    const auto outcome = engine::run_protocol(inst, kind, *schedule, limits);
    std::printf("  %-12s : %-10s", schedule_name, engine::run_status_name(outcome.status));
    if (outcome.converged()) {
      std::printf("  after %zu steps, best: %s\n", outcome.quiescent_since,
                  engine::describe_best(inst, outcome.final_best).c_str());
    } else if (outcome.oscillated()) {
      std::printf("  cycle of length %zu detected after %zu steps (%zu route flaps)\n",
                  outcome.cycle_length, outcome.steps, outcome.best_flips);
    } else {
      std::printf("  no verdict within %zu steps\n", outcome.steps);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags("quickstart",
                    "run standard/Walton/modified I-BGP on a paper figure and compare");
  flags.add_string("figure", "fig1a", "which figure instance to run");
  flags.add_int("max-steps", 20000, "activation-step budget per run");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  const core::Instance inst = pick_figure(flags.get_string("figure"));
  const auto max_steps = static_cast<std::size_t>(flags.get_int("max-steps"));

  std::printf("instance: %s (%zu routers, %zu exit paths, %zu I-BGP sessions)\n",
              inst.name().c_str(), inst.node_count(), inst.exits().size(),
              inst.sessions().session_count());

  // 1. What stable configurations does standard I-BGP even have here?
  const auto stable = analysis::enumerate_stable_standard(inst);
  std::printf("stable configurations of standard I-BGP: %zu%s\n", stable.solutions.size(),
              stable.exhaustive ? " (exhaustive search)" : " (search budget hit)");
  for (const auto& solution : stable.solutions) {
    std::printf("    %s\n", engine::describe_best(inst, solution).c_str());
  }

  // 2. Run each protocol under deterministic schedules.
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    show_protocol(inst, kind, max_steps);
  }

  // 3. The paper's theorem: the modified protocol has ONE fixed point,
  //    computable in closed form, reached under every fair schedule.
  const auto prediction = core::predict_fixed_point(inst);
  std::printf("\nmodified-protocol closed-form fixed point:\n  S' = {");
  for (std::size_t i = 0; i < prediction.s_prime.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", inst.exits()[prediction.s_prime[i]].name.c_str());
  }
  std::vector<PathId> predicted_best;
  for (const auto& best : prediction.best) {
    predicted_best.push_back(best ? best->path : kNoPath);
  }
  std::printf("}\n  best: %s\n", engine::describe_best(inst, predicted_best).c_str());

  analysis::DeterminismOptions options;
  options.runs = 200;
  const auto determinism =
      analysis::check_determinism(inst, core::ProtocolKind::kModified, options);
  std::printf(
      "  200 random fair schedules: %zu converged, %zu distinct outcomes -> %s\n",
      determinism.converged, determinism.outcomes.size(),
      determinism.deterministic() ? "deterministic (as proven in Section 7)"
                                  : "NOT deterministic (!)");
  return 0;
}
