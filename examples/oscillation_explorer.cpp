// oscillation_explorer — interactive-grade analysis of any configuration.
//
// Loads a topology (a paper figure by name, or a .topo file) and produces a
// full diagnosis: structural validation, exhaustive stable-configuration
// enumeration, the three-protocol/two-schedule convergence grid, per-node
// selection explanations at the reached or cycling state, forwarding-plane
// traces, and the modified protocol's closed-form fixed point.
//
//   $ ./oscillation_explorer --figure fig1a
//   $ ./oscillation_explorer --file mynet.topo --explain A
//   $ ./oscillation_explorer --figure fig13 --protocol walton

#include <cstdio>
#include <string>

#include <algorithm>
#include <map>
#include <memory>

#include "analysis/forwarding.hpp"
#include "analysis/stable_search.hpp"
#include "core/fixed_point.hpp"
#include "engine/activation.hpp"
#include "engine/event_engine.hpp"
#include "engine/oscillation.hpp"
#include "engine/sync_engine.hpp"
#include "topo/dsl.hpp"
#include "topo/figures.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibgp;

core::ProtocolKind parse_protocol(std::string_view name) {
  if (name == "standard") return core::ProtocolKind::kStandard;
  if (name == "walton") return core::ProtocolKind::kWalton;
  if (name == "modified") return core::ProtocolKind::kModified;
  std::fprintf(stderr, "unknown protocol '%.*s'\n", static_cast<int>(name.size()),
               name.data());
  std::exit(2);
}

void explain_node(const engine::SyncEngine& sim, NodeId v) {
  const auto& inst = sim.instance();
  std::printf("\nselection at %s (%s, cluster %u):\n", inst.node_name(v).c_str(),
              inst.clusters().is_reflector(v) ? "reflector" : "client",
              inst.clusters().cluster_of(v));
  const auto explanation =
      bgp::explain_selection(inst.exits(), inst.igp(), v, sim.possible(v), inst.policy());
  for (const auto& [stage, survivors] : explanation.stages) {
    std::printf("  %-32s : {", stage.c_str());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", inst.exits()[survivors[i]].name.c_str());
    }
    std::printf("}\n");
  }
  if (explanation.best) {
    std::printf("  => best: %s (metric %lld, learned from BGP id %u)\n",
                inst.exits()[explanation.best->path].name.c_str(),
                static_cast<long long>(explanation.best->metric),
                explanation.best->learned_from);
  } else {
    std::printf("  => no route\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags("oscillation_explorer", "diagnose an I-BGP+RR configuration");
  flags.add_string("figure", "fig1a", "paper figure to analyze (fig1a|fig1b|fig2|fig3|fig13|fig14)");
  flags.add_string("file", "", "a .topo file (overrides --figure)");
  flags.add_string("protocol", "standard", "protocol whose state to explain");
  flags.add_string("explain", "", "node label to explain in detail (default: all)");
  flags.add_int("max-steps", 20000, "step budget");
  flags.add_int("seed", 1, "base seed for the message-level delay trials");
  flags.add_int("event-trials", 20, "seeded event-engine trials per protocol (0 = skip)");
  flags.add_int("jobs", 0, "worker threads for the trials (0 = one per hardware thread)");
  flags.add_int("max-delay", 50, "maximum random per-message delay in the trials");
  flags.add_bool("dump", false, "dump the instance back as .topo text");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  std::optional<core::Instance> loaded;
  if (!flags.get_string("file").empty()) {
    try {
      loaded = topo::load_topo_file(std::string(flags.get_string("file")));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    for (auto& [label, figure] : topo::all_figures()) {
      if (label == flags.get_string("figure")) loaded = std::move(figure);
    }
    if (!loaded) {
      std::fprintf(stderr, "unknown figure\n");
      return 2;
    }
  }
  const core::Instance& inst = *loaded;
  const auto protocol = parse_protocol(flags.get_string("protocol"));
  const auto max_steps = static_cast<std::size_t>(flags.get_int("max-steps"));

  std::printf("instance %s: %zu routers, %zu clusters, %zu sessions, %zu exit paths\n",
              inst.name().c_str(), inst.node_count(), inst.clusters().cluster_count(),
              inst.sessions().session_count(), inst.exits().size());
  for (const auto& warning : inst.warnings()) {
    std::printf("  warning: %s\n", warning.c_str());
  }
  if (flags.get_bool("dump")) {
    std::printf("\n%s\n", topo::write_topo(inst).c_str());
  }

  // Stable configurations.
  const auto stable = analysis::enumerate_stable_standard(inst);
  std::printf("\nstable configurations under standard I-BGP: %zu%s\n",
              stable.solutions.size(), stable.exhaustive ? " (exhaustive)" : " (budget hit)");
  for (const auto& solution : stable.solutions) {
    const auto fwd = analysis::analyze_forwarding(inst, solution);
    std::printf("  %s%s\n", engine::describe_best(inst, solution).c_str(),
                fwd.loop_free() ? "" : "  [FORWARDING LOOP]");
  }

  // Convergence grid.
  std::printf("\nconvergence grid:\n");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    for (const bool synchronous : {false, true}) {
      auto schedule = synchronous ? engine::make_full_set(inst.node_count())
                                  : engine::make_round_robin(inst.node_count());
      engine::RunLimits limits;
      limits.max_steps = max_steps;
      const auto outcome = engine::run_protocol(inst, kind, *schedule, limits);
      std::printf("  %-9s %-11s : %s", core::protocol_name(kind),
                  synchronous ? "synchronous" : "round-robin",
                  engine::run_status_name(outcome.status));
      if (outcome.oscillated()) {
        std::printf(" (cycle %zu)", outcome.cycle_length);
      }
      std::printf("\n");
    }
  }

  // Message-level trials: the same instance under randomized per-message
  // delays, fully reproducible from --seed (trial i uses derive_seed(seed, i)).
  // Each trial is a self-contained cell (own engine, own RNG derived from its
  // index), so the batch fans out over --jobs worker threads; per-trial
  // verdicts land in an index-keyed vector and the summary folds in trial
  // order, making the output independent of --jobs.
  const auto trials = static_cast<std::size_t>(flags.get_int("event-trials"));
  if (trials > 0) {
    const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    const auto jobs =
        util::resolve_jobs(static_cast<std::size_t>(flags.get_int("jobs")));
    const auto max_delay =
        static_cast<std::uint64_t>(std::max<std::int64_t>(1, flags.get_int("max-delay")));
    std::printf("\nmessage-level trials (%zu seeded delay schedules, base seed %llu):\n",
                trials, static_cast<unsigned long long>(base_seed));
    for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                            core::ProtocolKind::kModified}) {
      struct Trial {
        bool converged = false;
        std::vector<PathId> best;
      };
      std::vector<Trial> results(trials);
      util::parallel_for(trials, jobs, [&](std::size_t i) {
        auto rng = std::make_shared<util::Xoshiro256>(util::derive_seed(base_seed, i));
        engine::EventEngine engine(inst, kind,
                                   [rng, max_delay](NodeId, NodeId, std::uint64_t) {
                                     return engine::SimTime{1 + rng->below(max_delay)};
                                   });
        engine.inject_all_exits(0);
        const auto result = engine.run(10 * max_steps);
        results[i].converged = result.converged;
        if (result.converged) results[i].best = result.final_best;
      });
      std::size_t converged = 0;
      std::map<std::vector<PathId>, std::size_t> outcomes;
      for (const auto& trial : results) {
        if (!trial.converged) continue;
        ++converged;
        ++outcomes[trial.best];
      }
      std::printf("  %-9s : %zu/%zu converged, %zu distinct outcome%s\n",
                  core::protocol_name(kind), converged, trials, outcomes.size(),
                  outcomes.size() == 1 ? "" : "s");
      for (const auto& [best, count] : outcomes) {
        std::printf("      %3zux %s\n", count, engine::describe_best(inst, best).c_str());
      }
    }
  }

  // Per-node explanations for the chosen protocol at its final state.
  engine::SyncEngine sim(inst, protocol);
  auto rr = engine::make_round_robin(inst.node_count());
  engine::RunLimits limits;
  limits.max_steps = max_steps;
  engine::run(sim, *rr, limits);
  const std::string target(flags.get_string("explain"));
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (target.empty() || inst.node_name(v) == target) explain_node(sim, v);
  }

  // Forwarding at the reached state.
  std::vector<PathId> best;
  for (NodeId v = 0; v < inst.node_count(); ++v) best.push_back(sim.best_path(v));
  const auto fwd = analysis::analyze_forwarding(inst, best);
  std::printf("\nforwarding traces (%s, final/current state):\n",
              core::protocol_name(protocol));
  for (const auto& trace : fwd.traces) {
    std::printf("  %s\n", analysis::describe_trace(inst, trace).c_str());
  }

  // The closed-form fixed point of the paper's protocol.
  const auto prediction = core::predict_fixed_point(inst);
  std::printf("\nmodified-protocol fixed point: S' = {");
  for (std::size_t i = 0; i < prediction.s_prime.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", inst.exits()[prediction.s_prime[i]].name.c_str());
  }
  std::printf("}\n");
  return 0;
}
