// ibgpd — the hardened streaming daemon: ibgp-wire-v1 on stdin/stdout.
//
//   $ ./ibgpd --figure fig1a --protocol modified --state-dir /tmp/ibgpd < stream.jsonl
//   $ ./ibgpd --figure fig1a --protocol modified --state-dir /tmp/ibgpd --resume < tail.jsonl
//   $ ./ibgpd --topo net.topo --protocol modified --ckpt-every 16
//
// SIGTERM triggers a graceful drain: intake stops, every queued reply is
// flushed, the engine runs to quiescence, a final checkpoint lands, and
// the process exits 0.  SIGKILL needs no cooperation: restart with
// --resume and the daemon replays its write-ahead journal and answers
// byte-identically to a run that was never interrupted.
//
// Exit codes: 0 clean (EOF or drain), 2 startup/usage error.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "daemon/daemon.hpp"
#include "daemon/service.hpp"
#include "topo/dsl.hpp"
#include "topo/figures.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace {

void on_sigterm(int) { ibgp::daemon::DaemonService::request_drain(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace ibgp;

  util::init_log_level_from_env();
  util::Flags flags("ibgpd", "ibgp-wire-v1 streaming daemon (stdin -> stdout)");
  flags.add_string("figure", "fig1a", "figure instance (ignored when --topo is set)");
  flags.add_string("topo", "", "load the instance from a .topo DSL file");
  flags.add_string("protocol", "modified", "standard|walton|modified");
  flags.add_string("state-dir", "", "checkpoint + journal directory (empty = no persistence)");
  flags.add_bool("resume", false, "recover from --state-dir instead of starting fresh");
  flags.add_int("ckpt-every", 64, "accepted records between checkpoints (0 = only on drain)");
  flags.add_int("spf-cache-epochs", 0, "SpfCache LRU capacity (0 = unbounded)");
  flags.add_int("queue-cap", 256, "bounded ingest queue capacity (live records)");
  flags.add_bool("watchdog", true, "run the liveness watchdog thread");
  flags.add_int("watchdog-interval-ms", 200, "watchdog poll interval");
  flags.add_int("watchdog-stall-ms", 5000, "in-flight time before a stall is recorded");
  flags.add_bool("watchdog-fatal", false, "abort() on stall (external-supervisor mode)");
  flags.add_int("kill-after", 0, "chaos hook: SIGKILL self after flushing reply #N (0 = off)");
  flags.add_string("metrics-file", "", "write Prometheus text exposition here (atomic rewrite)");
  flags.add_int("metrics-interval-ms", 1000, "exposition rewrite cadence for --metrics-file");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  std::shared_ptr<core::Instance> instance;
  try {
    if (!flags.get_string("topo").empty()) {
      instance = std::make_shared<core::Instance>(
          topo::load_topo_file(std::string(flags.get_string("topo"))));
    } else {
      for (auto& [label, figure] : topo::all_figures()) {
        if (label == flags.get_string("figure")) {
          instance = std::make_shared<core::Instance>(std::move(figure));
        }
      }
      if (!instance) {
        std::fprintf(stderr, "ibgpd: unknown figure '%s'\n",
                     std::string(flags.get_string("figure")).c_str());
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ibgpd: %s\n", e.what());
    return 2;
  }

  core::ProtocolKind protocol = core::ProtocolKind::kModified;
  if (flags.get_string("protocol") == "standard") protocol = core::ProtocolKind::kStandard;
  else if (flags.get_string("protocol") == "walton") protocol = core::ProtocolKind::kWalton;
  else if (flags.get_string("protocol") != "modified") {
    std::fprintf(stderr, "ibgpd: unknown protocol '%s'\n",
                 std::string(flags.get_string("protocol")).c_str());
    return 2;
  }

  daemon::DaemonOptions dopts;
  dopts.state_dir = std::string(flags.get_string("state-dir"));
  dopts.resume = flags.get_bool("resume");
  dopts.ckpt_every = static_cast<std::uint64_t>(flags.get_int("ckpt-every"));
  dopts.spf_cache_epochs = static_cast<std::size_t>(flags.get_int("spf-cache-epochs"));

  std::optional<daemon::Daemon> daemon;
  try {
    daemon.emplace(instance, protocol, dopts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ibgpd: %s\n", e.what());
    return 2;
  }

  daemon::ServiceOptions sopts;
  sopts.queue_capacity = static_cast<std::size_t>(flags.get_int("queue-cap"));
  sopts.watchdog_enabled = flags.get_bool("watchdog");
  sopts.watchdog.interval = std::chrono::milliseconds(flags.get_int("watchdog-interval-ms"));
  sopts.watchdog.stall_after = std::chrono::milliseconds(flags.get_int("watchdog-stall-ms"));
  sopts.watchdog.fatal = flags.get_bool("watchdog-fatal");
  sopts.kill_after = static_cast<std::uint64_t>(flags.get_int("kill-after"));
  sopts.metrics_file = std::string(flags.get_string("metrics-file"));
  sopts.metrics_interval_ms = std::chrono::milliseconds(flags.get_int("metrics-interval-ms"));

  daemon::DaemonService service(*daemon, STDIN_FILENO, stdout, sopts);

  // No SA_RESTART: the reader's poll() must wake with EINTR so a signal
  // delivered to it still turns into a prompt drain via the self-pipe.
  struct sigaction sa = {};
  sa.sa_handler = on_sigterm;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);

  return service.run();
}
