// policy_explorer — coverage-guided adversarial search over the policy
// space (route-maps, MED regime mixes, community tagging, confederation/RR
// hybrid layouts), with a delta-debugging minimizer feeding the checked-in
// counterexample corpus.
//
// Every oscillating find is shrunk to a 1-minimal configuration whose
// convergence signature survives both deterministic schedules, then written
// as a self-describing corpus entry (examples/data/corpus/ce-<hash>.topo)
// that bench_corpus (E18) replays as a regression gate.
//
//   $ ./policy_explorer --budget 4000 --seed 7 --corpus-out ../examples/data/corpus
//   $ ./policy_explorer --protocol walton --med-induced --budget 8000

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/policy.hpp"
#include "explore/corpus.hpp"
#include "explore/explorer.hpp"
#include "explore/minimize.hpp"
#include "topo/dsl.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibgp;

  util::Flags flags("policy_explorer",
                    "coverage-guided policy-space fuzzer with delta-debugging minimizer");
  flags.add_string("protocol", "standard", "protocol to attack: standard|walton|modified");
  flags.add_int("budget", 2000, "mutants to evaluate");
  flags.add_int("seed", 1, "base RNG seed");
  flags.add_int("max-steps", 4000, "step budget per classification run");
  flags.add_int("max-deliveries", 20000, "event-engine budget per coverage run");
  flags.add_int("batch", 64, "parallel evaluation batch size");
  flags.add_int("frontier", 64, "retained frontier size");
  flags.add_int("random-seeds", 8, "random route-reflection seed instances");
  flags.add_int("hybrid-seeds", 2, "confederation-derived hybrid seed instances");
  flags.add_bool("med-induced", false,
                 "only keep hits whose oscillation vanishes when MEDs are ignored");
  flags.add_bool("modified-converges", true,
                 "require the paper's modified protocol to converge on every hit");
  flags.add_bool("minimize", true, "delta-debug every hit to a 1-minimal config");
  flags.add_string("corpus-out", "", "directory to write corpus entries into");
  flags.add_string("checkpoint", "",
                   "write the search frontier to this file after every round "
                   "(ibgp-explore-ckpt-v1)");
  flags.add_bool("resume", false,
                 "continue a killed search from --checkpoint instead of starting over");
  flags.add_int("limit", 0, "max corpus entries to write (0 = all hits)");
  flags.add_int("clusters", 4, "random seed instances: clusters");
  flags.add_int("exits", 5, "random seed instances: exit paths");
  flags.add_int("max-med", 2, "random seed instances: maximum MED");
  flags.add_int("jobs", 0, "worker threads (0 = one per hardware thread)");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", std::string(flags.error()).c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  explore::ExploreConfig config;
  const std::string_view protocol = flags.get_string("protocol");
  if (protocol == "standard") {
    config.attack = core::ProtocolKind::kStandard;
  } else if (protocol == "walton") {
    config.attack = core::ProtocolKind::kWalton;
  } else if (protocol == "modified") {
    config.attack = core::ProtocolKind::kModified;
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", std::string(protocol).c_str());
    return 2;
  }
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.budget = static_cast<std::size_t>(flags.get_int("budget"));
  config.batch = static_cast<std::size_t>(flags.get_int("batch"));
  config.max_steps = static_cast<std::size_t>(flags.get_int("max-steps"));
  config.max_deliveries = static_cast<std::size_t>(flags.get_int("max-deliveries"));
  config.frontier_cap = static_cast<std::size_t>(flags.get_int("frontier"));
  config.random_seeds = static_cast<std::size_t>(flags.get_int("random-seeds"));
  config.hybrid_seeds = static_cast<std::size_t>(flags.get_int("hybrid-seeds"));
  config.require_med_induced = flags.get_bool("med-induced");
  config.require_modified_converges = flags.get_bool("modified-converges");
  config.minimize = flags.get_bool("minimize");
  config.checkpoint_path = std::string(flags.get_string("checkpoint"));
  config.resume = flags.get_bool("resume");
  if (config.resume && config.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint\n");
    return 2;
  }
  config.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  config.random_config.clusters = static_cast<std::size_t>(flags.get_int("clusters"));
  config.random_config.exits = static_cast<std::size_t>(flags.get_int("exits"));
  config.random_config.max_med = static_cast<Med>(flags.get_int("max-med"));
  config.random_config.max_clients = 1;

  std::printf("exploring: attack=%s budget=%zu seed=%llu med-induced=%s\n",
              core::protocol_name(config.attack), config.budget,
              static_cast<unsigned long long>(config.seed),
              config.require_med_induced ? "yes" : "no");

  const auto result = explore::explore(config);
  std::printf(
      "evaluated=%zu invalid=%zu truncated=%zu new-coverage=%zu raw-hits=%zu "
      "unique-hits=%zu theorem-violations=%zu\n",
      result.stats.evaluated, result.stats.invalid, result.stats.truncated_runs,
      result.stats.new_coverage, result.stats.hits_raw, result.hits.size(),
      result.stats.theorem_violations);
  if (result.stats.theorem_violations != 0) {
    std::printf("!! the modified protocol oscillated on %zu mutants — this would\n"
                "!! falsify the paper's Theorem 2; inspect immediately.\n",
                result.stats.theorem_violations);
  }

  const std::string corpus_out(flags.get_string("corpus-out"));
  const std::size_t limit = static_cast<std::size_t>(flags.get_int("limit"));
  std::size_t written = 0;
  for (const auto& hit : result.hits) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(hit.fingerprint));
    const std::string name = std::string("ce-") + hex;

    auto spec = hit.spec;
    spec.name = name;
    const auto inst = explore::try_build(spec);
    if (!inst) continue;

    std::printf("  hit %s: nodes=%zu exits=%zu maps=%zu%s%s rr=%s sync=%s\n", name.c_str(),
                spec.nodes.size(), spec.exits.size(), spec.route_maps.size(),
                hit.med_induced ? " [med-induced]" : "", hit.hybrid ? " [hybrid]" : "",
                engine::run_status_name(hit.signature.round_robin),
                engine::run_status_name(hit.signature.synchronous));

    if (corpus_out.empty()) continue;
    if (limit != 0 && written >= limit) continue;
    const auto entry = explore::make_corpus_entry(*inst, config.max_steps,
                                                  hit.med_induced, hit.hybrid);
    std::filesystem::create_directories(corpus_out);
    const std::string path = corpus_out + "/" + name + ".topo";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << explore::write_corpus_entry(entry);
    std::printf("    wrote %s\n", path.c_str());
    ++written;
  }
  if (!corpus_out.empty()) std::printf("corpus entries written: %zu\n", written);
  return 0;
}
