// trace_inspect — offline analysis of an ibgp-trace-v1/v2 JSONL stream.
//
//   trace_inspect TRACE.jsonl [--top N] [--blame]
//
// Reads a trace produced with --trace (bench binaries) or TraceSink
// directly and prints:
//   - the event-type census (how many records of each "ev"),
//   - the per-rule decision histogram (which selection rule decided each
//     Choose_best — the paper's Figure 1/2 diagnosis reads straight off
//     this: vanilla I-BGP oscillations decide on igp-cost / bgp-id at the
//     reflectors, the modified protocol's extra state moves decisions to
//     the sole-candidate rule),
//   - per-node oscillation cycles: the smallest repeating period in each
//     node's best-route flip sequence (period >= 2 over at least two full
//     repetitions = the node is orbiting a cycle, the paper's Section 3
//     phenomenon),
//   - top talkers (UPDATE senders, voided deliveries included), and
//   - the fault census by kind.
//
// With --blame (needs a v2 trace carrying lid/pid causality): for every
// oscillating node, walk the causal parent links back from its most recent
// flip and print the minimal sustaining cycle of (node, session, rule)
// hops — *which* update, relayed over *which* session, decided by *which*
// rule keeps the orbit alive.  On Figure 3 this names the B:r3<->r4 and
// C:r5<->r6 orbits directly.
//
// Node and path ids are labeled through the trace's own "node"/"path"
// directory records (emitted by the engine preamble), so the instance
// definition is not needed to read a trace.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/trace.hpp"

namespace {

using ibgp::obs::TraceRecord;

std::string label(const std::map<std::int64_t, std::string>& names, std::int64_t id) {
  const auto it = names.find(id);
  if (it != names.end()) return it->second;
  if (id < 0) return "(none)";
  return "#" + std::to_string(id);
}

/// Smallest period p (1 <= p <= len/2) such that the last 2*p entries of
/// `seq` repeat with period p; 0 when the tail is aperiodic.  Two full
/// repetitions is the bar for calling something a cycle rather than a
/// coincidence.
std::size_t smallest_tail_period(const std::vector<std::int64_t>& seq) {
  for (std::size_t p = 1; 2 * p <= seq.size(); ++p) {
    bool periodic = true;
    for (std::size_t i = seq.size() - p; i < seq.size(); ++i) {
      if (seq[i] != seq[i - p]) {
        periodic = false;
        break;
      }
    }
    if (periodic) return p;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t top = 10;
  bool blame = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--blame") == 0) {
      blame = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s TRACE.jsonl [--top N] [--blame]\n", argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s TRACE.jsonl [--top N] [--blame]\n", argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_inspect: cannot open %s\n", path);
    return 1;
  }

  std::map<std::string, std::uint64_t> event_census;
  std::map<std::string, std::uint64_t> rule_census;
  std::map<std::string, std::uint64_t> fault_census;
  std::map<std::int64_t, std::uint64_t> update_senders;
  std::map<std::int64_t, std::string> node_names;
  std::map<std::int64_t, std::string> path_names;
  // Per-node best-route sequence, appended only on flips (decision records
  // with "flip": true), so a repeating tail is a genuine orbit.
  std::map<std::int64_t, std::vector<std::int64_t>> flip_sequences;

  ibgp::obs::CausalGraph graph;
  std::uint64_t lines = 0, bad = 0;
  bool saw_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    if (blame) graph.add_line(line);
    const auto record = ibgp::obs::parse_trace_line(line);
    if (!record) {
      ++bad;
      continue;
    }
    if (const auto* schema = record->find("schema"); schema != nullptr) {
      saw_header = true;
      continue;  // header line carries no event
    }
    const std::string ev(record->str("ev"));
    ++event_census[ev];
    if (ev == "node") {
      node_names[record->num("id")] = std::string(record->str("name"));
    } else if (ev == "path") {
      path_names[record->num("id")] = std::string(record->str("name"));
    } else if (ev == "decision") {
      ++rule_census[std::string(record->str("rule"))];
      const auto* flip = record->find("flip");
      if (flip != nullptr && flip->kind == TraceRecord::Field::Kind::kBool &&
          flip->bool_value) {
        flip_sequences[record->num("node")].push_back(record->num("best", -1));
      }
    } else if (ev == "update" || ev == "update-voided") {
      ++update_senders[record->num("from")];
    } else if (ev == "fault") {
      ++fault_census[std::string(record->str("kind"))];
    }
  }

  std::printf("%s: %llu lines (%llu unparseable)%s\n", path,
              static_cast<unsigned long long>(lines),
              static_cast<unsigned long long>(bad),
              saw_header ? "" : " [warning: no ibgp-trace header]");

  std::printf("\nevent census:\n");
  for (const auto& [ev, count] : event_census) {
    std::printf("  %-16s %llu\n", ev.c_str(), static_cast<unsigned long long>(count));
  }

  if (!rule_census.empty()) {
    std::uint64_t total = 0;
    for (const auto& [rule, count] : rule_census) total += count;
    std::printf("\ndecision histogram (%llu decisions):\n",
                static_cast<unsigned long long>(total));
    for (const auto& [rule, count] : rule_census) {
      std::printf("  %-18s %8llu  (%.1f%%)\n", rule.c_str(),
                  static_cast<unsigned long long>(count),
                  100.0 * static_cast<double>(count) / static_cast<double>(total));
    }
  }

  // Oscillation cycles: nodes whose flip tail repeats with period >= 2.
  bool any_cycle = false;
  for (const auto& [node, seq] : flip_sequences) {
    if (seq.size() < 4) continue;
    const std::size_t period = smallest_tail_period(seq);
    if (period < 2) continue;
    if (!any_cycle) {
      std::printf("\noscillation cycles (smallest repeating period of each "
                  "node's best-route flips):\n");
      any_cycle = true;
    }
    std::printf("  %-8s period=%zu over %zu flips, cycle:", label(node_names, node).c_str(),
                period, seq.size());
    for (std::size_t i = seq.size() - period; i < seq.size(); ++i) {
      std::printf(" %s", label(path_names, seq[i]).c_str());
    }
    std::printf("\n");
  }
  if (!flip_sequences.empty() && !any_cycle) {
    std::printf("\nno repeating best-route cycles detected\n");
  }

  if (!update_senders.empty()) {
    std::vector<std::pair<std::int64_t, std::uint64_t>> talkers(update_senders.begin(),
                                                                update_senders.end());
    std::sort(talkers.begin(), talkers.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    std::printf("\ntop talkers (UPDATE senders):\n");
    for (std::size_t i = 0; i < talkers.size() && i < top; ++i) {
      std::printf("  %-8s %llu updates\n", label(node_names, talkers[i].first).c_str(),
                  static_cast<unsigned long long>(talkers[i].second));
    }
  }

  if (!fault_census.empty()) {
    std::printf("\nfault census:\n");
    for (const auto& [kind, count] : fault_census) {
      std::printf("  %-16s %llu\n", kind.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  if (blame) {
    const auto oscillating = graph.oscillating_nodes();
    if (graph.update_count() == 0) {
      std::printf("\nblame: trace carries no lid/pid causality "
                  "(ibgp-trace-v1? regenerate with a v2 writer)\n");
    } else if (oscillating.empty()) {
      std::printf("\nblame: no oscillating nodes\n");
    } else {
      std::printf("\nblame chains (minimal sustaining causal cycle per "
                  "oscillating node):\n");
      for (const std::int64_t node : oscillating) {
        const auto chain = graph.blame(node);
        if (!chain) {
          std::printf("  %-8s no periodic causal cycle within the walk window\n",
                      graph.node_name(node).c_str());
          continue;
        }
        std::printf("  %-8s period=%zu (over %zu causal hops):\n",
                    graph.node_name(node).c_str(), chain->period,
                    chain->chain_length);
        for (const auto& hop : chain->cycle) {
          std::printf("    %s\n", graph.format_hop(hop).c_str());
        }
      }
    }
  }
  return 0;
}
