# Empty compiler generated dependencies file for test_mrai.
# This may be replaced when dependencies are built.
