file(REMOVE_RECURSE
  "CMakeFiles/test_mrai.dir/test_mrai.cpp.o"
  "CMakeFiles/test_mrai.dir/test_mrai.cpp.o.d"
  "test_mrai"
  "test_mrai.pdb"
  "test_mrai[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
