file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_tables.dir/test_bgp_tables.cpp.o"
  "CMakeFiles/test_bgp_tables.dir/test_bgp_tables.cpp.o.d"
  "test_bgp_tables"
  "test_bgp_tables.pdb"
  "test_bgp_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
