# Empty dependencies file for test_bgp_tables.
# This may be replaced when dependencies are built.
