# Empty dependencies file for test_confed.
# This may be replaced when dependencies are built.
