file(REMOVE_RECURSE
  "CMakeFiles/test_confed.dir/test_confed.cpp.o"
  "CMakeFiles/test_confed.dir/test_confed.cpp.o.d"
  "test_confed"
  "test_confed.pdb"
  "test_confed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_confed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
