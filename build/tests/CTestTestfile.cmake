# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_selection[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sync_engine[1]_include.cmake")
include("/root/repo/build/tests/test_event_engine[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dsl[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_bgp_tables[1]_include.cmake")
include("/root/repo/build/tests/test_confed[1]_include.cmake")
include("/root/repo/build/tests/test_mrai[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
