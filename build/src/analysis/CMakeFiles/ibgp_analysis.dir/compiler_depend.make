# Empty compiler generated dependencies file for ibgp_analysis.
# This may be replaced when dependencies are built.
