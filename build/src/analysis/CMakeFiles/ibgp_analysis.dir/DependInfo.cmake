
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/determinism.cpp" "src/analysis/CMakeFiles/ibgp_analysis.dir/determinism.cpp.o" "gcc" "src/analysis/CMakeFiles/ibgp_analysis.dir/determinism.cpp.o.d"
  "/root/repo/src/analysis/finder.cpp" "src/analysis/CMakeFiles/ibgp_analysis.dir/finder.cpp.o" "gcc" "src/analysis/CMakeFiles/ibgp_analysis.dir/finder.cpp.o.d"
  "/root/repo/src/analysis/forwarding.cpp" "src/analysis/CMakeFiles/ibgp_analysis.dir/forwarding.cpp.o" "gcc" "src/analysis/CMakeFiles/ibgp_analysis.dir/forwarding.cpp.o.d"
  "/root/repo/src/analysis/invariants.cpp" "src/analysis/CMakeFiles/ibgp_analysis.dir/invariants.cpp.o" "gcc" "src/analysis/CMakeFiles/ibgp_analysis.dir/invariants.cpp.o.d"
  "/root/repo/src/analysis/stable_search.cpp" "src/analysis/CMakeFiles/ibgp_analysis.dir/stable_search.cpp.o" "gcc" "src/analysis/CMakeFiles/ibgp_analysis.dir/stable_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ibgp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/ibgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ibgp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ibgp_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
