file(REMOVE_RECURSE
  "libibgp_analysis.a"
)
