file(REMOVE_RECURSE
  "CMakeFiles/ibgp_analysis.dir/determinism.cpp.o"
  "CMakeFiles/ibgp_analysis.dir/determinism.cpp.o.d"
  "CMakeFiles/ibgp_analysis.dir/finder.cpp.o"
  "CMakeFiles/ibgp_analysis.dir/finder.cpp.o.d"
  "CMakeFiles/ibgp_analysis.dir/forwarding.cpp.o"
  "CMakeFiles/ibgp_analysis.dir/forwarding.cpp.o.d"
  "CMakeFiles/ibgp_analysis.dir/invariants.cpp.o"
  "CMakeFiles/ibgp_analysis.dir/invariants.cpp.o.d"
  "CMakeFiles/ibgp_analysis.dir/stable_search.cpp.o"
  "CMakeFiles/ibgp_analysis.dir/stable_search.cpp.o.d"
  "libibgp_analysis.a"
  "libibgp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
