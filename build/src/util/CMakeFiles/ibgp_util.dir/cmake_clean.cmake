file(REMOVE_RECURSE
  "CMakeFiles/ibgp_util.dir/flags.cpp.o"
  "CMakeFiles/ibgp_util.dir/flags.cpp.o.d"
  "CMakeFiles/ibgp_util.dir/hash.cpp.o"
  "CMakeFiles/ibgp_util.dir/hash.cpp.o.d"
  "CMakeFiles/ibgp_util.dir/log.cpp.o"
  "CMakeFiles/ibgp_util.dir/log.cpp.o.d"
  "CMakeFiles/ibgp_util.dir/rng.cpp.o"
  "CMakeFiles/ibgp_util.dir/rng.cpp.o.d"
  "CMakeFiles/ibgp_util.dir/strings.cpp.o"
  "CMakeFiles/ibgp_util.dir/strings.cpp.o.d"
  "libibgp_util.a"
  "libibgp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
