# Empty compiler generated dependencies file for ibgp_util.
# This may be replaced when dependencies are built.
