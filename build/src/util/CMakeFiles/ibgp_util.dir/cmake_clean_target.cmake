file(REMOVE_RECURSE
  "libibgp_util.a"
)
