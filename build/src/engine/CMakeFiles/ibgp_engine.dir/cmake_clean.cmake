file(REMOVE_RECURSE
  "CMakeFiles/ibgp_engine.dir/activation.cpp.o"
  "CMakeFiles/ibgp_engine.dir/activation.cpp.o.d"
  "CMakeFiles/ibgp_engine.dir/adaptive.cpp.o"
  "CMakeFiles/ibgp_engine.dir/adaptive.cpp.o.d"
  "CMakeFiles/ibgp_engine.dir/event_engine.cpp.o"
  "CMakeFiles/ibgp_engine.dir/event_engine.cpp.o.d"
  "CMakeFiles/ibgp_engine.dir/oscillation.cpp.o"
  "CMakeFiles/ibgp_engine.dir/oscillation.cpp.o.d"
  "CMakeFiles/ibgp_engine.dir/sync_engine.cpp.o"
  "CMakeFiles/ibgp_engine.dir/sync_engine.cpp.o.d"
  "libibgp_engine.a"
  "libibgp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
