# Empty dependencies file for ibgp_engine.
# This may be replaced when dependencies are built.
