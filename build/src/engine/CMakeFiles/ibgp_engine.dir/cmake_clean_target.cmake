file(REMOVE_RECURSE
  "libibgp_engine.a"
)
