
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/activation.cpp" "src/engine/CMakeFiles/ibgp_engine.dir/activation.cpp.o" "gcc" "src/engine/CMakeFiles/ibgp_engine.dir/activation.cpp.o.d"
  "/root/repo/src/engine/adaptive.cpp" "src/engine/CMakeFiles/ibgp_engine.dir/adaptive.cpp.o" "gcc" "src/engine/CMakeFiles/ibgp_engine.dir/adaptive.cpp.o.d"
  "/root/repo/src/engine/event_engine.cpp" "src/engine/CMakeFiles/ibgp_engine.dir/event_engine.cpp.o" "gcc" "src/engine/CMakeFiles/ibgp_engine.dir/event_engine.cpp.o.d"
  "/root/repo/src/engine/oscillation.cpp" "src/engine/CMakeFiles/ibgp_engine.dir/oscillation.cpp.o" "gcc" "src/engine/CMakeFiles/ibgp_engine.dir/oscillation.cpp.o.d"
  "/root/repo/src/engine/sync_engine.cpp" "src/engine/CMakeFiles/ibgp_engine.dir/sync_engine.cpp.o" "gcc" "src/engine/CMakeFiles/ibgp_engine.dir/sync_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ibgp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/ibgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibgp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
