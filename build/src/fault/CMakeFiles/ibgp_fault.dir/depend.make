# Empty dependencies file for ibgp_fault.
# This may be replaced when dependencies are built.
