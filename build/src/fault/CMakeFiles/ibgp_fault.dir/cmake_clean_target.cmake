file(REMOVE_RECURSE
  "libibgp_fault.a"
)
