file(REMOVE_RECURSE
  "CMakeFiles/ibgp_fault.dir/campaign.cpp.o"
  "CMakeFiles/ibgp_fault.dir/campaign.cpp.o.d"
  "CMakeFiles/ibgp_fault.dir/script.cpp.o"
  "CMakeFiles/ibgp_fault.dir/script.cpp.o.d"
  "libibgp_fault.a"
  "libibgp_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
