# Empty compiler generated dependencies file for ibgp_netsim.
# This may be replaced when dependencies are built.
