file(REMOVE_RECURSE
  "libibgp_netsim.a"
)
