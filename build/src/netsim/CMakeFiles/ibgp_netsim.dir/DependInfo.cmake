
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/cluster_layout.cpp" "src/netsim/CMakeFiles/ibgp_netsim.dir/cluster_layout.cpp.o" "gcc" "src/netsim/CMakeFiles/ibgp_netsim.dir/cluster_layout.cpp.o.d"
  "/root/repo/src/netsim/physical_graph.cpp" "src/netsim/CMakeFiles/ibgp_netsim.dir/physical_graph.cpp.o" "gcc" "src/netsim/CMakeFiles/ibgp_netsim.dir/physical_graph.cpp.o.d"
  "/root/repo/src/netsim/session_graph.cpp" "src/netsim/CMakeFiles/ibgp_netsim.dir/session_graph.cpp.o" "gcc" "src/netsim/CMakeFiles/ibgp_netsim.dir/session_graph.cpp.o.d"
  "/root/repo/src/netsim/shortest_paths.cpp" "src/netsim/CMakeFiles/ibgp_netsim.dir/shortest_paths.cpp.o" "gcc" "src/netsim/CMakeFiles/ibgp_netsim.dir/shortest_paths.cpp.o.d"
  "/root/repo/src/netsim/validate.cpp" "src/netsim/CMakeFiles/ibgp_netsim.dir/validate.cpp.o" "gcc" "src/netsim/CMakeFiles/ibgp_netsim.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
