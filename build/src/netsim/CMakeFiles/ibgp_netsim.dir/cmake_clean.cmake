file(REMOVE_RECURSE
  "CMakeFiles/ibgp_netsim.dir/cluster_layout.cpp.o"
  "CMakeFiles/ibgp_netsim.dir/cluster_layout.cpp.o.d"
  "CMakeFiles/ibgp_netsim.dir/physical_graph.cpp.o"
  "CMakeFiles/ibgp_netsim.dir/physical_graph.cpp.o.d"
  "CMakeFiles/ibgp_netsim.dir/session_graph.cpp.o"
  "CMakeFiles/ibgp_netsim.dir/session_graph.cpp.o.d"
  "CMakeFiles/ibgp_netsim.dir/shortest_paths.cpp.o"
  "CMakeFiles/ibgp_netsim.dir/shortest_paths.cpp.o.d"
  "CMakeFiles/ibgp_netsim.dir/validate.cpp.o"
  "CMakeFiles/ibgp_netsim.dir/validate.cpp.o.d"
  "libibgp_netsim.a"
  "libibgp_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
