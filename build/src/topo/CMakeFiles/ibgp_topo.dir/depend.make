# Empty dependencies file for ibgp_topo.
# This may be replaced when dependencies are built.
