file(REMOVE_RECURSE
  "CMakeFiles/ibgp_topo.dir/builder.cpp.o"
  "CMakeFiles/ibgp_topo.dir/builder.cpp.o.d"
  "CMakeFiles/ibgp_topo.dir/dsl.cpp.o"
  "CMakeFiles/ibgp_topo.dir/dsl.cpp.o.d"
  "CMakeFiles/ibgp_topo.dir/figures.cpp.o"
  "CMakeFiles/ibgp_topo.dir/figures.cpp.o.d"
  "CMakeFiles/ibgp_topo.dir/random.cpp.o"
  "CMakeFiles/ibgp_topo.dir/random.cpp.o.d"
  "libibgp_topo.a"
  "libibgp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
