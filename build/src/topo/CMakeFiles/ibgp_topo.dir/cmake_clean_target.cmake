file(REMOVE_RECURSE
  "libibgp_topo.a"
)
