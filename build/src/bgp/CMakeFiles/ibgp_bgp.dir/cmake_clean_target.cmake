file(REMOVE_RECURSE
  "libibgp_bgp.a"
)
