
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/exit_path.cpp" "src/bgp/CMakeFiles/ibgp_bgp.dir/exit_path.cpp.o" "gcc" "src/bgp/CMakeFiles/ibgp_bgp.dir/exit_path.cpp.o.d"
  "/root/repo/src/bgp/exit_table.cpp" "src/bgp/CMakeFiles/ibgp_bgp.dir/exit_table.cpp.o" "gcc" "src/bgp/CMakeFiles/ibgp_bgp.dir/exit_table.cpp.o.d"
  "/root/repo/src/bgp/selection.cpp" "src/bgp/CMakeFiles/ibgp_bgp.dir/selection.cpp.o" "gcc" "src/bgp/CMakeFiles/ibgp_bgp.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ibgp_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
