# Empty dependencies file for ibgp_bgp.
# This may be replaced when dependencies are built.
