file(REMOVE_RECURSE
  "CMakeFiles/ibgp_bgp.dir/exit_path.cpp.o"
  "CMakeFiles/ibgp_bgp.dir/exit_path.cpp.o.d"
  "CMakeFiles/ibgp_bgp.dir/exit_table.cpp.o"
  "CMakeFiles/ibgp_bgp.dir/exit_table.cpp.o.d"
  "CMakeFiles/ibgp_bgp.dir/selection.cpp.o"
  "CMakeFiles/ibgp_bgp.dir/selection.cpp.o.d"
  "libibgp_bgp.a"
  "libibgp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
