# Empty compiler generated dependencies file for ibgp_confed.
# This may be replaced when dependencies are built.
