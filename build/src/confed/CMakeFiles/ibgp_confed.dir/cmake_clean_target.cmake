file(REMOVE_RECURSE
  "libibgp_confed.a"
)
