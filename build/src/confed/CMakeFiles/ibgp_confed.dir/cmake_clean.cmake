file(REMOVE_RECURSE
  "CMakeFiles/ibgp_confed.dir/engine.cpp.o"
  "CMakeFiles/ibgp_confed.dir/engine.cpp.o.d"
  "CMakeFiles/ibgp_confed.dir/layout.cpp.o"
  "CMakeFiles/ibgp_confed.dir/layout.cpp.o.d"
  "libibgp_confed.a"
  "libibgp_confed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_confed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
