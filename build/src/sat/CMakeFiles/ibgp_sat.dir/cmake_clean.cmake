file(REMOVE_RECURSE
  "CMakeFiles/ibgp_sat.dir/cnf.cpp.o"
  "CMakeFiles/ibgp_sat.dir/cnf.cpp.o.d"
  "CMakeFiles/ibgp_sat.dir/dpll.cpp.o"
  "CMakeFiles/ibgp_sat.dir/dpll.cpp.o.d"
  "CMakeFiles/ibgp_sat.dir/reduction.cpp.o"
  "CMakeFiles/ibgp_sat.dir/reduction.cpp.o.d"
  "libibgp_sat.a"
  "libibgp_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
