# Empty dependencies file for ibgp_sat.
# This may be replaced when dependencies are built.
