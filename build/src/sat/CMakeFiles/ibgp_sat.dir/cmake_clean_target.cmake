file(REMOVE_RECURSE
  "libibgp_sat.a"
)
