file(REMOVE_RECURSE
  "libibgp_core.a"
)
