
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fixed_point.cpp" "src/core/CMakeFiles/ibgp_core.dir/fixed_point.cpp.o" "gcc" "src/core/CMakeFiles/ibgp_core.dir/fixed_point.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/ibgp_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/ibgp_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/levels.cpp" "src/core/CMakeFiles/ibgp_core.dir/levels.cpp.o" "gcc" "src/core/CMakeFiles/ibgp_core.dir/levels.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/ibgp_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/ibgp_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/core/CMakeFiles/ibgp_core.dir/transfer.cpp.o" "gcc" "src/core/CMakeFiles/ibgp_core.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ibgp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/ibgp_bgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
