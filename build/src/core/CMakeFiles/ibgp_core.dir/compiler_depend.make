# Empty compiler generated dependencies file for ibgp_core.
# This may be replaced when dependencies are built.
