file(REMOVE_RECURSE
  "CMakeFiles/ibgp_core.dir/fixed_point.cpp.o"
  "CMakeFiles/ibgp_core.dir/fixed_point.cpp.o.d"
  "CMakeFiles/ibgp_core.dir/instance.cpp.o"
  "CMakeFiles/ibgp_core.dir/instance.cpp.o.d"
  "CMakeFiles/ibgp_core.dir/levels.cpp.o"
  "CMakeFiles/ibgp_core.dir/levels.cpp.o.d"
  "CMakeFiles/ibgp_core.dir/policy.cpp.o"
  "CMakeFiles/ibgp_core.dir/policy.cpp.o.d"
  "CMakeFiles/ibgp_core.dir/transfer.cpp.o"
  "CMakeFiles/ibgp_core.dir/transfer.cpp.o.d"
  "libibgp_core.a"
  "libibgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
