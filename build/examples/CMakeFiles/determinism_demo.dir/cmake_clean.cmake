file(REMOVE_RECURSE
  "CMakeFiles/determinism_demo.dir/determinism_demo.cpp.o"
  "CMakeFiles/determinism_demo.dir/determinism_demo.cpp.o.d"
  "determinism_demo"
  "determinism_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
