file(REMOVE_RECURSE
  "CMakeFiles/event_trace.dir/event_trace.cpp.o"
  "CMakeFiles/event_trace.dir/event_trace.cpp.o.d"
  "event_trace"
  "event_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
