file(REMOVE_RECURSE
  "CMakeFiles/counterexample_finder.dir/counterexample_finder.cpp.o"
  "CMakeFiles/counterexample_finder.dir/counterexample_finder.cpp.o.d"
  "counterexample_finder"
  "counterexample_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterexample_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
