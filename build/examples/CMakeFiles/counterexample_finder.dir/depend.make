# Empty dependencies file for counterexample_finder.
# This may be replaced when dependencies are built.
