# Empty dependencies file for oscillation_explorer.
# This may be replaced when dependencies are built.
