file(REMOVE_RECURSE
  "CMakeFiles/oscillation_explorer.dir/oscillation_explorer.cpp.o"
  "CMakeFiles/oscillation_explorer.dir/oscillation_explorer.cpp.o.d"
  "oscillation_explorer"
  "oscillation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oscillation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
