file(REMOVE_RECURSE
  "CMakeFiles/bench_oscillation_rates.dir/bench_oscillation_rates.cpp.o"
  "CMakeFiles/bench_oscillation_rates.dir/bench_oscillation_rates.cpp.o.d"
  "bench_oscillation_rates"
  "bench_oscillation_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oscillation_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
