# Empty dependencies file for bench_oscillation_rates.
# This may be replaced when dependencies are built.
