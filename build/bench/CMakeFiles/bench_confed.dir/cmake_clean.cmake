file(REMOVE_RECURSE
  "CMakeFiles/bench_confed.dir/bench_confed.cpp.o"
  "CMakeFiles/bench_confed.dir/bench_confed.cpp.o.d"
  "bench_confed"
  "bench_confed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
