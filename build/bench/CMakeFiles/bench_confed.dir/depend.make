# Empty dependencies file for bench_confed.
# This may be replaced when dependencies are built.
