file(REMOVE_RECURSE
  "CMakeFiles/bench_mrai.dir/bench_mrai.cpp.o"
  "CMakeFiles/bench_mrai.dir/bench_mrai.cpp.o.d"
  "bench_mrai"
  "bench_mrai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
