# Empty dependencies file for bench_mrai.
# This may be replaced when dependencies are built.
