
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_mrai.cpp" "bench/CMakeFiles/bench_mrai.dir/bench_mrai.cpp.o" "gcc" "bench/CMakeFiles/bench_mrai.dir/bench_mrai.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sat/CMakeFiles/ibgp_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ibgp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ibgp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ibgp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ibgp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/ibgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ibgp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
