file(REMOVE_RECURSE
  "CMakeFiles/bench_npc.dir/bench_npc.cpp.o"
  "CMakeFiles/bench_npc.dir/bench_npc.cpp.o.d"
  "bench_npc"
  "bench_npc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_npc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
