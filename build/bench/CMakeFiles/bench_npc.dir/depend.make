# Empty dependencies file for bench_npc.
# This may be replaced when dependencies are built.
