#pragma once
// Exit paths: the paper's abstraction of an E-BGP route injected into AS0
// (Section 4, "Routes and Exit Paths").
//
// An exit path carries the BGP attributes relevant to the selection
// procedure — LOCAL-PREF, AS-path length, the neighboring AS it goes through
// (nextAS), its MED value — plus the node of AS0 at which it exits
// (exitPoint) and the cost of the final external link (exitCost).  The
// NEXT-HOP attribute is modeled by the identity of the E-BGP peer
// (`ebgp_peer`), which also serves as learnedFrom for E-BGP-learned routes.

#include <string>
#include <vector>

#include "util/types.hpp"

namespace ibgp::bgp {

struct ExitPath {
  /// Dense identifier assigned by the ExitTable.
  PathId id = kNoPath;

  /// Human-readable label ("r1", "r2", ...), used in traces and reports.
  std::string name;

  /// The router of AS0 that learned this route via E-BGP.
  NodeId exit_point = kNoNode;

  /// nextAS(p): the neighboring AS the route goes through.  MED values are
  /// only compared among routes with equal nextAS (selection rule 3).
  AsId next_as = 0;

  /// LOCAL-PREF; higher preferred (selection rule 1).  The paper assumes
  /// LOCAL-PREF is used as the degree of preference (end of Section 2).
  LocalPref local_pref = 100;

  /// Length of the AS-PATH attribute; lower preferred (selection rule 2).
  std::uint32_t as_path_length = 1;

  /// Multi-Exit-Discriminator; lower preferred within the same nextAS.
  Med med = 0;

  /// Cost of the exit link from exit_point to the E-BGP NEXT-HOP.
  /// "usually 0 in practice, but can be set to a value > 0" (Section 4).
  Cost exit_cost = 0;

  /// BGP identifier of the E-BGP peer that announced the route: the
  /// learnedFrom value at the exit point and the final-tie-break input there.
  BgpId ebgp_peer = 0;

  /// Community tags as a bitmask (tag i = bit i, up to 32 tags).  The
  /// selection rules never read communities directly; they exist to be
  /// matched by ingress route-maps (bgp/route_map.hpp), which is exactly
  /// how operators wire community-driven LOCAL-PREF policies in practice.
  std::uint32_t communities = 0;

  [[nodiscard]] bool has_community(std::uint32_t tag) const {
    return tag < 32 && (communities & (1u << tag)) != 0;
  }

  friend bool operator==(const ExitPath&, const ExitPath&) = default;
};

/// One-line rendering ("r3[exit=5 AS2 lp=100 len=1 med=0 ec=0]").
std::string to_string(const ExitPath& path);

}  // namespace ibgp::bgp
