#pragma once
// The BGP route-selection procedure of Section 2 (procedure Choose_best,
// Fig 6) and its truncated form Choose^B (Fig 10) used by the paper's
// modified protocol.
//
// Rules, in the paper's default order:
//   1. highest LOCAL-PREF (degree of preference),
//   2. shortest AS-PATH length,
//   3. per-neighbor-AS MED elimination: within each nextAS group keep only
//      the minimum-MED routes (routes through different ASes are *not*
//      compared — the root cause of the oscillations),
//   4. if any E-BGP routes remain, keep only E-BGP routes and among them the
//      minimum (IGP-)cost ones; otherwise
//   5. keep the minimum-cost I-BGP routes,
//   6. the route learned from the peer with the minimum BGP identifier wins.
//
// Footnote 4 of the paper notes that RFC 1771 / Halabi order rules 4 and 5
// differently: first minimum IGP cost over *all* routes, then prefer E-BGP.
// Figure 1(b) converges under the default ordering and diverges under the
// RFC ordering, so both are implemented (RuleOrder).
//
// Choose^B = rules 1-3 only; its output is a *set* of exit paths and — key
// to the convergence theorem — depends only on path attributes, never on the
// evaluating node, so every router computes the same survivor set from the
// same inputs (Lemma 7.4).

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/exit_table.hpp"
#include "netsim/shortest_paths.hpp"
#include "util/types.hpp"

namespace ibgp::bgp {

/// Relative order of the E-BGP-preference and IGP-cost rules (footnote 4).
enum class RuleOrder {
  /// Paper default (Cisco/Juniper/Halabi): E-BGP routes beat I-BGP routes
  /// outright, IGP cost compared within each class.
  kPreferEbgpFirst,
  /// RFC 1771 / Stewart ordering: minimum IGP cost first across all routes,
  /// E-BGP preferred only among cost-ties.  Diverges on Fig 1(b).
  kIgpCostFirst,
};

/// MED comparison regime (Section 1 lists these operational mitigations).
enum class MedMode {
  kPerNeighborAs,  ///< standard semantics: compare only within one nextAS
  kAlwaysCompare,  ///< Cisco "bgp always-compare-med": one global MED group
  kIgnore,         ///< MEDs disabled entirely
};

/// Per-neighbor-AS deviation from the global MED regime.  Real networks mix
/// regimes ("always-compare towards provider X, ignore MEDs from peer Y"),
/// and Godfrey's *BGP Stability is Precarious* predicts such mixes are
/// fertile ground for divergence — the adversarial explorer searches them.
struct MedOverride {
  AsId as = 0;
  MedMode mode = MedMode::kPerNeighborAs;

  friend bool operator==(const MedOverride&, const MedOverride&) = default;
};

struct SelectionPolicy {
  RuleOrder order = RuleOrder::kPreferEbgpFirst;
  MedMode med = MedMode::kPerNeighborAs;

  /// Per-AS exceptions to `med` (first matching entry wins).  Semantics of
  /// the resulting groups in rule 3: every AS whose effective mode is
  /// kAlwaysCompare shares ONE elimination group; kPerNeighborAs ASes each
  /// form their own group; kIgnore ASes are exempt from MED elimination
  /// entirely.  All of this is a pure function of path attributes, so
  /// Choose^B stays node-independent under any mix.
  std::vector<MedOverride> med_overrides;

  /// The effective MED regime for routes through `as`.
  [[nodiscard]] MedMode med_mode_for(AsId as) const {
    for (const MedOverride& entry : med_overrides) {
      if (entry.as == as) return entry.mode;
    }
    return med;
  }

  friend bool operator==(const SelectionPolicy&, const SelectionPolicy&) = default;
};

/// A route as evaluated at a particular node u: exit path + the IGP metric of
/// the internal part + who advertised it to u (Section 4's route(p, u) with
/// learnedFrom).
struct RouteView {
  PathId path = kNoPath;
  Cost metric = kInfCost;    ///< cost(SP(u, exitPoint)) + exitCost
  BgpId learned_from = 0;    ///< BGP id of the advertising peer
  bool is_ebgp = false;      ///< exitPoint == u (learned directly via E-BGP)

  friend bool operator==(const RouteView&, const RouteView&) = default;
};

/// Input candidate: a visible exit path and the peer it was learned from.
struct Candidate {
  PathId path = kNoPath;
  BgpId learned_from = 0;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// Rules 1-3 (Choose^B, Fig 10) over bare exit paths.  Node-independent.
/// Returns surviving ids in ascending order.  The policy's MED regime
/// (including per-AS overrides) governs rule 3; `order` is irrelevant here.
std::vector<PathId> choose_survivors(const ExitTable& table, std::span<const PathId> paths,
                                     const SelectionPolicy& policy);

/// Convenience overload for the classic single-regime case.
std::vector<PathId> choose_survivors(const ExitTable& table, std::span<const PathId> paths,
                                     MedMode med_mode = MedMode::kPerNeighborAs);

/// Materializes route(p, u): metric and E-BGP-ness of `path` as seen from
/// node u.  Returns nullopt when the exit point is IGP-unreachable from u.
std::optional<RouteView> make_route_view(const ExitTable& table,
                                         const netsim::ShortestPaths& igp, NodeId u,
                                         const Candidate& candidate);

/// The selection steps of Choose_best, for decision provenance.  Values are
/// stable indices into SelectionProvenance::eliminated and the observability
/// layer's per-rule counters.
enum class SelectionRule : std::uint8_t {
  kSoleCandidate = 0,  ///< one usable route; no rule had to discriminate
  kLocalPref = 1,      ///< rule 1: highest LOCAL-PREF
  kAsPathLength = 2,   ///< rule 2: shortest AS-PATH
  kMed = 3,            ///< rule 3: per-neighbor-AS MED elimination
  kEbgpOverIbgp = 4,   ///< rule 4: E-BGP routes beat I-BGP routes
  kIgpCost = 5,        ///< rule 5: minimum IGP metric
  kBgpIdTieBreak = 6,  ///< rule 6: lowest learnedFrom BGP identifier
  kPathIdTieBreak = 7, ///< beyond the paper: duplicate-announcement fallback
};
inline constexpr std::size_t kSelectionRuleCount = 8;

/// Stable kebab-case name ("local-pref", "igp-cost", ...), used for metric
/// names and ibgp-trace-v1 records.
std::string_view selection_rule_name(SelectionRule rule);

constexpr std::size_t rule_index(SelectionRule rule) {
  return static_cast<std::size_t>(rule);
}

/// Provenance of one Choose_best invocation: which rule eliminated whom and
/// which rule was decisive (the last one that actually narrowed the set —
/// kSoleCandidate when the usable set was already a singleton).
///
/// Invariant (tested): when a route was selected,
///   usable == 1 + sum(eliminated)  and  usable == candidates - unreachable.
struct SelectionProvenance {
  std::size_t candidates = 0;    ///< input routes offered to the procedure
  std::size_t unreachable = 0;   ///< dropped before rule 1 (exit unreachable)
  std::size_t usable = 0;        ///< survivors entering rule 1
  std::array<std::uint32_t, kSelectionRuleCount> eliminated{};
  SelectionRule decisive = SelectionRule::kSoleCandidate;
  bool selected = false;         ///< false: empty usable set, no decision

  [[nodiscard]] std::uint64_t eliminated_total() const {
    std::uint64_t total = 0;
    for (const std::uint32_t count : eliminated) total += count;
    return total;
  }
};

/// Full Choose_best (Fig 6) at node u over `candidates`.
/// Deterministic: ties after rule 6 (identical learnedFrom — possible only
/// for duplicate announcements) fall back to the lowest PathId.
/// Returns nullopt when no candidate is usable (empty set or unreachable).
/// When `provenance` is non-null it is overwritten with this invocation's
/// elimination record.
std::optional<RouteView> choose_best(const ExitTable& table, const netsim::ShortestPaths& igp,
                                     NodeId u, std::span<const Candidate> candidates,
                                     const SelectionPolicy& policy = {},
                                     SelectionProvenance* provenance = nullptr);

/// Step-by-step record of one selection, for explanation tools and tests.
struct SelectionExplanation {
  /// Survivor path ids after each rule, in application order; entry 0 is the
  /// usable input set.
  std::vector<std::pair<std::string, std::vector<PathId>>> stages;
  std::optional<RouteView> best;
};

/// Runs choose_best while recording every elimination stage.
SelectionExplanation explain_selection(const ExitTable& table,
                                       const netsim::ShortestPaths& igp, NodeId u,
                                       std::span<const Candidate> candidates,
                                       const SelectionPolicy& policy = {});

}  // namespace ibgp::bgp
