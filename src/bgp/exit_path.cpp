#include "bgp/exit_path.hpp"

#include <sstream>

namespace ibgp::bgp {

std::string to_string(const ExitPath& path) {
  std::ostringstream oss;
  oss << (path.name.empty() ? ("p" + std::to_string(path.id)) : path.name) << "[exit="
      << path.exit_point << " AS" << path.next_as << " lp=" << path.local_pref
      << " len=" << path.as_path_length << " med=" << path.med << " ec=" << path.exit_cost;
  if (path.communities != 0) {
    oss << " comm=";
    bool first = true;
    for (std::uint32_t tag = 0; tag < 32; ++tag) {
      if (!path.has_community(tag)) continue;
      if (!first) oss << ',';
      oss << tag;
      first = false;
    }
  }
  oss << "]";
  return oss.str();
}

}  // namespace ibgp::bgp
