#include "bgp/selection.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace ibgp::bgp {

namespace {

/// Keeps only the elements of `views` minimizing key(view).
template <typename Key>
void keep_min(std::vector<RouteView>& views, Key key) {
  if (views.empty()) return;
  auto best = key(views.front());
  for (const auto& view : views) best = std::min(best, key(view));
  std::erase_if(views, [&](const RouteView& view) { return key(view) != best; });
}

/// Keeps only the elements maximizing key(view).
template <typename Key>
void keep_max(std::vector<RouteView>& views, Key key) {
  if (views.empty()) return;
  auto best = key(views.front());
  for (const auto& view : views) best = std::max(best, key(view));
  std::erase_if(views, [&](const RouteView& view) { return key(view) != best; });
}

/// Rule 3: per-neighbor-AS MED elimination over route views.
void med_eliminate(const ExitTable& table, std::vector<RouteView>& views, MedMode mode) {
  if (mode == MedMode::kIgnore || views.empty()) return;
  // Minimum MED per group; kAlwaysCompare treats everything as one group.
  std::map<AsId, Med> group_min;
  for (const auto& view : views) {
    const ExitPath& path = table[view.path];
    const AsId group = (mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
    const auto it = group_min.find(group);
    if (it == group_min.end() || path.med < it->second) group_min[group] = path.med;
  }
  std::erase_if(views, [&](const RouteView& view) {
    const ExitPath& path = table[view.path];
    const AsId group = (mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
    return path.med != group_min.at(group);
  });
}

/// Rule 4: when any E-BGP route survives, I-BGP routes are out.
void keep_ebgp(std::vector<RouteView>& views) {
  const bool any_ebgp =
      std::any_of(views.begin(), views.end(), [](const RouteView& v) { return v.is_ebgp; });
  if (any_ebgp) {
    std::erase_if(views, [](const RouteView& v) { return !v.is_ebgp; });
  }
}

std::vector<PathId> ids_of(const std::vector<RouteView>& views) {
  std::vector<PathId> ids;
  ids.reserve(views.size());
  for (const auto& view : views) ids.push_back(view.path);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::vector<PathId> choose_survivors(const ExitTable& table, std::span<const PathId> paths,
                                     MedMode med_mode) {
  if (paths.empty()) return {};

  // Rule 1: highest LOCAL-PREF.
  LocalPref best_lp = 0;
  for (const PathId id : paths) best_lp = std::max(best_lp, table[id].local_pref);
  std::vector<PathId> alive;
  for (const PathId id : paths) {
    if (table[id].local_pref == best_lp) alive.push_back(id);
  }

  // Rule 2: shortest AS-path.
  std::uint32_t best_len = std::numeric_limits<std::uint32_t>::max();
  for (const PathId id : alive) best_len = std::min(best_len, table[id].as_path_length);
  std::erase_if(alive, [&](PathId id) { return table[id].as_path_length != best_len; });

  // Rule 3: per-neighbor-AS MED elimination.
  if (med_mode != MedMode::kIgnore) {
    std::map<AsId, Med> group_min;
    for (const PathId id : alive) {
      const ExitPath& path = table[id];
      const AsId group = (med_mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
      const auto it = group_min.find(group);
      if (it == group_min.end() || path.med < it->second) group_min[group] = path.med;
    }
    std::erase_if(alive, [&](PathId id) {
      const ExitPath& path = table[id];
      const AsId group = (med_mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
      return path.med != group_min.at(group);
    });
  }

  std::sort(alive.begin(), alive.end());
  alive.erase(std::unique(alive.begin(), alive.end()), alive.end());
  return alive;
}

std::optional<RouteView> make_route_view(const ExitTable& table,
                                         const netsim::ShortestPaths& igp, NodeId u,
                                         const Candidate& candidate) {
  const ExitPath& path = table[candidate.path];
  if (!igp.reachable(u, path.exit_point)) return std::nullopt;
  RouteView view;
  view.path = candidate.path;
  view.metric = igp.cost(u, path.exit_point) + path.exit_cost;
  view.learned_from = candidate.learned_from;
  view.is_ebgp = (path.exit_point == u);
  return view;
}

namespace {

std::vector<RouteView> usable_views(const ExitTable& table, const netsim::ShortestPaths& igp,
                                    NodeId u, std::span<const Candidate> candidates) {
  std::vector<RouteView> views;
  views.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    if (auto view = make_route_view(table, igp, u, candidate)) views.push_back(*view);
  }
  return views;
}

std::optional<RouteView> finish(const ExitTable& table, std::vector<RouteView> views,
                                const SelectionPolicy& policy,
                                SelectionExplanation* explanation,
                                SelectionProvenance* provenance) {
  auto record = [&](const char* stage) {
    if (explanation != nullptr) explanation->stages.emplace_back(stage, ids_of(views));
  };
  if (provenance != nullptr) provenance->usable = views.size();
  // Charges `before - views.size()` eliminations to `rule`; the last rule
  // that narrows the set is the decisive one.
  auto charge = [&](SelectionRule rule, std::size_t before) {
    if (provenance == nullptr || views.size() >= before) return;
    provenance->eliminated[rule_index(rule)] +=
        static_cast<std::uint32_t>(before - views.size());
    provenance->decisive = rule;
  };
  record("input (usable)");

  // Rule 1.
  std::size_t before = views.size();
  keep_max(views, [&](const RouteView& v) { return table[v.path].local_pref; });
  charge(SelectionRule::kLocalPref, before);
  record("rule 1: max LOCAL-PREF");

  // Rule 2.
  before = views.size();
  keep_min(views, [&](const RouteView& v) { return table[v.path].as_path_length; });
  charge(SelectionRule::kAsPathLength, before);
  record("rule 2: min AS-path length");

  // Rule 3.
  before = views.size();
  med_eliminate(table, views, policy.med);
  charge(SelectionRule::kMed, before);
  record("rule 3: per-AS MED elimination");

  // Rules 4-6 (rules 4 and 5 swap under the RFC ordering; footnote 4).
  if (policy.order == RuleOrder::kPreferEbgpFirst) {
    before = views.size();
    keep_ebgp(views);
    charge(SelectionRule::kEbgpOverIbgp, before);
    before = views.size();
    keep_min(views, [](const RouteView& v) { return v.metric; });
    charge(SelectionRule::kIgpCost, before);
  } else {
    before = views.size();
    keep_min(views, [](const RouteView& v) { return v.metric; });
    charge(SelectionRule::kIgpCost, before);
    before = views.size();
    keep_ebgp(views);
    charge(SelectionRule::kEbgpOverIbgp, before);
  }
  before = views.size();
  keep_min(views, [](const RouteView& v) { return v.learned_from; });
  charge(SelectionRule::kBgpIdTieBreak, before);
  record("rules 4-6: E-BGP/IGP-cost/BGP-id");

  if (views.empty()) return std::nullopt;
  // learned_from is usually unique by now; break pathological duplicate
  // announcements by path id for full determinism.
  const auto best =
      std::min_element(views.begin(), views.end(), [](const RouteView& a, const RouteView& b) {
        return a.path < b.path;
      });
  if (provenance != nullptr) {
    if (views.size() > 1) {
      provenance->eliminated[rule_index(SelectionRule::kPathIdTieBreak)] +=
          static_cast<std::uint32_t>(views.size() - 1);
      provenance->decisive = SelectionRule::kPathIdTieBreak;
    }
    provenance->selected = true;
  }
  return *best;
}

}  // namespace

std::string_view selection_rule_name(SelectionRule rule) {
  switch (rule) {
    case SelectionRule::kSoleCandidate: return "sole-candidate";
    case SelectionRule::kLocalPref: return "local-pref";
    case SelectionRule::kAsPathLength: return "as-path-length";
    case SelectionRule::kMed: return "med";
    case SelectionRule::kEbgpOverIbgp: return "ebgp-over-ibgp";
    case SelectionRule::kIgpCost: return "igp-cost";
    case SelectionRule::kBgpIdTieBreak: return "bgp-id-tie-break";
    case SelectionRule::kPathIdTieBreak: return "path-id-tie-break";
  }
  return "?";
}

std::optional<RouteView> choose_best(const ExitTable& table, const netsim::ShortestPaths& igp,
                                     NodeId u, std::span<const Candidate> candidates,
                                     const SelectionPolicy& policy,
                                     SelectionProvenance* provenance) {
  if (provenance != nullptr) {
    *provenance = SelectionProvenance{};
    provenance->candidates = candidates.size();
  }
  auto views = usable_views(table, igp, u, candidates);
  if (provenance != nullptr) provenance->unreachable = candidates.size() - views.size();
  return finish(table, std::move(views), policy, nullptr, provenance);
}

SelectionExplanation explain_selection(const ExitTable& table,
                                       const netsim::ShortestPaths& igp, NodeId u,
                                       std::span<const Candidate> candidates,
                                       const SelectionPolicy& policy) {
  SelectionExplanation explanation;
  explanation.best = finish(table, usable_views(table, igp, u, candidates), policy,
                            &explanation, nullptr);
  return explanation;
}

}  // namespace ibgp::bgp
