#include "bgp/selection.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace ibgp::bgp {

namespace {

/// Keeps only the elements of `views` minimizing key(view).
template <typename Key>
void keep_min(std::vector<RouteView>& views, Key key) {
  if (views.empty()) return;
  auto best = key(views.front());
  for (const auto& view : views) best = std::min(best, key(view));
  std::erase_if(views, [&](const RouteView& view) { return key(view) != best; });
}

/// Keeps only the elements maximizing key(view).
template <typename Key>
void keep_max(std::vector<RouteView>& views, Key key) {
  if (views.empty()) return;
  auto best = key(views.front());
  for (const auto& view : views) best = std::max(best, key(view));
  std::erase_if(views, [&](const RouteView& view) { return key(view) != best; });
}

/// Rule 3: per-neighbor-AS MED elimination over route views.
void med_eliminate(const ExitTable& table, std::vector<RouteView>& views, MedMode mode) {
  if (mode == MedMode::kIgnore || views.empty()) return;
  // Minimum MED per group; kAlwaysCompare treats everything as one group.
  std::map<AsId, Med> group_min;
  for (const auto& view : views) {
    const ExitPath& path = table[view.path];
    const AsId group = (mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
    const auto it = group_min.find(group);
    if (it == group_min.end() || path.med < it->second) group_min[group] = path.med;
  }
  std::erase_if(views, [&](const RouteView& view) {
    const ExitPath& path = table[view.path];
    const AsId group = (mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
    return path.med != group_min.at(group);
  });
}

/// Rules 4-6 in the paper's default order: prefer E-BGP outright, then
/// minimum metric within the surviving class, then lowest learnedFrom.
void narrow_prefer_ebgp_first(std::vector<RouteView>& views) {
  const bool any_ebgp =
      std::any_of(views.begin(), views.end(), [](const RouteView& v) { return v.is_ebgp; });
  if (any_ebgp) {
    std::erase_if(views, [](const RouteView& v) { return !v.is_ebgp; });
  }
  keep_min(views, [](const RouteView& v) { return v.metric; });
  keep_min(views, [](const RouteView& v) { return v.learned_from; });
}

/// RFC-1771-style order: minimum metric across all routes first, then prefer
/// E-BGP among the ties, then lowest learnedFrom.
void narrow_igp_cost_first(std::vector<RouteView>& views) {
  keep_min(views, [](const RouteView& v) { return v.metric; });
  const bool any_ebgp =
      std::any_of(views.begin(), views.end(), [](const RouteView& v) { return v.is_ebgp; });
  if (any_ebgp) {
    std::erase_if(views, [](const RouteView& v) { return !v.is_ebgp; });
  }
  keep_min(views, [](const RouteView& v) { return v.learned_from; });
}

std::vector<PathId> ids_of(const std::vector<RouteView>& views) {
  std::vector<PathId> ids;
  ids.reserve(views.size());
  for (const auto& view : views) ids.push_back(view.path);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::vector<PathId> choose_survivors(const ExitTable& table, std::span<const PathId> paths,
                                     MedMode med_mode) {
  if (paths.empty()) return {};

  // Rule 1: highest LOCAL-PREF.
  LocalPref best_lp = 0;
  for (const PathId id : paths) best_lp = std::max(best_lp, table[id].local_pref);
  std::vector<PathId> alive;
  for (const PathId id : paths) {
    if (table[id].local_pref == best_lp) alive.push_back(id);
  }

  // Rule 2: shortest AS-path.
  std::uint32_t best_len = std::numeric_limits<std::uint32_t>::max();
  for (const PathId id : alive) best_len = std::min(best_len, table[id].as_path_length);
  std::erase_if(alive, [&](PathId id) { return table[id].as_path_length != best_len; });

  // Rule 3: per-neighbor-AS MED elimination.
  if (med_mode != MedMode::kIgnore) {
    std::map<AsId, Med> group_min;
    for (const PathId id : alive) {
      const ExitPath& path = table[id];
      const AsId group = (med_mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
      const auto it = group_min.find(group);
      if (it == group_min.end() || path.med < it->second) group_min[group] = path.med;
    }
    std::erase_if(alive, [&](PathId id) {
      const ExitPath& path = table[id];
      const AsId group = (med_mode == MedMode::kAlwaysCompare) ? AsId{0} : path.next_as;
      return path.med != group_min.at(group);
    });
  }

  std::sort(alive.begin(), alive.end());
  alive.erase(std::unique(alive.begin(), alive.end()), alive.end());
  return alive;
}

std::optional<RouteView> make_route_view(const ExitTable& table,
                                         const netsim::ShortestPaths& igp, NodeId u,
                                         const Candidate& candidate) {
  const ExitPath& path = table[candidate.path];
  if (!igp.reachable(u, path.exit_point)) return std::nullopt;
  RouteView view;
  view.path = candidate.path;
  view.metric = igp.cost(u, path.exit_point) + path.exit_cost;
  view.learned_from = candidate.learned_from;
  view.is_ebgp = (path.exit_point == u);
  return view;
}

namespace {

std::vector<RouteView> usable_views(const ExitTable& table, const netsim::ShortestPaths& igp,
                                    NodeId u, std::span<const Candidate> candidates) {
  std::vector<RouteView> views;
  views.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    if (auto view = make_route_view(table, igp, u, candidate)) views.push_back(*view);
  }
  return views;
}

std::optional<RouteView> finish(const ExitTable& table, std::vector<RouteView> views,
                                const SelectionPolicy& policy,
                                SelectionExplanation* explanation) {
  auto record = [&](const char* stage) {
    if (explanation != nullptr) explanation->stages.emplace_back(stage, ids_of(views));
  };
  record("input (usable)");

  // Rule 1.
  keep_max(views, [&](const RouteView& v) { return table[v.path].local_pref; });
  record("rule 1: max LOCAL-PREF");

  // Rule 2.
  keep_min(views, [&](const RouteView& v) { return table[v.path].as_path_length; });
  record("rule 2: min AS-path length");

  // Rule 3.
  med_eliminate(table, views, policy.med);
  record("rule 3: per-AS MED elimination");

  // Rules 4-6.
  if (policy.order == RuleOrder::kPreferEbgpFirst) {
    narrow_prefer_ebgp_first(views);
  } else {
    narrow_igp_cost_first(views);
  }
  record("rules 4-6: E-BGP/IGP-cost/BGP-id");

  if (views.empty()) return std::nullopt;
  // learned_from is usually unique by now; break pathological duplicate
  // announcements by path id for full determinism.
  const auto best =
      std::min_element(views.begin(), views.end(), [](const RouteView& a, const RouteView& b) {
        return a.path < b.path;
      });
  return *best;
}

}  // namespace

std::optional<RouteView> choose_best(const ExitTable& table, const netsim::ShortestPaths& igp,
                                     NodeId u, std::span<const Candidate> candidates,
                                     const SelectionPolicy& policy) {
  return finish(table, usable_views(table, igp, u, candidates), policy, nullptr);
}

SelectionExplanation explain_selection(const ExitTable& table,
                                       const netsim::ShortestPaths& igp, NodeId u,
                                       std::span<const Candidate> candidates,
                                       const SelectionPolicy& policy) {
  SelectionExplanation explanation;
  explanation.best = finish(table, usable_views(table, igp, u, candidates), policy,
                            &explanation);
  return explanation;
}

}  // namespace ibgp::bgp
