#include "bgp/selection.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>

namespace ibgp::bgp {

namespace {

/// Keeps only the elements of `views` minimizing key(view).
template <typename Key>
void keep_min(std::vector<RouteView>& views, Key key) {
  if (views.empty()) return;
  auto best = key(views.front());
  for (const auto& view : views) best = std::min(best, key(view));
  std::erase_if(views, [&](const RouteView& view) { return key(view) != best; });
}

/// Keeps only the elements maximizing key(view).
template <typename Key>
void keep_max(std::vector<RouteView>& views, Key key) {
  if (views.empty()) return;
  auto best = key(views.front());
  for (const auto& view : views) best = std::max(best, key(view));
  std::erase_if(views, [&](const RouteView& view) { return key(view) != best; });
}

/// The MED elimination group of a route through `as` under `policy`:
/// nullopt = exempt (kIgnore); a shared sentinel group for every
/// kAlwaysCompare AS; the AS itself under kPerNeighborAs.  The sentinel is
/// outside the AsId range so mixes can never collide with a per-AS group.
constexpr std::uint64_t kSharedMedGroup = std::uint64_t{1} << 32;

std::optional<std::uint64_t> med_group(const SelectionPolicy& policy, AsId as) {
  switch (policy.med_mode_for(as)) {
    case MedMode::kIgnore: return std::nullopt;
    case MedMode::kAlwaysCompare: return kSharedMedGroup;
    case MedMode::kPerNeighborAs: return as;
  }
  return as;
}

/// Rule 3 over an arbitrary range: computes per-group minimum MEDs with
/// `as_of`/`med_of` accessors, then erases non-minimal members.  Exempt
/// (kIgnore) members never participate and are never erased.
template <typename Seq, typename AsOf, typename MedOf>
void med_eliminate_range(Seq& items, const SelectionPolicy& policy, AsOf as_of,
                         MedOf med_of) {
  if (items.empty()) return;
  std::map<std::uint64_t, Med> group_min;
  for (const auto& item : items) {
    const auto group = med_group(policy, as_of(item));
    if (!group) continue;
    const auto it = group_min.find(*group);
    if (it == group_min.end() || med_of(item) < it->second) group_min[*group] = med_of(item);
  }
  std::erase_if(items, [&](const auto& item) {
    const auto group = med_group(policy, as_of(item));
    if (!group) return false;
    return med_of(item) != group_min.at(*group);
  });
}

/// Rule 4: when any E-BGP route survives, I-BGP routes are out.
void keep_ebgp(std::vector<RouteView>& views) {
  const bool any_ebgp =
      std::any_of(views.begin(), views.end(), [](const RouteView& v) { return v.is_ebgp; });
  if (any_ebgp) {
    std::erase_if(views, [](const RouteView& v) { return !v.is_ebgp; });
  }
}

std::vector<PathId> ids_of(const std::vector<RouteView>& views) {
  std::vector<PathId> ids;
  ids.reserve(views.size());
  for (const auto& view : views) ids.push_back(view.path);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::vector<PathId> choose_survivors(const ExitTable& table, std::span<const PathId> paths,
                                     const SelectionPolicy& policy) {
  if (paths.empty()) return {};

  // Rule 1: highest LOCAL-PREF.
  LocalPref best_lp = 0;
  for (const PathId id : paths) best_lp = std::max(best_lp, table[id].local_pref);
  std::vector<PathId> alive;
  for (const PathId id : paths) {
    if (table[id].local_pref == best_lp) alive.push_back(id);
  }

  // Rule 2: shortest AS-path.
  std::uint32_t best_len = std::numeric_limits<std::uint32_t>::max();
  for (const PathId id : alive) best_len = std::min(best_len, table[id].as_path_length);
  std::erase_if(alive, [&](PathId id) { return table[id].as_path_length != best_len; });

  // Rule 3: MED elimination under the (possibly mixed) regime.
  med_eliminate_range(
      alive, policy, [&](PathId id) { return table[id].next_as; },
      [&](PathId id) { return table[id].med; });

  std::sort(alive.begin(), alive.end());
  alive.erase(std::unique(alive.begin(), alive.end()), alive.end());
  return alive;
}

std::vector<PathId> choose_survivors(const ExitTable& table, std::span<const PathId> paths,
                                     MedMode med_mode) {
  SelectionPolicy policy;
  policy.med = med_mode;
  return choose_survivors(table, paths, policy);
}

std::optional<RouteView> make_route_view(const ExitTable& table,
                                         const netsim::ShortestPaths& igp, NodeId u,
                                         const Candidate& candidate) {
  const ExitPath& path = table[candidate.path];
  if (!igp.reachable(u, path.exit_point)) return std::nullopt;
  RouteView view;
  view.path = candidate.path;
  view.metric = igp.cost(u, path.exit_point) + path.exit_cost;
  view.learned_from = candidate.learned_from;
  view.is_ebgp = (path.exit_point == u);
  return view;
}

namespace {

std::vector<RouteView> usable_views(const ExitTable& table, const netsim::ShortestPaths& igp,
                                    NodeId u, std::span<const Candidate> candidates) {
  std::vector<RouteView> views;
  views.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    if (auto view = make_route_view(table, igp, u, candidate)) views.push_back(*view);
  }
  return views;
}

// The rule cascade, specialized at compile time on whether a provenance
// record is attached.  choose_best runs on every reconsideration of every
// node of every cell of a sweep; when no sink is attached (Walton's per-AS
// sub-selections, fixed-point search, stable-configuration enumeration) the
// kProvenance=false instantiation carries zero counting code instead of a
// provenance branch per rule.
template <bool kProvenance>
std::optional<RouteView> finish(const ExitTable& table, std::vector<RouteView> views,
                                const SelectionPolicy& policy,
                                SelectionExplanation* explanation,
                                SelectionProvenance* provenance) {
  auto record = [&](const char* stage) {
    if (explanation != nullptr) explanation->stages.emplace_back(stage, ids_of(views));
  };
  if constexpr (kProvenance) provenance->usable = views.size();
  // Charges `before - views.size()` eliminations to `rule`; the last rule
  // that narrows the set is the decisive one.
  auto charge = [&]([[maybe_unused]] SelectionRule rule, [[maybe_unused]] std::size_t before) {
    if constexpr (kProvenance) {
      if (views.size() >= before) return;
      provenance->eliminated[rule_index(rule)] +=
          static_cast<std::uint32_t>(before - views.size());
      provenance->decisive = rule;
    }
  };
  record("input (usable)");

  // Rule 1.
  std::size_t before = views.size();
  keep_max(views, [&](const RouteView& v) { return table[v.path].local_pref; });
  charge(SelectionRule::kLocalPref, before);
  record("rule 1: max LOCAL-PREF");

  // Rule 2.
  before = views.size();
  keep_min(views, [&](const RouteView& v) { return table[v.path].as_path_length; });
  charge(SelectionRule::kAsPathLength, before);
  record("rule 2: min AS-path length");

  // Rule 3.
  before = views.size();
  med_eliminate_range(
      views, policy, [&](const RouteView& v) { return table[v.path].next_as; },
      [&](const RouteView& v) { return table[v.path].med; });
  charge(SelectionRule::kMed, before);
  record("rule 3: per-AS MED elimination");

  // Rules 4-6 (rules 4 and 5 swap under the RFC ordering; footnote 4).
  if (policy.order == RuleOrder::kPreferEbgpFirst) {
    before = views.size();
    keep_ebgp(views);
    charge(SelectionRule::kEbgpOverIbgp, before);
    before = views.size();
    keep_min(views, [](const RouteView& v) { return v.metric; });
    charge(SelectionRule::kIgpCost, before);
  } else {
    before = views.size();
    keep_min(views, [](const RouteView& v) { return v.metric; });
    charge(SelectionRule::kIgpCost, before);
    before = views.size();
    keep_ebgp(views);
    charge(SelectionRule::kEbgpOverIbgp, before);
  }
  before = views.size();
  keep_min(views, [](const RouteView& v) { return v.learned_from; });
  charge(SelectionRule::kBgpIdTieBreak, before);
  record("rules 4-6: E-BGP/IGP-cost/BGP-id");

  if (views.empty()) return std::nullopt;
  // learned_from is usually unique by now; break pathological duplicate
  // announcements by path id for full determinism.
  const auto best =
      std::min_element(views.begin(), views.end(), [](const RouteView& a, const RouteView& b) {
        return a.path < b.path;
      });
  if constexpr (kProvenance) {
    if (views.size() > 1) {
      provenance->eliminated[rule_index(SelectionRule::kPathIdTieBreak)] +=
          static_cast<std::uint32_t>(views.size() - 1);
      provenance->decisive = SelectionRule::kPathIdTieBreak;
    }
    provenance->selected = true;
  }
  return *best;
}

}  // namespace

std::string_view selection_rule_name(SelectionRule rule) {
  switch (rule) {
    case SelectionRule::kSoleCandidate: return "sole-candidate";
    case SelectionRule::kLocalPref: return "local-pref";
    case SelectionRule::kAsPathLength: return "as-path-length";
    case SelectionRule::kMed: return "med";
    case SelectionRule::kEbgpOverIbgp: return "ebgp-over-ibgp";
    case SelectionRule::kIgpCost: return "igp-cost";
    case SelectionRule::kBgpIdTieBreak: return "bgp-id-tie-break";
    case SelectionRule::kPathIdTieBreak: return "path-id-tie-break";
  }
  return "?";
}

std::optional<RouteView> choose_best(const ExitTable& table, const netsim::ShortestPaths& igp,
                                     NodeId u, std::span<const Candidate> candidates,
                                     const SelectionPolicy& policy,
                                     SelectionProvenance* provenance) {
  if (provenance != nullptr) {
    *provenance = SelectionProvenance{};
    provenance->candidates = candidates.size();
    auto views = usable_views(table, igp, u, candidates);
    provenance->unreachable = candidates.size() - views.size();
    return finish<true>(table, std::move(views), policy, nullptr, provenance);
  }
  return finish<false>(table, usable_views(table, igp, u, candidates), policy, nullptr,
                       nullptr);
}

SelectionExplanation explain_selection(const ExitTable& table,
                                       const netsim::ShortestPaths& igp, NodeId u,
                                       std::span<const Candidate> candidates,
                                       const SelectionPolicy& policy) {
  SelectionExplanation explanation;
  explanation.best = finish<false>(table, usable_views(table, igp, u, candidates), policy,
                                   &explanation, nullptr);
  return explanation;
}

}  // namespace ibgp::bgp
