#include "bgp/route_map.hpp"

#include <sstream>

namespace ibgp::bgp {

ExitPath RouteMap::apply(ExitPath path) const {
  for (const RouteMapClause& clause : clauses) {
    if (!clause.matches(path)) continue;
    if (clause.set_local_pref) path.local_pref = *clause.set_local_pref;
    if (clause.set_med) path.med = *clause.set_med;
    path.communities |= clause.add_communities;
    break;  // first match wins
  }
  return path;
}

std::string to_string(const RouteMapClause& clause) {
  std::ostringstream oss;
  oss << '[';
  bool any = false;
  if (clause.match_as) {
    oss << "as=" << *clause.match_as;
    any = true;
  }
  if (clause.match_communities != 0) {
    if (any) oss << ' ';
    oss << "comm=" << clause.match_communities;
    any = true;
  }
  if (!any) oss << '*';
  oss << "] ->";
  if (clause.set_local_pref) oss << " lp=" << *clause.set_local_pref;
  if (clause.set_med) oss << " med=" << *clause.set_med;
  if (clause.add_communities != 0) oss << " +comm=" << clause.add_communities;
  if (clause.is_noop()) oss << " (noop)";
  return oss.str();
}

}  // namespace ibgp::bgp
