#pragma once
// Registry of every exit path in an experiment instance.
//
// Exit paths get dense PathIds so engine state can be plain bitsets/sorted
// id vectors; the table is immutable during a simulation run (which exits are
// *currently announced* is separate, per-node MyExits state owned by the
// engines, so withdraw/restore experiments never mutate the table).

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/exit_path.hpp"
#include "util/types.hpp"

namespace ibgp::bgp {

class ExitTable {
 public:
  /// Registers a path; assigns and returns its dense id.
  /// Throws std::invalid_argument if the path names a node that will not
  /// exist (cannot be checked here) — exit_point range is validated by the
  /// Instance that combines table and graphs.
  PathId add(ExitPath path);

  [[nodiscard]] std::size_t size() const { return paths_.size(); }
  [[nodiscard]] bool empty() const { return paths_.empty(); }

  [[nodiscard]] const ExitPath& at(PathId id) const {
    if (id >= paths_.size()) throw std::out_of_range("ExitTable: bad path id");
    return paths_[id];
  }
  [[nodiscard]] const ExitPath& operator[](PathId id) const { return paths_[id]; }

  [[nodiscard]] std::span<const ExitPath> all() const { return paths_; }

  /// Ids of every path exiting at node v, ascending.
  [[nodiscard]] std::vector<PathId> exits_from(NodeId v) const;

  /// Looks a path up by its label; kNoPath when absent.
  [[nodiscard]] PathId find_by_name(std::string_view name) const;

  /// All distinct neighboring AS ids referenced by any path, ascending.
  [[nodiscard]] std::vector<AsId> neighbor_ases() const;

 private:
  std::vector<ExitPath> paths_;
};

}  // namespace ibgp::bgp
