#pragma once
// Ingress route-maps: per-neighbor import policy at the E-BGP edge.
//
// Real routers assign LOCAL-PREF (and rewrite MEDs, attach communities) with
// a route-map on the import side of each E-BGP neighbor; the values then
// travel unchanged through I-BGP.  We model that faithfully: a RouteMap is
// attached to an *ingress node* (the exit point) and applied once, when the
// instance is finalized, to every exit path entering there.  Clause matching
// is per neighboring AS and/or per community tag, so "per-neighbor
// LOCAL-PREF route-maps" and "community-tagged match/set rules" are both
// expressible.
//
// Because the rewrite happens at the edge, every router still sees the SAME
// attributes for a given path — the node-independence that Lemma 7.4's
// convergence proof for the modified protocol relies on is preserved.  The
// knob perturbs the *policy space* (which the adversarial explorer searches)
// without silently stepping outside the paper's model.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/exit_path.hpp"
#include "util/types.hpp"

namespace ibgp::bgp {

/// One match/set clause.  All present match conditions must hold; the first
/// matching clause of a RouteMap applies its actions and terminates the map
/// (classic first-match-wins route-map semantics).  A clause with no match
/// conditions matches every path.
struct RouteMapClause {
  // --- match conditions ---------------------------------------------------
  /// Match routes through this neighboring AS only.
  std::optional<AsId> match_as;
  /// Match routes carrying ALL of these community tags (bitmask; 0 = no
  /// community condition).
  std::uint32_t match_communities = 0;

  // --- actions ------------------------------------------------------------
  std::optional<LocalPref> set_local_pref;
  std::optional<Med> set_med;
  /// Community tags attached on top of whatever the path already carries.
  std::uint32_t add_communities = 0;

  [[nodiscard]] bool matches(const ExitPath& path) const {
    if (match_as && *match_as != path.next_as) return false;
    return (path.communities & match_communities) == match_communities;
  }

  /// True when the clause performs no rewrite at all.
  [[nodiscard]] bool is_noop() const {
    return !set_local_pref && !set_med && add_communities == 0;
  }

  friend bool operator==(const RouteMapClause&, const RouteMapClause&) = default;
};

/// An ordered clause list; apply() runs the first matching clause.
struct RouteMap {
  std::vector<RouteMapClause> clauses;

  [[nodiscard]] bool empty() const { return clauses.empty(); }

  /// Returns `path` with the first matching clause's actions applied (or
  /// unchanged when nothing matches).  Attributes the selection procedure
  /// never reads (name, exit point, AS, peer) are left untouched.
  [[nodiscard]] ExitPath apply(ExitPath path) const;

  friend bool operator==(const RouteMap&, const RouteMap&) = default;
};

/// One-line rendering for reports ("[as=2 comm=1] -> lp=200 +comm=3").
std::string to_string(const RouteMapClause& clause);

}  // namespace ibgp::bgp
