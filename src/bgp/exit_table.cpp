#include "bgp/exit_table.hpp"

#include <algorithm>

namespace ibgp::bgp {

PathId ExitTable::add(ExitPath path) {
  const auto id = static_cast<PathId>(paths_.size());
  path.id = id;
  if (path.name.empty()) path.name = "p" + std::to_string(id);
  paths_.push_back(std::move(path));
  return id;
}

std::vector<PathId> ExitTable::exits_from(NodeId v) const {
  std::vector<PathId> out;
  for (const auto& path : paths_) {
    if (path.exit_point == v) out.push_back(path.id);
  }
  return out;
}

PathId ExitTable::find_by_name(std::string_view name) const {
  for (const auto& path : paths_) {
    if (path.name == name) return path.id;
  }
  return kNoPath;
}

std::vector<AsId> ExitTable::neighbor_ases() const {
  std::vector<AsId> out;
  for (const auto& path : paths_) out.push_back(path.next_as);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ibgp::bgp
