#include "fault/campaign.hpp"

#include "util/hash.hpp"

namespace ibgp::fault {

std::uint64_t trace_hash(const engine::EventEngine& engine,
                         const engine::EventEngine::Result& result) {
  util::Fingerprint fp;
  for (const auto& flap : engine.flap_log()) {
    fp.add(flap.time).add(flap.node).add(flap.old_best).add(flap.new_best);
  }
  for (const auto& fault : engine.fault_log()) {
    fp.add(fault.time)
        .add(static_cast<std::uint64_t>(fault.kind))
        .add(fault.a)
        .add(fault.b)
        .add(fault.cost);
  }
  for (const auto& fib : engine.fib_log()) {
    fp.add(fib.time).add(fib.node).add(fib.old_path).add(fib.new_path);
  }
  // The IGP epoch timeline: each swap's time and the epoch's own digest
  // (distance + next-hop matrices), pinning the churned underlay history.
  for (const auto& epoch : engine.igp_log()) {
    fp.add(epoch.time).add(epoch.fingerprint);
  }
  fp.add_range(result.final_best);
  fp.add(result.updates_sent)
      .add(result.messages_dropped)
      .add(result.messages_duplicated)
      .add(result.deliveries_voided)
      .add(result.eor_markers_sent)
      .add(result.stale_retained)
      .add(result.stale_swept_eor)
      .add(result.stale_swept_expired)
      .add(result.end_time);
  return fp.value();
}

CampaignResult run_campaign(const core::Instance& inst, core::ProtocolKind protocol,
                            const FaultScript& script, const CampaignOptions& options) {
  engine::EventEngine engine(inst, protocol, options.delay);
  if (options.mrai > 0) engine.set_mrai(options.mrai);
  if (script.stale_timer > 0) engine.set_stale_timer(script.stale_timer);
  ScriptInjector injector(script);
  engine.set_fault_injector(&injector);
  engine.inject_all_exits(0);
  apply_script(script, engine);

  CampaignResult campaign;
  campaign.run = engine.run(options.max_deliveries);
  campaign.invariants = analysis::check_invariants(engine);
  campaign.continuity = analysis::check_continuity(engine, campaign.run.end_time);
  campaign.trace_hash = trace_hash(engine, campaign.run);
  if (!engine.fault_log().empty()) {
    campaign.last_fault_time = engine.fault_log().back().time;
  }
  if (campaign.run.converged) {
    campaign.settle_time = campaign.run.end_time > campaign.last_fault_time
                               ? campaign.run.end_time - campaign.last_fault_time
                               : 0;
  }
  return campaign;
}

}  // namespace ibgp::fault
