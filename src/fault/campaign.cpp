#include "fault/campaign.hpp"

#include "util/hash.hpp"

namespace ibgp::fault {

namespace {

// Settle-time histogram buckets (virtual ticks from last applied fault to
// quiescence).  Log-ish spacing: most healthy campaigns settle within a few
// hundred ticks; the overflow bucket catches pathological stragglers.
constexpr std::int64_t kSettleBounds[] = {10, 30, 100, 300, 1000, 3000, 10000};

std::vector<std::int64_t> settle_bounds() {
  return std::vector<std::int64_t>(std::begin(kSettleBounds), std::end(kSettleBounds));
}

}  // namespace

std::uint64_t trace_hash(const engine::EventEngine& engine,
                         const engine::EventEngine::Result& result) {
  util::Fingerprint fp;
  for (const auto& flap : engine.flap_log()) {
    fp.add(flap.time).add(flap.node).add(flap.old_best).add(flap.new_best);
  }
  for (const auto& fault : engine.fault_log()) {
    fp.add(fault.time)
        .add(static_cast<std::uint64_t>(fault.kind))
        .add(fault.a)
        .add(fault.b)
        .add(fault.cost);
  }
  for (const auto& fib : engine.fib_log()) {
    fp.add(fib.time).add(fib.node).add(fib.old_path).add(fib.new_path);
  }
  // The IGP epoch timeline: each swap's time and the epoch's own digest
  // (distance + next-hop matrices), pinning the churned underlay history.
  for (const auto& epoch : engine.igp_log()) {
    fp.add(epoch.time).add(epoch.fingerprint);
  }
  fp.add_range(result.final_best);
  fp.add(result.updates_sent)
      .add(result.messages_dropped)
      .add(result.messages_duplicated)
      .add(result.deliveries_voided)
      .add(result.eor_markers_sent)
      .add(result.stale_retained)
      .add(result.stale_swept_eor)
      .add(result.stale_swept_expired)
      .add(result.end_time);
  // Decision provenance is part of the observable history: which rule
  // decided every Choose_best, per node.  Folding it in means the `same
  // seed -> same trace` guarantee now also covers the provenance counters
  // the metrics registry exports.
  fp.add(result.decisions_total).add(result.decisions_empty).add(result.mrai_deferrals);
  fp.add_range(result.decisions_by_rule);
  for (const auto& per_node : result.decisions_by_node) fp.add_range(per_node);
  return fp.value();
}

void register_campaign_metrics(obs::MetricsRegistry& registry) {
  registry.counter("campaign.runs");
  registry.counter("campaign.reconverged");
  registry.counter("campaign.truncated");
  registry.counter("campaign.unclean");
  registry.counter("campaign.blackhole_ticks");
  registry.counter("campaign.stale_ticks");
  registry.counter("campaign.loop_ticks");
  registry.counter("campaign.deflection_ticks");
  registry.histogram("campaign.settle_time", settle_bounds());
  engine::register_event_engine_metrics(registry);
}

namespace {

// Everything downstream of the engine run — verdicts, fingerprint, metric
// aggregates, the trace record — shared verbatim between the uninterrupted
// path (run_campaign) and the restored path (resume_campaign) so the two
// compute their results through identical code.
CampaignResult finish_campaign(engine::EventEngine& engine, const core::Instance& inst,
                               core::ProtocolKind protocol, const FaultScript& script,
                               const CampaignOptions& options) {
  if (options.deadline.count() > 0) {
    engine.set_deadline(std::chrono::steady_clock::now() + options.deadline);
  }
  CampaignResult campaign;
  campaign.run = engine.run(options.max_deliveries);
  campaign.invariants = analysis::check_invariants(engine);
  campaign.continuity = analysis::check_continuity(engine, campaign.run.end_time);
  campaign.trace_hash = trace_hash(engine, campaign.run);
  if (!engine.fault_log().empty()) {
    campaign.last_fault_time = engine.fault_log().back().time;
  }
  if (campaign.run.converged) {
    campaign.settle_time = campaign.run.end_time > campaign.last_fault_time
                               ? campaign.run.end_time - campaign.last_fault_time
                               : 0;
  }

  if (options.metrics != nullptr) {
    auto& reg = *options.metrics;
    reg.counter("campaign.runs").increment();
    if (campaign.reconverged()) reg.counter("campaign.reconverged").increment();
    if (campaign.truncated()) reg.counter("campaign.truncated").increment();
    if (!campaign.invariants.clean()) reg.counter("campaign.unclean").increment();
    reg.counter("campaign.blackhole_ticks").add(campaign.continuity.blackhole_ticks);
    reg.counter("campaign.stale_ticks").add(campaign.continuity.stale_ticks);
    reg.counter("campaign.loop_ticks").add(campaign.continuity.loop_ticks);
    reg.counter("campaign.deflection_ticks").add(campaign.continuity.deflection_ticks);
    if (campaign.settle_time) {
      reg.histogram("campaign.settle_time", settle_bounds())
          .observe(static_cast<std::int64_t>(*campaign.settle_time));
    }
  }

  if (options.trace != nullptr && options.trace->enabled()) {
    util::json::Object fields;
    fields.emplace_back("instance", inst.name());
    fields.emplace_back("protocol", core::protocol_name(protocol));
    fields.emplace_back("seed", script.seed);
    fields.emplace_back("trace_hash", campaign.trace_hash);
    fields.emplace_back("reconverged", campaign.reconverged());
    fields.emplace_back("clean", campaign.invariants.clean());
    options.trace->emit(campaign.run.end_time, "campaign", std::move(fields));
    // Flight-recorder semantics: an unclean verdict is exactly the moment
    // the retained tail of the event stream is worth keeping.
    if (options.trace->ring_mode() && !campaign.invariants.clean()) {
      options.trace->dump_ring();
    }
  }
  return campaign;
}

// Builds and scripts a fresh engine exactly the way run_campaign always has.
void script_engine(engine::EventEngine& engine, const FaultScript& script,
                   const CampaignOptions& options, ScriptInjector& injector) {
  if (options.mrai > 0) engine.set_mrai(options.mrai);
  if (script.stale_timer > 0) engine.set_stale_timer(script.stale_timer);
  if (options.metrics != nullptr) engine.set_metrics(options.metrics);
  if (options.profile) engine.set_profile(true);
  if (options.trace != nullptr) engine.set_trace(options.trace);
  engine.set_fault_injector(&injector);
  engine.inject_all_exits(0);
  apply_script(script, engine);
}

}  // namespace

CampaignResult run_campaign(const core::Instance& inst, core::ProtocolKind protocol,
                            const FaultScript& script, const CampaignOptions& options) {
  engine::EventEngine engine(inst, protocol, options.delay);
  ScriptInjector injector(script);
  script_engine(engine, script, options, injector);
  return finish_campaign(engine, inst, protocol, script, options);
}

engine::EngineState campaign_checkpoint(const core::Instance& inst,
                                        core::ProtocolKind protocol,
                                        const FaultScript& script,
                                        const CampaignOptions& options,
                                        std::size_t deliveries_before_kill) {
  engine::EventEngine engine(inst, protocol, options.delay);
  ScriptInjector injector(script);
  // A partial run must not flush partial counters into the registry — the
  // resumed engine pushes the cumulative totals instead (delta flush), so
  // the registry an uninterrupted run would have produced appears only
  // after resume_campaign.
  CampaignOptions partial = options;
  partial.metrics = nullptr;
  script_engine(engine, script, partial, injector);
  if (options.deadline.count() > 0) {
    engine.set_deadline(std::chrono::steady_clock::now() + options.deadline);
  }
  (void)engine.run(deliveries_before_kill);
  engine::EngineState state = engine.capture();
  if (options.trace != nullptr && options.trace->enabled()) {
    util::json::Object fields;
    fields.emplace_back("seed", script.seed);
    fields.emplace_back("deliveries", state.deliveries);
    options.trace->emit(state.end_time, "checkpoint", std::move(fields));
  }
  return state;
}

CampaignResult resume_campaign(const core::Instance& inst, core::ProtocolKind protocol,
                               const FaultScript& script,
                               const engine::EngineState& state,
                               const CampaignOptions& options) {
  engine::EventEngine engine(inst, protocol, options.delay);
  ScriptInjector injector(script);
  // Attachments go on before restore() seals the engine; MRAI and the
  // stale timer come back from the state itself.  The script is NOT
  // re-applied: its actions (and its RNG draws) live in the captured
  // pending-event queue.
  if (options.metrics != nullptr) engine.set_metrics(options.metrics);
  if (options.profile) engine.set_profile(true);
  if (options.trace != nullptr) engine.set_trace(options.trace);
  engine.set_fault_injector(&injector);
  engine.restore(state);
  if (options.trace != nullptr && options.trace->enabled()) {
    util::json::Object fields;
    fields.emplace_back("seed", script.seed);
    fields.emplace_back("deliveries", state.deliveries);
    options.trace->emit(state.end_time, "resume", std::move(fields));
  }
  return finish_campaign(engine, inst, protocol, script, options);
}

}  // namespace ibgp::fault
