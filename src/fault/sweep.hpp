#pragma once
// Deterministic parallel sweep runner for fault campaigns.
//
// A sweep is a vector of fully self-contained cells — (instance, protocol,
// FaultScript, CampaignOptions) — fanned across a worker pool
// (util/parallel).  Each cell builds its own EventEngine and draws all
// randomness from its script's seed, so no mutable state is shared between
// workers; results land in an index-aligned vector and every aggregate
// (the combined fingerprint, the JSON document, any bench table) is folded
// in cell-index order.  Consequence: `--jobs N` is byte-identical to
// `--jobs 1` — same per-cell trace hashes, same fingerprint, same JSON
// (wall-clock fields aside) — which tests/test_parallel.cpp and the CI
// smoke enforce.
//
// Caveat: CampaignOptions::delay is the one field that can smuggle shared
// state into a cell.  Leave it empty (constant delay) or pass a *pure*
// function of (from, to, seq); a closure over a shared RNG would make the
// sweep schedule-dependent and break the guarantee.
//
// sweep_json() serializes a sweep into the stable machine-readable schema
// the BENCH_*.json trajectory files use (see README "BENCH_*.json schema");
// wall-clock and job-count fields are the only run-dependent outputs and
// can be suppressed for byte-comparison.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "util/json.hpp"

namespace ibgp::fault {

/// One independent simulation cell.  `instance` is non-owning and must
/// outlive the sweep; `group` and `seed` are labels echoed into reports.
struct SweepCell {
  const core::Instance* instance = nullptr;
  core::ProtocolKind protocol = core::ProtocolKind::kModified;
  FaultScript script;
  CampaignOptions options;
  std::string group;
  std::uint64_t seed = 0;
};

struct SweepResult {
  /// Per-cell outcomes, index-aligned with the input cells.
  std::vector<CampaignResult> cells;
  /// Order-dependent fold of every cell's trace hash, in cell-index order:
  /// the whole sweep's determinism fingerprint.
  std::uint64_t fingerprint = 0;
  std::size_t jobs = 1;       ///< resolved worker count actually used
  double wall_seconds = 0.0;  ///< wall-clock of the fan-out (not per cell)
};

/// Runs every cell (jobs == 0 means one worker per hardware thread; 1 runs
/// serially inline).  Results are deterministic per cell and aggregated in
/// index order regardless of which worker ran what.  A cell whose campaign
/// throws becomes a structured CellError result and the rest of the sweep
/// survives; fault/supervisor.hpp has the full supervised overload
/// (strict mode, per-cell deadlines, the resume journal).
SweepResult run_sweep(std::span<const SweepCell> cells, std::size_t jobs = 1);

/// The fingerprint fold alone, for callers comparing serial vs parallel.
std::uint64_t sweep_fingerprint(std::span<const CampaignResult> cells);

/// Pre-registers every metric a sweep can touch — the volatile per-cell
/// wall-clock histogram plus the whole campaign/engine family (via
/// register_campaign_metrics) — fixing snapshot order before the worker
/// fan-out.  Idempotent.
void register_sweep_metrics(obs::MetricsRegistry& registry);

/// Stable JSON document for a finished sweep ("ibgp-sweep-v4" schema —
/// v3 added per-cell decision provenance: `decisions`, `decisions_empty`,
/// `mrai_deferrals` and the per-rule `decided_by` breakdown; v4 added the
/// per-cell `error` field, null unless a supervised cell failed, see
/// fault/supervisor.hpp).
/// Run-dependent outputs (jobs, wall-clock) are grouped under a single
/// "volatile" sub-object so regenerated documents diff fingerprint-only;
/// with include_timing false the sub-object is omitted entirely and two
/// equal-fingerprint sweeps dump byte-identical text.
util::json::Value sweep_json(std::span<const SweepCell> cells, const SweepResult& result,
                             bool include_timing = true);

}  // namespace ibgp::fault
