#pragma once
// Deterministic, seed-driven fault scripts.
//
// A FaultScript is a reproducible campaign of operational failures against
// one EventEngine run: session down/up flaps, router crash/restart pairs,
// exit-path flap storms (E-BGP withdraw + re-inject), and a per-message
// loss/duplication policy.  Everything is derived from a single 64-bit seed
// via util/rng, so `same seed -> same script -> same event trace` holds
// bit-for-bit — the property the determinism tests hash-check.
//
// Message loss is special: BGP runs over TCP, so a "lost" UPDATE really
// means transport failure, and a real router's hold timer answers it with a
// session reset.  ScriptInjector models that: when loss_detect_delay > 0,
// every drop schedules a session down/up pair on the afflicted session,
// which flushes both ends and replays a full sync.  That repair discipline
// is what makes the post-quiescence invariants (analysis/invariants.hpp)
// checkable — with detection disabled, drops silently desynchronize RIBs
// forever, which the checker then reports (by design).

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "engine/event_engine.hpp"
#include "util/types.hpp"

namespace ibgp::fault {

/// Knobs for make_fault_script().  Counts are exact (not probabilistic);
/// times are drawn uniformly inside the fault window.
struct FaultScriptConfig {
  std::uint64_t seed = 1;

  /// Fault activity window: every scheduled fault *starts* in
  /// [window_start, window_end] (recoveries may land after the end).
  engine::SimTime window_start = 0;
  engine::SimTime window_end = 500;

  /// Session down/up flap pairs on uniformly chosen sessions.
  std::size_t session_flaps = 0;
  engine::SimTime min_downtime = 10;
  engine::SimTime max_downtime = 60;

  /// Router outage/recovery pairs on uniformly chosen routers: `crashes`
  /// cold crash/restart pairs plus `graceful_restarts` RFC 4724-style
  /// graceful-down/restart pairs.  Both kinds share one outage-duration
  /// range AND one RNG draw sequence: a config with (crashes=N,
  /// graceful_restarts=0) and one with (crashes=0, graceful_restarts=N)
  /// hit the SAME victims at the SAME times, differing only in restart
  /// style — the paired comparison bench_gr quantifies.
  std::size_t crashes = 0;
  std::size_t graceful_restarts = 0;
  engine::SimTime min_outage = 20;
  engine::SimTime max_outage = 80;

  /// Stale-path retention bound for graceful restarts (engine knob,
  /// EventEngine::set_stale_timer): 0 retains until the End-of-RIB marker,
  /// otherwise still-stale entries are cold-flushed this many ticks after
  /// the graceful down.
  engine::SimTime stale_timer = 0;

  /// Exit-path flap storm: withdraw + re-inject pairs on uniformly chosen
  /// exit paths.
  std::size_t exit_flaps = 0;
  engine::SimTime min_reinject_gap = 5;
  engine::SimTime max_reinject_gap = 40;

  /// IGP topology churn on uniformly chosen physical links.
  /// `link_cost_changes` metric jolt/revert pairs and `link_downs`
  /// outage/repair pairs share one RNG draw sequence (the same paired
  /// discipline as crashes vs graceful_restarts): a config with (changes=N,
  /// downs=0) and one with (changes=0, downs=N) hit the SAME links at the
  /// SAME times for the SAME durations, differing only in severity —
  /// metric jolt vs outright failure.  Every pair reverts to the original
  /// state, so a churn-only campaign ends on the base cost vector.
  std::size_t link_cost_changes = 0;
  std::size_t link_downs = 0;
  engine::SimTime min_link_outage = 20;
  engine::SimTime max_link_outage = 80;
  /// Relative metric perturbation for cost changes: the jolted cost is
  /// drawn uniformly in [max(1, c-d), c+d], d = max(1, round(c * jitter)),
  /// for base cost c.  The draw is consumed even for link_downs (paired
  /// discipline).
  double cost_jitter = 0.5;

  /// Partition events: a uniformly chosen victim router has EVERY incident
  /// link downed at once (isolating it from the IGP — sessions to it sever
  /// exactly as a hard partition would), then repaired together after an
  /// outage drawn from the link-outage range.
  std::size_t partitions = 0;

  /// Per-message fault policy (see ScriptInjector).
  double loss_prob = 0.0;
  double dup_prob = 0.0;
  /// Ticks between a drop and the session reset that repairs it; 0 disables
  /// detection (drops then desynchronize RIBs permanently).
  engine::SimTime loss_detect_delay = 25;
  engine::SimTime repair_downtime = 10;
};

/// One scheduled fault action.
struct FaultAction {
  enum class Kind : std::uint8_t {
    kSessionDown,
    kSessionUp,
    kCrash,
    kRestart,
    kExitWithdraw,
    kExitInject,
    kGracefulDown,
    kLinkCostChange,
    kLinkDown,
    kLinkUp,
  };
  engine::SimTime time = 0;
  Kind kind = Kind::kSessionDown;
  NodeId a = kNoNode;  ///< session endpoint / crashed router / link endpoint
  NodeId b = kNoNode;  ///< other session or link endpoint
  PathId path = kNoPath;  ///< exit-flap actions
  Cost cost = 0;  ///< kLinkCostChange: the metric to set
};

/// A fully materialized campaign: timed actions plus the message policy
/// and the engine-level stale-retention bound.
struct FaultScript {
  std::uint64_t seed = 1;
  double loss_prob = 0.0;
  double dup_prob = 0.0;
  engine::SimTime loss_detect_delay = 0;
  engine::SimTime repair_downtime = 10;
  engine::SimTime stale_timer = 0;
  std::vector<FaultAction> actions;  ///< ascending time
};

/// Draws a script from the config, deterministically from config.seed.
/// Throws std::invalid_argument when the config asks for faults the
/// instance cannot host (session flaps without sessions, exit flaps without
/// exits).
FaultScript make_fault_script(const core::Instance& inst, const FaultScriptConfig& config);

/// Schedules every action of the script onto the engine.  Does NOT install
/// the message policy — pair with a ScriptInjector for that.
void apply_script(const FaultScript& script, engine::EventEngine& engine);

/// The script's per-message loss/duplication policy.  classify() is a pure
/// hash of (seed, from, to, seq): deterministic independent of call order.
/// on_drop() schedules the hold-timer session reset described above.
class ScriptInjector final : public engine::FaultInjector {
 public:
  explicit ScriptInjector(const FaultScript& script);

  engine::MessageFate classify(NodeId from, NodeId to, std::uint64_t seq) override;
  void on_drop(engine::EventEngine& engine, NodeId from, NodeId to,
               engine::SimTime now) override;

 private:
  std::uint64_t seed_;
  double loss_prob_;
  double dup_prob_;
  engine::SimTime detect_delay_;
  engine::SimTime repair_downtime_;
};

}  // namespace ibgp::fault
