#include "fault/sweep.hpp"

#include <chrono>
#include <cstdio>

#include "bgp/selection.hpp"
#include "fault/supervisor.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace ibgp::fault {

namespace {

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf);
}

// Per-cell wall-clock buckets (microseconds).  Volatile by construction —
// timing is schedule- and machine-dependent — so the histogram never feeds
// a fingerprint; it exists for spotting pathological cells in sweeps.
const std::vector<std::int64_t> kCellWallBoundsUs = {100,    300,    1'000,   3'000,
                                                     10'000, 30'000, 100'000, 300'000,
                                                     1'000'000};

}  // namespace

SweepResult run_sweep(std::span<const SweepCell> cells, std::size_t jobs) {
  // Thin wrapper over the supervised runner with its defaults: non-strict
  // error containment (a throwing cell becomes a CellError record instead
  // of sinking every completed cell), no deadline, no journal.
  SweepOptions options;
  options.jobs = jobs;
  return run_sweep(cells, options);
}

std::uint64_t sweep_fingerprint(std::span<const CampaignResult> cells) {
  util::Fingerprint fp;
  for (const auto& cell : cells) fp.add(cell.trace_hash);
  return fp.value();
}

void register_sweep_metrics(obs::MetricsRegistry& registry) {
  registry.histogram("sweep.cell_wall_us", kCellWallBoundsUs, obs::MetricClass::kVolatile);
  register_campaign_metrics(registry);
}

util::json::Value sweep_json(std::span<const SweepCell> cells, const SweepResult& result,
                             bool include_timing) {
  using util::json::Array;
  using util::json::Object;
  using util::json::Value;

  Array rows;
  rows.reserve(result.cells.size());
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CampaignResult& campaign = result.cells[i];
    Object row;
    if (i < cells.size()) {
      row.emplace_back("group", cells[i].group);
      row.emplace_back("instance", cells[i].instance->name());
      row.emplace_back("protocol", core::protocol_name(cells[i].protocol));
      row.emplace_back("seed", cells[i].seed);
    }
    row.emplace_back("trace_hash", hex64(campaign.trace_hash));
    row.emplace_back("reconverged", campaign.reconverged());
    row.emplace_back("clean", campaign.invariants.clean());
    // v4: structured per-cell failure record (null on the happy path).  A
    // supervised cell whose campaign threw carries only this — every other
    // field of the row is default-valued.
    if (campaign.error) {
      Object error;
      error.emplace_back("message", campaign.error->message);
      error.emplace_back("attempts", campaign.error->attempts);
      error.emplace_back("timed_out", campaign.error->timed_out);
      // Additive within v4: per-attempt deadline budgets (ms), in order.
      Array tried;
      for (const std::uint64_t ms : campaign.error->deadlines_tried) {
        tried.emplace_back(ms);
      }
      error.emplace_back("deadlines_tried", std::move(tried));
      row.emplace_back("error", std::move(error));
    } else {
      row.emplace_back("error", Value(nullptr));
    }
    row.emplace_back("truncated", campaign.truncated());
    row.emplace_back("settle_time", campaign.settle_time
                                        ? Value(*campaign.settle_time)
                                        : Value(nullptr));
    row.emplace_back("last_fault_time", campaign.last_fault_time);
    row.emplace_back("faults_applied", campaign.run.faults_applied);
    row.emplace_back("faults_pending", campaign.run.faults_pending);
    row.emplace_back("deliveries", campaign.run.deliveries);
    row.emplace_back("end_time", campaign.run.end_time);
    row.emplace_back("best_flips", campaign.run.best_flips);
    row.emplace_back("messages_dropped", campaign.run.messages_dropped);
    row.emplace_back("messages_duplicated", campaign.run.messages_duplicated);
    row.emplace_back("stale_retained", campaign.run.stale_retained);
    row.emplace_back("igp_epoch_swaps", campaign.run.igp_epoch_swaps);
    row.emplace_back("decisions", campaign.run.decisions_total);
    row.emplace_back("decisions_empty", campaign.run.decisions_empty);
    row.emplace_back("mrai_deferrals", campaign.run.mrai_deferrals);
    {
      // Per-rule provenance breakdown, every rule present in enum order so
      // the document shape is independent of which rules fired.
      Object decided_by;
      for (std::size_t r = 0; r < bgp::kSelectionRuleCount; ++r) {
        decided_by.emplace_back(
            bgp::selection_rule_name(static_cast<bgp::SelectionRule>(r)),
            campaign.run.decisions_by_rule[r]);
      }
      row.emplace_back("decided_by", std::move(decided_by));
    }
    row.emplace_back("blackhole_ticks", campaign.continuity.blackhole_ticks);
    row.emplace_back("stale_ticks", campaign.continuity.stale_ticks);
    row.emplace_back("loop_ticks", campaign.continuity.loop_ticks);
    row.emplace_back("deflection_ticks", campaign.continuity.deflection_ticks);
    row.emplace_back("max_blackhole_window", campaign.continuity.max_blackhole_window);
    row.emplace_back("max_deflection_window", campaign.continuity.max_deflection_window);
    rows.emplace_back(std::move(row));
  }

  Object doc;
  doc.emplace_back("schema", "ibgp-sweep-v4");
  doc.emplace_back("cell_count", result.cells.size());
  doc.emplace_back("fingerprint", hex64(result.fingerprint));
  if (include_timing) {
    // Everything run-dependent lives under one "volatile" key so committed
    // BENCH_*.json regenerations diff fingerprint-only: strip this object
    // and two equal-fingerprint documents are byte-identical.
    Object volatile_fields;
    volatile_fields.emplace_back("jobs", result.jobs);
    volatile_fields.emplace_back("wall_seconds", result.wall_seconds);
    doc.emplace_back("volatile", std::move(volatile_fields));
  }
  doc.emplace_back("cells", std::move(rows));
  return Value(std::move(doc));
}

}  // namespace ibgp::fault
