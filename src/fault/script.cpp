#include "fault/script.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace ibgp::fault {

namespace {

engine::SimTime draw_time(util::Xoshiro256& rng, engine::SimTime lo, engine::SimTime hi) {
  if (hi <= lo) return lo;
  return lo + rng.below(hi - lo + 1);
}

}  // namespace

FaultScript make_fault_script(const core::Instance& inst, const FaultScriptConfig& config) {
  if (config.window_end < config.window_start) {
    throw std::invalid_argument("make_fault_script: empty fault window");
  }
  if (config.session_flaps > 0 && inst.sessions().session_count() == 0) {
    throw std::invalid_argument("make_fault_script: session flaps need sessions");
  }
  if (config.exit_flaps > 0 && inst.exits().empty()) {
    throw std::invalid_argument("make_fault_script: exit flaps need exit paths");
  }
  if ((config.link_cost_changes > 0 || config.link_downs > 0) &&
      inst.physical().link_count() == 0) {
    throw std::invalid_argument("make_fault_script: link churn needs physical links");
  }

  FaultScript script;
  script.seed = config.seed;
  script.loss_prob = std::clamp(config.loss_prob, 0.0, 1.0);
  script.dup_prob = std::clamp(config.dup_prob, 0.0, 1.0);
  script.loss_detect_delay = config.loss_detect_delay;
  script.repair_downtime = config.repair_downtime;
  script.stale_timer = config.stale_timer;

  util::Xoshiro256 rng(util::derive_seed(config.seed, 0xFA017));
  const auto edges = inst.sessions().edges();

  using Kind = FaultAction::Kind;
  for (std::size_t i = 0; i < config.session_flaps; ++i) {
    const auto& edge = edges[rng.pick_index(edges)];
    const engine::SimTime down = draw_time(rng, config.window_start, config.window_end);
    const engine::SimTime hold =
        draw_time(rng, config.min_downtime, config.max_downtime);
    script.actions.push_back({down, Kind::kSessionDown, edge.u, edge.v, kNoPath});
    script.actions.push_back({down + hold, Kind::kSessionUp, edge.u, edge.v, kNoPath});
  }
  // Cold and graceful outages share one draw sequence so that swapping the
  // counts (N cold vs N graceful) replays the identical victim/time pairs.
  for (std::size_t i = 0; i < config.crashes + config.graceful_restarts; ++i) {
    const NodeId victim = static_cast<NodeId>(rng.below(inst.node_count()));
    const engine::SimTime down = draw_time(rng, config.window_start, config.window_end);
    const engine::SimTime outage = draw_time(rng, config.min_outage, config.max_outage);
    const Kind kind = i < config.crashes ? Kind::kCrash : Kind::kGracefulDown;
    script.actions.push_back({down, kind, victim, kNoNode, kNoPath});
    script.actions.push_back({down + outage, Kind::kRestart, victim, kNoNode, kNoPath});
  }
  for (std::size_t i = 0; i < config.exit_flaps; ++i) {
    const PathId p = static_cast<PathId>(rng.below(inst.exits().size()));
    const engine::SimTime down = draw_time(rng, config.window_start, config.window_end);
    const engine::SimTime gap =
        draw_time(rng, config.min_reinject_gap, config.max_reinject_gap);
    script.actions.push_back({down, Kind::kExitWithdraw, kNoNode, kNoNode, p});
    script.actions.push_back({down + gap, Kind::kExitInject, kNoNode, kNoNode, p});
  }
  // IGP churn families are drawn AFTER every pre-existing family, so a
  // config without churn knobs produces a byte-identical script (and trace)
  // to older builds.  Metric jolts and link outages share one draw sequence
  // — (link, start, duration, jitter) per event, the jitter draw consumed
  // either way — mirroring the cold-vs-graceful pairing above.  Both kinds
  // revert: the jolt returns to the configured cost, the outage ends in a
  // link-up, so the script's churn is net-neutral on the cost vector.
  const auto links = inst.physical().links();
  for (std::size_t i = 0; i < config.link_cost_changes + config.link_downs; ++i) {
    const auto& link = links[rng.pick_index(links)];
    const engine::SimTime start = draw_time(rng, config.window_start, config.window_end);
    const engine::SimTime outage =
        draw_time(rng, config.min_link_outage, config.max_link_outage);
    const double jitter = std::max(0.0, config.cost_jitter);
    const Cost delta = std::max<Cost>(
        1, static_cast<Cost>(std::llround(static_cast<double>(link.cost) * jitter)));
    const Cost lo = link.cost > delta ? link.cost - delta : 1;
    const Cost jolted = lo + static_cast<Cost>(rng.below(
                                 static_cast<std::uint64_t>(link.cost + delta - lo) + 1));
    if (i < config.link_cost_changes) {
      script.actions.push_back(
          {start, Kind::kLinkCostChange, link.a, link.b, kNoPath, jolted});
      script.actions.push_back(
          {start + outage, Kind::kLinkCostChange, link.a, link.b, kNoPath, link.cost});
    } else {
      script.actions.push_back({start, Kind::kLinkDown, link.a, link.b, kNoPath});
      script.actions.push_back({start + outage, Kind::kLinkUp, link.a, link.b, kNoPath});
    }
  }
  for (std::size_t i = 0; i < config.partitions; ++i) {
    const NodeId victim = static_cast<NodeId>(rng.below(inst.node_count()));
    const engine::SimTime start = draw_time(rng, config.window_start, config.window_end);
    const engine::SimTime outage =
        draw_time(rng, config.min_link_outage, config.max_link_outage);
    for (const auto& link : links) {
      if (link.a != victim && link.b != victim) continue;
      script.actions.push_back({start, Kind::kLinkDown, link.a, link.b, kNoPath});
      script.actions.push_back({start + outage, Kind::kLinkUp, link.a, link.b, kNoPath});
    }
  }

  std::stable_sort(script.actions.begin(), script.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) { return a.time < b.time; });
  return script;
}

void apply_script(const FaultScript& script, engine::EventEngine& engine) {
  using Kind = FaultAction::Kind;
  for (const FaultAction& action : script.actions) {
    switch (action.kind) {
      case Kind::kSessionDown:
        engine.schedule_session_down(action.a, action.b, action.time);
        break;
      case Kind::kSessionUp:
        engine.schedule_session_up(action.a, action.b, action.time);
        break;
      case Kind::kCrash:
        engine.schedule_crash(action.a, action.time);
        break;
      case Kind::kRestart:
        engine.schedule_restart(action.a, action.time);
        break;
      case Kind::kGracefulDown:
        engine.schedule_graceful_down(action.a, action.time);
        break;
      case Kind::kExitWithdraw:
        engine.withdraw_exit(action.path, action.time);
        break;
      case Kind::kExitInject:
        engine.inject_exit(action.path, action.time);
        break;
      case Kind::kLinkCostChange:
        engine.schedule_link_cost_change(action.a, action.b, action.cost, action.time);
        break;
      case Kind::kLinkDown:
        engine.schedule_link_down(action.a, action.b, action.time);
        break;
      case Kind::kLinkUp:
        engine.schedule_link_up(action.a, action.b, action.time);
        break;
    }
  }
}

ScriptInjector::ScriptInjector(const FaultScript& script)
    : seed_(util::derive_seed(script.seed, 0x1055)),
      loss_prob_(script.loss_prob),
      dup_prob_(script.dup_prob),
      detect_delay_(script.loss_detect_delay),
      repair_downtime_(script.repair_downtime) {}

engine::MessageFate ScriptInjector::classify(NodeId from, NodeId to, std::uint64_t seq) {
  if (loss_prob_ <= 0.0 && dup_prob_ <= 0.0) return engine::MessageFate::kDeliver;
  // Pure per-message hash: the fate of message (from, to, seq) depends only
  // on the seed, never on evaluation order.
  std::uint64_t h = seed_;
  h = util::hash_combine(h, (static_cast<std::uint64_t>(from) << 32) | to);
  h = util::hash_combine(h, seq);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / static_cast<double>(1ULL << 53));
  if (u < loss_prob_) return engine::MessageFate::kDrop;
  if (u < loss_prob_ + dup_prob_) return engine::MessageFate::kDuplicate;
  return engine::MessageFate::kDeliver;
}

void ScriptInjector::on_drop(engine::EventEngine& engine, NodeId from, NodeId to,
                             engine::SimTime now) {
  if (detect_delay_ == 0) return;  // no transport-failure detection: let it rot
  // Hold-timer expiry: the damaged session resets, flushing both ends, then
  // re-establishes — the repair that restores RIB synchrony.
  engine.schedule_session_down(from, to, now + detect_delay_);
  engine.schedule_session_up(from, to, now + detect_delay_ + repair_downtime_);
}

}  // namespace ibgp::fault
