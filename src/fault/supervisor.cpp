#include "fault/supervisor.hpp"

#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "bgp/selection.hpp"
#include "util/parallel.hpp"

namespace ibgp::fault {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

// Same volatile per-cell wall-clock buckets the plain sweep has always used
// (microseconds; see sweep.cpp for rationale).
const std::vector<std::int64_t> kCellWallBoundsUs = {100,    300,    1'000,   3'000,
                                                     10'000, 30'000, 100'000, 300'000,
                                                     1'000'000};

// --- CampaignResult round-trip ----------------------------------------------

template <typename T>
Array num_array(const std::vector<T>& values) {
  Array out;
  out.reserve(values.size());
  for (const auto v : values) out.emplace_back(static_cast<std::uint64_t>(v));
  return out;
}

Array rule_array(const std::array<std::uint64_t, bgp::kSelectionRuleCount>& rules) {
  Array out;
  out.reserve(rules.size());
  for (const auto v : rules) out.emplace_back(v);
  return out;
}

Object run_json(const engine::EventEngine::Result& run) {
  Object out;
  out.emplace_back("converged", run.converged);
  out.emplace_back("budget_exhausted", run.budget_exhausted);
  out.emplace_back("events_pending", run.events_pending);
  out.emplace_back("faults_pending", run.faults_pending);
  out.emplace_back("next_fault_time", run.next_fault_time);
  out.emplace_back("deliveries", run.deliveries);
  out.emplace_back("updates_sent", run.updates_sent);
  out.emplace_back("end_time", run.end_time);
  out.emplace_back("best_flips", run.best_flips);
  out.emplace_back("final_best", num_array(run.final_best));
  out.emplace_back("messages_dropped", run.messages_dropped);
  out.emplace_back("messages_duplicated", run.messages_duplicated);
  out.emplace_back("deliveries_voided", run.deliveries_voided);
  out.emplace_back("faults_applied", run.faults_applied);
  out.emplace_back("eor_markers_sent", run.eor_markers_sent);
  out.emplace_back("stale_retained", run.stale_retained);
  out.emplace_back("stale_swept_eor", run.stale_swept_eor);
  out.emplace_back("stale_swept_expired", run.stale_swept_expired);
  out.emplace_back("igp_epoch_swaps", run.igp_epoch_swaps);
  out.emplace_back("decisions_total", run.decisions_total);
  out.emplace_back("decisions_empty", run.decisions_empty);
  out.emplace_back("mrai_deferrals", run.mrai_deferrals);
  out.emplace_back("decisions_by_rule", rule_array(run.decisions_by_rule));
  {
    Array by_node;
    by_node.reserve(run.decisions_by_node.size());
    for (const auto& rules : run.decisions_by_node) by_node.emplace_back(rule_array(rules));
    out.emplace_back("decisions_by_node", std::move(by_node));
  }
  return out;
}

Object invariants_json(const analysis::InvariantReport& inv) {
  Object out;
  out.emplace_back("stale_best", inv.stale_best);
  out.emplace_back("unsupported_best", inv.unsupported_best);
  out.emplace_back("stale_rib_entries", inv.stale_rib_entries);
  out.emplace_back("missing_rib_entries", inv.missing_rib_entries);
  out.emplace_back("forwarding_loops", inv.forwarding_loops);
  out.emplace_back("unswept_stale", inv.unswept_stale);
  out.emplace_back("igp_mismatch", inv.igp_mismatch);
  out.emplace_back("stale_retained", inv.stale_retained);
  {
    Array violations;
    violations.reserve(inv.violations.size());
    for (const auto& v : inv.violations) violations.emplace_back(v);
    out.emplace_back("violations", std::move(violations));
  }
  return out;
}

Object continuity_json(const analysis::ContinuityReport& cont) {
  Object out;
  out.emplace_back("horizon", cont.horizon);
  out.emplace_back("intervals", cont.intervals);
  out.emplace_back("ok_ticks", cont.ok_ticks);
  out.emplace_back("stale_ticks", cont.stale_ticks);
  out.emplace_back("blackhole_ticks", cont.blackhole_ticks);
  out.emplace_back("loop_ticks", cont.loop_ticks);
  out.emplace_back("deflection_ticks", cont.deflection_ticks);
  out.emplace_back("max_blackhole_window", cont.max_blackhole_window);
  out.emplace_back("max_deflection_window", cont.max_deflection_window);
  {
    Array events;
    events.reserve(cont.churn_events.size());
    for (const auto& e : cont.churn_events) {
      Array tuple;
      tuple.emplace_back(e.time);
      tuple.emplace_back(static_cast<std::uint64_t>(e.kind));
      tuple.emplace_back(static_cast<std::uint64_t>(e.a));
      tuple.emplace_back(static_cast<std::uint64_t>(e.b));
      tuple.emplace_back(e.loop_ticks);
      tuple.emplace_back(e.blackhole_ticks);
      tuple.emplace_back(e.deflection_ticks);
      events.emplace_back(std::move(tuple));
    }
    out.emplace_back("churn_events", std::move(events));
  }
  return out;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("ibgp-journal-v1: " + what);
}

const Value& field(const Value& doc, std::string_view key) {
  const Value* v = doc.find(key);
  if (v == nullptr) bad("missing field '" + std::string(key) + "'");
  return *v;
}

std::uint64_t get_uint(const Value& doc, std::string_view key) {
  try {
    return field(doc, key).as_uint();
  } catch (const std::runtime_error&) {
    bad("field '" + std::string(key) + "' is not a non-negative integer");
  }
}

template <typename T>
std::vector<T> get_nums(const Value& doc, std::string_view key) {
  std::vector<T> out;
  for (const auto& v : field(doc, key).as_array()) out.push_back(static_cast<T>(v.as_uint()));
  return out;
}

std::array<std::uint64_t, bgp::kSelectionRuleCount> get_rules(const Value& value) {
  const auto& arr = value.as_array();
  if (arr.size() != bgp::kSelectionRuleCount) bad("selection-rule histogram length mismatch");
  std::array<std::uint64_t, bgp::kSelectionRuleCount> out{};
  for (std::size_t i = 0; i < arr.size(); ++i) out[i] = arr[i].as_uint();
  return out;
}

engine::EventEngine::Result parse_run(const Value& doc) {
  engine::EventEngine::Result run;
  run.converged = field(doc, "converged").as_bool();
  run.budget_exhausted = field(doc, "budget_exhausted").as_bool();
  run.events_pending = get_uint(doc, "events_pending");
  run.faults_pending = get_uint(doc, "faults_pending");
  run.next_fault_time = get_uint(doc, "next_fault_time");
  run.deliveries = get_uint(doc, "deliveries");
  run.updates_sent = get_uint(doc, "updates_sent");
  run.end_time = get_uint(doc, "end_time");
  run.best_flips = get_uint(doc, "best_flips");
  run.final_best = get_nums<PathId>(doc, "final_best");
  run.messages_dropped = get_uint(doc, "messages_dropped");
  run.messages_duplicated = get_uint(doc, "messages_duplicated");
  run.deliveries_voided = get_uint(doc, "deliveries_voided");
  run.faults_applied = get_uint(doc, "faults_applied");
  run.eor_markers_sent = get_uint(doc, "eor_markers_sent");
  run.stale_retained = get_uint(doc, "stale_retained");
  run.stale_swept_eor = get_uint(doc, "stale_swept_eor");
  run.stale_swept_expired = get_uint(doc, "stale_swept_expired");
  run.igp_epoch_swaps = get_uint(doc, "igp_epoch_swaps");
  run.decisions_total = get_uint(doc, "decisions_total");
  run.decisions_empty = get_uint(doc, "decisions_empty");
  run.mrai_deferrals = get_uint(doc, "mrai_deferrals");
  run.decisions_by_rule = get_rules(field(doc, "decisions_by_rule"));
  for (const auto& rules : field(doc, "decisions_by_node").as_array()) {
    run.decisions_by_node.push_back(get_rules(rules));
  }
  return run;
}

analysis::InvariantReport parse_invariants(const Value& doc) {
  analysis::InvariantReport inv;
  inv.stale_best = get_uint(doc, "stale_best");
  inv.unsupported_best = get_uint(doc, "unsupported_best");
  inv.stale_rib_entries = get_uint(doc, "stale_rib_entries");
  inv.missing_rib_entries = get_uint(doc, "missing_rib_entries");
  inv.forwarding_loops = get_uint(doc, "forwarding_loops");
  inv.unswept_stale = get_uint(doc, "unswept_stale");
  inv.igp_mismatch = get_uint(doc, "igp_mismatch");
  inv.stale_retained = get_uint(doc, "stale_retained");
  for (const auto& v : field(doc, "violations").as_array()) {
    inv.violations.push_back(v.as_string());
  }
  return inv;
}

analysis::ContinuityReport parse_continuity(const Value& doc) {
  analysis::ContinuityReport cont;
  cont.horizon = get_uint(doc, "horizon");
  cont.intervals = get_uint(doc, "intervals");
  cont.ok_ticks = get_uint(doc, "ok_ticks");
  cont.stale_ticks = get_uint(doc, "stale_ticks");
  cont.blackhole_ticks = get_uint(doc, "blackhole_ticks");
  cont.loop_ticks = get_uint(doc, "loop_ticks");
  cont.deflection_ticks = get_uint(doc, "deflection_ticks");
  cont.max_blackhole_window = get_uint(doc, "max_blackhole_window");
  cont.max_deflection_window = get_uint(doc, "max_deflection_window");
  for (const auto& entry : field(doc, "churn_events").as_array()) {
    const auto& tuple = entry.as_array();
    if (tuple.size() != 7) bad("churn_events entry: expected 7 elements");
    analysis::ChurnEventCost e;
    e.time = tuple[0].as_uint();
    const std::uint64_t kind = tuple[1].as_uint();
    if (kind > static_cast<std::uint64_t>(engine::FaultKind::kLinkUp)) {
      bad("churn_events entry kind out of range");
    }
    e.kind = static_cast<engine::FaultKind>(kind);
    e.a = static_cast<NodeId>(tuple[2].as_uint());
    e.b = static_cast<NodeId>(tuple[3].as_uint());
    e.loop_ticks = tuple[4].as_uint();
    e.blackhole_ticks = tuple[5].as_uint();
    e.deflection_ticks = tuple[6].as_uint();
    cont.churn_events.push_back(e);
  }
  return cont;
}

}  // namespace

std::string journal_cell_path(const std::string& journal_dir, std::size_t index) {
  return journal_dir + "/cell-" + std::to_string(index) + ".json";
}

util::json::Value journal_cell_json(std::size_t index, const SweepCell& cell,
                                    const CampaignResult& result) {
  Object doc;
  doc.emplace_back("schema", kJournalSchema);
  doc.emplace_back("index", index);
  doc.emplace_back("group", cell.group);
  doc.emplace_back("seed", cell.seed);
  doc.emplace_back("protocol", core::protocol_name(cell.protocol));
  doc.emplace_back("instance", cell.instance->name());
  doc.emplace_back("trace_hash", result.trace_hash);
  doc.emplace_back("last_fault_time", result.last_fault_time);
  doc.emplace_back("settle_time",
                   result.settle_time ? Value(*result.settle_time) : Value(nullptr));
  doc.emplace_back("run", run_json(result.run));
  doc.emplace_back("invariants", invariants_json(result.invariants));
  doc.emplace_back("continuity", continuity_json(result.continuity));
  return Value(std::move(doc));
}

CampaignResult parse_journal_cell(const util::json::Value& doc) {
  if (!doc.is_object()) bad("document is not an object");
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != kJournalSchema) {
    bad("schema mismatch (want '" + std::string(kJournalSchema) + "')");
  }
  CampaignResult result;
  result.trace_hash = get_uint(doc, "trace_hash");
  result.last_fault_time = get_uint(doc, "last_fault_time");
  const Value& settle = field(doc, "settle_time");
  if (!settle.is_null()) result.settle_time = settle.as_uint();
  result.run = parse_run(field(doc, "run"));
  result.invariants = parse_invariants(field(doc, "invariants"));
  result.continuity = parse_continuity(field(doc, "continuity"));
  return result;
}

bool write_journal_cell(const std::string& journal_dir, std::size_t index,
                        const SweepCell& cell, const CampaignResult& result) {
  std::error_code ec;
  std::filesystem::create_directories(journal_dir, ec);
  if (ec) return false;
  return util::json::write_file_atomic(journal_cell_path(journal_dir, index),
                                       journal_cell_json(index, cell, result));
}

std::optional<CampaignResult> load_journal_cell(const std::string& journal_dir,
                                                std::size_t index, const SweepCell& cell) {
  const auto doc = util::json::read_file(journal_cell_path(journal_dir, index));
  if (!doc) return std::nullopt;
  try {
    // Identity guard: a journal written for a different sweep layout (cells
    // reordered, reseeded, re-protocoled) must not masquerade as this cell.
    if (field(*doc, "index").as_uint() != index) return std::nullopt;
    if (field(*doc, "group").as_string() != cell.group) return std::nullopt;
    if (field(*doc, "seed").as_uint() != cell.seed) return std::nullopt;
    if (field(*doc, "protocol").as_string() != core::protocol_name(cell.protocol)) {
      return std::nullopt;
    }
    if (field(*doc, "instance").as_string() != cell.instance->name()) return std::nullopt;
    return parse_journal_cell(*doc);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

void register_supervisor_metrics(obs::MetricsRegistry& registry) {
  registry.counter("supervisor.cell_errors", obs::MetricClass::kVolatile);
  registry.counter("supervisor.cell_timeouts", obs::MetricClass::kVolatile);
  registry.counter("supervisor.cell_retries", obs::MetricClass::kVolatile);
  registry.counter("supervisor.journal_hits", obs::MetricClass::kVolatile);
  registry.counter("supervisor.journal_writes", obs::MetricClass::kVolatile);
  register_sweep_metrics(registry);
}

SweepResult run_sweep(std::span<const SweepCell> cells, const SweepOptions& options) {
  SweepResult result;
  result.jobs = util::resolve_jobs(options.jobs);
  result.cells.resize(cells.size());

  const auto bump = [&](std::string_view name) {
    if (options.metrics != nullptr) {
      options.metrics->counter(name, obs::MetricClass::kVolatile).increment();
    }
  };

  const auto start = std::chrono::steady_clock::now();

  // Resume pass: journaled cells load back; only the rest fan out.
  std::vector<std::size_t> todo;
  todo.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (options.resume && !options.journal_dir.empty()) {
      if (auto loaded = load_journal_cell(options.journal_dir, i, cells[i])) {
        result.cells[i] = *std::move(loaded);
        bump("supervisor.journal_hits");
        continue;
      }
    }
    todo.push_back(i);
  }

  util::parallel_for(todo.size(), result.jobs, [&](std::size_t k) {
    const std::size_t i = todo[k];
    const SweepCell& cell = cells[i];
    if (cell.options.trace != nullptr && cell.options.trace->enabled()) {
      Object fields;
      fields.emplace_back("index", i);
      fields.emplace_back("group", cell.group);
      fields.emplace_back("protocol", core::protocol_name(cell.protocol));
      fields.emplace_back("seed", cell.seed);
      cell.options.trace->emit(0, "cell", std::move(fields));
    }
    const auto cell_start = std::chrono::steady_clock::now();

    CampaignOptions opts = cell.options;
    if (options.cell_deadline.count() > 0) opts.deadline = options.cell_deadline;
    std::uint32_t attempts = 0;
    std::vector<std::uint64_t> deadlines_tried;
    for (;;) {
      ++attempts;
      deadlines_tried.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(opts.deadline).count()));
      try {
        result.cells[i] = run_campaign(*cell.instance, cell.protocol, cell.script, opts);
        break;
      } catch (const engine::DeadlineExceeded& e) {
        bump("supervisor.cell_timeouts");
        if (attempts <= options.max_retries) {
          // Backoff by doubling the budget: transient load clears, a cell
          // that is genuinely too big converges to a timed_out error.
          bump("supervisor.cell_retries");
          opts.deadline *= 2;
          continue;
        }
        if (options.strict) throw;
        CampaignResult failed;
        failed.error = CellError{e.what(), attempts, /*timed_out=*/true,
                                 deadlines_tried};
        result.cells[i] = std::move(failed);
        bump("supervisor.cell_errors");
        break;
      } catch (const std::exception& e) {
        // Deterministic throw: retrying replays the same failure, so don't.
        if (options.strict) throw;
        CampaignResult failed;
        failed.error = CellError{e.what(), attempts, /*timed_out=*/false,
                                 deadlines_tried};
        result.cells[i] = std::move(failed);
        bump("supervisor.cell_errors");
        break;
      }
    }

    if (cell.options.metrics != nullptr) {
      const auto cell_elapsed = std::chrono::steady_clock::now() - cell_start;
      cell.options.metrics
          ->histogram("sweep.cell_wall_us", kCellWallBoundsUs, obs::MetricClass::kVolatile)
          .observe(static_cast<std::int64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(cell_elapsed).count()));
    }
    if (!options.journal_dir.empty() && !result.cells[i].failed()) {
      if (write_journal_cell(options.journal_dir, i, cell, result.cells[i])) {
        bump("supervisor.journal_writes");
      }
    }
  });

  const auto elapsed = std::chrono::steady_clock::now() - start;
  result.wall_seconds = std::chrono::duration<double>(elapsed).count();
  result.fingerprint = sweep_fingerprint(result.cells);
  return result;
}

}  // namespace ibgp::fault
