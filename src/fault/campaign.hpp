#pragma once
// Fault-campaign runner: one seeded FaultScript against one protocol, with
// an invariant verdict and a determinism fingerprint.
//
// This is the harness the resilience experiments build on (bench_faults,
// examples/fault_storm, tests/test_faults): inject every exit at t=0, let
// the scripted faults rain down, run to quiescence, then ask
// analysis/invariants whether the surviving state is consistent.  The
// trace_hash fingerprints the *entire observable history* — every
// best-route flap, every applied fault, drop/dup counts and the final
// routing — so two runs agree on the hash iff they behaved identically,
// which is how the `same seed -> same trace` guarantee is enforced.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "analysis/continuity.hpp"
#include "analysis/invariants.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "engine/event_engine.hpp"
#include "fault/script.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ibgp::fault {

struct CampaignOptions {
  std::size_t max_deliveries = 1'000'000;
  engine::EventEngine::DelayFn delay = {};  ///< forwarded to the engine
  engine::SimTime mrai = 0;
  /// Optional observability hookups, both non-owning and nullable.  The
  /// registry receives the engine's deterministic counters plus the
  /// campaign.* aggregates (pre-register via register_campaign_metrics so
  /// snapshot order is fixed before any parallel fan-out).  The trace sink
  /// receives the engine's ibgp-trace-v1 stream plus campaign verdict
  /// records; in ring mode, an unclean invariant verdict dumps the ring
  /// (flight-recorder semantics).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
  /// Hot-path profiler spans (engine.span.*): delivery, choose_best, and
  /// session-transfer wall time into volatile histograms of `metrics`.
  /// No-op without a registry; off by default because even a monotonic
  /// clock read per delivery is measurable on the microbenchmarks.
  bool profile = false;
  /// Wall-clock budget for the engine run; zero disables.  Cooperative:
  /// checked between events (EventEngine::set_deadline), an expired budget
  /// makes run_campaign throw engine::DeadlineExceeded.  Purely an
  /// execution guard — it never influences virtual-time behavior — used by
  /// the sweep supervisor (fault/supervisor.hpp) to fence runaway cells.
  std::chrono::milliseconds deadline{0};
};

/// Structured failure record for one supervised sweep cell: the campaign
/// threw instead of completing.  Under the supervisor's default (non-strict)
/// policy this record replaces the result — the rest of the sweep survives.
struct CellError {
  std::string message;         ///< the exception's what() text
  std::uint32_t attempts = 1;  ///< total attempts, retries included
  bool timed_out = false;      ///< DeadlineExceeded (vs a deterministic throw)
  /// Deadline budget (ms) granted to each attempt, in order — the
  /// supervisor's doubling-backoff history, so a timed-out cell is
  /// diagnosable from the sweep JSON alone ("failed even at 8x").
  std::vector<std::uint64_t> deadlines_tried;
};

struct CampaignResult {
  engine::EventEngine::Result run;          ///< raw engine outcome
  analysis::InvariantReport invariants;     ///< exact only when run.converged
  /// Tick-by-tick forwarding-plane accounting over the whole campaign
  /// (blackhole / stale-use / loop windows) — exact regardless of
  /// convergence, since it replays the engine's complete history.
  analysis::ContinuityReport continuity;
  std::uint64_t trace_hash = 0;             ///< fingerprint of the full history
  /// When the final *applied* fault landed.  A truncated run (see
  /// truncated()) may have scheduled faults it never reached; those are
  /// counted in run.faults_pending (earliest at run.next_fault_time), not
  /// here, so they cannot silently vanish from settle/continuity math.
  engine::SimTime last_fault_time = 0;
  /// Virtual ticks from the last applied fault to quiescence.  Engaged only
  /// when the run reconverged: 0 means "instantly settled" (quiescent at
  /// the last fault itself), while nullopt means "never settled" (budget
  /// truncation) — aggregators must not fold the two together.
  std::optional<engine::SimTime> settle_time;
  /// Engaged only on a supervised cell whose campaign threw (timeout or
  /// deterministic exception); every other field is then default-valued.
  std::optional<CellError> error;

  [[nodiscard]] bool failed() const { return error.has_value(); }
  [[nodiscard]] bool reconverged() const { return run.converged; }
  [[nodiscard]] bool healthy() const { return run.converged && invariants.clean(); }
  /// The delivery budget cut the campaign short: the history (and every
  /// statistic above) covers only [0, run.end_time).
  [[nodiscard]] bool truncated() const { return !run.converged; }
};

/// Runs the campaign: all exits injected at t=0, script faults + message
/// policy applied, engine run to quiescence or the delivery budget.
CampaignResult run_campaign(const core::Instance& inst, core::ProtocolKind protocol,
                            const FaultScript& script, const CampaignOptions& options = {});

/// Runs the same campaign as run_campaign but stops after
/// `deliveries_before_kill` deliveries and captures the engine state — the
/// "kill at this tick" half of the checkpoint/restore oracle (serialize the
/// state with ckpt::save_checkpoint).  Emits a "checkpoint" ibgp-trace-v1
/// marker when a trace sink is attached.  The metrics registry is
/// deliberately NOT attached to the partial run: counters flush on resume,
/// so the resumed registry matches the uninterrupted one exactly.
engine::EngineState campaign_checkpoint(const core::Instance& inst,
                                        core::ProtocolKind protocol,
                                        const FaultScript& script,
                                        const CampaignOptions& options,
                                        std::size_t deliveries_before_kill);

/// Resumes a campaign from a captured state: rebuilds the engine over the
/// same instance/protocol, re-creates the script's message policy, restores,
/// and runs to quiescence or the ORIGINAL budget (options.max_deliveries
/// counts cumulative deliveries, so pass the same options as the
/// uninterrupted run).  Guarantee (pinned by tests/test_ckpt.cpp): the
/// returned CampaignResult — Result, trace hash, invariants, continuity,
/// settle time — is identical to the uninterrupted run_campaign's, and a
/// fresh metrics registry ends up byte-identical too.  Emits a "resume"
/// marker when a trace sink is attached.
CampaignResult resume_campaign(const core::Instance& inst, core::ProtocolKind protocol,
                               const FaultScript& script,
                               const engine::EngineState& state,
                               const CampaignOptions& options);

/// Fingerprint of an engine's observable history (flap log, fault log,
/// final best routes, message-fate counters, decision-provenance tallies).
/// Exposed so callers driving the engine manually can make the same
/// determinism claim.
std::uint64_t trace_hash(const engine::EventEngine& engine,
                         const engine::EventEngine::Result& result);

/// Pre-registers every deterministic metric a campaign can touch —
/// campaign.* aggregates, the settle-time histogram and the full
/// engine.* family — so the registry's insertion order (and therefore its
/// snapshots and fingerprint) is fixed before cells fan out across worker
/// threads.  Idempotent.
void register_campaign_metrics(obs::MetricsRegistry& registry);

}  // namespace ibgp::fault
