#pragma once
// Supervised, resumable sweep execution.
//
// The plain run_sweep (fault/sweep.hpp) fans self-contained cells across a
// worker pool and assumes every campaign completes.  The supervisor wraps
// that fan-out with the machinery long campaigns need to survive the real
// world:
//
//  * graceful degradation — a cell whose campaign throws no longer brings
//    the whole sweep down (the old policy rethrew the lowest-index
//    exception and discarded every completed cell).  The failing cell's
//    result becomes a structured CellError record; the rest of the sweep
//    survives.  SweepOptions::strict restores abort-on-first-error.
//  * per-cell wall-clock deadlines — SweepOptions::cell_deadline arms the
//    engine's cooperative deadline for each cell; a cell that blows it is
//    retried with a doubled budget up to max_retries times (backoff for
//    "the machine hiccuped"; a cell that is genuinely too big eventually
//    lands as a timed_out CellError).  Deterministic exceptions are NOT
//    retried — same input, same throw.
//  * a cell-completion journal — with journal_dir set, every completed
//    cell is written (atomically, ibgp-journal-v1) to
//    <journal_dir>/cell-<index>.json as soon as it finishes.  A sweep
//    killed at ANY instant — SIGKILL included — can be rerun with
//    resume=true: journaled cells load back (guarded by an identity header
//    of group/seed/protocol/instance), only missing cells re-execute, and
//    the final SweepResult (fingerprint, sweep_json document) is
//    byte-identical to the uninterrupted run's.  Error cells are NOT
//    journaled, so a resume retries them.
//
// Supervision telemetry (retries, timeouts, errors, journal hits/writes)
// lands in SweepOptions::metrics under supervisor.* — kVolatile, since it
// depends on wall clock and kill history, never on the simulated behavior.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "fault/sweep.hpp"
#include "util/json.hpp"

namespace ibgp::fault {

/// Schema tag of per-cell journal files.
inline constexpr std::string_view kJournalSchema = "ibgp-journal-v1";

struct SweepOptions {
  /// Worker count (0 = one per hardware thread; clamped to util::kMaxJobs).
  std::size_t jobs = 1;
  /// Abort on the first failing cell (lowest index wins, the historical
  /// policy) instead of recording a CellError and continuing.
  bool strict = false;
  /// Per-cell wall-clock budget; zero disables.  See file comment.
  std::chrono::milliseconds cell_deadline{0};
  /// Extra attempts granted to a cell that exceeded its deadline, each with
  /// double the previous budget.  Ignored for deterministic throws.
  std::size_t max_retries = 2;
  /// Directory for the cell-completion journal; empty disables journaling.
  /// Created (recursively) on first use.
  std::string journal_dir;
  /// Load journaled cells from journal_dir instead of re-running them.
  bool resume = false;
  /// Registry for the supervisor.* telemetry counters (non-owning,
  /// nullable).  Distinct from the per-cell CampaignOptions::metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Supervised sweep: same deterministic per-cell results and index-order
/// aggregation as run_sweep(cells, jobs), plus the error containment,
/// deadlines, and journal described in the file comment.  In strict mode
/// rethrows the lowest-index cell failure after all workers drain.
SweepResult run_sweep(std::span<const SweepCell> cells, const SweepOptions& options);

/// Pre-registers the supervisor.* telemetry counters (all kVolatile), plus
/// the whole sweep/campaign/engine family via register_sweep_metrics, so
/// registry order is fixed before the worker fan-out.  Idempotent.
void register_supervisor_metrics(obs::MetricsRegistry& registry);

/// Journal path of cell `index` under `journal_dir`.
[[nodiscard]] std::string journal_cell_path(const std::string& journal_dir,
                                            std::size_t index);

/// Full round-trip serialization of one completed cell (ibgp-journal-v1):
/// identity header (index, group, seed, protocol, instance name) plus the
/// complete CampaignResult, so a resumed sweep reproduces sweep_json
/// byte-for-byte without re-running the cell.
[[nodiscard]] util::json::Value journal_cell_json(std::size_t index,
                                                  const SweepCell& cell,
                                                  const CampaignResult& result);

/// Decodes a journal document.  Throws std::runtime_error naming the
/// missing/ill-typed field on malformed input.
[[nodiscard]] CampaignResult parse_journal_cell(const util::json::Value& doc);

/// Atomically writes cell `index`'s journal entry.  Returns false on I/O
/// failure (journaling is best-effort; the sweep itself is unaffected).
bool write_journal_cell(const std::string& journal_dir, std::size_t index,
                        const SweepCell& cell, const CampaignResult& result);

/// Loads cell `index`'s journal entry if present AND its identity header
/// matches `cell` (schema, index, group, seed, protocol, instance name).
/// Any mismatch, parse failure, or absent file yields std::nullopt — the
/// cell simply re-runs.
[[nodiscard]] std::optional<CampaignResult> load_journal_cell(
    const std::string& journal_dir, std::size_t index, const SweepCell& cell);

}  // namespace ibgp::fault
