#pragma once
// CNF formulas: the source side of the Section 5 reduction.
//
// Variables are 1-based (DIMACS convention); a literal is +v or -v.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ibgp::sat {

/// A literal: variable index (1-based) with sign.
struct Lit {
  std::int32_t value = 0;  // +v or -v, never 0

  [[nodiscard]] std::uint32_t var() const { return static_cast<std::uint32_t>(value < 0 ? -value : value); }
  [[nodiscard]] bool positive() const { return value > 0; }
  [[nodiscard]] Lit negated() const { return Lit{-value}; }

  friend bool operator==(const Lit&, const Lit&) = default;
};

using Clause = std::vector<Lit>;

/// Truth assignment: assignment[v] for v in 1..num_vars (index 0 unused).
using Assignment = std::vector<bool>;

class Formula {
 public:
  Formula() = default;
  explicit Formula(std::uint32_t num_vars) : num_vars_(num_vars) {}

  [[nodiscard]] std::uint32_t num_vars() const { return num_vars_; }
  [[nodiscard]] std::size_t num_clauses() const { return clauses_.size(); }
  [[nodiscard]] const std::vector<Clause>& clauses() const { return clauses_; }

  /// Adds a clause; grows num_vars if a literal exceeds it.  Throws on a
  /// zero literal or an empty clause.
  void add_clause(Clause clause);

  /// True iff `assignment` (size num_vars+1) satisfies every clause.
  [[nodiscard]] bool satisfied_by(const Assignment& assignment) const;

  /// DIMACS "p cnf" serialization.
  [[nodiscard]] std::string to_dimacs() const;

 private:
  std::uint32_t num_vars_ = 0;
  std::vector<Clause> clauses_;
};

/// Parses DIMACS CNF (comments, "p cnf" header, zero-terminated clauses).
/// Throws std::runtime_error on malformed input.
Formula parse_dimacs(std::string_view text);

/// Uniform random 3-SAT with `clauses` clauses over `vars` variables; no
/// clause contains a variable twice (tautologies and duplicates avoided).
Formula random_3sat(std::uint32_t vars, std::size_t clauses, std::uint64_t seed);

}  // namespace ibgp::sat
