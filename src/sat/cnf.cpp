#include "sat/cnf.hpp"

#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ibgp::sat {

void Formula::add_clause(Clause clause) {
  if (clause.empty()) throw std::invalid_argument("Formula: empty clause");
  for (const Lit lit : clause) {
    if (lit.value == 0) throw std::invalid_argument("Formula: zero literal");
    num_vars_ = std::max(num_vars_, lit.var());
  }
  clauses_.push_back(std::move(clause));
}

bool Formula::satisfied_by(const Assignment& assignment) const {
  for (const Clause& clause : clauses_) {
    bool satisfied = false;
    for (const Lit lit : clause) {
      if (lit.var() >= assignment.size()) return false;
      if (assignment[lit.var()] == lit.positive()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string Formula::to_dimacs() const {
  std::ostringstream oss;
  oss << "p cnf " << num_vars_ << ' ' << clauses_.size() << "\n";
  for (const Clause& clause : clauses_) {
    for (const Lit lit : clause) oss << lit.value << ' ';
    oss << "0\n";
  }
  return oss.str();
}

Formula parse_dimacs(std::string_view text) {
  Formula formula;
  Clause current;
  bool saw_header = false;
  std::size_t line_no = 0;
  for (std::string_view line : util::split(text, '\n')) {
    ++line_no;
    const auto tokens = util::split_ws(line);
    if (tokens.empty() || tokens[0] == "c") continue;
    if (tokens[0] == "p") {
      if (tokens.size() != 4 || tokens[1] != "cnf" || !util::parse_u64(tokens[2]) ||
          !util::parse_u64(tokens[3])) {
        throw std::runtime_error("DIMACS: bad header at line " + std::to_string(line_no));
      }
      saw_header = true;
      continue;
    }
    for (const auto token : tokens) {
      const auto value = util::parse_i64(token);
      if (!value || *value > INT32_MAX || *value < INT32_MIN) {
        throw std::runtime_error("DIMACS: bad literal at line " + std::to_string(line_no));
      }
      if (*value == 0) {
        if (!current.empty()) formula.add_clause(std::move(current));
        current.clear();
      } else {
        current.push_back(Lit{static_cast<std::int32_t>(*value)});
      }
    }
  }
  if (!current.empty()) formula.add_clause(std::move(current));
  if (!saw_header) throw std::runtime_error("DIMACS: missing 'p cnf' header");
  return formula;
}

Formula random_3sat(std::uint32_t vars, std::size_t clauses, std::uint64_t seed) {
  if (vars < 3) throw std::invalid_argument("random_3sat: need at least 3 variables");
  util::Xoshiro256 rng(seed);
  Formula formula(vars);
  for (std::size_t i = 0; i < clauses; ++i) {
    // Three distinct variables, random signs.
    std::uint32_t a = static_cast<std::uint32_t>(1 + rng.below(vars));
    std::uint32_t b = a;
    while (b == a) b = static_cast<std::uint32_t>(1 + rng.below(vars));
    std::uint32_t c = a;
    while (c == a || c == b) c = static_cast<std::uint32_t>(1 + rng.below(vars));
    auto lit = [&](std::uint32_t v) {
      return Lit{rng.chance(0.5) ? static_cast<std::int32_t>(v)
                                 : -static_cast<std::int32_t>(v)};
    };
    formula.add_clause({lit(a), lit(b), lit(c)});
  }
  return formula;
}

}  // namespace ibgp::sat
