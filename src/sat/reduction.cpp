#include "sat/reduction.hpp"

#include <stdexcept>
#include <string>

#include "topo/builder.hpp"

namespace ibgp::sat {

namespace {
constexpr Cost kFar = 1000;  // backbone cost isolating gadget metrics
}

Reduction reduce_to_ibgp(const Formula& formula) {
  if (formula.num_vars() == 0 || formula.num_clauses() == 0) {
    throw std::invalid_argument("reduce_to_ibgp: empty formula");
  }
  for (const Clause& clause : formula.clauses()) {
    if (clause.size() != 3) {
      throw std::invalid_argument("reduce_to_ibgp: clauses must have exactly 3 literals");
    }
  }

  topo::InstanceBuilder b;
  std::vector<VariableGadget> vars(formula.num_vars() + 1);
  std::vector<ClauseGadget> clauses(formula.num_clauses());

  netsim::ClusterId next_cluster = 0;
  BgpId next_peer = 1001;

  // --- variable gadgets ----------------------------------------------------
  for (std::uint32_t v = 1; v <= formula.num_vars(); ++v) {
    VariableGadget& gadget = vars[v];
    const std::string sv = std::to_string(v);
    const auto cluster_t = next_cluster++;
    const auto cluster_f = next_cluster++;
    gadget.r_true = b.reflector("xT" + sv, cluster_t);
    gadget.c_true = b.client("cT" + sv, cluster_t);
    gadget.r_false = b.reflector("xF" + sv, cluster_f);
    gadget.c_false = b.client("cF" + sv, cluster_f);

    b.link("xT" + sv, "cT" + sv, 10);
    b.link("xF" + sv, "cF" + sv, 10);
    b.link("xT" + sv, "cF" + sv, 2);  // dotted: prefer the other side
    b.link("xF" + sv, "cT" + sv, 2);
    b.link("xT" + sv, "xF" + sv, 10);

    topo::ExitSpec spec_t;
    spec_t.name = "eT" + sv;
    spec_t.at = "cT" + sv;
    spec_t.next_as = v;  // private AS B_v
    spec_t.med = 1;
    spec_t.ebgp_peer = next_peer++;
    b.exit(spec_t);

    topo::ExitSpec spec_f = spec_t;
    spec_f.name = "eF" + sv;
    spec_f.at = "cF" + sv;
    spec_f.ebgp_peer = next_peer++;
    b.exit(spec_f);
  }

  // --- clause gadgets (rings + taps) ---------------------------------------
  for (std::size_t j = 0; j < formula.num_clauses(); ++j) {
    ClauseGadget& gadget = clauses[j];
    const Clause& clause = formula.clauses()[j];
    const AsId clause_as = formula.num_vars() + 1 + static_cast<AsId>(j);
    const std::string sj = std::to_string(j);

    for (int k = 0; k < 3; ++k) {
      const std::string sk = sj + "_" + std::to_string(k);
      const auto ring_cluster = next_cluster++;
      gadget.ring_rr[k] = b.reflector("K" + sk, ring_cluster);
      gadget.ring_client[k] = b.client("kq" + sk, ring_cluster);
      b.link("K" + sk, "kq" + sk, 3);

      topo::ExitSpec q;
      q.name = "q" + sk;
      q.at = "kq" + sk;
      q.next_as = clause_as;
      q.med = 1;
      q.ebgp_peer = next_peer++;
      b.exit(q);
    }
    // Dotted prev-links: each ring reflector 2 away from the previous
    // cluster's exit, 3 from its own — the inverter metric.
    for (int k = 0; k < 3; ++k) {
      const int prev = (k + 2) % 3;
      b.link("K" + sj + "_" + std::to_string(k),
             "kq" + sj + "_" + std::to_string(prev), 2);
    }

    for (int k = 0; k < 3; ++k) {
      const Lit lit = clause[static_cast<std::size_t>(k)];
      const std::string sk = sj + "_" + std::to_string(k);
      const auto tap_cluster = next_cluster++;
      gadget.tap_rr[k] = b.reflector("T" + sk, tap_cluster);
      gadget.tap_client[k] = b.client("tc" + sk, tap_cluster);
      b.link("T" + sk, "tc" + sk, 10);
      // Suppressor hookup: dotted to the OPPOSITE-polarity variable exit, so
      // the tap is silenced exactly when the literal is false.
      const std::string suppressor =
          (lit.positive() ? "cF" : "cT") + std::to_string(lit.var());
      b.link("T" + sk, suppressor, 2);

      topo::ExitSpec tau;
      tau.name = "tau" + sk;
      tau.at = "tc" + sk;
      tau.next_as = clause_as;
      tau.med = 0;  // MED-eliminates every ring exit q of this clause
      tau.ebgp_peer = next_peer++;
      b.exit(tau);
    }
  }

  // --- backbone: connect gadget regions with far links ---------------------
  for (std::uint32_t v = 2; v <= formula.num_vars(); ++v) {
    b.link("xT" + std::to_string(v - 1), "xT" + std::to_string(v), kFar);
  }
  b.link("xT" + std::to_string(formula.num_vars()), "K0_0", kFar);
  for (std::size_t j = 1; j < formula.num_clauses(); ++j) {
    b.link("K" + std::to_string(j - 1) + "_0", "K" + std::to_string(j) + "_0", kFar);
  }

  core::Instance instance = b.build("sat-reduction");

  // Resolve path ids now that the exit table exists.
  for (std::uint32_t v = 1; v <= formula.num_vars(); ++v) {
    vars[v].e_true = instance.exits().find_by_name("eT" + std::to_string(v));
    vars[v].e_false = instance.exits().find_by_name("eF" + std::to_string(v));
  }
  for (std::size_t j = 0; j < formula.num_clauses(); ++j) {
    for (int k = 0; k < 3; ++k) {
      const std::string sk = std::to_string(j) + "_" + std::to_string(k);
      clauses[j].q[k] = instance.exits().find_by_name("q" + sk);
      clauses[j].tau[k] = instance.exits().find_by_name("tau" + sk);
    }
  }

  return Reduction{std::move(instance), std::move(vars), std::move(clauses)};
}

std::vector<std::vector<NodeId>> Reduction::steering(const Assignment& assignment) const {
  std::vector<std::vector<NodeId>> schedule;

  // 1. Clients pin their own exits.
  for (std::size_t v = 1; v < vars.size(); ++v) {
    schedule.push_back({vars[v].c_true});
    schedule.push_back({vars[v].c_false});
  }
  for (const ClauseGadget& clause : clauses) {
    for (int k = 0; k < 3; ++k) {
      schedule.push_back({clause.ring_client[k]});
      schedule.push_back({clause.tap_client[k]});
    }
  }

  // 2. Variable gadgets: activate the chosen side's reflector first so it
  //    advertises its exit; the other reflector then locks onto it and goes
  //    silent (the Fig-2 sequential convergence).
  for (std::size_t v = 1; v < vars.size(); ++v) {
    const bool value = v < assignment.size() && assignment[v];
    const NodeId first = value ? vars[v].r_true : vars[v].r_false;
    const NodeId second = value ? vars[v].r_false : vars[v].r_true;
    schedule.push_back({first});
    schedule.push_back({second});
    schedule.push_back({first});  // re-read: stays put
  }

  // 3. Taps observe the variable state; true literals start advertising tau.
  for (const ClauseGadget& clause : clauses) {
    for (int k = 0; k < 3; ++k) schedule.push_back({clause.tap_rr[k]});
  }

  // 4. Ring reflectors see the defusers and freeze.
  for (const ClauseGadget& clause : clauses) {
    for (int k = 0; k < 3; ++k) schedule.push_back({clause.ring_rr[k]});
  }

  // 5. Two cleanup rounds over everybody, sequentially.
  for (int round = 0; round < 2; ++round) {
    for (NodeId v = 0; v < instance.node_count(); ++v) schedule.push_back({v});
  }
  return schedule;
}

}  // namespace ibgp::sat
