#pragma once
// A small DPLL SAT solver: unit propagation, pure-literal elimination, and
// most-occurring-variable branching.  Decides the source instances of the
// Section 5 reduction and cross-checks the Stable-I-BGP search
// (stable(reduce(phi)) <=> DPLL(phi)).

#include <cstdint>
#include <optional>

#include "sat/cnf.hpp"

namespace ibgp::sat {

struct SolveResult {
  bool satisfiable = false;
  /// A satisfying assignment (index 0 unused) when satisfiable.
  Assignment assignment;
  /// Search statistics.
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
};

/// Decides `formula`.  Complete (always terminates with the right answer).
SolveResult solve(const Formula& formula);

}  // namespace ibgp::sat
