#include "sat/dpll.hpp"

#include <algorithm>
#include <vector>

namespace ibgp::sat {

namespace {

enum class Value : std::int8_t { kFree = -1, kFalse = 0, kTrue = 1 };

struct Solver {
  const Formula* formula;
  std::vector<Value> values;  // 1-based
  SolveResult result;

  [[nodiscard]] Value value_of(Lit lit) const {
    const Value v = values[lit.var()];
    if (v == Value::kFree) return Value::kFree;
    const bool truth = (v == Value::kTrue) == lit.positive();
    return truth ? Value::kTrue : Value::kFalse;
  }

  /// Returns false on conflict.  Applies unit propagation to fixpoint.
  bool propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& clause : formula->clauses()) {
        std::size_t free_count = 0;
        Lit free_lit{0};
        bool satisfied = false;
        for (const Lit lit : clause) {
          const Value v = value_of(lit);
          if (v == Value::kTrue) {
            satisfied = true;
            break;
          }
          if (v == Value::kFree) {
            ++free_count;
            free_lit = lit;
          }
        }
        if (satisfied) continue;
        if (free_count == 0) return false;  // conflict
        if (free_count == 1) {
          values[free_lit.var()] = free_lit.positive() ? Value::kTrue : Value::kFalse;
          ++result.propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  /// Assigns variables appearing with only one polarity among unsatisfied
  /// clauses.  Returns true if anything was assigned.
  bool pure_literals() {
    std::vector<std::uint8_t> seen_pos(formula->num_vars() + 1, 0);
    std::vector<std::uint8_t> seen_neg(formula->num_vars() + 1, 0);
    for (const Clause& clause : formula->clauses()) {
      bool satisfied = false;
      for (const Lit lit : clause) {
        if (value_of(lit) == Value::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (const Lit lit : clause) {
        if (values[lit.var()] != Value::kFree) continue;
        (lit.positive() ? seen_pos : seen_neg)[lit.var()] = 1;
      }
    }
    bool any = false;
    for (std::uint32_t v = 1; v <= formula->num_vars(); ++v) {
      if (values[v] != Value::kFree) continue;
      if (seen_pos[v] && !seen_neg[v]) {
        values[v] = Value::kTrue;
        any = true;
      } else if (seen_neg[v] && !seen_pos[v]) {
        values[v] = Value::kFalse;
        any = true;
      }
    }
    return any;
  }

  /// Picks the free variable occurring in the most unsatisfied clauses.
  [[nodiscard]] std::uint32_t pick_branch() const {
    std::vector<std::uint32_t> count(formula->num_vars() + 1, 0);
    for (const Clause& clause : formula->clauses()) {
      bool satisfied = false;
      for (const Lit lit : clause) {
        if (value_of(lit) == Value::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (const Lit lit : clause) {
        if (values[lit.var()] == Value::kFree) ++count[lit.var()];
      }
    }
    std::uint32_t best = 0;
    for (std::uint32_t v = 1; v <= formula->num_vars(); ++v) {
      if (values[v] == Value::kFree && (best == 0 || count[v] > count[best])) best = v;
    }
    return best;
  }

  bool dfs() {
    if (!propagate()) return false;
    while (pure_literals()) {
      if (!propagate()) return false;
    }
    const std::uint32_t branch = pick_branch();
    if (branch == 0) {
      // Every clause satisfied or every variable assigned without conflict.
      return true;
    }
    ++result.decisions;
    const std::vector<Value> saved = values;
    for (const Value choice : {Value::kTrue, Value::kFalse}) {
      values[branch] = choice;
      if (dfs()) return true;
      values = saved;
    }
    return false;
  }
};

}  // namespace

SolveResult solve(const Formula& formula) {
  Solver solver;
  solver.formula = &formula;
  solver.values.assign(formula.num_vars() + 1, Value::kFree);

  if (solver.dfs()) {
    solver.result.satisfiable = true;
    solver.result.assignment.assign(formula.num_vars() + 1, false);
    for (std::uint32_t v = 1; v <= formula.num_vars(); ++v) {
      solver.result.assignment[v] = (solver.values[v] == Value::kTrue);
    }
  }
  return solver.result;
}

}  // namespace ibgp::sat
