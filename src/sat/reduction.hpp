#pragma once
// The Section 5 reduction: 3-SAT -> STABLE I-BGP WITH ROUTE REFLECTION.
//
// The paper's Figures 7-9 did not survive OCR, so the gadgets here are a
// reconstruction with the *proved* properties (DESIGN.md "Reconstruction
// notes"); the equivalence  stable(reduce(phi)) <=> satisfiable(phi)  is
// machine-checked by the test suite against the DPLL solver.
//
// Gadgets (standard protocol, default selection policy):
//
//  * VARIABLE GRAPH (per variable x): the Fig-2 bistable pair — clusters
//    {R_T, c_T} and {R_F, c_F} with exits e_T/e_F through a private AS B_x,
//    equal MEDs, and dotted IGP shortcuts making each reflector prefer the
//    other side's exit.  Exactly two stable states: TRUE (R_T advertises
//    e_T, R_F silent) and FALSE (mirrored).
//
//  * CLAUSE GRAPH (per clause K): a three-cluster ring {RK_k, qc_k} with
//    exits q_k through a private AS A_K, equal MED 1, where each ring
//    reflector is IGP-closer to the *previous* cluster's exit (cost 2) than
//    to its own client's (cost 3).  Each cluster is then an advertisement
//    inverter (it relays its own exit iff the previous one is hidden); an
//    odd ring of inverters has no consistent state, so the clause graph in
//    isolation has NO stable configuration — it oscillates persistently.
//
//  * TAP (per literal occurrence): a cluster {RT, ct} whose client owns the
//    defuser tau (AS A_K, MED 0).  tau MED-eliminates every ring exit q_k,
//    freezing the clause ring.  RT is IGP-dotted (cost 2) to the variable
//    exit of the literal's OPPOSITE polarity, so that exit — visible exactly
//    when the variable is in the opposite state — captures RT's best route
//    and suppresses tau.  Net effect: tau flows iff the literal is TRUE.
//
// A satisfying assignment therefore freezes every ring (stable solution
// exists, reachable by a steering activation schedule); an unsatisfiable
// formula leaves some ring undefused in every variable state, so no stable
// configuration exists at all.

#include <array>
#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "sat/cnf.hpp"
#include "util/types.hpp"

namespace ibgp::sat {

struct VariableGadget {
  NodeId r_true = kNoNode, c_true = kNoNode;
  NodeId r_false = kNoNode, c_false = kNoNode;
  PathId e_true = kNoPath, e_false = kNoPath;
};

struct ClauseGadget {
  std::array<NodeId, 3> ring_rr{};
  std::array<NodeId, 3> ring_client{};
  std::array<PathId, 3> q{};
  std::array<NodeId, 3> tap_rr{};
  std::array<NodeId, 3> tap_client{};
  std::array<PathId, 3> tau{};
};

struct Reduction {
  core::Instance instance;

  /// Gadget metadata; vars[v] for v in 1..num_vars (index 0 unused).
  std::vector<VariableGadget> vars;
  std::vector<ClauseGadget> clauses;

  /// A finite activation prefix that steers every variable gadget into the
  /// state given by `assignment` (clients first, then the chosen side's
  /// reflector before the other, then taps, then rings, then two cleanup
  /// rounds).  Feed to engine::make_scripted; if the assignment satisfies
  /// the formula, the run converges to a stable solution.
  [[nodiscard]] std::vector<std::vector<NodeId>> steering(const Assignment& assignment) const;
};

/// Builds the reduction instance.  Size: 4 nodes per variable, 12 per
/// clause; 2 exit paths per variable, 6 per clause.
Reduction reduce_to_ibgp(const Formula& formula);

}  // namespace ibgp::sat
