#include "analysis/finder.hpp"

#include "engine/activation.hpp"

namespace ibgp::analysis {

ConvergenceSignature classify(const core::Instance& inst, core::ProtocolKind protocol,
                              std::size_t max_steps) {
  ConvergenceSignature signature;
  engine::RunLimits limits;
  limits.max_steps = max_steps;
  limits.detect_cycles = true;

  {
    auto schedule = engine::make_round_robin(inst.node_count());
    signature.round_robin = engine::run_protocol(inst, protocol, *schedule, limits).status;
  }
  {
    auto schedule = engine::make_full_set(inst.node_count());
    signature.synchronous = engine::run_protocol(inst, protocol, *schedule, limits).status;
  }
  return signature;
}

FinderResult find_counterexample(const topo::RandomConfig& config,
                                 const FinderCriteria& criteria, std::uint64_t seed,
                                 std::size_t attempts) {
  FinderResult result;
  for (std::size_t i = 0; i < attempts; ++i) {
    ++result.attempts_used;
    const std::uint64_t instance_seed = seed + i;
    core::Instance inst = topo::random_instance(config, instance_seed);
    if (inst.exits().empty()) continue;

    const auto signature = classify(inst, criteria.protocol, criteria.max_steps);
    if (!signature.oscillates()) continue;
    if (criteria.both_schedules &&
        (signature.round_robin != engine::RunStatus::kCycleDetected ||
         signature.synchronous != engine::RunStatus::kCycleDetected)) {
      continue;
    }

    if (criteria.med_induced) {
      bgp::SelectionPolicy no_med = inst.policy();
      no_med.med = bgp::MedMode::kIgnore;
      no_med.med_overrides.clear();  // "MEDs ignored" must ignore the mixes too
      const auto without_med = classify(inst.with_policy(no_med), criteria.protocol,
                                        criteria.max_steps);
      if (!without_med.converges_always_tested()) continue;
    }

    if (criteria.modified_converges) {
      const auto modified = classify(inst, core::ProtocolKind::kModified, criteria.max_steps);
      if (!modified.converges_always_tested()) continue;
    }

    result.found = std::move(inst);
    result.seed_found = instance_seed;
    return result;
  }
  return result;
}

}  // namespace ibgp::analysis
