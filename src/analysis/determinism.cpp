#include "analysis/determinism.hpp"

#include "engine/activation.hpp"
#include "engine/sync_engine.hpp"
#include "util/rng.hpp"

namespace ibgp::analysis {

DeterminismReport check_determinism(const core::Instance& inst, core::ProtocolKind protocol,
                                    const DeterminismOptions& options) {
  DeterminismReport report;
  report.runs = options.runs;

  std::size_t total_steps = 0;
  for (std::size_t i = 0; i < options.runs; ++i) {
    const std::uint64_t run_seed = util::derive_seed(options.seed, i);
    util::Xoshiro256 rng(util::derive_seed(run_seed, 0xC0FFEE));

    engine::SyncEngine sim(inst, protocol);
    auto schedule = engine::make_random_fair(inst.node_count(), run_seed);

    // Optional mid-run crash + restart of a random node: run a bounded
    // prefix, crash, then continue.  Fair sequences resume activating the
    // node, which models the restart.
    if (options.crash_prob > 0.0 && rng.chance(options.crash_prob)) {
      for (std::size_t s = 0; s < inst.node_count() * 3; ++s) sim.step(schedule->next());
      sim.crash_node(static_cast<NodeId>(rng.below(inst.node_count())));
    }

    engine::RunLimits limits;
    limits.max_steps = options.max_steps;
    limits.detect_cycles = false;  // randomized schedule: recurrence is not a proof
    const auto outcome = engine::run(sim, *schedule, limits);

    if (outcome.converged()) {
      ++report.converged;
      ++report.outcomes[outcome.final_best];
      const std::size_t steps = outcome.steps;
      if (report.converged == 1) {
        report.min_steps = report.max_steps = steps;
      } else {
        report.min_steps = std::min(report.min_steps, steps);
        report.max_steps = std::max(report.max_steps, steps);
      }
      total_steps += steps;
    } else {
      ++report.not_converged;
    }
  }
  if (report.converged > 0) {
    report.mean_steps = static_cast<double>(total_steps) / report.converged;
  }
  return report;
}

}  // namespace ibgp::analysis
