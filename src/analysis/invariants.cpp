#include "analysis/invariants.hpp"

#include <algorithm>

#include "analysis/forwarding.hpp"

namespace ibgp::analysis {

namespace {

std::string path_label(const core::Instance& inst, PathId p) {
  return inst.exits()[p].name;
}

}  // namespace

InvariantReport check_invariants(const engine::EventEngine& engine) {
  const core::Instance& inst = engine.instance();
  InvariantReport report;

  const std::size_t paths = inst.exits().size();
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (!engine.node_up(v)) continue;

    // 1+2: best-route validity and support.
    const PathId best = engine.best_path(v);
    if (best != kNoPath) {
      const NodeId exit_point = inst.exits()[best].exit_point;
      if (!engine.ebgp_live(best)) {
        ++report.stale_best;
        report.violations.push_back(inst.node_name(v) + ": best route " +
                                    path_label(inst, best) +
                                    " references a withdrawn exit");
      } else if (!engine.node_up(exit_point) && !engine.restarting(exit_point)) {
        // A gracefully restarting exit router still forwards (frozen FIB),
        // so only a cold-down exit point invalidates the route.
        ++report.stale_best;
        report.violations.push_back(inst.node_name(v) + ": best route " +
                                    path_label(inst, best) + " exits at crashed router " +
                                    inst.node_name(exit_point));
      }
      const bool own = exit_point == v && engine.ebgp_live(best);
      if (!own && engine.rib_in(v, best).empty()) {
        ++report.unsupported_best;
        report.violations.push_back(inst.node_name(v) + ": best route " +
                                    path_label(inst, best) +
                                    " has no Adj-RIB-In support");
      }

      // 5: IGP-metric currency.  The cached metric must equal the price the
      // *current* epoch assigns; anything else means a link fault's
      // re-evaluation sweep missed this node.
      const auto& igp = engine.igp();
      if (!igp.reachable(v, exit_point)) {
        ++report.igp_mismatch;
        report.violations.push_back(inst.node_name(v) + ": best route " +
                                    path_label(inst, best) + " exits at " +
                                    inst.node_name(exit_point) +
                                    ", IGP-unreachable under the current epoch");
      } else if (engine.best(v) &&
                 engine.best(v)->metric !=
                     igp.cost(v, exit_point) + inst.exits()[best].exit_cost) {
        ++report.igp_mismatch;
        report.violations.push_back(
            inst.node_name(v) + ": best route " + path_label(inst, best) +
            " metric " + std::to_string(engine.best(v)->metric) +
            " != current IGP price " +
            std::to_string(igp.cost(v, exit_point) + inst.exits()[best].exit_cost));
      }
    }

    // 3a: no entry from a downed session, no ghost entries on up sessions.
    // Entries marked stale are the exception the retention contract allows:
    // legitimate exactly while their peer is inside a graceful-restart
    // window, a violation anywhere else (the EoR sweep missed them).
    for (PathId p = 0; p < paths; ++p) {
      for (const NodeId w : engine.rib_in(v, p)) {
        const auto stale = engine.stale_rib_in(v, p);
        const bool is_stale = std::binary_search(stale.begin(), stale.end(), w);
        if (is_stale) {
          if (engine.restarting(w)) {
            ++report.stale_retained;  // retention working as designed
          } else {
            ++report.unswept_stale;
            report.violations.push_back(inst.node_name(v) + ": stale entry " +
                                        path_label(inst, p) + " from " + inst.node_name(w) +
                                        " outlived the graceful restart unswept");
          }
          continue;
        }
        if (!engine.session_up(v, w)) {
          ++report.stale_rib_entries;
          report.violations.push_back(inst.node_name(v) + ": Adj-RIB-In entry " +
                                      path_label(inst, p) + " from " + inst.node_name(w) +
                                      " survives a downed session");
        } else {
          const auto sent = engine.advertised_to(w, v);
          if (!std::binary_search(sent.begin(), sent.end(), p)) {
            ++report.stale_rib_entries;
            report.violations.push_back(inst.node_name(v) + ": Adj-RIB-In entry " +
                                        path_label(inst, p) + " from " +
                                        inst.node_name(w) +
                                        " is no longer advertised by the sender");
          }
        }
      }
    }

    // 3b: everything an up peer advertised must have arrived.
    for (const NodeId w : inst.sessions().peers(v)) {
      if (!engine.session_up(v, w)) continue;
      for (const PathId p : engine.advertised_to(w, v)) {
        const auto held = engine.rib_in(v, p);
        if (!std::binary_search(held.begin(), held.end(), w)) {
          ++report.missing_rib_entries;
          report.violations.push_back(inst.node_name(v) + ": announce of " +
                                      path_label(inst, p) + " from " + inst.node_name(w) +
                                      " never arrived (lost update)");
        }
      }
    }
  }

  // 4: forwarding loop-freedom over the *forwarding* entries: the best
  // route where the control plane is up, the frozen FIB at gracefully
  // restarting routers, kNoPath (forwards nothing) where cold-down.
  // Packets ride the IGP epoch currently in force, not the base graph.
  std::vector<PathId> best(inst.node_count(), kNoPath);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    best[v] = engine.node_forwarding(v);
  }
  const auto forwarding = analyze_forwarding(inst, engine.igp(), best);
  report.forwarding_loops = forwarding.loops;
  for (const auto& trace : forwarding.traces) {
    if (trace.outcome == ForwardOutcome::kLoop) {
      report.violations.push_back("forwarding loop: " + describe_trace(inst, trace));
    }
  }

  return report;
}

std::string describe_report(const InvariantReport& report) {
  if (report.clean()) return "clean";
  std::string out;
  const auto item = [&out](const char* label, std::size_t n) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += label;
    out += "=";
    out += std::to_string(n);
  };
  item("stale-best", report.stale_best);
  item("unsupported-best", report.unsupported_best);
  item("stale-rib", report.stale_rib_entries);
  item("missing-rib", report.missing_rib_entries);
  item("loops", report.forwarding_loops);
  item("unswept-stale", report.unswept_stale);
  item("igp-mismatch", report.igp_mismatch);
  return out;
}

}  // namespace ibgp::analysis
