#include "analysis/forwarding.hpp"

#include <sstream>
#include <vector>

namespace ibgp::analysis {

ForwardTrace trace_forwarding(const core::Instance& inst, std::span<const PathId> best,
                              NodeId source) {
  return trace_forwarding(inst, inst.igp(), best, source);
}

ForwardTrace trace_forwarding(const core::Instance& inst,
                              const netsim::ShortestPaths& igp,
                              std::span<const PathId> best, NodeId source) {
  ForwardTrace trace;
  trace.source = source;
  std::vector<bool> visited(inst.node_count(), false);

  NodeId cur = source;
  while (true) {
    trace.hops.push_back(cur);
    if (visited[cur]) {
      trace.outcome = ForwardOutcome::kLoop;
      return trace;
    }
    visited[cur] = true;

    const PathId b = best[cur];
    if (b == kNoPath) {
      trace.outcome = ForwardOutcome::kNoRoute;
      return trace;
    }
    const NodeId exit_point = inst.exits()[b].exit_point;
    if (exit_point == cur) {
      trace.outcome = ForwardOutcome::kExits;
      trace.exit_node = cur;
      trace.exit_path = b;
      return trace;
    }
    const NodeId next = igp.next_hop(cur, exit_point);
    if (next == kNoNode) {
      trace.outcome = ForwardOutcome::kNoRoute;  // IGP-unreachable exit point
      return trace;
    }
    cur = next;
  }
}

ForwardingReport analyze_forwarding(const core::Instance& inst,
                                    std::span<const PathId> best) {
  return analyze_forwarding(inst, inst.igp(), best);
}

ForwardingReport analyze_forwarding(const core::Instance& inst,
                                    const netsim::ShortestPaths& igp,
                                    std::span<const PathId> best) {
  ForwardingReport report;
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    report.traces.push_back(trace_forwarding(inst, igp, best, v));
    switch (report.traces.back().outcome) {
      case ForwardOutcome::kLoop: ++report.loops; break;
      case ForwardOutcome::kNoRoute: ++report.no_route; break;
      case ForwardOutcome::kExits: break;
    }
  }
  return report;
}

std::string describe_trace(const core::Instance& inst, const ForwardTrace& trace) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    if (i > 0) oss << " -> ";
    oss << inst.node_name(trace.hops[i]);
  }
  switch (trace.outcome) {
    case ForwardOutcome::kExits:
      oss << " => exits via " << inst.exits()[trace.exit_path].name;
      break;
    case ForwardOutcome::kLoop:
      oss << " (LOOP)";
      break;
    case ForwardOutcome::kNoRoute:
      oss << " (no route)";
      break;
  }
  return oss.str();
}

}  // namespace ibgp::analysis
