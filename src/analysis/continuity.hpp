#pragma once
// Forwarding-continuity analysis: tick-by-tick accounting of the forwarding
// plane DURING a fault campaign, not just at quiescence.
//
// The invariant checker (analysis/invariants.hpp) delivers a post-mortem
// verdict; what it cannot see is the *cost paid along the way* — how long
// packets were blackholed while peers flushed a crashed router's routes,
// whether transient forwarding loops opened mid-churn, and how much traffic
// rode stale (retained) state during a graceful restart.  That cost is the
// quantity RFC 4724-style graceful restart exists to reduce, and the one
// "BGP Stability is Precarious" identifies as the dominant operational
// price of instability.
//
// check_continuity() replays the engine's complete forwarding history —
// the FIB log (every forwarding-entry change, time-stamped) joined with the
// fault log (cold-down and graceful-restart windows per router) — as a
// piecewise-constant timeline.  In every interval between consecutive
// changes it traces a packet from each live source (analysis/forwarding
// hop-by-hop semantics) and charges the interval's length to one bucket:
//
//   ok        — delivered over fresh state only;
//   stale     — delivered, but some hop was inside a graceful-restart
//               window, i.e. the packet rode a frozen/retained FIB entry;
//   blackhole — dropped: no route at the source, or a dead (cold-down)
//               router on the realized path;
//   loop      — the hop-by-hop walk revisited a node.
//
// Sources that are cold-down originate no traffic and are not charged;
// sources are only accounted from the first instant they ever had a route
// (startup convergence is not a blackhole).  Because the replay is a pure
// function of the engine's logs, it inherits the campaign determinism:
// same seed -> same continuity report.
//
// IGP churn awareness.  Under link-cost/link-failure faults the next hops
// themselves are piecewise-constant: the replay advances through the
// engine's igp_log() so every interval is traced against the shortest-path
// epoch that was actually in force, and epoch-swap times are interval
// boundaries even when no FIB entry moved (the same FIB forwards
// differently under new distances).  Two further measures fall out:
//
//   deflection — a delivered packet that left the AS at a different exit
//     than the *source's* own best route intended (the Fig 12 phenomenon:
//     hop-by-hop forwarding consults intermediate nodes' routes, and route
//     reflection makes them disagree).  Counted in deflection_ticks as a
//     sub-class of delivered ticks (it overlaps ok/stale, so it is not in
//     accounted_ticks' partition), with the longest single-source window in
//     max_deflection_window.
//   per-churn-event pricing — every applied link fault opens a window
//     [fault time, next link fault or horizon) and the loop / blackhole /
//     deflection source-ticks spent inside it are attributed to that event
//     (ChurnEventCost), pricing each individual topology change.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/event_engine.hpp"

namespace ibgp::analysis {

/// Transient cost attributed to one applied link fault: the source-ticks
/// spent looping / blackholed / deflected in [time, next link fault or
/// horizon).
struct ChurnEventCost {
  engine::SimTime time = 0;
  engine::FaultKind kind = engine::FaultKind::kLinkDown;
  NodeId a = kNoNode;  ///< link endpoints
  NodeId b = kNoNode;
  std::uint64_t loop_ticks = 0;
  std::uint64_t blackhole_ticks = 0;
  std::uint64_t deflection_ticks = 0;
};

struct ContinuityReport {
  engine::SimTime horizon = 0;  ///< history replayed over [0, horizon)
  std::size_t intervals = 0;    ///< piecewise-constant segments evaluated

  /// Time-weighted source-ticks (interval length summed over affected
  /// sources) per outcome class.
  std::uint64_t ok_ticks = 0;
  std::uint64_t stale_ticks = 0;
  std::uint64_t blackhole_ticks = 0;
  std::uint64_t loop_ticks = 0;

  /// Delivered, but at a different exit than the source's own best route
  /// intended (RR-induced deflection).  Overlaps ok/stale — a sub-class of
  /// delivered ticks, not a fifth partition bucket.
  std::uint64_t deflection_ticks = 0;

  /// Longest contiguous blackhole suffered by any single source.
  engine::SimTime max_blackhole_window = 0;
  /// Longest contiguous deflection suffered by any single source.
  engine::SimTime max_deflection_window = 0;

  /// One entry per applied link fault, in application order.
  std::vector<ChurnEventCost> churn_events;

  [[nodiscard]] std::uint64_t accounted_ticks() const {
    return ok_ticks + stale_ticks + blackhole_ticks + loop_ticks;
  }
  /// Forwarding never broke: no packet was dropped or looped at any tick.
  [[nodiscard]] bool continuous() const {
    return blackhole_ticks == 0 && loop_ticks == 0;
  }
};

/// Replays the engine's FIB + fault history over [0, horizon).  Pass the
/// run's end_time as the horizon to cover the whole campaign.
ContinuityReport check_continuity(const engine::EventEngine& engine,
                                  engine::SimTime horizon);

/// One-line summary ("continuous" or per-bucket tick counts).
std::string describe_continuity(const ContinuityReport& report);

}  // namespace ibgp::analysis
