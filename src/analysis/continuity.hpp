#pragma once
// Forwarding-continuity analysis: tick-by-tick accounting of the forwarding
// plane DURING a fault campaign, not just at quiescence.
//
// The invariant checker (analysis/invariants.hpp) delivers a post-mortem
// verdict; what it cannot see is the *cost paid along the way* — how long
// packets were blackholed while peers flushed a crashed router's routes,
// whether transient forwarding loops opened mid-churn, and how much traffic
// rode stale (retained) state during a graceful restart.  That cost is the
// quantity RFC 4724-style graceful restart exists to reduce, and the one
// "BGP Stability is Precarious" identifies as the dominant operational
// price of instability.
//
// check_continuity() replays the engine's complete forwarding history —
// the FIB log (every forwarding-entry change, time-stamped) joined with the
// fault log (cold-down and graceful-restart windows per router) — as a
// piecewise-constant timeline.  In every interval between consecutive
// changes it traces a packet from each live source (analysis/forwarding
// hop-by-hop semantics) and charges the interval's length to one bucket:
//
//   ok        — delivered over fresh state only;
//   stale     — delivered, but some hop was inside a graceful-restart
//               window, i.e. the packet rode a frozen/retained FIB entry;
//   blackhole — dropped: no route at the source, or a dead (cold-down)
//               router on the realized path;
//   loop      — the hop-by-hop walk revisited a node.
//
// Sources that are cold-down originate no traffic and are not charged;
// sources are only accounted from the first instant they ever had a route
// (startup convergence is not a blackhole).  Because the replay is a pure
// function of the engine's logs, it inherits the campaign determinism:
// same seed -> same continuity report.

#include <cstdint>
#include <string>

#include "engine/event_engine.hpp"

namespace ibgp::analysis {

struct ContinuityReport {
  engine::SimTime horizon = 0;  ///< history replayed over [0, horizon)
  std::size_t intervals = 0;    ///< piecewise-constant segments evaluated

  /// Time-weighted source-ticks (interval length summed over affected
  /// sources) per outcome class.
  std::uint64_t ok_ticks = 0;
  std::uint64_t stale_ticks = 0;
  std::uint64_t blackhole_ticks = 0;
  std::uint64_t loop_ticks = 0;

  /// Longest contiguous blackhole suffered by any single source.
  engine::SimTime max_blackhole_window = 0;

  [[nodiscard]] std::uint64_t accounted_ticks() const {
    return ok_ticks + stale_ticks + blackhole_ticks + loop_ticks;
  }
  /// Forwarding never broke: no packet was dropped or looped at any tick.
  [[nodiscard]] bool continuous() const {
    return blackhole_ticks == 0 && loop_ticks == 0;
  }
};

/// Replays the engine's FIB + fault history over [0, horizon).  Pass the
/// run's end_time as the horizon to cover the whole campaign.
ContinuityReport check_continuity(const engine::EventEngine& engine,
                                  engine::SimTime horizon);

/// One-line summary ("continuous" or per-bucket tick counts).
std::string describe_continuity(const ContinuityReport& report);

}  // namespace ibgp::analysis
