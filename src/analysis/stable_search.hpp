#pragma once
// Exact enumeration of the stable configurations of STANDARD I-BGP with
// route reflection — the object whose existence Section 5 proves NP-complete
// to decide.
//
// Under the standard protocol a configuration is fully determined by the
// tuple of best routes (each node advertises exactly its best, so
// PossibleExits derive from the tuple via the Transfer relation).  A tuple
// (b_v) is a *stable solution* iff for every u,
//
//   b_u = Choose_best(u, MyExits(u) ∪ ⋃_v Transfer_{v->u}({b_v}))
//
// with learnedFrom = min BGP id over supplying peers, exactly as the
// engines compute it.
//
// The enumerator backtracks over per-node candidate domains with two
// soundness-preserving prunes:
//   - domain restriction: b_u must be an own exit or a path some peer is
//     allowed to transfer to u;
//   - E-BGP dominance: under the default rule order, a node owning an exit
//     that survives rules 1-3 against the *whole* exit universe always
//     selects one of its own exits (rule 4), so its domain shrinks to them.
//
// The search is exact: if it completes within budget, `solutions` is the
// complete list.  NP-hardness (Theorem 5.1) shows up as budget growth on the
// reduction instances — which bench_npc measures.

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "util/types.hpp"

namespace ibgp::analysis {

/// One stable solution: best exit path per node (kNoPath = no route).
using StableSolution = std::vector<PathId>;

struct StableSearchResult {
  std::vector<StableSolution> solutions;
  bool exhaustive = false;        ///< search space fully covered
  std::uint64_t nodes_explored = 0;

  [[nodiscard]] bool any() const { return !solutions.empty(); }
};

struct StableSearchLimits {
  std::uint64_t max_nodes = 20'000'000;  ///< backtracking node budget
  std::size_t max_solutions = 64;
};

/// Enumerates every stable solution of the standard protocol on `inst`.
StableSearchResult enumerate_stable_standard(const core::Instance& inst,
                                             const StableSearchLimits& limits = {});

/// Verifies that a given best-route tuple is a stable solution of the
/// standard protocol (cheap; used to check solutions produced from SAT
/// assignments in the Section 5 reduction).
bool is_stable_standard(const core::Instance& inst, const StableSolution& solution);

}  // namespace ibgp::analysis
