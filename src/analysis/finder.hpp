#pragma once
// Counterexample finder: randomized search for configurations with a target
// convergence signature.
//
// Used to (a) reconstruct Figure 13 (a MED-induced persistent oscillation
// that survives the Walton et al. fix), (b) measure oscillation *rates* of
// the three protocols over random configuration ensembles (bench E8), and
// (c) stress the modified protocol's convergence theorem (it must never
// appear in the oscillating bucket — property-tested).

#include <cstdint>
#include <optional>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "engine/oscillation.hpp"
#include "topo/random.hpp"
#include "util/types.hpp"

namespace ibgp::analysis {

/// How one (instance, protocol) pair behaves under deterministic schedules.
struct ConvergenceSignature {
  engine::RunStatus round_robin = engine::RunStatus::kStepLimit;
  engine::RunStatus synchronous = engine::RunStatus::kStepLimit;

  /// Persistently oscillating under at least one deterministic schedule and
  /// converging under neither... is too weak a notion; we call an instance
  /// oscillating when some deterministic schedule provably cycles.
  [[nodiscard]] bool oscillates() const {
    return round_robin == engine::RunStatus::kCycleDetected ||
           synchronous == engine::RunStatus::kCycleDetected;
  }
  [[nodiscard]] bool converges_always_tested() const {
    return round_robin == engine::RunStatus::kConverged &&
           synchronous == engine::RunStatus::kConverged;
  }

  /// At least one schedule ran out of step budget before reaching either
  /// verdict.  Distinct from a proven cycle: a truncated run says nothing —
  /// consumers (the explorer, the finder, the corpus gate) must treat it as
  /// indeterminate, never as evidence of oscillation.  oscillates() can
  /// still be true alongside truncated() when the *other* schedule proved a
  /// cycle.
  [[nodiscard]] bool truncated() const {
    return round_robin == engine::RunStatus::kStepLimit ||
           synchronous == engine::RunStatus::kStepLimit;
  }

  /// Neither schedule produced a verdict at all: pure budget exhaustion.
  [[nodiscard]] bool indeterminate() const {
    return !oscillates() && truncated();
  }
};

/// Runs round-robin and fully synchronous schedules with cycle detection.
ConvergenceSignature classify(const core::Instance& inst, core::ProtocolKind protocol,
                              std::size_t max_steps = 20000);

struct FinderCriteria {
  /// The protocol that must oscillate.
  core::ProtocolKind protocol = core::ProtocolKind::kStandard;

  /// Require the oscillation to vanish when MEDs are ignored (i.e., be
  /// MED-induced, as the paper requires of Fig 13).
  bool med_induced = false;

  /// Require the modified protocol to converge on the same instance (it
  /// always should — a violation here would falsify the paper).
  bool modified_converges = true;

  /// Require a provable cycle under BOTH deterministic schedules — the
  /// signature of a persistent (Fig 1a / Fig 13 style) oscillation rather
  /// than a schedule-sensitive transient one.
  bool both_schedules = false;

  std::size_t max_steps = 20000;
};

struct FinderResult {
  std::optional<core::Instance> found;
  std::uint64_t seed_found = 0;     ///< seed that produced the instance
  std::size_t attempts_used = 0;
};

/// Samples random instances from `config` (seeds seed, seed+1, ...) until
/// one matches `criteria` or `attempts` run out.
FinderResult find_counterexample(const topo::RandomConfig& config,
                                 const FinderCriteria& criteria, std::uint64_t seed,
                                 std::size_t attempts);

}  // namespace ibgp::analysis
