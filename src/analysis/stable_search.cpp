#include "analysis/stable_search.hpp"

#include <algorithm>
#include <limits>

#include "core/transfer.hpp"

namespace ibgp::analysis {

namespace {

/// Computes Choose_best(u) for a fully assigned neighborhood.
std::optional<bgp::RouteView> best_given_neighbors(const core::Instance& inst, NodeId u,
                                                   const StableSolution& assignment) {
  constexpr BgpId kUnset = std::numeric_limits<BgpId>::max();
  std::vector<BgpId> learned(inst.exits().size(), kUnset);

  for (const auto& path : inst.exits().all()) {
    if (path.exit_point == u) learned[path.id] = path.ebgp_peer;
  }
  for (const NodeId v : inst.sessions().peers(u)) {
    const PathId b = assignment[v];
    if (b == kNoPath) continue;
    if (!core::transfer_allowed(inst, v, u, b)) continue;
    if (inst.exits()[b].exit_point == u) continue;
    learned[b] = std::min(learned[b], inst.bgp_id(v));
  }

  std::vector<bgp::Candidate> candidates;
  for (PathId p = 0; p < learned.size(); ++p) {
    if (learned[p] != kUnset) candidates.push_back({p, learned[p]});
  }
  return bgp::choose_best(inst.exits(), inst.igp(), u, candidates, inst.policy());
}

bool consistent_at(const core::Instance& inst, NodeId u, const StableSolution& assignment) {
  const auto best = best_given_neighbors(inst, u, assignment);
  const PathId chosen = best ? best->path : kNoPath;
  return chosen == assignment[u];
}

/// dominant_safe[p]: p survives selection rules 1-3 against the entire exit
/// universe — no visible-set composition can ever eliminate it there.
std::vector<bool> compute_dominant_safe(const core::Instance& inst) {
  LocalPref max_lp = 0;
  for (const auto& path : inst.exits().all()) max_lp = std::max(max_lp, path.local_pref);
  std::uint32_t min_len = std::numeric_limits<std::uint32_t>::max();
  for (const auto& path : inst.exits().all()) {
    if (path.local_pref == max_lp) min_len = std::min(min_len, path.as_path_length);
  }
  std::vector<bool> safe(inst.exits().size(), false);
  for (const auto& p : inst.exits().all()) {
    if (p.local_pref != max_lp || p.as_path_length != min_len) continue;
    bool ok = true;
    if (inst.policy().med != bgp::MedMode::kIgnore) {
      for (const auto& q : inst.exits().all()) {
        const bool same_group = inst.policy().med == bgp::MedMode::kAlwaysCompare ||
                                q.next_as == p.next_as;
        if (q.id != p.id && same_group && q.local_pref == max_lp &&
            q.as_path_length == min_len && q.med < p.med) {
          ok = false;
          break;
        }
      }
    }
    safe[p.id] = ok;
  }
  return safe;
}

/// Per-node candidate domains with the two sound prunes described in the
/// header.
std::vector<std::vector<PathId>> build_domains(const core::Instance& inst,
                                               const std::vector<bool>& dominant_safe) {
  const std::size_t n = inst.node_count();
  std::vector<std::vector<PathId>> domains(n);

  for (NodeId u = 0; u < n; ++u) {
    const auto own = inst.exits().exits_from(u);
    bool ebgp_dominant = false;
    if (inst.policy().order == bgp::RuleOrder::kPreferEbgpFirst) {
      for (const PathId p : own) {
        if (dominant_safe[p]) {
          ebgp_dominant = true;
          break;
        }
      }
    }
    if (ebgp_dominant) {
      // Rule 4 guarantees best(u) is an own exit in every reachable
      // configuration.
      domains[u] = own;
    } else {
      std::vector<PathId> domain = own;
      for (PathId p = 0; p < inst.exits().size(); ++p) {
        for (const NodeId v : inst.sessions().peers(u)) {
          if (core::transfer_allowed(inst, v, u, p)) {
            domain.push_back(p);
            break;
          }
        }
      }
      std::sort(domain.begin(), domain.end());
      domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
      domains[u] = std::move(domain);
    }
    if (domains[u].empty() || own.empty()) {
      // "No route" is only reachable for nodes without own exits.
      domains[u].push_back(kNoPath);
    }
  }
  return domains;
}

/// True iff visibility of `killer` makes `victim` permanently unselectable
/// via rules 1-3 (LOCAL-PREF, AS-path length, per-AS MED).  These
/// eliminations are monotone — more visible routes only strengthen them —
/// so they justify pruning *partial* assignments.
bool dominates_1to3(const core::Instance& inst, PathId killer, PathId victim) {
  const auto& a = inst.exits()[killer];
  const auto& b = inst.exits()[victim];
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path_length != b.as_path_length) return a.as_path_length < b.as_path_length;
  if (inst.policy().med == bgp::MedMode::kIgnore) return false;
  const bool same_group =
      inst.policy().med == bgp::MedMode::kAlwaysCompare || a.next_as == b.next_as;
  return same_group && a.med < b.med;
}

struct SearchState {
  const core::Instance* inst;
  const StableSearchLimits* limits;
  std::vector<bool> dominant_safe;  // per path: survives rules 1-3 vs universe
  std::vector<std::vector<PathId>> domains;
  std::vector<NodeId> order;           // assignment order
  std::vector<std::vector<NodeId>> check_after;  // nodes whose neighborhoods
                                                 // complete at position i
  StableSolution assignment;
  StableSearchResult result;
  bool budget_hit = false;
  std::vector<bool> assigned;

  /// Support condition for one node: under the standard protocol a peer
  /// advertises exactly its best route, so a node whose choice b_w is not
  /// its own exit needs some session peer v with transfer_allowed(v,w,b_w)
  /// and b_v == b_w (or v still unassigned).
  [[nodiscard]] bool supported(NodeId w) const {
    const PathId bw = assignment[w];
    if (bw == kNoPath) return true;
    if (inst->exits()[bw].exit_point == w) return true;  // own exit: self-supported
    for (const NodeId v : inst->sessions().peers(w)) {
      if (!core::transfer_allowed(*inst, v, w, bw)) continue;
      if (!assigned[v] || assignment[v] == bw) return true;
    }
    return false;
  }

  /// Incremental support prune after assigning u: only u itself and the
  /// assigned peers u could have supplied can newly lose support.
  [[nodiscard]] bool support_check(NodeId u) const {
    if (!supported(u)) return false;
    for (const NodeId w : inst->sessions().peers(u)) {
      if (assigned[w] && !supported(w)) return false;
    }
    return true;
  }

  /// Monotone forward check: the fresh assignment b_u must not be
  /// rule-1-3-dominated by anything already visible at u, nor dominate an
  /// already-assigned neighbor's choice it is advertised to.
  [[nodiscard]] bool kill_check(NodeId u, std::size_t depth) const {
    const PathId bu = assignment[u];
    for (std::size_t i = 0; i <= depth; ++i) {
      const NodeId v = order[i];
      const PathId bv = assignment[v];
      if (v == u || bv == kNoPath) continue;
      if (bu != kNoPath && core::transfer_allowed(*inst, v, u, bv) &&
          dominates_1to3(*inst, bv, bu)) {
        return false;  // v's advertisement permanently eliminates b_u at u
      }
      if (bu != kNoPath && core::transfer_allowed(*inst, u, v, bu) &&
          dominates_1to3(*inst, bu, bv)) {
        return false;  // b_u permanently eliminates v's choice at v
      }
    }
    if (bu != kNoPath) {
      // A node's own exits are always visible to it.
      for (const PathId own : inst->exits().exits_from(u)) {
        if (own != bu && dominates_1to3(*inst, own, bu)) return false;
      }
    }
    return true;
  }

  /// True iff, seen from node w, route r permanently outranks route b at
  /// selection rules 4-6 regardless of what else becomes visible:
  /// E-BGP class strictly better, or same class with strictly smaller
  /// metric.  (Equal metrics are left to the exact final check.)
  [[nodiscard]] bool robust_beats(NodeId w, PathId r, PathId b) const {
    const auto& pr = inst->exits()[r];
    const auto& pb = inst->exits()[b];
    const bool r_ebgp = pr.exit_point == w;
    const bool b_ebgp = pb.exit_point == w;
    if (inst->policy().order == bgp::RuleOrder::kPreferEbgpFirst) {
      if (r_ebgp != b_ebgp) return r_ebgp;
    }
    if (!inst->igp().reachable(w, pr.exit_point)) return false;
    if (!inst->igp().reachable(w, pb.exit_point)) return true;
    const Cost mr = inst->igp().cost(w, pr.exit_point) + pr.exit_cost;
    const Cost mb = inst->igp().cost(w, pb.exit_point) + pb.exit_cost;
    if (inst->policy().order == bgp::RuleOrder::kIgpCostFirst && mr == mb &&
        r_ebgp != b_ebgp) {
      return r_ebgp;
    }
    return mr < mb;
  }

  /// True iff any future rule-1-3 eliminator of r also eliminates b, so
  /// "r visible" permanently excludes b at every node where r beats b.
  [[nodiscard]] bool survival_coupled(PathId r, PathId b) const {
    if (dominant_safe[r]) return true;
    const auto& pr = inst->exits()[r];
    const auto& pb = inst->exits()[b];
    if (pr.local_pref < pb.local_pref) return false;
    if (pr.as_path_length > pb.as_path_length) return false;
    if (inst->policy().med == bgp::MedMode::kIgnore) return true;
    const bool same_group =
        inst->policy().med == bgp::MedMode::kAlwaysCompare || pr.next_as == pb.next_as;
    return same_group && pr.med <= pb.med;
  }

  /// One node's superiority condition: w cannot keep choice b_w if some
  /// already-visible route r (from an assigned peer or w's own exits) both
  /// (a) can never be eliminated without eliminating b_w and (b) robustly
  /// outranks b_w.
  [[nodiscard]] bool not_outranked(NodeId w) const {
    const PathId bw = assignment[w];
    if (bw == kNoPath) return true;
    auto beaten_by = [&](PathId r) {
      return r != bw && survival_coupled(r, bw) && robust_beats(w, r, bw) &&
             !dominates_1to3(*inst, bw, r);
    };
    for (const PathId own : inst->exits().exits_from(w)) {
      if (beaten_by(own)) return false;
    }
    for (const NodeId v : inst->sessions().peers(w)) {
      if (!assigned[v] || assignment[v] == kNoPath) continue;
      const PathId bv = assignment[v];
      if (core::transfer_allowed(*inst, v, w, bv) && beaten_by(bv)) return false;
    }
    return true;
  }

  /// Incremental superiority prune after assigning u: new violations can
  /// only involve u as the beaten node or as the supplier of the beater.
  [[nodiscard]] bool superiority_check(NodeId u) const {
    if (!not_outranked(u)) return false;
    const PathId bu = assignment[u];
    if (bu == kNoPath) return true;
    for (const NodeId w : inst->sessions().peers(u)) {
      if (!assigned[w] || assignment[w] == kNoPath) continue;
      const PathId bw = assignment[w];
      if (!core::transfer_allowed(*inst, u, w, bu)) continue;
      if (bu != bw && survival_coupled(bu, bw) && robust_beats(w, bu, bw) &&
          !dominates_1to3(*inst, bw, bu)) {
        return false;
      }
    }
    return true;
  }

  void dfs(std::size_t depth) {
    if (budget_hit || result.solutions.size() >= limits->max_solutions) return;
    if (++result.nodes_explored > limits->max_nodes) {
      budget_hit = true;
      return;
    }
    if (depth == order.size()) {
      result.solutions.push_back(assignment);
      return;
    }
    const NodeId u = order[depth];
    assigned[u] = true;
    for (const PathId p : domains[u]) {
      assignment[u] = p;
      bool ok = kill_check(u, depth) && support_check(u) && superiority_check(u);
      if (ok) {
        for (const NodeId w : check_after[depth]) {
          if (!consistent_at(*inst, w, assignment)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) dfs(depth + 1);
    }
    assignment[u] = kNoPath;
    assigned[u] = false;
  }
};

}  // namespace

StableSearchResult enumerate_stable_standard(const core::Instance& inst,
                                             const StableSearchLimits& limits) {
  const std::size_t n = inst.node_count();
  SearchState state;
  state.inst = &inst;
  state.limits = &limits;
  state.dominant_safe = compute_dominant_safe(inst);
  state.domains = build_domains(inst, state.dominant_safe);
  state.assignment.assign(n, kNoPath);
  state.assigned.assign(n, false);

  // Assignment order: pinned (singleton-domain) nodes first so their
  // advertisements drive the prunes, then everything else in node order —
  // node ids group cluster-mates, so the pairwise kill/superiority/support
  // prunes fire as early as possible.
  state.order.resize(n);
  for (NodeId v = 0; v < n; ++v) state.order[v] = v;
  std::stable_sort(state.order.begin(), state.order.end(), [&](NodeId a, NodeId b) {
    const bool pa = state.domains[a].size() <= 1;
    const bool pb = state.domains[b].size() <= 1;
    if (pa != pb) return pa;
    return a < b;
  });

  // A node's constraint involves itself and all its session peers; it can be
  // checked as soon as the last of them is assigned.
  std::vector<std::size_t> position(n);
  for (std::size_t i = 0; i < n; ++i) position[state.order[i]] = i;
  state.check_after.resize(n);
  for (NodeId w = 0; w < n; ++w) {
    std::size_t last = position[w];
    for (const NodeId v : inst.sessions().peers(w)) last = std::max(last, position[v]);
    state.check_after[last].push_back(w);
  }

  state.dfs(0);
  state.result.exhaustive =
      !state.budget_hit && state.result.solutions.size() < limits.max_solutions;
  return state.result;
}

bool is_stable_standard(const core::Instance& inst, const StableSolution& solution) {
  if (solution.size() != inst.node_count()) return false;
  for (NodeId u = 0; u < inst.node_count(); ++u) {
    if (!consistent_at(inst, u, solution)) return false;
  }
  return true;
}

}  // namespace ibgp::analysis
