#pragma once
// Forwarding-plane ("real route", Section 7) analysis.
//
// BGP routers forward hop-by-hop: a packet for destination d at node w is
// sent toward the exit point of *w's own* best route, one IGP hop at a time.
// Because intermediate nodes consult their own best routes, the realized
// path can differ from what the source expected (Fig 12) and, for badly
// configured systems, can loop (Fig 14).  Lemma 7.6/7.7 prove the modified
// protocol loop-free; analyze_forwarding() is the machine check.

#include <span>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "util/types.hpp"

namespace ibgp::analysis {

enum class ForwardOutcome {
  kExits,    ///< reached a node whose best route exits there
  kLoop,     ///< revisited a node: forwarding loop
  kNoRoute,  ///< reached a node with no best route (packet dropped)
};

struct ForwardTrace {
  NodeId source = kNoNode;
  ForwardOutcome outcome = ForwardOutcome::kNoRoute;
  /// Node sequence the packet visited (source first; on kLoop the repeated
  /// node appears twice, closing the cycle).
  std::vector<NodeId> hops;
  /// For kExits: where the packet left AS0 and over which exit path.
  NodeId exit_node = kNoNode;
  PathId exit_path = kNoPath;
};

/// Traces one packet from `source` given each node's best exit path
/// (kNoPath = node has no route).
ForwardTrace trace_forwarding(const core::Instance& inst, std::span<const PathId> best,
                              NodeId source);

/// Same trace against an explicit IGP epoch (hop-by-hop next hops and
/// reachability come from `igp` instead of the instance's frozen base
/// graph) — required whenever link faults have churned the topology.
ForwardTrace trace_forwarding(const core::Instance& inst,
                              const netsim::ShortestPaths& igp,
                              std::span<const PathId> best, NodeId source);

struct ForwardingReport {
  std::vector<ForwardTrace> traces;  ///< one per node, in node order
  std::size_t loops = 0;
  std::size_t no_route = 0;

  [[nodiscard]] bool loop_free() const { return loops == 0; }
};

/// Traces from every node.
ForwardingReport analyze_forwarding(const core::Instance& inst, std::span<const PathId> best);

/// Traces from every node against an explicit IGP epoch.
ForwardingReport analyze_forwarding(const core::Instance& inst,
                                    const netsim::ShortestPaths& igp,
                                    std::span<const PathId> best);

/// "c1 -> c2 -> c1 (LOOP)" style rendering for reports.
std::string describe_trace(const core::Instance& inst, const ForwardTrace& trace);

}  // namespace ibgp::analysis
