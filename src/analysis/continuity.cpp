#include "analysis/continuity.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "analysis/forwarding.hpp"

namespace ibgp::analysis {

namespace {

using engine::EventEngine;
using engine::FaultKind;
using engine::SimTime;

/// A router's life state as far as the forwarding plane is concerned.
enum class Mode : std::uint8_t {
  kUp,    // forwarding on the control plane's current best route
  kCold,  // crashed: forwards nothing, originates nothing
  kGr,    // graceful restart: forwards on the frozen (stale) FIB entry
};

struct ModeChange {
  SimTime time = 0;
  NodeId node = kNoNode;
  Mode mode = Mode::kUp;
};

}  // namespace

ContinuityReport check_continuity(const engine::EventEngine& engine, SimTime horizon) {
  const core::Instance& inst = engine.instance();
  const auto fib_log = engine.fib_log();

  ContinuityReport report;
  report.horizon = horizon;
  if (horizon == 0) return report;

  // Router mode transitions, derived from the fault log (chronological).
  // kStaleExpire changes retention at *peers*, which the FIB log already
  // captures; the router's own mode is untouched by it.
  std::vector<ModeChange> mode_changes;
  for (const auto& fault : engine.fault_log()) {
    switch (fault.kind) {
      case FaultKind::kCrash:
        mode_changes.push_back({fault.time, fault.a, Mode::kCold});
        break;
      case FaultKind::kGracefulDown:
        mode_changes.push_back({fault.time, fault.a, Mode::kGr});
        break;
      case FaultKind::kRestart:
        mode_changes.push_back({fault.time, fault.a, Mode::kUp});
        break;
      case FaultKind::kSessionDown:
      case FaultKind::kSessionUp:
      case FaultKind::kStaleExpire:
        break;
      case FaultKind::kLinkCostChange:
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        // Link faults change the IGP epoch (handled below via igp_log), and
        // each opens a pricing window attributing transient damage to it.
        report.churn_events.push_back({fault.time, fault.kind, fault.a, fault.b});
        break;
    }
  }

  // The IGP epoch timeline: epoch [k] is in force from igp_log[k].time until
  // the next record; the instance's base epoch before the first.  Epoch
  // swaps are interval boundaries even when no FIB entry moved — the same
  // FIB forwards differently under new distances.
  const auto igp_log = engine.igp_log();
  std::shared_ptr<const netsim::ShortestPaths> igp = inst.igp_handle();

  // Boundaries of the piecewise-constant forwarding state.
  std::vector<SimTime> times;
  times.reserve(fib_log.size() + mode_changes.size() + 2);
  times.push_back(0);
  times.push_back(horizon);
  for (const auto& record : fib_log) {
    if (record.time < horizon) times.push_back(record.time);
  }
  for (const auto& change : mode_changes) {
    if (change.time < horizon) times.push_back(change.time);
  }
  for (const auto& record : igp_log) {
    if (record.time < horizon) times.push_back(record.time);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  const std::size_t n = inst.node_count();
  std::vector<PathId> fib(n, kNoPath);
  std::vector<Mode> mode(n, Mode::kUp);
  std::vector<bool> had_route(n, false);
  std::vector<SimTime> blackhole_run(n, 0);
  std::vector<SimTime> deflection_run(n, 0);

  std::size_t next_fib = 0;
  std::size_t next_mode = 0;
  std::size_t next_igp = 0;
  // Index of the link fault whose pricing window covers the current
  // interval; npos before the first one.
  std::size_t cur_churn = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    const SimTime start = times[i];
    const SimTime len = times[i + 1] - start;

    // Events at `start` take effect for [start, next boundary).
    while (next_fib < fib_log.size() && fib_log[next_fib].time <= start) {
      const auto& record = fib_log[next_fib++];
      fib[record.node] = record.new_path;
      if (record.new_path != kNoPath) had_route[record.node] = true;
    }
    while (next_mode < mode_changes.size() && mode_changes[next_mode].time <= start) {
      const auto& change = mode_changes[next_mode++];
      mode[change.node] = change.mode;
    }
    while (next_igp < igp_log.size() && igp_log[next_igp].time <= start) {
      igp = igp_log[next_igp++].igp;
    }
    while (cur_churn + 1 < report.churn_events.size() &&
           report.churn_events[cur_churn + 1].time <= start) {
      ++cur_churn;
    }
    ChurnEventCost* churn =
        cur_churn < report.churn_events.size() ? &report.churn_events[cur_churn] : nullptr;
    ++report.intervals;

    for (NodeId v = 0; v < n; ++v) {
      if (mode[v] == Mode::kCold || !had_route[v]) {
        blackhole_run[v] = 0;  // dead or pre-convergence: originates nothing
        deflection_run[v] = 0;
        continue;
      }
      const ForwardTrace trace = trace_forwarding(inst, *igp, fib, v);
      bool blackhole = false;
      bool deflected = false;
      switch (trace.outcome) {
        case ForwardOutcome::kExits: {
          bool stale_hop = false;
          for (const NodeId hop : trace.hops) {
            if (mode[hop] == Mode::kGr) stale_hop = true;
          }
          if (stale_hop) {
            report.stale_ticks += len;
          } else {
            report.ok_ticks += len;
          }
          // Deflection: the packet left the AS, but not where the source's
          // own route intended (intermediate nodes' best routes disagree —
          // the Fig 12 phenomenon, priced per churn event below).
          const NodeId intended = fib[v] != kNoPath
                                      ? inst.exits()[fib[v]].exit_point
                                      : kNoNode;
          if (trace.exit_node != intended) {
            deflected = true;
            report.deflection_ticks += len;
            if (churn) churn->deflection_ticks += len;
          }
          break;
        }
        case ForwardOutcome::kNoRoute:
          report.blackhole_ticks += len;
          if (churn) churn->blackhole_ticks += len;
          blackhole = true;
          break;
        case ForwardOutcome::kLoop:
          report.loop_ticks += len;
          if (churn) churn->loop_ticks += len;
          break;
      }
      if (blackhole) {
        blackhole_run[v] += len;
        report.max_blackhole_window = std::max(report.max_blackhole_window, blackhole_run[v]);
      } else {
        blackhole_run[v] = 0;
      }
      if (deflected) {
        deflection_run[v] += len;
        report.max_deflection_window =
            std::max(report.max_deflection_window, deflection_run[v]);
      } else {
        deflection_run[v] = 0;
      }
    }
  }
  return report;
}

std::string describe_continuity(const ContinuityReport& report) {
  if (report.continuous() && report.stale_ticks == 0 && report.deflection_ticks == 0) {
    return "continuous";
  }
  std::string out;
  const auto item = [&out](const char* label, std::uint64_t n) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += label;
    out += "=";
    out += std::to_string(n);
  };
  item("blackhole", report.blackhole_ticks);
  item("loop", report.loop_ticks);
  item("stale", report.stale_ticks);
  item("deflection", report.deflection_ticks);
  if (out.empty()) return "continuous";
  if (report.max_blackhole_window > 0) {
    out += ", max-blackhole-window=" + std::to_string(report.max_blackhole_window);
  }
  if (report.max_deflection_window > 0) {
    out += ", max-deflection-window=" + std::to_string(report.max_deflection_window);
  }
  return out;
}

}  // namespace ibgp::analysis
