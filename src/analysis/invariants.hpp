#pragma once
// Routing invariants under fault churn.
//
// The paper's Section 7 proves the modified protocol converges and stays
// consistent after any finite perturbation; "BGP Stability is Precarious"
// (Godfrey 2011) argues essentially any perturbation of the decision process
// can break protocols that lack such a proof.  This checker turns the
// theorems' conclusions into machine-checkable post-conditions on a live
// EventEngine, so fault campaigns (src/fault/) get an empirical verdict:
//
//   1. best-route validity — no up node's best route references an exit
//      path whose E-BGP origin has withdrawn it or whose exit router is
//      down (the operational reading of the Lemma 7.2 flush property);
//   2. best-route support — every best route is backed by the node's own
//      E-BGP state or by at least one Adj-RIB-In entry;
//   3. session hygiene — no Adj-RIB-In entry survives from a downed
//      session, and on up sessions receiver state matches what the sender
//      believes it advertised (ghost entries = stale withdraw, missing
//      entries = lost announce that was never repaired);
//   4. forwarding loop-freedom, via analysis/forwarding (Lemma 7.6/7.7),
//      over the *forwarding* entries (node_forwarding), which include the
//      frozen FIBs of gracefully restarting routers;
//   5. IGP-metric currency — under topology churn (link-cost/link-failure
//      faults) every up node's best route must be priced against the IGP
//      epoch *currently* in force: its exit point reachable under
//      engine.igp() and its cached metric equal to
//      igp.cost(v, exitPoint) + exitCost.  A mismatch means a link fault's
//      re-evaluation sweep missed the node — the route was selected under
//      distances that no longer exist.
//
// Checks 4 and 5 use engine.igp(), the engine's current epoch, not the
// instance's frozen base graph — on a churn-free run they coincide.
//
// Graceful restart (RFC 4724 stale-path retention) refines check 3: an
// entry from a peer inside a graceful-restart window is *supposed* to
// survive the downed session as long as it is marked stale — that is the
// retention contract — so those entries are exempt from the flush rule and
// reported in `stale_retained` (informational, not a violation).  What IS
// a violation is a stale mark outliving its excuse: a stale entry from a
// peer whose session is back up (the End-of-RIB sweep failed) or from a
// peer that is not restarting at all, counted in `unswept_stale`.
//
// Checks 1-3 are exact only at quiescence (run() returned converged): while
// messages are in flight the sender/receiver views legitimately disagree.
// check_invariants() can still be called mid-run to *observe* that skew —
// useful for churn dashboards, meaningless as a verdict.

#include <cstddef>
#include <string>
#include <vector>

#include "engine/event_engine.hpp"

namespace ibgp::analysis {

struct InvariantReport {
  std::size_t stale_best = 0;        ///< best references a withdrawn/dead exit
  std::size_t unsupported_best = 0;  ///< best with no E-BGP or Adj-RIB-In backing
  std::size_t stale_rib_entries = 0;    ///< entry from a downed session or un-advertised path
  std::size_t missing_rib_entries = 0;  ///< sender advertised, receiver never heard
  std::size_t forwarding_loops = 0;     ///< looping forwarding traces
  std::size_t unswept_stale = 0;  ///< stale mark with no restarting peer to excuse it
  std::size_t igp_mismatch = 0;   ///< best route priced against a dead IGP epoch
  /// Entries legitimately retained across an in-progress graceful restart
  /// (informational: not a violation, not in total()).
  std::size_t stale_retained = 0;
  /// Human-readable description of every violation, in discovery order.
  std::vector<std::string> violations;

  [[nodiscard]] std::size_t total() const {
    return stale_best + unsupported_best + stale_rib_entries + missing_rib_entries +
           forwarding_loops + unswept_stale + igp_mismatch;
  }
  [[nodiscard]] bool clean() const { return total() == 0; }
};

/// Runs every invariant check against the engine's current state.
InvariantReport check_invariants(const engine::EventEngine& engine);

/// One-line summary ("clean" or per-category violation counts).
std::string describe_report(const InvariantReport& report);

}  // namespace ibgp::analysis
