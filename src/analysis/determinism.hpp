#pragma once
// Schedule-(in)dependence measurements.
//
// The paper's headline guarantee: the modified protocol converges to the
// SAME configuration under every fair activation sequence, even across
// router crashes and restarts.  Standard I-BGP enjoys no such property —
// Fig 2 converges to either of two configurations (or not at all) depending
// on ordering.  check_determinism() quantifies both sides empirically.

#include <cstdint>
#include <map>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "engine/oscillation.hpp"
#include "util/types.hpp"

namespace ibgp::analysis {

struct DeterminismOptions {
  std::size_t runs = 100;            ///< random-fair schedules to sample
  std::uint64_t seed = 1;
  std::size_t max_steps = 20000;
  /// Per-run probability of injecting a crash+restart of a random node
  /// mid-run (the paper's failure/restart scenario).
  double crash_prob = 0.0;
};

struct DeterminismReport {
  std::size_t runs = 0;
  std::size_t converged = 0;
  std::size_t not_converged = 0;
  /// Distinct final best-route tuples among converged runs, with counts.
  std::map<std::vector<PathId>, std::size_t> outcomes;
  std::size_t min_steps = 0;  ///< over converged runs
  std::size_t max_steps = 0;
  double mean_steps = 0.0;

  [[nodiscard]] bool deterministic() const {
    return not_converged == 0 && outcomes.size() <= 1;
  }
};

/// Samples random fair schedules (singleton permutations) and reports the
/// outcome distribution.
DeterminismReport check_determinism(const core::Instance& inst, core::ProtocolKind protocol,
                                    const DeterminismOptions& options = {});

}  // namespace ibgp::analysis
