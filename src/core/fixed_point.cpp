#include "core/fixed_point.hpp"

#include <algorithm>
#include <limits>

#include "core/transfer.hpp"

namespace ibgp::core {

FixedPointPrediction predict_fixed_point(const Instance& inst,
                                         std::span<const PathId> announced) {
  const std::size_t n = inst.node_count();
  FixedPointPrediction prediction;
  prediction.s_prime = bgp::choose_survivors(inst.exits(), announced, inst.policy());

  // Reachability closure of S' members over the Transfer relation: has[u][p]
  // becomes true when u's own E-BGP learned p or some peer that has p may
  // transfer it to u.  (Non-S' paths are not re-advertised at the fixed
  // point, so only MyExits contributes them.)
  std::vector<std::vector<bool>> has(n);
  for (auto& row : has) row.assign(inst.exits().size(), false);
  for (const PathId p : announced) has[inst.exits()[p].exit_point][p] = true;

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < n; ++u) {
      for (const PathId p : prediction.s_prime) {
        if (has[u][p]) continue;
        for (const NodeId v : inst.sessions().peers(u)) {
          if (has[v][p] && transfer_allowed(inst, v, u, p)) {
            has[u][p] = true;
            changed = true;
            break;
          }
        }
      }
    }
  }

  prediction.possible.resize(n);
  prediction.best.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    for (PathId p = 0; p < inst.exits().size(); ++p) {
      if (has[u][p]) prediction.possible[u].push_back(p);
    }

    // BestRoute(u) = best_u(route(GoodExits(u), u)) with GoodExits(u) = S'
    // (restricted to what is visible at u — for valid instances every S'
    // member is visible everywhere; the restriction matters only for
    // degenerate disconnected inputs).
    std::vector<bgp::Candidate> candidates;
    for (const PathId p : prediction.s_prime) {
      if (!has[u][p]) continue;
      const auto& path = inst.exits()[p];
      bgp::Candidate candidate;
      candidate.path = p;
      if (path.exit_point == u) {
        candidate.learned_from = path.ebgp_peer;
      } else {
        BgpId lowest = std::numeric_limits<BgpId>::max();
        for (const NodeId v : inst.sessions().peers(u)) {
          if (has[v][p] && transfer_allowed(inst, v, u, p)) {
            lowest = std::min(lowest, inst.bgp_id(v));
          }
        }
        candidate.learned_from = lowest;
      }
      candidates.push_back(candidate);
    }
    prediction.best[u] =
        bgp::choose_best(inst.exits(), inst.igp(), u, candidates, inst.policy());
  }
  return prediction;
}

FixedPointPrediction predict_fixed_point(const Instance& inst) {
  std::vector<PathId> all;
  all.reserve(inst.exits().size());
  for (PathId p = 0; p < inst.exits().size(); ++p) all.push_back(p);
  return predict_fixed_point(inst, all);
}

}  // namespace ibgp::core
