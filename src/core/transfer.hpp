#pragma once
// The Transfer relation of Section 4 ("Modeling Communication").
//
// Transfer_{v->u}(P) selects which exit paths p in an advertised set P the
// router v may announce to its I-BGP peer u.  p is transferred iff vu is a
// session edge and one of:
//   (1) exitPoint(p) = v                 — v learned p itself via E-BGP;
//   (2) v in R_i, u in R_j, i != j, and exitPoint(p) in N_i
//                                        — a reflector relays its *clients'*
//                                          exits to reflectors of other
//                                          clusters;
//   (3) v in R_i, u in N_i, exitPoint(p) != u
//                                        — a reflector relays everything to
//                                          its clients, except a client's own
//                                          exits back to that client.
//
// The relation is deliberately memoryless (it depends on where p *exits*,
// not on which session v heard it over); the event-driven engine implements
// the operational learned-from-based rules for comparison.

#include <span>
#include <vector>

#include "core/instance.hpp"
#include "util/types.hpp"

namespace ibgp::core {

/// True iff v may announce exit path p to u (all three-condition logic plus
/// the session-edge requirement).
bool transfer_allowed(const Instance& inst, NodeId v, NodeId u, PathId p);

/// Transfer_{v->u}(P): the announceable subset of `advertised`, ascending.
std::vector<PathId> transfer_set(const Instance& inst, NodeId v, NodeId u,
                                 std::span<const PathId> advertised);

}  // namespace ibgp::core
