#pragma once
// Advertisement policies: what a router announces to its I-BGP peers
// (before the per-peer Transfer filtering).
//
//  - kStandard: classic I-BGP — the single best route (Section 2).
//  - kWalton:   the Walton et al. proposal (Section 8) — for each neighboring
//               AS, the best route through that AS, provided it matches the
//               overall best route's LOCAL-PREF and AS-path length.
//  - kModified: the paper's protocol (Section 6) — GoodExits =
//               Choose^B(PossibleExits), i.e. every path surviving selection
//               rules 1-3.  The best route is then chosen from GoodExits.

#include <optional>
#include <span>
#include <vector>

#include "bgp/selection.hpp"
#include "core/instance.hpp"
#include "util/types.hpp"

namespace ibgp::core {

enum class ProtocolKind {
  kStandard,
  kWalton,
  kModified,
};

/// Display name ("standard", "walton", "modified").
const char* protocol_name(ProtocolKind kind);

/// Everything a node derives from its current PossibleExits in one step.
struct NodeDecision {
  /// The set the node offers to peers (Transfer still filters per peer);
  /// ascending path ids.
  std::vector<PathId> advertised;
  /// The node's best route, if any candidate is usable.
  std::optional<bgp::RouteView> best;
};

/// Computes best route + advertised set for `node` under `kind`.
///
/// `possible` is PossibleExits(node) with the learnedFrom attribution the
/// engine tracked for each path.  For kModified the best route is chosen
/// from GoodExits, exactly as Section 6 prescribes.
///
/// When `provenance` is non-null it receives the elimination record of the
/// Choose_best invocation that produced `best`.  For kModified that is the
/// call over the GoodExits survivors — rules 1-3 then rarely decide, which
/// is the point of the fix and exactly what the per-rule breakdown should
/// show (see EXPERIMENTS.md E17).
NodeDecision decide(const Instance& inst, ProtocolKind kind, NodeId node,
                    std::span<const bgp::Candidate> possible,
                    bgp::SelectionProvenance* provenance = nullptr);

/// Same decision against an explicit IGP epoch instead of the instance's
/// frozen base igp().  Engines modeling IGP churn (link-cost/link-failure
/// faults) pass their current epoch handle here so selection prices every
/// candidate with the *current* distances.
NodeDecision decide(const Instance& inst, const netsim::ShortestPaths& igp,
                    ProtocolKind kind, NodeId node,
                    std::span<const bgp::Candidate> possible,
                    bgp::SelectionProvenance* provenance = nullptr);

/// The Walton advertised set in isolation (exposed for tests): best route
/// per neighboring AS among `possible`, filtered to those matching the
/// overall best's LOCAL-PREF and AS-path length.
std::vector<PathId> walton_advertised(const Instance& inst, NodeId node,
                                      std::span<const bgp::Candidate> possible);

/// Walton advertised set against an explicit IGP epoch.
std::vector<PathId> walton_advertised(const Instance& inst,
                                      const netsim::ShortestPaths& igp, NodeId node,
                                      std::span<const bgp::Candidate> possible);

}  // namespace ibgp::core
