#pragma once
// An Instance bundles everything static about one experiment: the physical
// graph G_P, the cluster layout, the logical session graph G_I, the universe
// of exit paths, per-node BGP identifiers and the selection policy.  It
// corresponds to the tuple SR = (G_P, G_I, config(0)) of Section 5 minus the
// mutable parts of config(t) (which exits are currently announced and each
// node's PossibleExits/BestRoute live in the engines).

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/exit_table.hpp"
#include "bgp/route_map.hpp"
#include "bgp/selection.hpp"
#include "netsim/cluster_layout.hpp"
#include "netsim/physical_graph.hpp"
#include "netsim/session_graph.hpp"
#include "netsim/shortest_paths.hpp"
#include "netsim/spf_cache.hpp"
#include "netsim/validate.hpp"
#include "util/types.hpp"

namespace ibgp::core {

class Instance {
 public:
  /// Assembles and finalizes an instance.  Computes all-pairs shortest
  /// paths, assigns default BGP identifiers (bgp_id(v) = v) when `bgp_ids`
  /// is empty, and validates:
  ///   - structural session constraints (netsim::validate),
  ///   - every exit point names an existing node.
  /// Throws std::invalid_argument on any validation error.
  ///
  /// `ingress_maps` (empty, or one RouteMap per node) are per-node E-BGP
  /// import route-maps: map v is applied once, here, to every exit path
  /// whose exit point is v, producing the *effective* attributes that
  /// exits() reports and every engine selects on.  raw_exits() keeps the
  /// pre-rewrite table so serializers can round-trip config rather than its
  /// consequence.
  Instance(std::string name, netsim::PhysicalGraph physical, netsim::ClusterLayout clusters,
           netsim::SessionGraph sessions, bgp::ExitTable exits,
           bgp::SelectionPolicy policy = {}, std::vector<BgpId> bgp_ids = {},
           std::vector<std::string> node_names = {},
           std::vector<bgp::RouteMap> ingress_maps = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t node_count() const { return physical_.node_count(); }

  [[nodiscard]] const netsim::PhysicalGraph& physical() const { return physical_; }
  [[nodiscard]] const netsim::ClusterLayout& clusters() const { return clusters_; }
  [[nodiscard]] const netsim::SessionGraph& sessions() const { return sessions_; }
  [[nodiscard]] const bgp::ExitTable& exits() const { return exits_; }
  [[nodiscard]] const netsim::ShortestPaths& igp() const { return *igp_; }
  [[nodiscard]] const bgp::SelectionPolicy& policy() const { return policy_; }

  /// The exit table as configured, before ingress route-maps rewrote any
  /// attributes.  Identical to exits() when no node has an ingress policy.
  [[nodiscard]] const bgp::ExitTable& raw_exits() const { return raw_exits_; }

  /// Per-node ingress route-maps (empty span when none were configured).
  [[nodiscard]] std::span<const bgp::RouteMap> ingress_maps() const { return ingress_maps_; }

  /// True iff any node carries a non-empty ingress route-map.
  [[nodiscard]] bool has_ingress_policy() const {
    for (const auto& map : ingress_maps_) {
      if (!map.empty()) return true;
    }
    return false;
  }

  // --- IGP epochs (runtime topology churn) ----------------------------------
  //
  // The Instance itself stays the paper's static tuple: physical() and
  // igp() never change.  Engines that model IGP churn hold an *epoch
  // handle* — a shared_ptr to the ShortestPaths matching the currently
  // effective link costs — and swap it on link faults.  Epochs are
  // materialized through a memoized SPF cache shared by every copy of this
  // instance (and thus by every cell of a sweep over it), so repeated
  // recomputation of the same link-state vector runs Dijkstra once.

  /// The epoch handle for the unchurned base graph; igp() dereferences it.
  [[nodiscard]] std::shared_ptr<const netsim::ShortestPaths> igp_handle() const {
    return igp_;
  }

  /// The epoch for an arbitrary effective link-cost vector (index-aligned
  /// with physical().links(), kInfCost = link down), memoized.  Reverting
  /// to previously seen costs returns the identical object — restoring the
  /// base costs returns igp_handle() itself.  Thread-safe.
  [[nodiscard]] std::shared_ptr<const netsim::ShortestPaths> igp_epoch(
      std::span<const Cost> effective_costs) const {
    return spf_cache_->get(effective_costs);
  }

  /// Distinct IGP epochs materialized so far across all holders.
  [[nodiscard]] std::size_t igp_epoch_count() const { return spf_cache_->size(); }

  /// The shared SPF cache itself, for observability hookups (hit/miss
  /// counters via SpfCache::attach_metrics).  Shared by every copy of this
  /// instance; mutating attachments affects all holders.
  [[nodiscard]] netsim::SpfCache& spf_cache() const { return *spf_cache_; }

  [[nodiscard]] BgpId bgp_id(NodeId v) const { return bgp_ids_.at(v); }

  /// Human-readable node label ("RR1", "c2", ...); defaults to "n<v>".
  [[nodiscard]] const std::string& node_name(NodeId v) const { return node_names_.at(v); }

  /// Node id for a label, or kNoNode.
  [[nodiscard]] NodeId find_node(std::string_view label) const;

  /// Structural warnings gathered during validation (non-fatal).
  [[nodiscard]] std::span<const std::string> warnings() const { return warnings_; }

  /// Convenience: a copy of this instance with a different selection policy
  /// (used by the rule-ordering experiments, e.g. Fig 1(b)).
  [[nodiscard]] Instance with_policy(bgp::SelectionPolicy policy) const;

 private:
  std::string name_;
  netsim::PhysicalGraph physical_;
  netsim::ClusterLayout clusters_;
  netsim::SessionGraph sessions_;
  bgp::ExitTable exits_;      // effective (post-route-map) attributes
  bgp::ExitTable raw_exits_;  // as configured; == exits_ without ingress policy
  std::vector<bgp::RouteMap> ingress_maps_;
  bgp::SelectionPolicy policy_;
  std::vector<BgpId> bgp_ids_;
  std::vector<std::string> node_names_;
  std::vector<std::string> warnings_;
  std::shared_ptr<const netsim::ShortestPaths> igp_;  // shared so copies are cheap
  std::shared_ptr<netsim::SpfCache> spf_cache_;  // churn epochs; shared by copies
};

}  // namespace ibgp::core
