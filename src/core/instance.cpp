#include "core/instance.hpp"

#include <stdexcept>

#include "netsim/link_state.hpp"

namespace ibgp::core {

Instance::Instance(std::string name, netsim::PhysicalGraph physical,
                   netsim::ClusterLayout clusters, netsim::SessionGraph sessions,
                   bgp::ExitTable exits, bgp::SelectionPolicy policy,
                   std::vector<BgpId> bgp_ids, std::vector<std::string> node_names,
                   std::vector<bgp::RouteMap> ingress_maps)
    : name_(std::move(name)),
      physical_(std::move(physical)),
      clusters_(std::move(clusters)),
      sessions_(std::move(sessions)),
      exits_(std::move(exits)),
      ingress_maps_(std::move(ingress_maps)),
      policy_(std::move(policy)),
      bgp_ids_(std::move(bgp_ids)),
      node_names_(std::move(node_names)) {
  const auto report = netsim::validate(physical_, clusters_, sessions_);
  if (!report.ok()) {
    std::string message = "Instance '" + name_ + "' invalid:";
    for (const auto& error : report.errors) message += "\n  - " + error;
    throw std::invalid_argument(message);
  }
  warnings_ = report.warnings;

  for (const auto& path : exits_.all()) {
    if (path.exit_point >= physical_.node_count()) {
      throw std::invalid_argument("Instance '" + name_ + "': exit path " + path.name +
                                  " names non-existent node " +
                                  std::to_string(path.exit_point));
    }
  }

  // The incoming table carries the configured (raw) attributes; ingress
  // route-maps rewrite them once, here, into the effective table every
  // engine selects on.  The rewrite is keyed on the exit point only, so the
  // effective attributes are identical at every evaluating node — the
  // node-independence the modified protocol's proof needs survives any map.
  raw_exits_ = exits_;
  if (!ingress_maps_.empty()) {
    if (ingress_maps_.size() != physical_.node_count()) {
      throw std::invalid_argument("Instance '" + name_ + "': ingress_maps size mismatch");
    }
    bgp::ExitTable effective;
    for (const auto& path : raw_exits_.all()) {
      effective.add(ingress_maps_[path.exit_point].apply(path));
    }
    exits_ = std::move(effective);
  }

  if (bgp_ids_.empty()) {
    bgp_ids_.resize(physical_.node_count());
    for (NodeId v = 0; v < bgp_ids_.size(); ++v) bgp_ids_[v] = v;
  } else if (bgp_ids_.size() != physical_.node_count()) {
    throw std::invalid_argument("Instance '" + name_ + "': bgp_ids size mismatch");
  }

  if (node_names_.empty()) {
    node_names_.reserve(physical_.node_count());
    for (NodeId v = 0; v < physical_.node_count(); ++v) {
      node_names_.push_back("n" + std::to_string(v));
    }
  } else if (node_names_.size() != physical_.node_count()) {
    throw std::invalid_argument("Instance '" + name_ + "': node_names size mismatch");
  }

  spf_cache_ = std::make_shared<netsim::SpfCache>(physical_);
  // Seed the cache with the base epoch so a churn sequence that restores the
  // original costs gets back this very object (pointer-equal to igp_).
  igp_ = spf_cache_->get(netsim::LinkState(physical_).effective());
}

NodeId Instance::find_node(std::string_view label) const {
  for (NodeId v = 0; v < node_names_.size(); ++v) {
    if (node_names_[v] == label) return v;
  }
  return kNoNode;
}

Instance Instance::with_policy(bgp::SelectionPolicy policy) const {
  Instance copy = *this;
  copy.policy_ = policy;
  return copy;
}

}  // namespace ibgp::core
