#include "core/levels.hpp"

#include "core/transfer.hpp"

namespace ibgp::core {

int level_of(const Instance& inst, PathId p, NodeId u) {
  const NodeId v = inst.exits()[p].exit_point;
  if (u == v) return 0;
  const auto& clusters = inst.clusters();
  const bool same = clusters.same_cluster(u, v);
  if (same) return clusters.is_reflector(u) ? 1 : 2;
  return clusters.is_reflector(u) ? 2 : 3;
}

NodeId lower_level_supplier(const Instance& inst, PathId p, NodeId u) {
  const int h = level_of(inst, p, u);
  if (h == 0) return kNoNode;
  for (const NodeId w : inst.sessions().peers(u)) {
    if (level_of(inst, p, w) < h && transfer_allowed(inst, w, u, p)) return w;
  }
  return kNoNode;
}

}  // namespace ibgp::core
