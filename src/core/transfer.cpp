#include "core/transfer.hpp"

#include <algorithm>

namespace ibgp::core {

bool transfer_allowed(const Instance& inst, NodeId v, NodeId u, PathId p) {
  if (v == u) return false;
  if (!inst.sessions().has_session(v, u)) return false;

  const auto& clusters = inst.clusters();
  const NodeId exit_point = inst.exits()[p].exit_point;

  // Condition 1: v learned p via E-BGP.
  if (exit_point == v) return true;

  // Condition 2: reflector-to-reflector across clusters, client-learned path.
  if (clusters.is_reflector(v) && clusters.is_reflector(u) &&
      !clusters.same_cluster(v, u) && clusters.is_client(exit_point) &&
      clusters.same_cluster(v, exit_point)) {
    return true;
  }

  // Condition 3: reflector to own client, not the client's own exit.
  if (clusters.is_reflector(v) && clusters.is_client(u) && clusters.same_cluster(v, u) &&
      exit_point != u) {
    return true;
  }

  return false;
}

std::vector<PathId> transfer_set(const Instance& inst, NodeId v, NodeId u,
                                 std::span<const PathId> advertised) {
  std::vector<PathId> out;
  for (const PathId p : advertised) {
    if (transfer_allowed(inst, v, u, p)) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ibgp::core
