#include "core/policy.hpp"

#include <algorithm>
#include <map>

namespace ibgp::core {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kStandard: return "standard";
    case ProtocolKind::kWalton: return "walton";
    case ProtocolKind::kModified: return "modified";
  }
  return "?";
}

std::vector<PathId> walton_advertised(const Instance& inst, NodeId node,
                                      std::span<const bgp::Candidate> possible) {
  return walton_advertised(inst, inst.igp(), node, possible);
}

std::vector<PathId> walton_advertised(const Instance& inst,
                                      const netsim::ShortestPaths& igp, NodeId node,
                                      std::span<const bgp::Candidate> possible) {
  const auto& table = inst.exits();
  const auto overall = bgp::choose_best(table, igp, node, possible, inst.policy());
  if (!overall) return {};
  const LocalPref best_lp = table[overall->path].local_pref;
  const std::uint32_t best_len = table[overall->path].as_path_length;

  // Partition candidates by neighboring AS; the vector preserves the
  // learnedFrom attribution needed by the per-AS selection.
  std::map<AsId, std::vector<bgp::Candidate>> by_as;
  for (const auto& candidate : possible) {
    by_as[table[candidate.path].next_as].push_back(candidate);
  }

  std::vector<PathId> advertised;
  for (const auto& [as, group] : by_as) {
    const auto group_best = bgp::choose_best(table, igp, node, group, inst.policy());
    if (!group_best) continue;
    // Only announced when it matches the overall best's LOCAL-PREF and
    // AS-path length (Section 8, "Brief Overview of the Walton et al.
    // Solution").
    const auto& path = table[group_best->path];
    if (path.local_pref == best_lp && path.as_path_length == best_len) {
      advertised.push_back(group_best->path);
    }
  }
  std::sort(advertised.begin(), advertised.end());
  advertised.erase(std::unique(advertised.begin(), advertised.end()), advertised.end());
  return advertised;
}

NodeDecision decide(const Instance& inst, ProtocolKind kind, NodeId node,
                    std::span<const bgp::Candidate> possible,
                    bgp::SelectionProvenance* provenance) {
  return decide(inst, inst.igp(), kind, node, possible, provenance);
}

NodeDecision decide(const Instance& inst, const netsim::ShortestPaths& igp,
                    ProtocolKind kind, NodeId node,
                    std::span<const bgp::Candidate> possible,
                    bgp::SelectionProvenance* provenance) {
  NodeDecision decision;
  const auto& table = inst.exits();

  switch (kind) {
    case ProtocolKind::kStandard: {
      decision.best =
          bgp::choose_best(table, igp, node, possible, inst.policy(), provenance);
      if (decision.best) decision.advertised.push_back(decision.best->path);
      break;
    }
    case ProtocolKind::kWalton: {
      decision.best =
          bgp::choose_best(table, igp, node, possible, inst.policy(), provenance);
      decision.advertised = walton_advertised(inst, igp, node, possible);
      break;
    }
    case ProtocolKind::kModified: {
      // GoodExits = Choose^B(PossibleExits): rules 1-3 over bare paths.
      std::vector<PathId> ids;
      ids.reserve(possible.size());
      for (const auto& candidate : possible) ids.push_back(candidate.path);
      decision.advertised = bgp::choose_survivors(table, ids, inst.policy());

      // BestRoute is chosen from GoodExits (Section 6), so restrict the
      // candidate set to the survivors while keeping learnedFrom intact.
      std::vector<bgp::Candidate> good;
      for (const auto& candidate : possible) {
        if (std::binary_search(decision.advertised.begin(), decision.advertised.end(),
                               candidate.path)) {
          good.push_back(candidate);
        }
      }
      decision.best = bgp::choose_best(table, igp, node, good, inst.policy(), provenance);
      break;
    }
  }
  return decision;
}

}  // namespace ibgp::core
