#pragma once
// Closed-form fixed point of the modified protocol (Section 7).
//
// Theorem (Lemmas 7.4/7.5 + the discussion after them): starting from a valid
// configuration with announced exit set S, every fair activation sequence
// drives the modified protocol to the SAME configuration:
//
//   S'              = Choose^B(S)                       (node-independent)
//   GoodExits(u)    = S'                                (for every u)
//   BestRoute(u)    = best_u(route(S', u))
//
// predict_fixed_point() computes this directly — no simulation.  The engines
// then *verify* the theorem by checking that, under arbitrary fair schedules,
// they terminate in exactly this configuration.  PossibleExits visibility and
// learnedFrom attribution are derived by a small reachability closure over
// the Transfer relation.

#include <optional>
#include <span>
#include <vector>

#include "bgp/selection.hpp"
#include "core/instance.hpp"
#include "util/types.hpp"

namespace ibgp::core {

struct FixedPointPrediction {
  /// S' = Choose^B over the announced exits: the paths everyone eventually
  /// advertises, ascending ids.
  std::vector<PathId> s_prime;

  /// Predicted eventual PossibleExits per node (MyExits plus every S' member
  /// that can reach the node through the Transfer relation), ascending ids.
  std::vector<std::vector<PathId>> possible;

  /// Predicted eventual best route per node (nullopt if the node can use no
  /// path at all — e.g. unreachable exits).
  std::vector<std::optional<bgp::RouteView>> best;
};

/// Computes the unique fixed point for the given announced exit set.
/// `announced` lists the path ids currently injected via E-BGP (MyExits
/// union); pass every id in the table for the default "all announced" state.
FixedPointPrediction predict_fixed_point(const Instance& inst,
                                         std::span<const PathId> announced);

/// Convenience overload: all registered exit paths announced.
FixedPointPrediction predict_fixed_point(const Instance& inst);

}  // namespace ibgp::core
