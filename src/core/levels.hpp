#pragma once
// The level function of Section 7 (Fig 11): the distance, in Transfer hops,
// of a node u from the exit point v of a path p.
//
//   level_p(u) = 0  if u = v,
//   level_p(u) = 1  if u is another reflector of v's cluster,
//   level_p(u) = 2  if u is another client of v's cluster,
//   level_p(u) = 2  if u is a reflector of another cluster,
//   level_p(u) = 3  if u is a client of another cluster.
//
// The convergence proof rests on two monotonicity facts tested against the
// implementation:
//   Lemma 7.1: Transfer never carries p from a node of level >= h to a node
//              of level  h (information flows strictly up-level);
//   Lemma 7.3: every node of level h > 0 has a session neighbor of strictly
//              smaller level allowed to transfer p to it.

#include "core/instance.hpp"
#include "util/types.hpp"

namespace ibgp::core {

/// level_p(u); p must be a valid path id and u a valid node.
int level_of(const Instance& inst, PathId p, NodeId u);

/// Lemma 7.3, constructively: a session neighbor w of u with
/// level_p(w) < level_p(u) and transfer_allowed(w, u, p), or kNoNode if
/// level_p(u) == 0.  For a structurally valid instance this never fails for
/// levels > 0; it is exposed so tests can assert exactly that.
NodeId lower_level_supplier(const Instance& inst, PathId p, NodeId u);

}  // namespace ibgp::core
