#include "daemon/watchdog.hpp"

#include <cstdio>
#include <cstdlib>

namespace ibgp::daemon {

Watchdog::Watchdog(obs::MetricsRegistry* registry, Options options)
    : options_(options), last_beat_ms_(now_ms()) {
  if (registry != nullptr) {
    stall_counter_ =
        &registry->counter("daemon.watchdog_stalls", obs::MetricClass::kVolatile);
  }
}

Watchdog::~Watchdog() { stop(); }

std::int64_t Watchdog::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Watchdog::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::begin_record() {
  last_beat_ms_.store(now_ms(), std::memory_order_relaxed);
  busy_.store(true, std::memory_order_release);
}

void Watchdog::end_record() {
  busy_.store(false, std::memory_order_release);
  last_beat_ms_.store(now_ms(), std::memory_order_relaxed);
}

std::chrono::milliseconds Watchdog::heartbeat_age() const {
  return std::chrono::milliseconds(now_ms() - last_beat_ms_.load(std::memory_order_relaxed));
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, options_.interval, [&] { return stop_requested_; });
    if (stop_requested_) break;
    if (!busy_.load(std::memory_order_acquire)) {
      stall_reported_ = false;  // idle: the next stall is a fresh one
      continue;
    }
    const auto age = heartbeat_age();
    if (age < options_.stall_after) continue;
    if (stall_reported_) continue;  // keep reporting one stall per stuck record
    stall_reported_ = true;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    if (stall_counter_ != nullptr) stall_counter_->increment();
    std::fprintf(stderr,
                 "ibgpd watchdog: record in flight for %lld ms (threshold %lld ms)\n",
                 static_cast<long long>(age.count()),
                 static_cast<long long>(options_.stall_after.count()));
    if (options_.fatal) {
      std::fprintf(stderr, "ibgpd watchdog: fatal mode, aborting\n");
      std::abort();
    }
  }
}

}  // namespace ibgp::daemon
