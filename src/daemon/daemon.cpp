#include "daemon/daemon.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <stdexcept>
#include <variant>
#include <vector>

#include "analysis/forwarding.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/policy.hpp"
#include "fault/campaign.hpp"
#include "obs/span.hpp"
#include "util/hash.hpp"

namespace ibgp::daemon {

namespace json = util::json;

namespace {

// Wire spelling of each QueryKind, used to name the per-query-kind latency
// histograms ("daemon.latency.<kind>_ns").
constexpr const char* kQueryLatencyMetric[] = {
    "daemon.latency.best_ns",   "daemon.latency.path_ns",
    "daemon.latency.status_ns", "daemon.latency.stats_ns",
    "daemon.latency.health_ns", "daemon.latency.whatif_ns",
    "daemon.latency.metrics_ns",
};

}  // namespace

void register_daemon_metrics(obs::MetricsRegistry& registry) {
  // Deterministic stream counters: part of the registry fingerprint, so a
  // recovered daemon restores them from the checkpoint + journal replay.
  registry.counter("daemon.state_records", obs::MetricClass::kDeterministic);
  registry.counter("daemon.announces", obs::MetricClass::kDeterministic);
  registry.counter("daemon.withdraws", obs::MetricClass::kDeterministic);
  registry.counter("daemon.faults", obs::MetricClass::kDeterministic);
  // Volatile service counters: schedule- and crash-dependent by nature
  // (query counts do not survive a SIGKILL), never fingerprinted.
  registry.counter("daemon.queries", obs::MetricClass::kVolatile);
  registry.counter("daemon.errors", obs::MetricClass::kVolatile);
  registry.counter("daemon.sheds", obs::MetricClass::kVolatile);
  registry.counter("daemon.checkpoints", obs::MetricClass::kVolatile);
  registry.counter("daemon.wal_replayed", obs::MetricClass::kVolatile);
  registry.counter("daemon.watchdog_stalls", obs::MetricClass::kVolatile);
  // Service spans and per-query-kind latencies: wall time, always volatile.
  obs::span_histogram(registry, "daemon.span.wal_fsync_ns");
  obs::span_histogram(registry, "daemon.span.ckpt_write_ns");
  for (const char* name : kQueryLatencyMetric) obs::span_histogram(registry, name);
}

namespace {

// POSIX write helpers shared by the WAL path.  The journal is the one
// durability-critical artifact the daemon writes on the hot path, so it
// uses raw fds with explicit EINTR handling and fsync — stdio buffering
// would reorder the "journal before apply" contract.
bool write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t got = ::write(fd, data + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

int open_retry_fd(const char* path, int flags, mode_t mode = 0) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

bool fsync_retry_fd(int fd) {
  int rc = -1;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  return rc == 0;
}

void fsync_dir(const std::string& dir) {
  const int fd = open_retry_fd(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  fsync_retry_fd(fd);
  ::close(fd);
}

const char* outcome_name(analysis::ForwardOutcome outcome) {
  switch (outcome) {
    case analysis::ForwardOutcome::kExits: return "exits";
    case analysis::ForwardOutcome::kLoop: return "loop";
    case analysis::ForwardOutcome::kNoRoute: return "no-route";
  }
  return "?";
}

}  // namespace

Daemon::Daemon(std::shared_ptr<core::Instance> instance, core::ProtocolKind protocol,
               DaemonOptions options)
    : instance_(std::move(instance)), protocol_(protocol), options_(std::move(options)) {
  if (!instance_) throw std::invalid_argument("Daemon: null instance");
  if (options_.resume && !persistent()) {
    throw std::invalid_argument("Daemon: --resume requires a state directory");
  }
  // Fixed registration order => deterministic registry fingerprint.
  engine::register_event_engine_metrics(metrics_);
  register_daemon_metrics(metrics_);
  if (options_.spf_cache_epochs != 0) {
    instance_->spf_cache().set_capacity(options_.spf_cache_epochs);
  }
  instance_->spf_cache().attach_metrics(&metrics_);

  wal_fsync_ns_ = &obs::span_histogram(metrics_, "daemon.span.wal_fsync_ns");
  ckpt_write_ns_ = &obs::span_histogram(metrics_, "daemon.span.ckpt_write_ns");
  for (std::size_t i = 0; i < std::size(kQueryLatencyMetric); ++i) {
    query_latency_ns_[i] = &obs::span_histogram(metrics_, kQueryLatencyMetric[i]);
  }

  engine_ = std::make_unique<engine::EventEngine>(*instance_, protocol_);
  engine_->set_metrics(&metrics_);

  if (persistent()) {
    std::filesystem::create_directories(options_.state_dir);
    if (options_.resume) {
      // The flag reports the startup mode, not what was found: a resume
      // into a state dir whose journal is empty (killed before anything
      // was accepted) is still a resumed daemon with applied_seq 0.
      resumed_ = true;
      recover();
    } else {
      // Fresh start: whatever a previous incarnation left behind is not
      // ours to resume — clear it so a later --resume sees only this run.
      std::remove(ckpt_path().c_str());
      if (!wal_reset()) {
        throw std::runtime_error("Daemon: cannot initialize journal in " +
                                 options_.state_dir);
      }
    }
  }
}

Daemon::~Daemon() {
  // SIGKILL-equivalent teardown: close the journal fd and nothing else.
  // Any state worth keeping is already on disk (WAL fsync'd per record).
  if (wal_fd_ >= 0) ::close(wal_fd_);
  instance_->spf_cache().attach_metrics(nullptr);
}

// --- paths & identity -------------------------------------------------------

std::string Daemon::ckpt_path() const { return options_.state_dir + "/checkpoint.json"; }
std::string Daemon::wal_path() const { return options_.state_dir + "/wal.jsonl"; }

json::Object Daemon::identity_json() const {
  json::Object id;
  id.emplace_back("instance", instance_->name());
  id.emplace_back("protocol", core::protocol_name(protocol_));
  return id;
}

void Daemon::check_identity(const json::Value& doc, const char* what) const {
  const json::Value* instance = doc.find("instance");
  const json::Value* protocol = doc.find("protocol");
  if (instance == nullptr || !instance->is_string() || protocol == nullptr ||
      !protocol->is_string()) {
    throw std::runtime_error(std::string("Daemon: ") + what + " carries no identity");
  }
  if (instance->as_string() != instance_->name() ||
      protocol->as_string() != core::protocol_name(protocol_)) {
    throw std::runtime_error(std::string("Daemon: ") + what + " belongs to instance '" +
                             instance->as_string() + "' protocol '" +
                             protocol->as_string() + "', not '" + instance_->name() +
                             "'/'" + core::protocol_name(protocol_) +
                             "' — refusing to resume");
  }
}

// --- engine stepping --------------------------------------------------------

void Daemon::step_engine(SimTime horizon) {
  // Each step reports only its own deliveries — except the first step after
  // restore(), which also carries the checkpointed cumulative total, so the
  // daemon-side sum always equals the uninterrupted run's total.
  auto result = engine_->run_until(horizon, options_.step_budget);
  deliveries_total_ += result.deliveries;
  last_result_ = std::move(result);
}

engine::EventEngine::Result Daemon::synthesized_result() const {
  // The cumulative Result the equivalent uninterrupted batch run would
  // return right now: per-run fields (deliveries, end_time) are replaced
  // with stream-level totals, everything else is already cumulative.
  auto synth = last_result_;
  synth.deliveries = deliveries_total_;
  synth.end_time = clock_;
  synth.final_best.clear();
  synth.final_best.reserve(instance_->node_count());
  for (NodeId v = 0; v < instance_->node_count(); ++v) {
    synth.final_best.push_back(engine_->best_path(v));
  }
  return synth;
}

// --- WAL --------------------------------------------------------------------

bool Daemon::wal_reset() {
  if (!persistent()) return true;
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  const std::string path = wal_path();
  const std::string tmp = path + ".tmp";
  const int fd = open_retry_fd(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  json::Object header;
  header.emplace_back("ev", "wal");
  header.emplace_back("schema", kWalSchema);
  header.emplace_back("instance", instance_->name());
  header.emplace_back("protocol", core::protocol_name(protocol_));
  const std::string line = json::Value(std::move(header)).dump_compact() + "\n";
  bool ok = write_all_fd(fd, line.data(), line.size());
  ok = fsync_retry_fd(fd) && ok;
  ok = (::close(fd) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_dir(options_.state_dir);
  wal_fd_ = open_retry_fd(path.c_str(), O_WRONLY | O_APPEND);
  return wal_fd_ >= 0;
}

bool Daemon::wal_append(std::string_view line) {
  if (wal_fd_ < 0) return false;
  std::string buf(line);
  buf += '\n';
  if (!write_all_fd(wal_fd_, buf.data(), buf.size())) return false;
  // fsync BEFORE apply/ack: an acknowledged record is durable by contract.
  // The span measures exactly the durability cost paid per accepted record.
  const obs::Span span(wal_fsync_ns_);
  return fsync_retry_fd(wal_fd_);
}

// --- checkpoint -------------------------------------------------------------

bool Daemon::write_checkpoint() {
  // Serialization + atomic write, the full stall a checkpoint imposes on
  // the single-threaded core.
  const obs::Span span(ckpt_write_ns_);
  json::Object doc;
  doc.emplace_back("schema", kDaemonCkptSchema);
  doc.emplace_back("instance", instance_->name());
  doc.emplace_back("protocol", core::protocol_name(protocol_));
  doc.emplace_back("applied_seq", applied_seq_);
  doc.emplace_back("clock", clock_);
  doc.emplace_back("wire_hash", wire_hash_);
  json::Object counters;
  counters.emplace_back("state_records", state_records_);
  counters.emplace_back("announces", announces_);
  counters.emplace_back("withdraws", withdraws_);
  counters.emplace_back("faults", faults_);
  counters.emplace_back("deliveries", deliveries_total_);
  doc.emplace_back("counters", std::move(counters));
  doc.emplace_back("engine", ckpt::engine_state_json(engine_->capture()));
  if (!json::write_file_atomic(ckpt_path(), json::Value(std::move(doc)))) return false;
  metrics_.counter("daemon.checkpoints", obs::MetricClass::kVolatile).increment();
  return true;
}

// --- recovery ---------------------------------------------------------------

void Daemon::recover() {
  std::string err;
  if (std::filesystem::exists(ckpt_path())) {
    const auto doc = json::read_file(ckpt_path(), &err);
    if (!doc) throw std::runtime_error("Daemon: unreadable checkpoint: " + err);
    const json::Value* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != kDaemonCkptSchema) {
      throw std::runtime_error("Daemon: checkpoint is not " + std::string(kDaemonCkptSchema));
    }
    check_identity(*doc, "checkpoint");
    engine_->restore(ckpt::parse_engine_state(doc->at("engine")));
    applied_seq_ = doc->at("applied_seq").as_uint();
    clock_ = doc->at("clock").as_uint();
    wire_hash_ = doc->at("wire_hash").as_uint();
    const json::Value& counters = doc->at("counters");
    state_records_ = counters.at("state_records").as_uint();
    announces_ = counters.at("announces").as_uint();
    withdraws_ = counters.at("withdraws").as_uint();
    faults_ = counters.at("faults").as_uint();
    metrics_.counter("daemon.state_records").add(state_records_);
    metrics_.counter("daemon.announces").add(announces_);
    metrics_.counter("daemon.withdraws").add(withdraws_);
    metrics_.counter("daemon.faults").add(faults_);
    // Consume the restored engine's deliveries carry (and push the first
    // full metrics flush).  The carry only spans the final run before the
    // checkpoint, so top both the stream total and the engine.deliveries
    // metric up to the checkpointed cumulative count.
    const std::uint64_t ckpt_deliveries = counters.at("deliveries").as_uint();
    step_engine(clock_);
    if (ckpt_deliveries > deliveries_total_) {
      metrics_.counter("engine.deliveries").add(ckpt_deliveries - deliveries_total_);
      deliveries_total_ = ckpt_deliveries;
    }
  }

  // Journal replay: feed every complete post-header line back through the
  // normal ingest path.  Records at or below the checkpoint's applied_seq
  // hit the exactly-once dedupe and are skipped; a torn final line is the
  // append a SIGKILL interrupted — its sender never got an ack — so it is
  // truncated away.
  const std::string path = wal_path();
  std::string text;
  {
    const int fd = open_retry_fd(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      char buf[65536];
      ssize_t got = 0;
      while ((got = ::read(fd, buf, sizeof buf)) > 0) text.append(buf, static_cast<std::size_t>(got));
      ::close(fd);
    }
  }
  std::size_t valid_end = 0;
  std::vector<std::string_view> lines;
  for (std::size_t pos = 0; pos < text.size();) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail
    lines.emplace_back(text.data() + pos, nl - pos);
    valid_end = nl + 1;
    pos = nl + 1;
  }
  if (lines.empty()) {
    // Missing or headerless journal: start a fresh one (the checkpoint, if
    // any, is already restored).
    if (!wal_reset()) throw std::runtime_error("Daemon: cannot re-create journal");
    return;
  }
  std::string header_err;
  const auto header = json::parse(lines.front(), &header_err);
  if (!header || header->find("schema") == nullptr ||
      !header->at("schema").is_string() ||
      header->at("schema").as_string() != kWalSchema) {
    throw std::runtime_error("Daemon: journal header is not " + std::string(kWalSchema));
  }
  check_identity(*header, "journal");
  auto& replayed = metrics_.counter("daemon.wal_replayed", obs::MetricClass::kVolatile);
  replaying_ = true;
  hello_done_ = true;  // accepted records imply the original client's hello
  for (std::size_t i = 1; i < lines.size(); ++i) {
    (void)handle_line(lines[i]);  // replies were already delivered (or never acked)
    replayed.increment();
  }
  replaying_ = false;
  hello_done_ = false;
  if (valid_end < text.size()) {
    // Drop the torn tail so the next append starts on a clean line.
    if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      throw std::runtime_error("Daemon: cannot truncate torn journal tail");
    }
  }
  wal_fd_ = open_retry_fd(path.c_str(), O_WRONLY | O_APPEND);
  if (wal_fd_ < 0) throw std::runtime_error("Daemon: cannot reopen journal");
}

// --- ingest -----------------------------------------------------------------

std::string Daemon::error_out(ErrorCode code, std::string message, const WireRecord* rec) {
  metrics_.counter("daemon.errors", obs::MetricClass::kVolatile).increment();
  WireError e;
  e.code = code;
  e.message = std::move(message);
  if (rec != nullptr &&
      (rec->kind == RecordKind::kAnnounce || rec->kind == RecordKind::kWithdraw ||
       rec->kind == RecordKind::kFault)) {
    e.seq = rec->seq;
    e.has_seq = true;
  }
  return error_reply(e);
}

std::string Daemon::handle_line(std::string_view line) {
  if (line.size() > kMaxLineBytes) {
    metrics_.counter("daemon.errors", obs::MetricClass::kVolatile).increment();
    return error_reply(ErrorCode::kOversize,
                       "line exceeds " + std::to_string(kMaxLineBytes) + " bytes");
  }
  auto parsed = parse_record(line);
  if (std::holds_alternative<WireError>(parsed)) {
    metrics_.counter("daemon.errors", obs::MetricClass::kVolatile).increment();
    return error_reply(std::get<WireError>(parsed));
  }
  try {
    return handle_record(std::get<WireRecord>(parsed), line);
  } catch (const std::exception& e) {
    // Belt and braces: nothing below should throw, but "never a crash" is
    // the contract, so any escapee becomes a structured error.
    return error_out(ErrorCode::kState, std::string("internal: ") + e.what(), nullptr);
  }
}

std::string Daemon::handle_record(const WireRecord& rec, std::string_view raw_line) {
  switch (rec.kind) {
    case RecordKind::kHello:
      return handle_hello(rec);
    case RecordKind::kAnnounce:
    case RecordKind::kWithdraw:
    case RecordKind::kFault:
      return handle_state_record(rec, raw_line);
    case RecordKind::kQuery:
      if (!hello_done_) return error_out(ErrorCode::kState, "expected hello first", nullptr);
      return handle_query(rec);
    case RecordKind::kDrain:
      if (!hello_done_) return error_out(ErrorCode::kState, "expected hello first", nullptr);
      return drain();
  }
  return error_out(ErrorCode::kState, "unreachable record kind", nullptr);
}

std::string Daemon::handle_hello(const WireRecord& rec) {
  if (hello_done_) return error_out(ErrorCode::kState, "duplicate hello", nullptr);
  if (rec.instance != instance_->name()) {
    return error_out(ErrorCode::kIdentity,
                     "this daemon serves instance '" + instance_->name() + "', not '" +
                         rec.instance + "'",
                     nullptr);
  }
  if (rec.protocol != core::protocol_name(protocol_)) {
    return error_out(ErrorCode::kIdentity,
                     std::string("this daemon runs protocol '") +
                         core::protocol_name(protocol_) + "', not '" + rec.protocol + "'",
                     nullptr);
  }
  hello_done_ = true;
  json::Object out;
  out.emplace_back("ev", "hello-ok");
  out.emplace_back("schema", kWireSchema);
  out.emplace_back("instance", instance_->name());
  out.emplace_back("protocol", core::protocol_name(protocol_));
  out.emplace_back("resumed", resumed_);
  out.emplace_back("applied_seq", applied_seq_);
  return render_reply(out);
}

std::string Daemon::validate_fault(const WireRecord& rec) {
  const NodeId n = static_cast<NodeId>(instance_->node_count());
  if (rec.a >= n) {
    return error_out(ErrorCode::kRange,
                     "node " + std::to_string(rec.a) + " out of range (node count " +
                         std::to_string(n) + ")",
                     &rec);
  }
  if (!fault_takes_peer(rec.fault)) return {};
  if (rec.b >= n) {
    return error_out(ErrorCode::kRange,
                     "node " + std::to_string(rec.b) + " out of range (node count " +
                         std::to_string(n) + ")",
                     &rec);
  }
  if (rec.a == rec.b) {
    return error_out(ErrorCode::kRange, "fault endpoints must differ", &rec);
  }
  switch (rec.fault) {
    case engine::FaultKind::kSessionDown:
    case engine::FaultKind::kSessionUp:
      // The E_I session-graph constraint, enforced at ingest: only pairs
      // the instance's session graph actually contains are addressable.
      if (!instance_->sessions().has_session(rec.a, rec.b)) {
        return error_out(ErrorCode::kNotASession,
                         instance_->node_name(rec.a) + "—" + instance_->node_name(rec.b) +
                             " is not an I-BGP session",
                         &rec);
      }
      break;
    case engine::FaultKind::kLinkCostChange:
    case engine::FaultKind::kLinkDown:
    case engine::FaultKind::kLinkUp:
      if (!instance_->physical().find_link(rec.a, rec.b).has_value()) {
        return error_out(ErrorCode::kNotALink,
                         instance_->node_name(rec.a) + "—" + instance_->node_name(rec.b) +
                             " is not a physical link",
                         &rec);
      }
      if (rec.fault == engine::FaultKind::kLinkCostChange &&
          (rec.cost <= 0 || rec.cost >= kInfCost)) {
        return error_out(ErrorCode::kRange, "link cost must be a positive finite metric",
                         &rec);
      }
      break;
    default:
      break;
  }
  return {};
}

void Daemon::schedule_fault_on(engine::EventEngine& engine, const WireRecord& rec,
                               SimTime when) {
  switch (rec.fault) {
    case engine::FaultKind::kSessionDown:
      engine.schedule_session_down(rec.a, rec.b, when);
      break;
    case engine::FaultKind::kSessionUp:
      engine.schedule_session_up(rec.a, rec.b, when);
      break;
    case engine::FaultKind::kCrash:
      engine.schedule_crash(rec.a, when);
      break;
    case engine::FaultKind::kRestart:
      engine.schedule_restart(rec.a, when);
      break;
    case engine::FaultKind::kGracefulDown:
      engine.schedule_graceful_down(rec.a, when);
      break;
    case engine::FaultKind::kLinkCostChange:
      engine.schedule_link_cost_change(rec.a, rec.b, rec.cost, when);
      break;
    case engine::FaultKind::kLinkDown:
      engine.schedule_link_down(rec.a, rec.b, when);
      break;
    case engine::FaultKind::kLinkUp:
      engine.schedule_link_up(rec.a, rec.b, when);
      break;
    default:
      throw std::invalid_argument("fault kind is not injectable");
  }
}

std::string Daemon::handle_state_record(const WireRecord& rec, std::string_view raw_line) {
  if (!hello_done_) return error_out(ErrorCode::kState, "expected hello first", &rec);
  if (drained_) return error_out(ErrorCode::kState, "daemon is drained", &rec);

  // Exactly-once: an already-applied seq gets the same pure-function ack
  // its first delivery got (or never got — the crash window), unapplied.
  if (rec.seq <= applied_seq_) return ack_reply(rec.seq, rec.t);

  if (rec.t < clock_) {
    return error_out(ErrorCode::kOrder,
                     "t " + std::to_string(rec.t) + " before stream clock " +
                         std::to_string(clock_),
                     &rec);
  }
  if (rec.kind == RecordKind::kAnnounce || rec.kind == RecordKind::kWithdraw) {
    if (rec.path >= instance_->exits().size()) {
      return error_out(ErrorCode::kRange,
                       "path " + std::to_string(rec.path) + " out of range (" +
                           std::to_string(instance_->exits().size()) + " exit paths)",
                       &rec);
    }
  } else {
    std::string fault_error = validate_fault(rec);
    if (!fault_error.empty()) return fault_error;
  }

  // Journal before apply: once the ack leaves, the record must survive any
  // kill.  A failed append refuses the record instead of applying it
  // unjournaled.
  if (persistent() && !replaying_ && !wal_append(raw_line)) {
    return error_out(ErrorCode::kState, "journal append failed", &rec);
  }

  try {
    switch (rec.kind) {
      case RecordKind::kAnnounce:
        engine_->inject_exit(rec.path, rec.t);
        break;
      case RecordKind::kWithdraw:
        engine_->withdraw_exit(rec.path, rec.t);
        break;
      default:
        schedule_fault_on(*engine_, rec, rec.t);
        break;
    }
  } catch (const std::exception& e) {
    return error_out(ErrorCode::kState, e.what(), &rec);
  }
  step_engine(rec.t);

  clock_ = rec.t;
  applied_seq_ = rec.seq;
  ++state_records_;
  metrics_.counter("daemon.state_records").increment();
  std::uint64_t tag = 3;
  switch (rec.kind) {
    case RecordKind::kAnnounce:
      ++announces_;
      metrics_.counter("daemon.announces").increment();
      tag = 1;
      break;
    case RecordKind::kWithdraw:
      ++withdraws_;
      metrics_.counter("daemon.withdraws").increment();
      tag = 2;
      break;
    default:
      ++faults_;
      metrics_.counter("daemon.faults").increment();
      break;
  }
  // The wire hash pins the applied-record history itself (seq, time, and
  // payload), complementing trace_hash which pins the engine's reaction.
  wire_hash_ = util::hash_combine(wire_hash_, rec.seq);
  wire_hash_ = util::hash_combine(wire_hash_, rec.t);
  wire_hash_ = util::hash_combine(wire_hash_, tag);
  if (tag == 3) {
    wire_hash_ = util::hash_combine(wire_hash_, static_cast<std::uint64_t>(rec.fault));
    wire_hash_ = util::hash_combine(wire_hash_, rec.a);
    wire_hash_ = util::hash_combine(wire_hash_, fault_takes_peer(rec.fault) ? rec.b : kNoNode);
    wire_hash_ = util::hash_combine(wire_hash_, static_cast<std::uint64_t>(rec.cost));
  } else {
    wire_hash_ = util::hash_combine(wire_hash_, rec.path);
  }

  // Checkpoint cadence is keyed on applied_seq (not wall anything), so a
  // killed-and-recovered daemon snapshots at the same stream positions as
  // one that never died.  Replay itself never checkpoints: the journal
  // being consumed must stay intact until it is re-opened for append.
  if (persistent() && !replaying_ && options_.ckpt_every != 0 &&
      applied_seq_ % options_.ckpt_every == 0) {
    if (write_checkpoint()) wal_reset();
  }
  return ack_reply(rec.seq, rec.t);
}

std::string Daemon::handle_query(const WireRecord& rec) {
  metrics_.counter("daemon.queries", obs::MetricClass::kVolatile).increment();
  const auto kind = static_cast<std::size_t>(rec.query);
  const obs::Span latency_span(
      kind < std::size(kQueryLatencyMetric) ? query_latency_ns_[kind] : nullptr);
  switch (rec.query) {
    case QueryKind::kBest: {
      if (rec.node >= instance_->node_count()) {
        return error_out(ErrorCode::kRange, "node " + std::to_string(rec.node) + " out of range",
                         nullptr);
      }
      const PathId best = engine_->best_path(rec.node);
      json::Object out;
      out.emplace_back("ev", "best");
      out.emplace_back("t", clock_);
      out.emplace_back("node", rec.node);
      out.emplace_back("name", instance_->node_name(rec.node));
      out.emplace_back("path", best == kNoPath ? json::Value(nullptr) : json::Value(best));
      return render_reply(out);
    }
    case QueryKind::kPath: {
      if (rec.node >= instance_->node_count()) {
        return error_out(ErrorCode::kRange, "node " + std::to_string(rec.node) + " out of range",
                         nullptr);
      }
      std::vector<PathId> best;
      best.reserve(instance_->node_count());
      for (NodeId v = 0; v < instance_->node_count(); ++v) best.push_back(engine_->best_path(v));
      const auto trace =
          analysis::trace_forwarding(*instance_, *engine_->igp_handle(), best, rec.node);
      json::Object out;
      out.emplace_back("ev", "path");
      out.emplace_back("t", clock_);
      out.emplace_back("node", rec.node);
      out.emplace_back("outcome", outcome_name(trace.outcome));
      json::Array hops;
      for (const NodeId hop : trace.hops) hops.emplace_back(hop);
      out.emplace_back("hops", std::move(hops));
      out.emplace_back("exit_node", trace.exit_node == kNoNode ? json::Value(nullptr)
                                                               : json::Value(trace.exit_node));
      out.emplace_back("exit_path", trace.exit_path == kNoPath ? json::Value(nullptr)
                                                               : json::Value(trace.exit_path));
      return render_reply(out);
    }
    case QueryKind::kStatus: {
      json::Object out;
      out.emplace_back("ev", "status");
      out.emplace_back("t", clock_);
      out.emplace_back("applied_seq", applied_seq_);
      out.emplace_back("quiescent", state_records_ == 0 || last_result_.converged);
      out.emplace_back("events_pending", static_cast<std::uint64_t>(last_result_.events_pending));
      out.emplace_back("faults_pending", static_cast<std::uint64_t>(last_result_.faults_pending));
      out.emplace_back("best_flips", static_cast<std::uint64_t>(last_result_.best_flips));
      out.emplace_back("updates_sent", static_cast<std::uint64_t>(last_result_.updates_sent));
      return render_reply(out);
    }
    case QueryKind::kStats: {
      const auto synth = synthesized_result();
      json::Object out;
      out.emplace_back("ev", "stats");
      out.emplace_back("t", clock_);
      out.emplace_back("applied_seq", applied_seq_);
      out.emplace_back("state_records", state_records_);
      out.emplace_back("announces", announces_);
      out.emplace_back("withdraws", withdraws_);
      out.emplace_back("faults", faults_);
      out.emplace_back("deliveries", deliveries_total_);
      out.emplace_back("wire_hash", hex64(wire_hash_));
      out.emplace_back("trace_hash", hex64(fault::trace_hash(*engine_, synth)));
      out.emplace_back("metrics_fingerprint", hex64(metrics_.fingerprint()));
      return render_reply(out);
    }
    case QueryKind::kHealth: {
      // Deliberately volatile: liveness and load, never folded into any
      // fingerprint and excluded from deterministic stream generators.
      json::Object out;
      out.emplace_back("ev", "health");
      out.emplace_back("hello", hello_done_);
      out.emplace_back("drained", drained_);
      out.emplace_back("applied_seq", applied_seq_);
      if (health_source_) out.emplace_back("service", health_source_());
      out.emplace_back("volatile", metrics_.volatile_json());
      return render_reply(out);
    }
    case QueryKind::kMetrics: {
      // Full registry snapshot — the wire twin of the --metrics-file
      // exporter.  Deterministic and volatile sections are both included;
      // only the deterministic section backs the fingerprint.
      json::Object out;
      out.emplace_back("ev", "metrics");
      out.emplace_back("schema", "ibgp-metrics-v1");
      out.emplace_back("t", clock_);
      out.emplace_back("applied_seq", applied_seq_);
      out.emplace_back("deterministic", metrics_.deterministic_json());
      out.emplace_back("volatile", metrics_.volatile_json());
      out.emplace_back("metrics_fingerprint", hex64(metrics_.fingerprint()));
      return render_reply(out);
    }
    case QueryKind::kWhatIf:
      return handle_whatif(rec);
  }
  return error_out(ErrorCode::kState, "unreachable query kind", nullptr);
}

std::string Daemon::handle_whatif(const WireRecord& rec) {
  std::string fault_error = validate_fault(rec);
  if (!fault_error.empty()) return fault_error;

  // Sandboxed continuity probe: clone the live engine via capture/restore,
  // inject the hypothetical fault one tick past the stream clock, and run
  // the clone to quiescence.  The live engine is never touched, so what-if
  // queries stay pure reads and need no journaling.
  const engine::EngineState snap = engine_->capture();
  engine::EventEngine sandbox(*instance_, protocol_);
  try {
    sandbox.restore(snap);
    schedule_fault_on(sandbox, rec, clock_ + 1);
  } catch (const std::exception& e) {
    return error_out(ErrorCode::kState, e.what(), nullptr);
  }
  engine::EventEngine::Result result;
  try {
    result = sandbox.run(options_.whatif_budget);
  } catch (const std::exception& e) {
    return error_out(ErrorCode::kBudget, e.what(), nullptr);
  }
  NodeId best_changed = 0;
  for (NodeId v = 0; v < instance_->node_count(); ++v) {
    if (sandbox.best_path(v) != engine_->best_path(v)) ++best_changed;
  }
  json::Object out;
  out.emplace_back("ev", "whatif");
  out.emplace_back("kind", wire_fault_name(rec.fault));
  out.emplace_back("a", rec.a);
  if (fault_takes_peer(rec.fault)) out.emplace_back("b", rec.b);
  out.emplace_back("converged", result.converged);
  out.emplace_back("budget_exhausted", result.budget_exhausted);
  // The continuity cost of the hypothetical: churn the fault would cause.
  out.emplace_back("deliveries", result.deliveries - snap.deliveries);
  out.emplace_back("updates_sent",
                   static_cast<std::uint64_t>(result.updates_sent - last_result_.updates_sent));
  out.emplace_back("best_flips",
                   static_cast<std::uint64_t>(result.best_flips - last_result_.best_flips));
  out.emplace_back("best_changed", best_changed);
  return render_reply(out);
}

std::string Daemon::drain() {
  if (!drained_) {
    auto result = engine_->run(options_.step_budget);
    deliveries_total_ += result.deliveries;
    clock_ = std::max(clock_, result.end_time);
    last_result_ = std::move(result);
    if (persistent() && !replaying_) {
      write_checkpoint();
      wal_reset();
    }
    drained_ = true;
  }
  const auto synth = synthesized_result();
  json::Object out;
  out.emplace_back("ev", "drained");
  out.emplace_back("t", clock_);
  out.emplace_back("applied_seq", applied_seq_);
  out.emplace_back("converged", last_result_.converged);
  out.emplace_back("deliveries", deliveries_total_);
  out.emplace_back("wire_hash", hex64(wire_hash_));
  out.emplace_back("trace_hash", hex64(fault::trace_hash(*engine_, synth)));
  out.emplace_back("metrics_fingerprint", hex64(metrics_.fingerprint()));
  return render_reply(out);
}

}  // namespace ibgp::daemon
