#pragma once
// The threaded harness around the synchronous Daemon core.
//
//   reader thread ──► bounded IngestQueue ──► processing loop ──► out
//                                                 │
//                                            Watchdog thread
//
// The reader poll()s the input fd alongside an internal self-pipe; a
// SIGTERM handler (or any caller) pokes the pipe via request_drain(),
// which is async-signal-safe.  On drain the service stops intake, lets
// the processing loop flush every queued reply, asks the Daemon for its
// final checkpoint + `drained` line, and returns 0 — the graceful half of
// the crash-recovery story (the SIGKILL half needs no cooperation at all,
// by construction of the WAL).
//
// `kill_after` exists for the chaos gate: after physically flushing reply
// number N the service raises SIGKILL against itself, which plants the
// kill at an exact, reproducible record boundary.

#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "daemon/daemon.hpp"
#include "daemon/queue.hpp"
#include "daemon/watchdog.hpp"

namespace ibgp::daemon {

struct ServiceOptions {
  std::size_t queue_capacity = 256;
  bool watchdog_enabled = true;
  Watchdog::Options watchdog;
  /// Testing hook: SIGKILL this process right after flushing reply #N
  /// (0 = disabled).
  std::uint64_t kill_after = 0;
  /// When non-empty, a background thread rewrites this file (atomically:
  /// tmp + rename) with the Prometheus text exposition of the daemon's
  /// full metrics registry every `metrics_interval_ms`, plus one final
  /// write at drain so the last scrape sees the completed stream.
  std::string metrics_file;
  std::chrono::milliseconds metrics_interval_ms{1000};
};

class DaemonService {
 public:
  DaemonService(Daemon& daemon, int in_fd, std::FILE* out, ServiceOptions options);
  ~DaemonService();

  DaemonService(const DaemonService&) = delete;
  DaemonService& operator=(const DaemonService&) = delete;

  /// Pumps the stream to EOF or drain.  Returns 0 on a clean exit.
  int run();

  /// Requests a graceful drain.  Async-signal-safe (one write(2)); wire it
  /// directly into a SIGTERM handler.
  static void request_drain();

 private:
  void reader_loop();
  void exporter_loop();
  void export_metrics();

  Daemon& daemon_;
  int in_fd_;
  std::FILE* out_;
  ServiceOptions options_;
  IngestQueue queue_;
  Watchdog watchdog_;

  // Metrics-file exporter thread (only started when options_.metrics_file
  // is set); the cv lets run() cut a final export and join without waiting
  // out a full interval.
  std::mutex exporter_mutex_;
  std::condition_variable exporter_cv_;
  bool exporter_stop_ = false;

  static int drain_pipe_write_fd;  // poked by request_drain()
  int drain_pipe_read_fd_ = -1;
};

}  // namespace ibgp::daemon
