#pragma once
// Liveness watchdog for the daemon's processing thread.
//
// The processing thread beats the watchdog around every line it handles;
// a background thread wakes on `interval` and, when a line has been *in
// flight* (busy) for longer than `stall_after`, records a stall — as the
// volatile metric "daemon.watchdog_stalls", a stderr warning, and
// optionally (fatal mode) an abort so an external supervisor can restart
// the process and exercise the crash-recovery path.  Idle time never
// counts as a stall: only a heartbeat that stopped *mid-record* does.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace ibgp::daemon {

class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds interval{200};
    std::chrono::milliseconds stall_after{5000};
    bool fatal = false;  ///< abort() on stall (external-supervisor restart mode)
  };

  /// `registry` may be nullptr (no metric mirroring).  Construction does
  /// not start the thread; call start().
  Watchdog(obs::MetricsRegistry* registry, Options options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start();
  void stop();

  /// Processing thread: mark a record in flight / completed.  beat() is
  /// called on both edges so heartbeat_age() is fresh either way.
  void begin_record();
  void end_record();

  [[nodiscard]] std::uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::chrono::milliseconds heartbeat_age() const;

 private:
  void run();
  static std::int64_t now_ms();

  Options options_;
  obs::Counter* stall_counter_ = nullptr;
  std::atomic<std::int64_t> last_beat_ms_;
  std::atomic<bool> busy_{false};
  std::atomic<std::uint64_t> stalls_{0};
  bool stall_reported_ = false;  // watchdog thread only: one report per stall

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace ibgp::daemon
