#pragma once
// The synchronous daemon core: one wire line in, one reply line out.
//
// Daemon wraps a long-lived EventEngine behind ibgp-wire-v1 (see wire.hpp)
// and owns the crash-recovery machinery:
//
//  * Write-ahead input journal (wal.jsonl): every accepted state record is
//    appended and fsync'd *before* it is applied, so an acknowledged
//    record can never be lost to a SIGKILL.  A torn tail (the append the
//    kill interrupted) is detected and truncated at recovery; the client
//    never received its ack, so it re-sends.
//  * Periodic checkpoints (checkpoint.json, schema ibgp-daemon-ckpt-v1):
//    the engine's full ibgp-ckpt-v1 state plus the daemon's stream cursor
//    (applied_seq, clock, wire hash, deterministic counters), written
//    atomically every `ckpt_every` accepted records; each checkpoint
//    resets the journal.
//  * Recovery (= constructor with resume): restore the newest checkpoint,
//    replay the journal tail through the exact same ingest path, and the
//    daemon answers every subsequent line byte-identically to a process
//    that was never killed (pinned by test_daemon's kill-at-every-record
//    oracle).  Exactly-once: records whose seq is already applied get a
//    pure-function ack and are not re-applied.
//
// Threading: Daemon is deliberately single-threaded and blocking — the
// service layer (service.hpp) owns queues, signals, and the watchdog.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "daemon/wire.hpp"
#include "engine/event_engine.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace ibgp::daemon {

inline constexpr std::string_view kDaemonCkptSchema = "ibgp-daemon-ckpt-v1";
inline constexpr std::string_view kWalSchema = "ibgp-wal-v1";

struct DaemonOptions {
  /// Directory for checkpoint.json + wal.jsonl.  Empty disables
  /// persistence entirely (pure in-memory daemon; used by unit tests that
  /// only exercise validation).
  std::string state_dir;
  /// Recover from state_dir instead of starting fresh.  Requires a
  /// state_dir; refuses (throws) when the on-disk identity does not match
  /// this instance + protocol.
  bool resume = false;
  /// Accepted state records between checkpoints (keyed on applied_seq so
  /// the cadence is kill-invariant).  0 = checkpoint only on drain.
  std::uint64_t ckpt_every = 64;
  /// SpfCache LRU capacity for churn-heavy streams (0 = unbounded).
  std::size_t spf_cache_epochs = 0;
  /// Delivery budget per ingest step and for the final drain run.
  std::size_t step_budget = 5'000'000;
  /// Delivery budget for sandboxed what-if evaluation.
  std::size_t whatif_budget = 2'000'000;
};

class Daemon {
 public:
  /// Builds (or, with options.resume, recovers) the service state.
  /// Throws std::runtime_error when recovery state is present but does not
  /// belong to this instance/protocol, and std::invalid_argument on
  /// incoherent options.
  Daemon(std::shared_ptr<core::Instance> instance, core::ProtocolKind protocol,
         DaemonOptions options);

  /// Closes the journal fd.  Writes nothing — destruction is
  /// indistinguishable from SIGKILL, which is exactly what the
  /// kill-at-every-record oracle relies on.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Processes one wire line (no trailing newline) and returns exactly one
  /// reply line.  Never throws on any input.
  std::string handle_line(std::string_view line);

  /// Graceful drain: run the engine to quiescence, write the final
  /// checkpoint, and return the `drained` reply.  Further state records
  /// are refused (queries still answer).  Idempotent.
  std::string drain();

  [[nodiscard]] bool hello_done() const { return hello_done_; }
  [[nodiscard]] bool drained() const { return drained_; }
  [[nodiscard]] bool resumed() const { return resumed_; }
  [[nodiscard]] std::uint64_t applied_seq() const { return applied_seq_; }
  [[nodiscard]] SimTime clock() const { return clock_; }

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// The service layer injects live queue/watchdog numbers into the
  /// (volatile) `health` reply through this hook.
  void set_health_source(std::function<util::json::Object()> source) {
    health_source_ = std::move(source);
  }

 private:
  std::string handle_record(const WireRecord& rec, std::string_view raw_line);
  std::string handle_hello(const WireRecord& rec);
  std::string handle_state_record(const WireRecord& rec, std::string_view raw_line);
  std::string handle_query(const WireRecord& rec);
  std::string handle_whatif(const WireRecord& rec);
  std::string error_out(ErrorCode code, std::string message, const WireRecord* rec);

  /// Topology-dependent validation shared by faults and what-ifs.
  /// Returns a non-empty reply on failure.
  std::string validate_fault(const WireRecord& rec);
  void schedule_fault_on(engine::EventEngine& engine, const WireRecord& rec, SimTime when);

  void step_engine(SimTime horizon);
  [[nodiscard]] engine::EventEngine::Result synthesized_result() const;

  // persistence
  [[nodiscard]] std::string ckpt_path() const;
  [[nodiscard]] std::string wal_path() const;
  [[nodiscard]] bool persistent() const { return !options_.state_dir.empty(); }
  bool wal_append(std::string_view line);
  bool wal_reset();
  bool write_checkpoint();
  void recover();
  [[nodiscard]] util::json::Object identity_json() const;
  void check_identity(const util::json::Value& doc, const char* what) const;

  std::shared_ptr<core::Instance> instance_;
  core::ProtocolKind protocol_;
  DaemonOptions options_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<engine::EventEngine> engine_;
  engine::EventEngine::Result last_result_;

  bool hello_done_ = false;
  bool drained_ = false;
  bool resumed_ = false;
  bool replaying_ = false;  // WAL replay in progress: no re-journaling

  std::uint64_t applied_seq_ = 0;
  SimTime clock_ = 0;
  std::uint64_t wire_hash_ = 0;
  std::uint64_t deliveries_total_ = 0;

  // Deterministic stream counters (checkpointed, metric-mirrored).
  std::uint64_t state_records_ = 0;
  std::uint64_t announces_ = 0;
  std::uint64_t withdraws_ = 0;
  std::uint64_t faults_ = 0;

  int wal_fd_ = -1;
  std::function<util::json::Object()> health_source_;

  // Always-on service span sinks (resolved once in the constructor): the
  // daemon's hot path is I/O bound, so these are not gated like the
  // engine's set_profile spans.  All volatile — never fingerprinted.
  obs::Histogram* wal_fsync_ns_ = nullptr;
  obs::Histogram* ckpt_write_ns_ = nullptr;
  obs::Histogram* query_latency_ns_[7] = {};  // indexed by QueryKind
};

/// Pre-registers every daemon metric so registration order (and therefore
/// the registry fingerprint) is independent of which code path runs first.
void register_daemon_metrics(obs::MetricsRegistry& registry);

}  // namespace ibgp::daemon
