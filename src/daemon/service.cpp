#include "daemon/service.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/exposition.hpp"

namespace ibgp::daemon {

namespace {

// Atomic text write for the exposition file: a scraper reading mid-update
// sees either the previous complete snapshot or the new one, never a torn
// half.  (No fsync — a metrics scrape file is not durability-critical.)
bool write_text_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

int DaemonService::drain_pipe_write_fd = -1;

DaemonService::DaemonService(Daemon& daemon, int in_fd, std::FILE* out,
                             ServiceOptions options)
    : daemon_(daemon),
      in_fd_(in_fd),
      out_(out),
      options_(options),
      queue_(options.queue_capacity),
      watchdog_(&daemon.metrics(), options.watchdog) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    drain_pipe_read_fd_ = fds[0];
    drain_pipe_write_fd = fds[1];
  }
}

DaemonService::~DaemonService() {
  if (drain_pipe_read_fd_ >= 0) ::close(drain_pipe_read_fd_);
  if (drain_pipe_write_fd >= 0) {
    ::close(drain_pipe_write_fd);
    drain_pipe_write_fd = -1;
  }
}

void DaemonService::request_drain() {
  // Async-signal-safe: a single write.  Level-triggered on the reader's
  // poll(), so a request before run() still drains immediately.
  if (drain_pipe_write_fd >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t ignored = ::write(drain_pipe_write_fd, &byte, 1);
  }
}

void DaemonService::reader_loop() {
  std::string pending;          // bytes read but not yet newline-terminated
  bool discarding = false;      // inside an over-limit line: count, don't store
  bool drain = false;
  char buf[65536];
  while (!drain) {
    pollfd fds[2];
    fds[0].fd = in_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = drain_pipe_read_fd_;
    fds[1].events = POLLIN;
    const int n = ::poll(fds, drain_pipe_read_fd_ >= 0 ? 2 : 1, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (drain_pipe_read_fd_ >= 0 && (fds[1].revents & POLLIN) != 0) {
      drain = true;  // stop intake; what's already queued still answers
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    ssize_t got = -1;
    do {
      got = ::read(in_fd_, buf, sizeof buf);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) break;  // EOF or hard error: end of intake
    for (ssize_t i = 0; i < got; ++i) {
      const char c = buf[i];
      if (c == '\n') {
        if (!discarding) {
          if (!pending.empty()) {
            const bool is_query = classify_query(pending);
            queue_.push(std::move(pending), is_query);
          }
        } else {
          // The oversized prefix was already enqueued (and will be
          // answered with a structured oversize error); the rest of the
          // line was dropped unread.
          discarding = false;
        }
        pending.clear();
        continue;
      }
      if (discarding) continue;
      pending += c;
      if (pending.size() > kMaxLineBytes) {
        // Bound memory against endless unterminated lines: ship the
        // over-limit prefix now, skip bytes until the newline.
        queue_.push(std::move(pending), /*is_query=*/true);
        pending.clear();
        discarding = true;
      }
    }
  }
  if (!drain && !pending.empty() && !discarding) {
    // Final line without trailing newline still deserves a reply.
    const bool is_query = classify_query(pending);
    queue_.push(std::move(pending), is_query);
  }
  queue_.push_eos();
}

void DaemonService::export_metrics() {
  (void)write_text_atomic(options_.metrics_file,
                          obs::render_exposition(daemon_.metrics().snapshot()));
}

void DaemonService::exporter_loop() {
  std::unique_lock<std::mutex> lock(exporter_mutex_);
  while (!exporter_stop_) {
    exporter_cv_.wait_for(lock, options_.metrics_interval_ms,
                          [&] { return exporter_stop_; });
    if (exporter_stop_) break;
    lock.unlock();
    export_metrics();
    lock.lock();
  }
}

int DaemonService::run() {
  if (options_.watchdog_enabled) watchdog_.start();
  daemon_.set_health_source([this] {
    util::json::Object service;
    service.emplace_back("queue_depth", static_cast<std::uint64_t>(queue_.depth()));
    service.emplace_back("queue_depth_hwm", static_cast<std::uint64_t>(queue_.max_depth()));
    service.emplace_back("queue_capacity", static_cast<std::uint64_t>(options_.queue_capacity));
    service.emplace_back("sheds", static_cast<std::uint64_t>(queue_.sheds()));
    service.emplace_back("watchdog_stalls", watchdog_.stalls());
    service.emplace_back("heartbeat_age_ms",
                         static_cast<std::int64_t>(watchdog_.heartbeat_age().count()));
    return service;
  });

  std::thread reader([this] { reader_loop(); });
  std::thread exporter;
  if (!options_.metrics_file.empty()) {
    export_metrics();  // scrape targets exist from the first instant
    exporter = std::thread([this] { exporter_loop(); });
  }

  std::uint64_t replies = 0;
  auto emit = [&](const std::string& reply) {
    std::fwrite(reply.data(), 1, reply.size(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
    ++replies;
    if (options_.kill_after != 0 && replies >= options_.kill_after) {
      // Chaos-gate hook: die hard at an exact reply boundary.  Everything
      // acknowledged so far is fsync'd in the WAL; nothing else may be.
      std::raise(SIGKILL);
    }
  };

  while (true) {
    IngestItem item = queue_.pop();
    if (item.eos) break;
    if (item.shed) {
      daemon_.metrics().counter("daemon.sheds", obs::MetricClass::kVolatile).increment();
      emit(error_reply(item.shed_code, item.shed_code == ErrorCode::kOverload
                                           ? "ingest queue full of route state; query refused"
                                           : "query shed under overload (oldest first)"));
      continue;
    }
    watchdog_.begin_record();
    const std::string reply = daemon_.handle_line(item.line);
    watchdog_.end_record();
    emit(reply);
  }

  // Graceful drain: intake is closed and every queued line has answered;
  // flush the engine, cut the final checkpoint, and say goodbye.  When the
  // stream already ended with an explicit `drain` record this is a no-op
  // apart from re-emitting the (byte-identical) drained line.
  if (daemon_.hello_done() && !daemon_.drained()) emit(daemon_.drain());

  reader.join();
  if (exporter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(exporter_mutex_);
      exporter_stop_ = true;
    }
    exporter_cv_.notify_one();
    exporter.join();
    export_metrics();  // final snapshot reflects the fully drained stream
  }
  watchdog_.stop();
  daemon_.set_health_source(nullptr);
  return 0;
}

}  // namespace ibgp::daemon
