#pragma once
// ibgp-wire-v1: the daemon's line protocol.
//
// One JSON object per line, one reply line per request line, in order.
// The stream extends ibgp-trace-v1's flat-record discipline to a
// bidirectional session: the client opens with a `hello` naming the
// schema, instance, and protocol variant; then sends *state records*
// (timestamped E-BGP announces/withdraws and faults, each with a strictly
// increasing client `seq`), *queries* (best route, forwarding path,
// oscillation status, stats/health, sandboxed what-if), and finally
// `drain`.  State records mutate the engine and are journaled before they
// are acknowledged; queries are pure reads and are never journaled.
//
// Ingest is strict by design (Godfrey: tiny input perturbations flip
// convergence, so nothing malformed may reach the engine): unknown record
// types, unknown fields, wrong field types, out-of-range ids, and
// non-monotonic timestamps all become structured `error` replies — never
// a crash, never a partial apply.  This header is the codec only; it
// validates structure and leaves topology-dependent checks (node ranges,
// session/link existence) to the Daemon, which owns the Instance.

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "engine/event_engine.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace ibgp::daemon {

using engine::SimTime;

inline constexpr std::string_view kWireSchema = "ibgp-wire-v1";

/// Hard ceiling on one wire line; longer input is rejected before parsing
/// so a hostile peer cannot balloon the ingest path.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Structured-error taxonomy.  Stable strings — clients switch on them.
enum class ErrorCode : std::uint8_t {
  kParse,        ///< not valid JSON (or not a JSON object)
  kOversize,     ///< line exceeds kMaxLineBytes
  kVersion,      ///< hello schema is not ibgp-wire-v1
  kIdentity,     ///< hello instance/protocol does not match this daemon
  kUnknownType,  ///< unknown ev / q / fault kind
  kBadField,     ///< missing, mistyped, or unexpected field
  kRange,        ///< id or value outside the instance's domain
  kNotASession,  ///< session fault on a pair with no I-BGP session
  kNotALink,     ///< link fault on a pair with no physical link
  kOrder,        ///< timestamp before the stream clock
  kState,        ///< record illegal in the current session state
  kBudget,       ///< processing budget exhausted before quiescence
  kOverload,     ///< ingest queue full and nothing sheddable
  kShed,         ///< query was shed under overload (oldest-query-first)
};

const char* error_code_name(ErrorCode code);

enum class RecordKind : std::uint8_t {
  kHello,
  kAnnounce,
  kWithdraw,
  kFault,
  kQuery,
  kDrain,
};

enum class QueryKind : std::uint8_t {
  kBest,
  kPath,
  kStatus,
  kStats,
  kHealth,
  kWhatIf,
  kMetrics,  ///< full registry snapshot (deterministic + volatile)
};

/// One structurally valid wire record.  Fields beyond the record's kind
/// keep their defaults.
struct WireRecord {
  RecordKind kind = RecordKind::kHello;
  // hello
  std::string instance;
  std::string protocol;
  // state records (announce / withdraw / fault)
  std::uint64_t seq = 0;
  SimTime t = 0;
  PathId path = kNoPath;                              // announce / withdraw
  engine::FaultKind fault = engine::FaultKind::kCrash;  // fault / whatif
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  Cost cost = 0;
  // query
  QueryKind query = QueryKind::kStatus;
  NodeId node = kNoNode;  // best / path
};

struct WireError {
  ErrorCode code = ErrorCode::kParse;
  std::string message;
  std::uint64_t seq = 0;   ///< echoed when the line carried a parseable seq
  bool has_seq = false;
};

/// Parses and structurally validates one wire line (no trailing newline).
/// Every failure mode returns a WireError; this function never throws on
/// any input — the property the fuzz corpus pins under ASan/UBSan.
std::variant<WireRecord, WireError> parse_record(std::string_view line);

/// Cheap ingest-side classification for the shedding policy: true when the
/// line is (or is most plausibly) a query — the only sheddable class.
/// Malformed lines classify as queries so overload can drop garbage first.
bool classify_query(std::string_view line);

// --- reply builders (single-line JSON, no trailing newline) ---------------

std::string error_reply(const WireError& error);
std::string error_reply(ErrorCode code, std::string_view message);
std::string ack_reply(std::uint64_t seq, SimTime t);
std::string render_reply(const util::json::Object& fields);

/// "0x" + 16 lowercase hex digits; the wire spelling of every fingerprint.
std::string hex64(std::uint64_t value);

/// Wire name <-> engine fault kind.  stale-expire is engine-internal and
/// deliberately not injectable.
const char* wire_fault_name(engine::FaultKind kind);

/// True for fault kinds addressing a pair (sessions and links); false for
/// single-router kinds (crash / restart / graceful-down).
bool fault_takes_peer(engine::FaultKind kind);

}  // namespace ibgp::daemon
