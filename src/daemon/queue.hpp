#pragma once
// Bounded ingest queue with deterministic overload shedding.
//
// The reader thread enqueues raw wire lines; the processing thread drains
// them in arrival order.  Policy, in one sentence: *state is sacred,
// queries are sheddable* — a full queue blocks the producer for state
// records (backpressure all the way to the peer's socket), while a query
// arriving at capacity sheds the OLDEST queued query first.
//
// Shedding preserves the one-reply-per-line, in-order contract: a shed
// query is not removed, it is *tombstoned* in place — its payload is
// dropped (freeing a live slot) and when its turn comes the service emits
// a structured `shed` error in exactly the slot its real reply would have
// occupied.  If nothing sheddable is queued, the incoming query itself is
// admitted pre-tombstoned with code `overload`.  Tombstones cost ~a
// cache line and drain at memcpy speed, so they are deliberately not
// counted against capacity.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>

#include "daemon/wire.hpp"

namespace ibgp::daemon {

struct IngestItem {
  std::string line;
  bool is_query = false;
  bool shed = false;  ///< tombstone: emit `shed_code` error instead of processing
  bool eos = false;   ///< end-of-stream sentinel (reader hit EOF or drain)
  ErrorCode shed_code = ErrorCode::kShed;
};

class IngestQueue {
 public:
  explicit IngestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues one line.  Blocks while the queue holds `capacity` live
  /// items and the line is a state record; sheds instead of blocking when
  /// it is a query.
  void push(std::string line, bool is_query) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!is_query) {
      can_push_.wait(lock, [&] { return live_ < capacity_; });
    } else if (live_ >= capacity_) {
      // Oldest-query-first: tombstone the stalest pending query.
      bool freed = false;
      for (IngestItem& item : items_) {
        if (!item.shed && !item.eos && item.is_query) {
          item.shed = true;
          item.shed_code = ErrorCode::kShed;
          item.line.clear();
          item.line.shrink_to_fit();
          --live_;
          ++sheds_;
          freed = true;
          break;
        }
      }
      if (!freed) {
        // Every queued item is route state: the incoming query is the only
        // thing we may drop.  Admit it as its own tombstone so its error
        // reply still lands in order.
        IngestItem item;
        item.is_query = true;
        item.shed = true;
        item.shed_code = ErrorCode::kOverload;
        ++sheds_;
        items_.push_back(std::move(item));
        can_pop_.notify_one();
        return;
      }
    }
    IngestItem item;
    item.line = std::move(line);
    item.is_query = is_query;
    items_.push_back(std::move(item));
    ++live_;
    max_depth_ = std::max(max_depth_, live_);
    can_pop_.notify_one();
  }

  void push_eos() {
    std::lock_guard<std::mutex> lock(mutex_);
    IngestItem item;
    item.eos = true;
    items_.push_back(std::move(item));
    can_pop_.notify_one();
  }

  /// Blocks until an item is available.
  IngestItem pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    can_pop_.wait(lock, [&] { return !items_.empty(); });
    IngestItem item = std::move(items_.front());
    items_.pop_front();
    if (!item.shed && !item.eos) {
      --live_;
      can_push_.notify_one();
    }
    return item;
  }

  [[nodiscard]] std::size_t sheds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sheds_;
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return live_;
  }

  /// High-water mark of live depth since construction — how close the
  /// stream has come to the shedding cliff (reported in `health`).
  [[nodiscard]] std::size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<IngestItem> items_;
  std::size_t live_ = 0;   // non-tombstone, non-eos items (capacity applies to these)
  std::size_t max_depth_ = 0;
  std::size_t sheds_ = 0;
  std::size_t capacity_;
};

}  // namespace ibgp::daemon
