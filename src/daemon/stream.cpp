#include "daemon/stream.hpp"

#include <utility>
#include <vector>

#include "daemon/wire.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ibgp::daemon {

namespace json = util::json;

namespace {

std::string render(json::Object fields) { return json::Value(std::move(fields)).dump_compact(); }

}  // namespace

std::vector<std::string> generate_stream(const core::Instance& instance,
                                         core::ProtocolKind protocol,
                                         const StreamOptions& options) {
  util::Xoshiro256 rng(options.seed);
  std::vector<std::string> lines;
  lines.reserve(options.state_records * 2 + 4);

  {
    json::Object hello;
    hello.emplace_back("ev", "hello");
    hello.emplace_back("schema", kWireSchema);
    hello.emplace_back("instance", instance.name());
    hello.emplace_back("protocol", core::protocol_name(protocol));
    lines.push_back(render(std::move(hello)));
  }

  const std::size_t nodes = instance.node_count();
  const std::size_t paths = instance.exits().size();
  const auto sessions = instance.sessions().edges();
  const auto links = instance.physical().links();

  // Alternation state so faults mostly pair up (down then up, crash then
  // restart) instead of piling error replies; the generator stays valid
  // against the live topology without talking to the daemon.
  std::vector<bool> node_down(nodes, false);
  std::vector<bool> session_down(sessions.size(), false);
  std::vector<bool> link_down(links.size(), false);
  std::vector<bool> path_live(paths, false);

  auto push_query = [&] {
    json::Object q;
    q.emplace_back("ev", "query");
    switch (rng.below(5)) {
      case 0:
        q.emplace_back("q", "best");
        q.emplace_back("node", static_cast<std::uint64_t>(rng.below(nodes)));
        break;
      case 1:
        q.emplace_back("q", "path");
        q.emplace_back("node", static_cast<std::uint64_t>(rng.below(nodes)));
        break;
      case 2:
        q.emplace_back("q", "status");
        break;
      case 3:
        q.emplace_back("q", "stats");
        break;
      default: {
        // Sandboxed what-if; same shapes as the fault generator below but
        // with no state to track (nothing is applied).
        q.emplace_back("q", "whatif");
        const std::uint64_t pick = rng.below(3);
        if (pick == 0 && !sessions.empty()) {
          const auto& edge = sessions[rng.below(sessions.size())];
          q.emplace_back("kind", "session-down");
          q.emplace_back("a", static_cast<std::uint64_t>(edge.u));
          q.emplace_back("b", static_cast<std::uint64_t>(edge.v));
        } else if (pick == 1 && !links.empty()) {
          const auto& link = links[rng.below(links.size())];
          q.emplace_back("kind", "link-cost");
          q.emplace_back("a", static_cast<std::uint64_t>(link.a));
          q.emplace_back("b", static_cast<std::uint64_t>(link.b));
          q.emplace_back("cost", static_cast<std::int64_t>(1 + rng.below(100)));
        } else {
          q.emplace_back("kind", "crash");
          q.emplace_back("a", static_cast<std::uint64_t>(rng.below(nodes)));
        }
        break;
      }
    }
    lines.push_back(render(std::move(q)));
  };

  SimTime t = 0;
  for (std::uint64_t seq = 1; seq <= options.state_records; ++seq) {
    t += rng.below(options.max_step + 1);

    json::Object rec;
    const bool want_fault = rng.chance(options.fault_rate) || paths == 0;
    if (!want_fault) {
      const std::size_t p = rng.below(paths);
      const char* ev = path_live[p] && rng.chance(0.4) ? "withdraw" : "announce";
      path_live[p] = (ev[0] == 'a');
      rec.emplace_back("ev", ev);
      rec.emplace_back("seq", seq);
      rec.emplace_back("t", t);
      rec.emplace_back("path", static_cast<std::uint64_t>(p));
    } else {
      rec.emplace_back("ev", "fault");
      rec.emplace_back("seq", seq);
      rec.emplace_back("t", t);
      const std::uint64_t family = rng.below(3);
      if (family == 0 && !sessions.empty()) {
        const std::size_t s = rng.below(sessions.size());
        rec.emplace_back("kind", session_down[s] ? "session-up" : "session-down");
        session_down[s] = !session_down[s];
        rec.emplace_back("a", static_cast<std::uint64_t>(sessions[s].u));
        rec.emplace_back("b", static_cast<std::uint64_t>(sessions[s].v));
      } else if (family == 1 && !links.empty()) {
        const std::size_t l = rng.below(links.size());
        if (rng.chance(0.5)) {
          rec.emplace_back("kind", "link-cost");
          rec.emplace_back("a", static_cast<std::uint64_t>(links[l].a));
          rec.emplace_back("b", static_cast<std::uint64_t>(links[l].b));
          rec.emplace_back("cost", static_cast<std::int64_t>(1 + rng.below(200)));
        } else {
          rec.emplace_back("kind", link_down[l] ? "link-up" : "link-down");
          link_down[l] = !link_down[l];
          rec.emplace_back("a", static_cast<std::uint64_t>(links[l].a));
          rec.emplace_back("b", static_cast<std::uint64_t>(links[l].b));
        }
      } else {
        const NodeId v = static_cast<NodeId>(rng.below(nodes));
        rec.emplace_back("kind", node_down[v] ? "restart" : "crash");
        node_down[v] = !node_down[v];
        rec.emplace_back("a", static_cast<std::uint64_t>(v));
      }
    }
    lines.push_back(render(std::move(rec)));

    if (rng.chance(options.query_rate)) push_query();
  }

  {
    json::Object stats;
    stats.emplace_back("ev", "query");
    stats.emplace_back("q", "stats");
    lines.push_back(render(std::move(stats)));
  }
  {
    json::Object drain;
    drain.emplace_back("ev", "drain");
    lines.push_back(render(std::move(drain)));
  }
  return lines;
}

}  // namespace ibgp::daemon
