#include "daemon/wire.hpp"

#include <array>
#include <cstdio>
#include <limits>
#include <optional>

namespace ibgp::daemon {

namespace json = util::json;

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kOversize: return "oversize";
    case ErrorCode::kVersion: return "version";
    case ErrorCode::kIdentity: return "identity";
    case ErrorCode::kUnknownType: return "unknown-type";
    case ErrorCode::kBadField: return "bad-field";
    case ErrorCode::kRange: return "range";
    case ErrorCode::kNotASession: return "not-a-session";
    case ErrorCode::kNotALink: return "not-a-link";
    case ErrorCode::kOrder: return "order";
    case ErrorCode::kState: return "state";
    case ErrorCode::kBudget: return "budget";
    case ErrorCode::kOverload: return "overload";
    case ErrorCode::kShed: return "shed";
  }
  return "?";
}

const char* wire_fault_name(engine::FaultKind kind) {
  return engine::fault_kind_name(kind);
}

bool fault_takes_peer(engine::FaultKind kind) {
  using engine::FaultKind;
  switch (kind) {
    case FaultKind::kSessionDown:
    case FaultKind::kSessionUp:
    case FaultKind::kLinkCostChange:
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      return true;
    default:
      return false;
  }
}

std::string hex64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string render_reply(const json::Object& fields) {
  return json::Value(fields).dump_compact();
}

std::string error_reply(const WireError& error) {
  json::Object out;
  out.emplace_back("ev", "error");
  if (error.has_seq) out.emplace_back("seq", error.seq);
  out.emplace_back("code", error_code_name(error.code));
  out.emplace_back("msg", error.message);
  return render_reply(out);
}

std::string error_reply(ErrorCode code, std::string_view message) {
  WireError e;
  e.code = code;
  e.message = std::string(message);
  return error_reply(e);
}

std::string ack_reply(std::uint64_t seq, SimTime t) {
  json::Object out;
  out.emplace_back("ev", "ack");
  out.emplace_back("seq", seq);
  out.emplace_back("t", t);
  return render_reply(out);
}

namespace {

// Timestamps far beyond any realistic stream are rejected outright: the
// engine adds per-hop delays on top of `t`, and a near-overflow t would
// wrap SimTime arithmetic.
constexpr SimTime kMaxWireTime = SimTime{1} << 52;

struct FieldSet {
  const json::Object* object;

  /// Every key must be one of `allowed` — unknown fields are rejected so a
  /// typo'd field name can never silently change a record's meaning.
  std::optional<std::string> unexpected(std::initializer_list<std::string_view> allowed) const {
    for (const auto& [key, value] : *object) {
      bool ok = false;
      for (const std::string_view name : allowed) {
        if (key == name) { ok = true; break; }
      }
      if (!ok) return key;
    }
    return std::nullopt;
  }
};

std::optional<std::uint64_t> read_uint(const json::Value& doc, std::string_view key,
                                       std::uint64_t max) {
  const json::Value* v = doc.find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  try {
    const std::uint64_t u = v->as_uint();
    if (u > max) return std::nullopt;
    return u;
  } catch (const std::runtime_error&) {
    return std::nullopt;  // negative or non-integral
  }
}

std::optional<std::int64_t> read_int(const json::Value& doc, std::string_view key) {
  const json::Value* v = doc.find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  try {
    return v->as_int();
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

const std::string* read_string(const json::Value& doc, std::string_view key) {
  const json::Value* v = doc.find(key);
  if (v == nullptr || !v->is_string()) return nullptr;
  return &v->as_string();
}

WireError make_error(ErrorCode code, std::string message, const json::Value& doc) {
  WireError e;
  e.code = code;
  e.message = std::move(message);
  if (const auto seq = read_uint(doc, "seq", std::numeric_limits<std::uint64_t>::max())) {
    e.seq = *seq;
    e.has_seq = true;
  }
  return e;
}

std::optional<engine::FaultKind> parse_fault_kind(std::string_view name) {
  using engine::FaultKind;
  static constexpr std::array<FaultKind, 8> kInjectable = {
      FaultKind::kSessionDown, FaultKind::kSessionUp,  FaultKind::kCrash,
      FaultKind::kRestart,     FaultKind::kGracefulDown, FaultKind::kLinkCostChange,
      FaultKind::kLinkDown,    FaultKind::kLinkUp,
  };
  for (const FaultKind kind : kInjectable) {
    if (name == engine::fault_kind_name(kind)) return kind;
  }
  return std::nullopt;  // includes stale-expire: engine-internal, not injectable
}

// Shared by `fault` records and `whatif` queries: kind + endpoints + cost.
std::optional<WireError> parse_fault_fields(const json::Value& doc, WireRecord& rec) {
  const std::string* kind = read_string(doc, "kind");
  if (kind == nullptr) {
    return make_error(ErrorCode::kBadField, "fault needs string field 'kind'", doc);
  }
  const auto parsed = parse_fault_kind(*kind);
  if (!parsed) {
    return make_error(ErrorCode::kUnknownType, "unknown fault kind '" + *kind + "'", doc);
  }
  rec.fault = *parsed;
  const auto a = read_uint(doc, "a", std::numeric_limits<NodeId>::max() - 1);
  if (!a) return make_error(ErrorCode::kBadField, "fault needs node field 'a'", doc);
  rec.a = static_cast<NodeId>(*a);
  if (fault_takes_peer(rec.fault)) {
    const auto b = read_uint(doc, "b", std::numeric_limits<NodeId>::max() - 1);
    if (!b) return make_error(ErrorCode::kBadField, "fault kind '" + *kind + "' needs node field 'b'", doc);
    rec.b = static_cast<NodeId>(*b);
  } else if (doc.find("b") != nullptr) {
    return make_error(ErrorCode::kBadField, "fault kind '" + *kind + "' takes no field 'b'", doc);
  }
  if (rec.fault == engine::FaultKind::kLinkCostChange) {
    const auto cost = read_int(doc, "cost");
    if (!cost) return make_error(ErrorCode::kBadField, "link-cost needs integer field 'cost'", doc);
    rec.cost = *cost;
  } else if (doc.find("cost") != nullptr) {
    return make_error(ErrorCode::kBadField, "only link-cost takes field 'cost'", doc);
  }
  return std::nullopt;
}

// seq + t, shared by all state records.
std::optional<WireError> parse_state_header(const json::Value& doc, WireRecord& rec) {
  const auto seq = read_uint(doc, "seq", std::numeric_limits<std::uint64_t>::max());
  if (!seq || *seq == 0) {
    return make_error(ErrorCode::kBadField, "state record needs positive integer 'seq'", doc);
  }
  rec.seq = *seq;
  const auto t = read_uint(doc, "t", std::numeric_limits<SimTime>::max());
  if (!t) return make_error(ErrorCode::kBadField, "state record needs integer 't'", doc);
  if (*t > kMaxWireTime) {
    return make_error(ErrorCode::kRange, "timestamp exceeds the 2^52 wire ceiling", doc);
  }
  rec.t = *t;
  return std::nullopt;
}

}  // namespace

std::variant<WireRecord, WireError> parse_record(std::string_view line) {
  if (line.size() > kMaxLineBytes) {
    WireError e;
    e.code = ErrorCode::kOversize;
    e.message = "line exceeds " + std::to_string(kMaxLineBytes) + " bytes";
    return e;
  }
  // Wire records are flat; depth 8 leaves headroom for nested reply-shaped
  // documents without letting hostile input anywhere near the stack bound.
  json::ParseOptions options;
  options.max_depth = 8;
  options.reject_duplicate_keys = true;
  std::string parse_error;
  const auto doc = json::parse(line, options, &parse_error);
  if (!doc) {
    WireError e;
    e.code = ErrorCode::kParse;
    e.message = parse_error;
    return e;
  }
  if (!doc->is_object()) {
    WireError e;
    e.code = ErrorCode::kParse;
    e.message = "wire record must be a JSON object";
    return e;
  }
  const std::string* ev = read_string(*doc, "ev");
  if (ev == nullptr) {
    return make_error(ErrorCode::kBadField, "record needs string field 'ev'", *doc);
  }
  const FieldSet fields{&doc->as_object()};
  WireRecord rec;

  if (*ev == "hello") {
    rec.kind = RecordKind::kHello;
    if (const auto bad = fields.unexpected({"ev", "schema", "instance", "protocol"})) {
      return make_error(ErrorCode::kBadField, "unexpected field '" + *bad + "'", *doc);
    }
    const std::string* schema = read_string(*doc, "schema");
    if (schema == nullptr) {
      return make_error(ErrorCode::kBadField, "hello needs string field 'schema'", *doc);
    }
    if (*schema != kWireSchema) {
      return make_error(ErrorCode::kVersion,
                        "unsupported schema '" + *schema + "' (this daemon speaks " +
                            std::string(kWireSchema) + ")",
                        *doc);
    }
    const std::string* instance = read_string(*doc, "instance");
    const std::string* protocol = read_string(*doc, "protocol");
    if (instance == nullptr || protocol == nullptr) {
      return make_error(ErrorCode::kBadField,
                        "hello needs string fields 'instance' and 'protocol'", *doc);
    }
    rec.instance = *instance;
    rec.protocol = *protocol;
    return rec;
  }

  if (*ev == "announce" || *ev == "withdraw") {
    rec.kind = *ev == "announce" ? RecordKind::kAnnounce : RecordKind::kWithdraw;
    if (const auto bad = fields.unexpected({"ev", "seq", "t", "path"})) {
      return make_error(ErrorCode::kBadField, "unexpected field '" + *bad + "'", *doc);
    }
    if (auto e = parse_state_header(*doc, rec)) return *e;
    const auto path = read_uint(*doc, "path", std::numeric_limits<PathId>::max() - 1);
    if (!path) {
      return make_error(ErrorCode::kBadField,
                        std::string(*ev) + " needs integer field 'path'", *doc);
    }
    rec.path = static_cast<PathId>(*path);
    return rec;
  }

  if (*ev == "fault") {
    rec.kind = RecordKind::kFault;
    if (const auto bad = fields.unexpected({"ev", "seq", "t", "kind", "a", "b", "cost"})) {
      return make_error(ErrorCode::kBadField, "unexpected field '" + *bad + "'", *doc);
    }
    if (auto e = parse_state_header(*doc, rec)) return *e;
    if (auto e = parse_fault_fields(*doc, rec)) return *e;
    return rec;
  }

  if (*ev == "query") {
    rec.kind = RecordKind::kQuery;
    const std::string* q = read_string(*doc, "q");
    if (q == nullptr) {
      return make_error(ErrorCode::kBadField, "query needs string field 'q'", *doc);
    }
    if (*q == "best" || *q == "path") {
      rec.query = *q == "best" ? QueryKind::kBest : QueryKind::kPath;
      if (const auto bad = fields.unexpected({"ev", "q", "node"})) {
        return make_error(ErrorCode::kBadField, "unexpected field '" + *bad + "'", *doc);
      }
      const auto node = read_uint(*doc, "node", std::numeric_limits<NodeId>::max() - 1);
      if (!node) {
        return make_error(ErrorCode::kBadField, "query '" + *q + "' needs node field 'node'", *doc);
      }
      rec.node = static_cast<NodeId>(*node);
      return rec;
    }
    if (*q == "status" || *q == "stats" || *q == "health" || *q == "metrics") {
      rec.query = *q == "status"   ? QueryKind::kStatus
                  : *q == "stats"  ? QueryKind::kStats
                  : *q == "health" ? QueryKind::kHealth
                                   : QueryKind::kMetrics;
      if (const auto bad = fields.unexpected({"ev", "q"})) {
        return make_error(ErrorCode::kBadField, "unexpected field '" + *bad + "'", *doc);
      }
      return rec;
    }
    if (*q == "whatif") {
      rec.query = QueryKind::kWhatIf;
      if (const auto bad = fields.unexpected({"ev", "q", "kind", "a", "b", "cost"})) {
        return make_error(ErrorCode::kBadField, "unexpected field '" + *bad + "'", *doc);
      }
      if (auto e = parse_fault_fields(*doc, rec)) return *e;
      return rec;
    }
    return make_error(ErrorCode::kUnknownType, "unknown query '" + *q + "'", *doc);
  }

  if (*ev == "drain") {
    rec.kind = RecordKind::kDrain;
    if (const auto bad = fields.unexpected({"ev"})) {
      return make_error(ErrorCode::kBadField, "unexpected field '" + *bad + "'", *doc);
    }
    return rec;
  }

  return make_error(ErrorCode::kUnknownType, "unknown record type '" + *ev + "'", *doc);
}

bool classify_query(std::string_view line) {
  json::ParseOptions options;
  options.max_depth = 8;
  options.reject_duplicate_keys = true;
  const auto doc = json::parse(line, options, nullptr);
  if (!doc || !doc->is_object()) return true;  // garbage sheds first
  const std::string* ev = read_string(*doc, "ev");
  if (ev == nullptr) return true;
  return *ev == "query";
}

}  // namespace ibgp::daemon
