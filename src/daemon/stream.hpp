#pragma once
// Deterministic ibgp-wire-v1 stream generator.
//
// Produces, from one 64-bit seed, a reproducible client session: hello,
// then `state_records` timestamped announces/withdraws/faults (strictly
// increasing seq, non-decreasing t, every fault aimed at a real session,
// link, or node of the instance) with read-only queries interleaved, and
// finally a `stats` query and `drain`.  The same seed always yields the
// same byte stream, which is what lets the chaos gate and the
// kill-at-every-record oracle diff replies between an interrupted and an
// uninterrupted run.
//
// Health queries are deliberately never generated: their replies carry
// volatile service numbers (queue depth, heartbeat age) and would break
// byte-identity across runs.

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "daemon/wire.hpp"

namespace ibgp::daemon {

struct StreamOptions {
  std::uint64_t seed = 1;
  /// Number of state records (announce / withdraw / fault).
  std::size_t state_records = 64;
  /// Probability of emitting a query between consecutive state records.
  double query_rate = 0.4;
  /// Probability that a state record is a fault rather than an
  /// announce/withdraw.
  double fault_rate = 0.3;
  /// Maximum timestamp advance between state records (t is non-decreasing;
  /// a zero advance — two records at the same instant — is deliberately
  /// possible and legal).
  SimTime max_step = 40;
};

/// Generates the full session as wire lines (no trailing newlines).
/// Line 0 is always the hello.
std::vector<std::string> generate_stream(const core::Instance& instance,
                                         core::ProtocolKind protocol,
                                         const StreamOptions& options);

}  // namespace ibgp::daemon
