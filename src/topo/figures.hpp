#pragma once
// Canned instances for every configuration figure in the paper.
//
// Where the source text's numbers survived, they are used directly; where a
// figure arrived OCR-damaged, the instance was *reconstructed from the
// paper's narrated behavior* and every claimed property is asserted by the
// test suite (see DESIGN.md, "Reconstruction notes").  In particular:
//
//  fig1a — persistent MED oscillation under standard I-BGP with RR
//          (no stable configuration; the 4-phase A/B cycle of Section 3);
//  fig1b — converges under the default rule ordering, diverges under the
//          RFC-1771 ordering (footnote 4 / Section 3);
//  fig2  — transient oscillation: exactly two stable configurations, the
//          synchronous schedule oscillates forever, sequential schedules
//          converge (single neighboring AS, so Walton == standard);
//  fig3  — the three-speaker mesh of Figure 3/Table 1: two stable
//          configurations selected by E-BGP injection timing; the event
//          engine reproduces delay-induced best-route flaps;
//  fig13 — MED-induced persistent oscillation surviving the Walton et al.
//          fix (derived by construction — a ring of metric inverters plus a
//          MED-gated stabilizer; see the fig13 notes in figures.cpp);
//  fig14 — the Dube-Scudder forwarding loop: standard I-BGP and Walton
//          give a c1<->c2 loop, the modified protocol is loop-free.

#include <string>
#include <vector>

#include "core/instance.hpp"

namespace ibgp::topo {

core::Instance fig1a();
core::Instance fig1b();
core::Instance fig2();
core::Instance fig3();
core::Instance fig13();
core::Instance fig14();

/// All figure instances with their labels, for sweep tools.
std::vector<std::pair<std::string, core::Instance>> all_figures();

}  // namespace ibgp::topo
