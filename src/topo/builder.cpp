#include "topo/builder.hpp"

#include <stdexcept>

namespace ibgp::topo {

NodeId InstanceBuilder::add_node(std::string label, netsim::ClusterId cluster,
                                 netsim::Role role) {
  if (id_of(label) != kNoNode) {
    throw std::invalid_argument("InstanceBuilder: duplicate node label '" + label + "'");
  }
  labels_.push_back(std::move(label));
  node_cluster_.push_back(cluster);
  node_role_.push_back(role);
  return static_cast<NodeId>(labels_.size() - 1);
}

NodeId InstanceBuilder::reflector(std::string label, netsim::ClusterId cluster) {
  return add_node(std::move(label), cluster, netsim::Role::kReflector);
}

NodeId InstanceBuilder::client(std::string label, netsim::ClusterId cluster) {
  return add_node(std::move(label), cluster, netsim::Role::kClient);
}

NodeId InstanceBuilder::id_of(std::string_view label) const {
  for (NodeId v = 0; v < labels_.size(); ++v) {
    if (labels_[v] == label) return v;
  }
  return kNoNode;
}

namespace {
NodeId require(const InstanceBuilder& builder, std::string_view label) {
  const NodeId v = builder.id_of(label);
  if (v == kNoNode) {
    throw std::invalid_argument("InstanceBuilder: unknown node label '" + std::string(label) +
                                "'");
  }
  return v;
}
}  // namespace

InstanceBuilder& InstanceBuilder::link(std::string_view a, std::string_view b, Cost cost) {
  links_.push_back({require(*this, a), require(*this, b), cost});
  return *this;
}

InstanceBuilder& InstanceBuilder::client_session(std::string_view a, std::string_view b) {
  client_sessions_.emplace_back(require(*this, a), require(*this, b));
  return *this;
}

InstanceBuilder& InstanceBuilder::exit(ExitSpec spec) {
  require(*this, spec.at);
  exits_.push_back(std::move(spec));
  return *this;
}

InstanceBuilder& InstanceBuilder::bgp_id(std::string_view node, BgpId id) {
  bgp_overrides_.emplace_back(require(*this, node), id);
  return *this;
}

InstanceBuilder& InstanceBuilder::route_map(std::string_view node,
                                            bgp::RouteMapClause clause) {
  route_map_clauses_.emplace_back(require(*this, node), std::move(clause));
  return *this;
}

core::Instance InstanceBuilder::build(std::string instance_name,
                                      bgp::SelectionPolicy policy) const {
  netsim::PhysicalGraph physical(labels_.size());
  for (const auto& link : links_) physical.add_link(link.a, link.b, link.cost);

  netsim::ClusterLayout layout(labels_.size());
  for (NodeId v = 0; v < labels_.size(); ++v) {
    layout.assign(v, node_cluster_[v], node_role_[v]);
  }

  netsim::SessionGraph sessions = netsim::build_session_graph(layout, client_sessions_);

  bgp::ExitTable table;
  for (std::size_t i = 0; i < exits_.size(); ++i) {
    const ExitSpec& spec = exits_[i];
    bgp::ExitPath path;
    path.name = spec.name;
    path.exit_point = id_of(spec.at);
    path.next_as = spec.next_as;
    path.local_pref = spec.local_pref;
    path.as_path_length = spec.as_path_length;
    path.med = spec.med;
    path.exit_cost = spec.exit_cost;
    path.ebgp_peer = spec.ebgp_peer.value_or(static_cast<BgpId>(1000 + i));
    path.communities = spec.communities;
    table.add(std::move(path));
  }

  std::vector<BgpId> ids(labels_.size());
  for (NodeId v = 0; v < labels_.size(); ++v) ids[v] = v;
  for (const auto& [node, id] : bgp_overrides_) ids[node] = id;

  std::vector<bgp::RouteMap> ingress_maps;
  if (!route_map_clauses_.empty()) {
    ingress_maps.resize(labels_.size());
    for (const auto& [node, clause] : route_map_clauses_) {
      ingress_maps[node].clauses.push_back(clause);
    }
  }

  return core::Instance(std::move(instance_name), std::move(physical), std::move(layout),
                        std::move(sessions), std::move(table), policy, std::move(ids),
                        labels_, std::move(ingress_maps));
}

}  // namespace ibgp::topo
