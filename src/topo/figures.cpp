#include "topo/figures.hpp"

#include "topo/builder.hpp"

namespace ibgp::topo {

// ---------------------------------------------------------------------------
// Figure 1(a) — persistent route oscillation (the RFC 3345 scenario).
//
// Cluster 0: reflector A with clients c1 (exit r1 via AS1, MED 0) and
//            c2 (exit r2 via AS2, MED 10).
// Cluster 1: reflector B with client  c3 (exit r3 via AS2, MED 0).
//
// IGP distances (from the chosen link costs):
//   A:  c1=5, c2=4, c3=13     B:  c1=11, c3=12
//
// Narrated cycle (Section 3), reproduced exactly:
//   A picks r2 (metric 4 < 5); B picks r3; A hears r3 -> r3 kills r2 (same
//   AS, lower MED) and loses to r1 (5 < 13) -> A picks r1; B hears r1 ->
//   picks r1 (11 < 12) and stops advertising r3; A falls back to r2 (4 < 5);
//   B hears r2 -> r3 kills it (MED) -> B picks r3 again; repeat.
// ---------------------------------------------------------------------------
core::Instance fig1a() {
  InstanceBuilder b;
  b.reflector("A", 0);
  b.client("c1", 0);
  b.client("c2", 0);
  b.reflector("B", 1);
  b.client("c3", 1);

  b.link("A", "c1", 5);
  b.link("A", "c2", 4);
  b.link("A", "c3", 13);
  b.link("A", "B", 6);    // B->c1 = 6+5 = 11
  b.link("B", "c3", 12);

  b.exit({.name = "r1", .at = "c1", .next_as = 1, .med = 0, .ebgp_peer = 1001});
  b.exit({.name = "r2", .at = "c2", .next_as = 2, .med = 10, .ebgp_peer = 1002});
  b.exit({.name = "r3", .at = "c3", .next_as = 2, .med = 0, .ebgp_peer = 1003});
  return b.build("fig1a");
}

// ---------------------------------------------------------------------------
// Figure 1(b) — rule-ordering sensitivity, fully-meshed I-BGP.
//
// Two meshed speakers.  A holds rA1 (AS1, MED 0, exit cost 2) and rA2
// (AS2, MED 10, exit cost 1); B holds rB (AS2, MED 0, exit cost 5).
//
// Default ordering (prefer E-BGP before IGP cost): B always keeps its own
// E-BGP route rB — "B always prefers its E-BGP route to either of the
// (shorter) routes through A" — and the system converges to A->rA1, B->rB.
//
// RFC-1771 ordering (IGP cost before the E-BGP preference): B abandons rB
// for whichever cheaper route A currently advertises, which replays the
// Fig 1(a) hide/reveal cycle: A: rA2 -> rA1 -> rA2 ... , B: rB -> rA1 -> rB.
// No stable configuration exists under that ordering.
// ---------------------------------------------------------------------------
core::Instance fig1b() {
  InstanceBuilder b;
  b.reflector("A", 0);
  b.reflector("B", 1);
  b.link("A", "B", 1);

  b.exit({.name = "rA1", .at = "A", .next_as = 1, .med = 0, .exit_cost = 2,
          .ebgp_peer = 1001});
  b.exit({.name = "rA2", .at = "A", .next_as = 2, .med = 10, .exit_cost = 1,
          .ebgp_peer = 1002});
  b.exit({.name = "rB", .at = "B", .next_as = 2, .med = 0, .exit_cost = 5,
          .ebgp_peer = 1003});
  return b.build("fig1b");
}

// ---------------------------------------------------------------------------
// Figure 2 — transient oscillation; two stable configurations.
//
// Cluster 0: RR1 + client c1 (exit r1); cluster 1: RR2 + client c2 (exit
// r2).  One neighboring AS (AS1), both MEDs 0 — so MED elimination never
// fires and Walton's scheme degenerates to classic I-BGP, exactly as the
// paper observes.  The dotted extra IGP links RR1-c2 and RR2-c1 (cost 2, no
// sessions on them) make each reflector prefer the *other* cluster's exit:
//
//   metric(RR1,r1)=10  metric(RR1,r2)=2   metric(RR2,r2)=10  metric(RR2,r1)=2
//
// Under the synchronous schedule the reflectors swap preferences forever
// (each can only re-advertise its own cluster's exit, so choosing the remote
// one withdraws the local one); any sequential schedule converges to one of
// the two stable configurations (all-r1 or all-r2), selected by order.
// ---------------------------------------------------------------------------
core::Instance fig2() {
  InstanceBuilder b;
  b.reflector("RR1", 0);
  b.client("c1", 0);
  b.reflector("RR2", 1);
  b.client("c2", 1);

  b.link("RR1", "c1", 10);
  b.link("RR2", "c2", 10);
  b.link("RR1", "RR2", 10);
  b.link("RR1", "c2", 2);  // dotted: IGP only
  b.link("RR2", "c1", 2);  // dotted: IGP only

  b.exit({.name = "r1", .at = "c1", .next_as = 1, .med = 0, .ebgp_peer = 1001});
  b.exit({.name = "r2", .at = "c2", .next_as = 1, .med = 0, .ebgp_peer = 1002});
  return b.build("fig2");
}

// ---------------------------------------------------------------------------
// Figure 3 / Table 1 — delay-induced transient oscillation.
//
// Three meshed speakers A, B, C (route reflectors of singleton clusters),
// six external routes r1..r6 through three neighboring ASes.  The exact MED
// table of the figure is lost; this reconstruction preserves the stated
// shape: every LOCAL-PREF/AS-path length equal, exit link IGP costs encoded
// as exit costs, two stable configurations, and final outcome determined by
// E-BGP injection timing and message delays (the bench scripts several).
//
// The bistable core is B<->C:
//   B: r3 (AS2, MED 0, ec 5)  r4 (AS3, MED 1, ec 0)
//   C: r5 (AS3, MED 0, ec 5)  r6 (AS2, MED 1, ec 0)
// B prefers its cheap r4 unless C's r5 MED-kills it; C prefers its cheap r6
// unless B's r3 MED-kills it.  Stable configurations: {B->r3, C->r5} and
// {B->r4, C->r6}.  A's routes r1/r2 are fillers that keep three ASes in
// play, as in the figure (A can be deleted, per the paper's remark).
// ---------------------------------------------------------------------------
core::Instance fig3() {
  InstanceBuilder b;
  b.reflector("A", 0);
  b.reflector("B", 1);
  b.reflector("C", 2);
  b.link("A", "B", 1);
  b.link("B", "C", 1);
  b.link("A", "C", 1);

  b.exit({.name = "r1", .at = "A", .next_as = 1, .med = 0, .exit_cost = 0,
          .ebgp_peer = 1001});
  b.exit({.name = "r2", .at = "A", .next_as = 2, .med = 2, .exit_cost = 0,
          .ebgp_peer = 1002});
  b.exit({.name = "r3", .at = "B", .next_as = 2, .med = 0, .exit_cost = 5,
          .ebgp_peer = 1003});
  b.exit({.name = "r4", .at = "B", .next_as = 3, .med = 1, .exit_cost = 0,
          .ebgp_peer = 1004});
  b.exit({.name = "r5", .at = "C", .next_as = 3, .med = 0, .exit_cost = 5,
          .ebgp_peer = 1005});
  b.exit({.name = "r6", .at = "C", .next_as = 2, .med = 1, .exit_cost = 0,
          .ebgp_peer = 1006});
  return b.build("fig3");
}

// ---------------------------------------------------------------------------
// Figure 13 — persistent oscillation surviving the Walton et al. fix.
//
// The figure's numeric parameters did not survive in the source text, so
// this instance is reconstructed for the stated properties (four clusters,
// RR1..RR3 with clients; MED-induced persistent oscillation under both the
// standard protocol and the Walton per-AS-vector fix; convergence under the
// paper's modified protocol).  Construction, machine-checked by the tests:
//
// Clusters 0..2: RR_i + client c_i holding p_i (AS1, MED 1).  The "dotted"
// IGP shortcuts make each reflector closer to the PREVIOUS cluster's exit
// than to its own client's (cost 2 vs 3).  With MEDs equal, RR_i's best
// route through AS1 is therefore p_{i-1} whenever visible — a route that is
// NOT its own cluster's, so route reflection forbids relaying it onward, and
// p_i vanishes from RR_i's mesh advertisement.  Writing V_i = "p_i visible
// in the mesh", every cluster is an inverter: V_i = NOT V_{i-1}.  Three
// inverters in a ring admit no consistent assignment, so NO stable
// configuration exists: standard and Walton both oscillate persistently
// (Walton's per-AS vector does not help because the per-AS best itself is
// the non-relayable remote route).
//
// Cluster 3: RR4 holds the stabilizer s (AS1, MED 9) and the decoy t (AS2,
// MED 0, exit cost 5).  With MEDs active, s is MED-eliminated by whichever
// p is visible, so it never influences anything — the oscillation rages.
// With MEDs ignored, s (IGP metric 1 from every reflector) wins every
// selection and the system converges at once: the oscillation is exactly
// MED-induced.  The modified protocol advertises the whole MED-survivor set
// {p1,p2,p3,t}, every p reaches every mesh member unconditionally, and the
// unique fixed point is reached under every schedule.
// ---------------------------------------------------------------------------
core::Instance fig13() {
  InstanceBuilder b;
  b.reflector("RR1", 0);
  b.client("c1", 0);
  b.reflector("RR2", 1);
  b.client("c2", 1);
  b.reflector("RR3", 2);
  b.client("c3", 2);
  b.reflector("RR4", 3);

  // Reflector mesh among RR1..RR3 (cost 2) with RR4 attached closely (1).
  b.link("RR1", "RR2", 2);
  b.link("RR1", "RR3", 2);
  b.link("RR2", "RR3", 2);
  b.link("RR4", "RR1", 1);
  b.link("RR4", "RR2", 1);
  b.link("RR4", "RR3", 1);

  // Cluster spokes: each reflector 3 away from its own client...
  b.link("RR1", "c1", 3);
  b.link("RR2", "c2", 3);
  b.link("RR3", "c3", 3);
  // ...but only 2 away from the previous cluster's client (dotted, IGP-only).
  b.link("RR1", "c3", 2);
  b.link("RR2", "c1", 2);
  b.link("RR3", "c2", 2);

  b.exit({.name = "p1", .at = "c1", .next_as = 1, .med = 1, .ebgp_peer = 1001});
  b.exit({.name = "p2", .at = "c2", .next_as = 1, .med = 1, .ebgp_peer = 1002});
  b.exit({.name = "p3", .at = "c3", .next_as = 1, .med = 1, .ebgp_peer = 1003});
  b.exit({.name = "s", .at = "RR4", .next_as = 1, .med = 9, .exit_cost = 0,
          .ebgp_peer = 1004});
  b.exit({.name = "t", .at = "RR4", .next_as = 2, .med = 0, .exit_cost = 5,
          .ebgp_peer = 1005});
  return b.build("fig13");
}

// ---------------------------------------------------------------------------
// Figure 14 — the Dube-Scudder routing loop.
//
// Physical chain RR1 — c2 — c1 — RR2 (every link cost 5); I-BGP sessions
// RR1-c1, RR2-c2 (each client is homed to the *far* reflector) and the
// RR1-RR2 mesh.  Exits r1 at RR1 and r2 at RR2, identical attributes, one
// neighboring AS.
//
// Standard I-BGP (and Walton, which coincides here): RR1 keeps its E-BGP
// route r1 and reflects only r1 to c1; c1's IGP next hop toward RR1 is c2.
// Symmetrically c2 learns only r2 and next-hops toward RR2 via c1.  Packets
// bounce c1 <-> c2 forever.  The modified protocol gives both clients both
// exits; each picks the IGP-closer one (c1->r2, c2->r1) and forwarding is
// loop-free.
// ---------------------------------------------------------------------------
core::Instance fig14() {
  InstanceBuilder b;
  b.reflector("RR1", 0);
  b.client("c1", 0);
  b.reflector("RR2", 1);
  b.client("c2", 1);

  b.link("RR1", "c2", 5);
  b.link("c2", "c1", 5);
  b.link("c1", "RR2", 5);

  b.exit({.name = "r1", .at = "RR1", .next_as = 1, .med = 0, .ebgp_peer = 1001});
  b.exit({.name = "r2", .at = "RR2", .next_as = 1, .med = 0, .ebgp_peer = 1002});
  return b.build("fig14");
}

std::vector<std::pair<std::string, core::Instance>> all_figures() {
  std::vector<std::pair<std::string, core::Instance>> out;
  out.emplace_back("fig1a", fig1a());
  out.emplace_back("fig1b", fig1b());
  out.emplace_back("fig2", fig2());
  out.emplace_back("fig3", fig3());
  out.emplace_back("fig13", fig13());
  out.emplace_back("fig14", fig14());
  return out;
}

}  // namespace ibgp::topo
