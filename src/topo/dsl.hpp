#pragma once
// A small text format for experiment instances, so the example tools can
// load topologies from files.  Grammar (one directive per line, '#' opens a
// comment, whitespace-separated tokens):
//
//   instance NAME
//   policy [order ebgp-first|igp-first] [med per-as|always|ignore]
//   med-override AS per-as|always|ignore      # per-neighbor-AS MED regime
//   node LABEL reflector|client CLUSTER [bgp-id ID]
//   link LABEL LABEL COST
//   session LABEL LABEL                       # extra client-client session
//   exit NAME at LABEL as AS [med M] [lp L] [len K] [cost C] [peer P]
//        [comm T[,T...]]
//   route-map LABEL [match-as A] [match-comm T[,T...]]
//        [set-lp L] [set-med M] [add-comm T[,T...]]
//
// `comm` lists are community tags (bit positions 0-31).  One `route-map`
// line is one clause of LABEL's ingress map; clause order is line order,
// first match wins.  Exit attribute tokens always describe the RAW
// (pre-route-map) configuration; the parser re-applies the maps, so
// round-trips preserve config rather than its consequence.
//
// parse_topo throws std::runtime_error with a source:line-prefixed message
// on any malformed input (`source` defaults to "<topo>"; load_topo_file
// passes the file path, so errors read like compiler diagnostics).
// Unsigned fields — cluster, bgp-id, as, med, lp, len, peer — are
// range-validated at parse time: negatives and values that would wrap the
// 32-bit representation are rejected instead of silently truncated, and
// cluster ids are capped (they index a membership table).  write_topo
// produces text that parses back to an equivalent instance, and
// re-serializing that parse is byte-identical (round-trip tested).

#include <string>
#include <string_view>

#include "core/instance.hpp"

namespace ibgp::topo {

/// Parses the DSL into a finalized instance.  `source` labels diagnostics
/// (file path, corpus entry name, ...).
core::Instance parse_topo(std::string_view text, std::string_view source = "<topo>");

/// Loads and parses a .topo file.
core::Instance load_topo_file(const std::string& path);

/// Serializes an instance back to the DSL.
std::string write_topo(const core::Instance& inst);

}  // namespace ibgp::topo
