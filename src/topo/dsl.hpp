#pragma once
// A small text format for experiment instances, so the example tools can
// load topologies from files.  Grammar (one directive per line, '#' opens a
// comment, whitespace-separated tokens):
//
//   instance NAME
//   policy [order ebgp-first|igp-first] [med per-as|always|ignore]
//   node LABEL reflector|client CLUSTER [bgp-id ID]
//   link LABEL LABEL COST
//   session LABEL LABEL                       # extra client-client session
//   exit NAME at LABEL as AS [med M] [lp L] [len K] [cost C] [peer P]
//
// parse_topo throws std::runtime_error with a line-numbered message on any
// malformed input; write_topo produces text that parses back to an
// equivalent instance (round-trip tested).

#include <string>
#include <string_view>

#include "core/instance.hpp"

namespace ibgp::topo {

/// Parses the DSL into a finalized instance.
core::Instance parse_topo(std::string_view text);

/// Loads and parses a .topo file.
core::Instance load_topo_file(const std::string& path);

/// Serializes an instance back to the DSL.
std::string write_topo(const core::Instance& inst);

}  // namespace ibgp::topo
