#include "topo/dsl.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "topo/builder.hpp"
#include "util/strings.hpp"

namespace ibgp::topo {

namespace {

using util::parse_i64;
using util::parse_u64;

// Clusters index a per-cluster membership table, so an absurd id from a
// hostile/corrupt file would translate into an absurd allocation.  Real
// instances use a handful of clusters; 4096 is beyond generous.
constexpr std::uint64_t kMaxClusterId = 4096;

// Where an error happened: the source label (file path, corpus entry name,
// or "<topo>" for inline text) plus the 1-based line.
struct LineRef {
  std::string_view source;
  std::size_t line = 0;
};

[[noreturn]] void fail(const LineRef& at, const std::string& message) {
  throw std::runtime_error(std::string(at.source) + ":" + std::to_string(at.line) +
                           ": topo parse error: " + message);
}

std::int64_t need_int(const LineRef& at, std::string_view token, const char* what) {
  const auto value = parse_i64(token);
  if (!value) {
    fail(at, std::string("expected integer for ") + what + ", got '" + std::string(token) +
                 "'");
  }
  return *value;
}

// Unsigned fields (node/cluster indices, ids, attribute values) reject
// negatives and anything that would wrap the 32-bit representation instead
// of silently truncating through a cast.
std::uint32_t need_u32(const LineRef& at, std::string_view token, const char* what,
                       std::uint64_t max = 0xFFFFFFFFull) {
  const auto value = parse_u64(token);
  if (!value || *value > max) {
    fail(at, std::string(what) + " must be an integer in [0, " + std::to_string(max) +
                 "], got '" + std::string(token) + "'");
  }
  return static_cast<std::uint32_t>(*value);
}

bgp::MedMode need_med_mode(const LineRef& at, std::string_view token) {
  if (token == "per-as") return bgp::MedMode::kPerNeighborAs;
  if (token == "always") return bgp::MedMode::kAlwaysCompare;
  if (token == "ignore") return bgp::MedMode::kIgnore;
  fail(at, "unknown med mode (want per-as|always|ignore)");
}

const char* med_mode_name(bgp::MedMode mode) {
  switch (mode) {
    case bgp::MedMode::kPerNeighborAs: return "per-as";
    case bgp::MedMode::kAlwaysCompare: return "always";
    case bgp::MedMode::kIgnore: return "ignore";
  }
  return "per-as";
}

// Parses "1,3,17" into a community bitmask (tags are bit positions 0-31).
std::uint32_t need_comm_list(const LineRef& at, std::string_view token) {
  std::uint32_t mask = 0;
  for (std::string_view part : util::split(token, ',')) {
    const auto tag = parse_u64(part);
    if (!tag || *tag >= 32) fail(at, "community tag must be an integer in [0, 32)");
    mask |= 1u << *tag;
  }
  if (mask == 0) fail(at, "empty community list");
  return mask;
}

// Inverse of need_comm_list: "1,3,17" from a bitmask.
std::string comm_list(std::uint32_t mask) {
  std::string out;
  for (std::uint32_t tag = 0; tag < 32; ++tag) {
    if ((mask & (1u << tag)) == 0) continue;
    if (!out.empty()) out += ',';
    out += std::to_string(tag);
  }
  return out;
}

}  // namespace

core::Instance parse_topo(std::string_view text, std::string_view source) {
  InstanceBuilder builder;
  std::string instance_name = "unnamed";
  bgp::SelectionPolicy policy;
  LineRef at{source, 0};
  bool any_node = false;

  for (std::string_view raw_line : util::split(text, '\n')) {
    ++at.line;
    std::string_view line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto tokens = util::split_ws(line);
    if (tokens.empty()) continue;
    const std::string_view directive = tokens[0];

    try {
    if (directive == "instance") {
      if (tokens.size() != 2) fail(at, "usage: instance NAME");
      instance_name = std::string(tokens[1]);
    } else if (directive == "policy") {
      for (std::size_t i = 1; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "order") {
          if (tokens[i + 1] == "ebgp-first") {
            policy.order = bgp::RuleOrder::kPreferEbgpFirst;
          } else if (tokens[i + 1] == "igp-first") {
            policy.order = bgp::RuleOrder::kIgpCostFirst;
          } else {
            fail(at, "unknown order (want ebgp-first|igp-first)");
          }
        } else if (tokens[i] == "med") {
          policy.med = need_med_mode(at, tokens[i + 1]);
        } else {
          fail(at, "unknown policy key '" + std::string(tokens[i]) + "'");
        }
      }
    } else if (directive == "med-override") {
      if (tokens.size() != 3) fail(at, "usage: med-override AS per-as|always|ignore");
      bgp::MedOverride override;
      override.as = need_u32(at, tokens[1], "as");
      override.mode = need_med_mode(at, tokens[2]);
      policy.med_overrides.push_back(override);
    } else if (directive == "node") {
      if (tokens.size() < 4) fail(at, "usage: node LABEL reflector|client CLUSTER");
      const std::string label(tokens[1]);
      const auto cluster =
          static_cast<netsim::ClusterId>(need_u32(at, tokens[3], "cluster", kMaxClusterId));
      NodeId v = kNoNode;
      if (tokens[2] == "reflector") {
        v = builder.reflector(label, cluster);
      } else if (tokens[2] == "client") {
        v = builder.client(label, cluster);
      } else {
        fail(at, "node role must be reflector|client");
      }
      (void)v;
      any_node = true;
      for (std::size_t i = 4; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "bgp-id") {
          builder.bgp_id(label, need_u32(at, tokens[i + 1], "bgp-id"));
        } else {
          fail(at, "unknown node option '" + std::string(tokens[i]) + "'");
        }
      }
    } else if (directive == "link") {
      if (tokens.size() != 4) fail(at, "usage: link A B COST");
      builder.link(tokens[1], tokens[2], need_int(at, tokens[3], "cost"));
    } else if (directive == "session") {
      if (tokens.size() != 3) fail(at, "usage: session A B");
      builder.client_session(tokens[1], tokens[2]);
    } else if (directive == "exit") {
      // exit NAME at LABEL as AS [med M] [lp L] [len K] [cost C] [peer P]
      if (tokens.size() < 6 || tokens[2] != "at" || tokens[4] != "as") {
        fail(at, "usage: exit NAME at LABEL as AS [med M] [lp L] [len K] [cost C] [peer P]");
      }
      ExitSpec spec;
      spec.name = std::string(tokens[1]);
      spec.at = std::string(tokens[3]);
      spec.next_as = need_u32(at, tokens[5], "as");
      for (std::size_t i = 6; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "med") {
          spec.med = need_u32(at, tokens[i + 1], "med");
        } else if (tokens[i] == "lp") {
          spec.local_pref = need_u32(at, tokens[i + 1], "lp");
        } else if (tokens[i] == "len") {
          spec.as_path_length = need_u32(at, tokens[i + 1], "len");
        } else if (tokens[i] == "cost") {
          spec.exit_cost = need_int(at, tokens[i + 1], "cost");
        } else if (tokens[i] == "peer") {
          spec.ebgp_peer = need_u32(at, tokens[i + 1], "peer");
        } else if (tokens[i] == "comm") {
          spec.communities = need_comm_list(at, tokens[i + 1]);
        } else {
          fail(at, "unknown exit option '" + std::string(tokens[i]) + "'");
        }
      }
      builder.exit(std::move(spec));
    } else if (directive == "route-map") {
      // route-map LABEL [match-as A] [match-comm LIST] [set-lp L] [set-med M]
      //                 [add-comm LIST]
      if (tokens.size() < 4 || tokens.size() % 2 != 0) {
        fail(at,
             "usage: route-map LABEL [match-as A] [match-comm LIST] [set-lp L] [set-med M] "
             "[add-comm LIST]");
      }
      bgp::RouteMapClause clause;
      for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "match-as") {
          clause.match_as = need_u32(at, tokens[i + 1], "match-as");
        } else if (tokens[i] == "match-comm") {
          clause.match_communities = need_comm_list(at, tokens[i + 1]);
        } else if (tokens[i] == "set-lp") {
          clause.set_local_pref = need_u32(at, tokens[i + 1], "set-lp");
        } else if (tokens[i] == "set-med") {
          clause.set_med = need_u32(at, tokens[i + 1], "set-med");
        } else if (tokens[i] == "add-comm") {
          clause.add_communities = need_comm_list(at, tokens[i + 1]);
        } else {
          fail(at, "unknown route-map option '" + std::string(tokens[i]) + "'");
        }
      }
      builder.route_map(tokens[1], std::move(clause));
    } else {
      fail(at, "unknown directive '" + std::string(directive) + "'");
    }
    } catch (const std::invalid_argument& e) {
      // Builder errors (unknown labels, duplicate nodes, bad links) get the
      // source:line attached; our own fail() errors pass through unchanged.
      fail(at, e.what());
    } catch (const std::out_of_range& e) {
      fail(at, e.what());
    }
  }

  if (!any_node) {
    throw std::runtime_error(std::string(source) + ": topo parse error: no nodes defined" +
                             (text.empty() ? " (empty input)" : ""));
  }
  return builder.build(instance_name, policy);
}

core::Instance load_topo_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open topo file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_topo(buffer.str(), path);
}

std::string write_topo(const core::Instance& inst) {
  std::ostringstream out;
  out << "# generated by ibgp-rr\n";
  out << "instance " << inst.name() << "\n";
  out << "policy order "
      << (inst.policy().order == bgp::RuleOrder::kPreferEbgpFirst ? "ebgp-first" : "igp-first")
      << " med "
      << med_mode_name(inst.policy().med) << "\n";
  for (const auto& override : inst.policy().med_overrides) {
    out << "med-override " << override.as << ' ' << med_mode_name(override.mode) << "\n";
  }
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    out << "node " << inst.node_name(v) << ' '
        << (inst.clusters().is_reflector(v) ? "reflector" : "client") << ' '
        << inst.clusters().cluster_of(v) << " bgp-id " << inst.bgp_id(v) << "\n";
  }
  for (const auto& link : inst.physical().links()) {
    out << "link " << inst.node_name(link.a) << ' ' << inst.node_name(link.b) << ' '
        << link.cost << "\n";
  }
  for (const auto& edge : inst.sessions().edges()) {
    if (edge.kind == netsim::SessionKind::kClientClient) {
      out << "session " << inst.node_name(edge.u) << ' ' << inst.node_name(edge.v) << "\n";
    }
  }
  // Exits are written with their RAW (pre-route-map) attributes so the maps
  // below are not applied twice on re-parse.
  for (const auto& path : inst.raw_exits().all()) {
    out << "exit " << path.name << " at " << inst.node_name(path.exit_point) << " as "
        << path.next_as << " med " << path.med << " lp " << path.local_pref << " len "
        << path.as_path_length << " cost " << path.exit_cost << " peer " << path.ebgp_peer;
    if (path.communities != 0) out << " comm " << comm_list(path.communities);
    out << "\n";
  }
  const auto maps = inst.ingress_maps();
  for (NodeId v = 0; v < maps.size(); ++v) {
    for (const auto& clause : maps[v].clauses) {
      // An all-empty clause matches everything and changes nothing; it has
      // no serializable body, so drop it (the instance is unaffected).
      if (!clause.match_as && clause.match_communities == 0 && !clause.set_local_pref &&
          !clause.set_med && clause.add_communities == 0) {
        continue;
      }
      out << "route-map " << inst.node_name(v);
      if (clause.match_as) out << " match-as " << *clause.match_as;
      if (clause.match_communities != 0) {
        out << " match-comm " << comm_list(clause.match_communities);
      }
      if (clause.set_local_pref) out << " set-lp " << *clause.set_local_pref;
      if (clause.set_med) out << " set-med " << *clause.set_med;
      if (clause.add_communities != 0) out << " add-comm " << comm_list(clause.add_communities);
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace ibgp::topo
