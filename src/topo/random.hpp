#pragma once
// Random clustered I-BGP instances.
//
// Used by the property-test suites (the paper's theorems must hold on *any*
// configuration, so we sample thousands) and by the counterexample finder
// that searches for oscillating configurations (Fig 13 reconstruction,
// oscillation-rate benches).

#include <cstdint>

#include "core/instance.hpp"

namespace ibgp::topo {

struct RandomConfig {
  /// Number of clusters; each gets exactly one reflector plus a uniform
  /// number of clients in [min_clients, max_clients].
  std::size_t clusters = 3;
  std::size_t min_clients = 0;
  std::size_t max_clients = 2;

  /// Probability that a cluster receives a second reflector (the paper's
  /// model allows multi-reflector clusters).
  double second_reflector_prob = 0.0;

  /// Number of distinct neighboring ASes exit paths may pass through.
  std::size_t neighbor_ases = 2;

  /// Total number of exit paths, each placed at a uniformly random node
  /// (or client, when exits_at_clients_only).
  std::size_t exits = 4;
  bool exits_at_clients_only = false;

  /// Attribute ranges.  MEDs are uniform in [0, max_med]; link costs in
  /// [1, max_link_cost]; exit costs in [0, max_exit_cost].
  Med max_med = 3;
  Cost max_link_cost = 10;
  Cost max_exit_cost = 5;

  /// When false, LOCAL-PREF / AS-path length are varied slightly too (the
  /// paper's theorems don't require them equal).
  bool equal_local_pref = true;
  bool equal_as_path_length = true;

  /// Probability of each additional random physical (IGP-only) link beyond
  /// the connecting skeleton — these create Fig-2-style shortcuts.
  double extra_link_prob = 0.25;

  bgp::SelectionPolicy policy = {};
};

/// Generates a connected, validated instance deterministically from `seed`.
core::Instance random_instance(const RandomConfig& config, std::uint64_t seed);

}  // namespace ibgp::topo
