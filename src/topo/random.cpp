#include "topo/random.hpp"

#include <string>
#include <vector>

#include "netsim/session_graph.hpp"
#include "util/rng.hpp"

namespace ibgp::topo {

core::Instance random_instance(const RandomConfig& config, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);

  netsim::ClusterLayout layout(0);
  std::vector<std::string> names;
  std::vector<NodeId> clients;
  std::vector<NodeId> reflectors;
  std::size_t node_count = 0;

  auto new_node = [&](netsim::ClusterId c, netsim::Role role, const std::string& label) {
    (void)c;
    (void)role;
    names.push_back(label);
    return static_cast<NodeId>(node_count++);
  };

  // First pass: decide the roster so the layout can be sized up front.
  struct Member {
    netsim::ClusterId cluster;
    netsim::Role role;
  };
  std::vector<Member> roster;
  for (netsim::ClusterId c = 0; c < config.clusters; ++c) {
    roster.push_back({c, netsim::Role::kReflector});
    if (rng.chance(config.second_reflector_prob)) {
      roster.push_back({c, netsim::Role::kReflector});
    }
    const auto n_clients = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_clients),
                  static_cast<std::int64_t>(config.max_clients)));
    for (std::size_t i = 0; i < n_clients; ++i) roster.push_back({c, netsim::Role::kClient});
  }

  layout = netsim::ClusterLayout(roster.size());
  std::vector<std::size_t> rr_per_cluster(config.clusters, 0);
  std::vector<std::size_t> cl_per_cluster(config.clusters, 0);
  for (const Member& member : roster) {
    std::string label;
    if (member.role == netsim::Role::kReflector) {
      label = "RR" + std::to_string(member.cluster);
      if (rr_per_cluster[member.cluster]++ > 0) {
        label += "_" + std::to_string(rr_per_cluster[member.cluster] - 1);
      }
    } else {
      label = "c" + std::to_string(member.cluster) + "_" +
              std::to_string(cl_per_cluster[member.cluster]++);
    }
    const NodeId v = new_node(member.cluster, member.role, label);
    layout.assign(v, member.cluster, member.role);
    if (member.role == netsim::Role::kReflector) {
      reflectors.push_back(v);
    } else {
      clients.push_back(v);
    }
  }

  // Physical skeleton: chain the reflectors (connected), then spoke every
  // client to one reflector of its cluster, then sprinkle extra links.
  netsim::PhysicalGraph physical(node_count);
  auto rand_cost = [&]() {
    return static_cast<Cost>(rng.range(1, static_cast<std::int64_t>(config.max_link_cost)));
  };
  for (std::size_t i = 1; i < reflectors.size(); ++i) {
    physical.add_link(reflectors[i - 1], reflectors[i], rand_cost());
  }
  for (const NodeId client : clients) {
    const auto cluster_rrs = layout.reflectors_of(layout.cluster_of(client));
    const NodeId rr = cluster_rrs[rng.pick_index(cluster_rrs)];
    physical.add_link(client, rr, rand_cost());
  }
  for (NodeId a = 0; a < node_count; ++a) {
    for (NodeId b = a + 1; b < node_count; ++b) {
      if (!physical.has_link(a, b) && rng.chance(config.extra_link_prob)) {
        physical.add_link(a, b, rand_cost());
      }
    }
  }

  netsim::SessionGraph sessions = netsim::build_session_graph(layout);

  // Exit paths.
  bgp::ExitTable table;
  const std::size_t ases = std::max<std::size_t>(1, config.neighbor_ases);
  for (std::size_t i = 0; i < config.exits; ++i) {
    bgp::ExitPath path;
    path.name = "r" + std::to_string(i + 1);
    if (config.exits_at_clients_only && !clients.empty()) {
      path.exit_point = clients[rng.pick_index(clients)];
    } else {
      path.exit_point = static_cast<NodeId>(rng.below(node_count));
    }
    path.next_as = static_cast<AsId>(1 + rng.below(ases));
    path.med = static_cast<Med>(rng.range(0, static_cast<std::int64_t>(config.max_med)));
    path.exit_cost =
        static_cast<Cost>(rng.range(0, static_cast<std::int64_t>(config.max_exit_cost)));
    path.local_pref = config.equal_local_pref
                          ? LocalPref{100}
                          : static_cast<LocalPref>(100 + rng.below(2) * 10);
    path.as_path_length = config.equal_as_path_length
                              ? std::uint32_t{3}
                              : static_cast<std::uint32_t>(3 + rng.below(2));
    path.ebgp_peer = static_cast<BgpId>(1000 + i);
    table.add(std::move(path));
  }

  return core::Instance("random-" + std::to_string(seed), std::move(physical),
                        std::move(layout), std::move(sessions), std::move(table),
                        config.policy, {}, std::move(names));
}

}  // namespace ibgp::topo
