#pragma once
// Versioned, deterministic checkpointing of EventEngine state.
//
// ibgp-ckpt-v1 is the on-disk JSON encoding of engine::EngineState — the
// complete deterministic state of a running simulation: pending events
// (which *are* the fault-script cursor, since scripts schedule everything
// up front), per-node Adj-RIB-In/best/FIB, stale flags and graceful-restart
// generations, session epochs and FIFO clocks, MRAI holds, the IGP
// link-state vector with the epoch history, every log the trace hash folds,
// all cumulative counters, and the cumulative deliveries/end_time of the
// run so far.  The hard guarantee, pinned by tests/test_ckpt.cpp's
// kill-at-every-tick oracle: a run resumed from any checkpoint produces a
// byte-identical Result, trace hash, and decision-provenance histogram to
// the uninterrupted run.
//
// Versioning & compatibility: the "schema" field is checked exactly —
// parse_engine_state refuses anything but "ibgp-ckpt-v1" (forward
// compatibility is deliberately not attempted: a checkpoint encodes private
// engine invariants, so a version bump means the format changed shape).
// Within v1, unknown keys are ignored on read (additive evolution without a
// bump) but every v1 key is required; a truncated or hand-edited file fails
// with a diagnostic naming the missing/ill-typed field, never with silent
// state corruption.  The identity header (instance, protocol, node/path/
// link counts) must match the restoring engine exactly.
//
// Files are written via write-to-temp-then-rename (util::json::
// write_file_atomic), so a reader — including a resume after SIGKILL —
// only ever observes a complete old or complete new checkpoint.

#include <optional>
#include <string>

#include "engine/event_engine.hpp"
#include "util/json.hpp"

namespace ibgp::ckpt {

/// The exact schema tag ibgp-ckpt-v1 files carry.
inline constexpr std::string_view kCkptSchema = "ibgp-ckpt-v1";

/// Encodes a captured engine state as an ibgp-ckpt-v1 document.
[[nodiscard]] util::json::Value engine_state_json(const engine::EngineState& state);

/// Decodes an ibgp-ckpt-v1 document.  Throws std::runtime_error with a
/// field-naming diagnostic on schema mismatch, missing keys, or ill-typed
/// values.  (Cross-checking against a concrete instance happens later, in
/// EventEngine::restore.)
[[nodiscard]] engine::EngineState parse_engine_state(const util::json::Value& doc);

/// Atomically writes `state` to `path` (temp + rename).  Returns false on
/// any I/O failure, in which case `path` still holds its previous content.
bool save_checkpoint(const std::string& path, const engine::EngineState& state);

/// Loads and decodes a checkpoint file.  Throws std::runtime_error (with
/// the path in the message) when the file is unreadable, unparseable, or
/// not a valid ibgp-ckpt-v1 document.
[[nodiscard]] engine::EngineState load_checkpoint(const std::string& path);

/// Non-throwing load: std::nullopt (and a diagnostic in `error` when given)
/// instead of an exception.  Resume paths use this to treat a torn or stale
/// checkpoint as "start from scratch" rather than a fatal error.
[[nodiscard]] std::optional<engine::EngineState> try_load_checkpoint(
    const std::string& path, std::string* error = nullptr);

}  // namespace ibgp::ckpt
