#include "ckpt/checkpoint.hpp"

#include <stdexcept>

namespace ibgp::ckpt {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

// --- encode helpers ---------------------------------------------------------

Array uint_array(const std::vector<std::uint64_t>& values) {
  Array out;
  out.reserve(values.size());
  for (const auto v : values) out.emplace_back(v);
  return out;
}

template <typename T>
Array num_array(const std::vector<T>& values) {
  Array out;
  out.reserve(values.size());
  for (const auto v : values) out.emplace_back(static_cast<std::int64_t>(v));
  return out;
}

Array bool_array(const std::vector<bool>& values) {
  // 0/1 instead of true/false: these vectors are long and the compact form
  // keeps node-count^2 session masks readable in a diff.
  Array out;
  out.reserve(values.size());
  for (const bool v : values) out.emplace_back(static_cast<std::uint64_t>(v ? 1 : 0));
  return out;
}

template <typename T>
Array nested_num_array(const std::vector<std::vector<T>>& rows) {
  Array out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.emplace_back(num_array(row));
  return out;
}

Array rule_array(const std::array<std::uint64_t, bgp::kSelectionRuleCount>& rules) {
  Array out;
  out.reserve(rules.size());
  for (const auto v : rules) out.emplace_back(v);
  return out;
}

// --- decode helpers ---------------------------------------------------------

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("ibgp-ckpt-v1: " + what);
}

const Value& field(const Value& doc, std::string_view key) {
  const Value* v = doc.find(key);
  if (v == nullptr) bad("missing field '" + std::string(key) + "'");
  return *v;
}

std::uint64_t get_uint(const Value& doc, std::string_view key) {
  try {
    return field(doc, key).as_uint();
  } catch (const std::runtime_error&) {
    bad("field '" + std::string(key) + "' is not a non-negative integer");
  }
}

std::vector<std::uint64_t> get_uints(const Value& doc, std::string_view key) {
  std::vector<std::uint64_t> out;
  for (const auto& v : field(doc, key).as_array()) out.push_back(v.as_uint());
  return out;
}

template <typename T>
std::vector<T> get_nums(const Value& value) {
  std::vector<T> out;
  for (const auto& v : value.as_array()) out.push_back(static_cast<T>(v.as_int()));
  return out;
}

template <typename T>
std::vector<T> get_nums(const Value& doc, std::string_view key) {
  return get_nums<T>(field(doc, key));
}

std::vector<bool> get_bools(const Value& doc, std::string_view key) {
  std::vector<bool> out;
  for (const auto& v : field(doc, key).as_array()) {
    const std::uint64_t bit = v.as_uint();
    if (bit > 1) bad("field '" + std::string(key) + "' has a non-0/1 entry");
    out.push_back(bit != 0);
  }
  return out;
}

template <typename T>
std::vector<std::vector<T>> get_nested(const Value& doc, std::string_view key) {
  std::vector<std::vector<T>> out;
  for (const auto& row : field(doc, key).as_array()) out.push_back(get_nums<T>(row));
  return out;
}

std::array<std::uint64_t, bgp::kSelectionRuleCount> get_rules(const Value& value) {
  const auto& arr = value.as_array();
  if (arr.size() != bgp::kSelectionRuleCount) bad("selection-rule histogram length mismatch");
  std::array<std::uint64_t, bgp::kSelectionRuleCount> out{};
  for (std::size_t i = 0; i < arr.size(); ++i) out[i] = arr[i].as_uint();
  return out;
}

const Array& get_tuple(const Value& value, std::size_t arity, const char* what) {
  const auto& arr = value.as_array();
  if (arr.size() != arity) bad(std::string(what) + ": expected " + std::to_string(arity) +
                               " elements, got " + std::to_string(arr.size()));
  return arr;
}

}  // namespace

util::json::Value engine_state_json(const engine::EngineState& state) {
  Object doc;
  doc.emplace_back("schema", kCkptSchema);
  doc.emplace_back("instance", state.instance);
  doc.emplace_back("protocol", state.protocol);
  doc.emplace_back("node_count", state.node_count);
  doc.emplace_back("path_count", state.path_count);
  doc.emplace_back("link_count", state.link_count);
  doc.emplace_back("mrai", state.mrai);
  doc.emplace_back("stale_timer", state.stale_timer);
  doc.emplace_back("next_seq", state.next_seq);
  doc.emplace_back("session_msg_seq", state.session_msg_seq);
  doc.emplace_back("deliveries", state.deliveries);
  doc.emplace_back("end_time", state.end_time);

  {
    Array queue;
    queue.reserve(state.queue.size());
    for (const auto& e : state.queue) {
      Array tuple;
      tuple.reserve(10);
      tuple.emplace_back(e.time);
      tuple.emplace_back(e.seq);
      tuple.emplace_back(static_cast<std::uint64_t>(e.kind));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(e.from)));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(e.to)));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(e.path)));
      tuple.emplace_back(static_cast<std::uint64_t>(e.announce ? 1 : 0));
      tuple.emplace_back(e.epoch);
      tuple.emplace_back(static_cast<std::int64_t>(e.cost));
      // 10th element (since the causal-lineage change): the causal parent
      // seq, -1 for roots.  Readers accept the pre-lineage 9-tuple too.
      tuple.emplace_back(e.pid == engine::kNoCause
                             ? std::int64_t{-1}
                             : static_cast<std::int64_t>(e.pid));
      queue.emplace_back(std::move(tuple));
    }
    doc.emplace_back("queue", std::move(queue));
  }

  {
    Array nodes;
    nodes.reserve(state.nodes.size());
    for (const auto& snap : state.nodes) {
      Object node;
      node.emplace_back("holders", nested_num_array(snap.holders));
      node.emplace_back("stale", nested_num_array(snap.stale));
      node.emplace_back("own", bool_array(snap.own));
      node.emplace_back("has_best", snap.has_best);
      node.emplace_back("best_path", static_cast<std::int64_t>(snap.best_path));
      node.emplace_back("best_metric", static_cast<std::int64_t>(snap.best_metric));
      node.emplace_back("best_learned_from",
                        static_cast<std::uint64_t>(snap.best_learned_from));
      node.emplace_back("best_is_ebgp", snap.best_is_ebgp);
      node.emplace_back("advertised_out", nested_num_array(snap.advertised_out));
      node.emplace_back("desired_out", nested_num_array(snap.desired_out));
      node.emplace_back("mrai_ready", num_array(snap.mrai_ready));
      node.emplace_back("flush_scheduled", bool_array(snap.flush_scheduled));
      nodes.emplace_back(std::move(node));
    }
    doc.emplace_back("nodes", std::move(nodes));
  }

  doc.emplace_back("session_last_delivery", num_array(state.session_last_delivery));
  doc.emplace_back("session_epoch", uint_array(state.session_epoch));
  doc.emplace_back("session_admin_down", bool_array(state.session_admin_down));
  doc.emplace_back("node_up", bool_array(state.node_up));
  doc.emplace_back("graceful_down", bool_array(state.graceful_down));
  doc.emplace_back("gr_generation", uint_array(state.gr_generation));
  doc.emplace_back("fib", num_array(state.fib));
  doc.emplace_back("fib_frozen", bool_array(state.fib_frozen));
  doc.emplace_back("ebgp_live", bool_array(state.ebgp_live));
  doc.emplace_back("link_cost", num_array(state.link_cost));
  doc.emplace_back("link_down", bool_array(state.link_down));

  {
    Array igp;
    igp.reserve(state.igp_log.size());
    for (const auto& snapshot : state.igp_log) {
      Array tuple;
      tuple.emplace_back(snapshot.time);
      tuple.emplace_back(num_array(snapshot.effective));
      igp.emplace_back(std::move(tuple));
    }
    doc.emplace_back("igp_log", std::move(igp));
  }

  {
    Object counters;
    counters.emplace_back("updates_sent", state.updates_sent);
    counters.emplace_back("best_flips", state.best_flips);
    counters.emplace_back("messages_dropped", state.messages_dropped);
    counters.emplace_back("messages_duplicated", state.messages_duplicated);
    counters.emplace_back("deliveries_voided", state.deliveries_voided);
    counters.emplace_back("eor_sent", state.eor_sent);
    counters.emplace_back("stale_retained", state.stale_retained);
    counters.emplace_back("stale_swept_eor", state.stale_swept_eor);
    counters.emplace_back("stale_swept_expired", state.stale_swept_expired);
    counters.emplace_back("igp_swaps", state.igp_swaps);
    counters.emplace_back("decisions_total", state.decisions_total);
    counters.emplace_back("decisions_empty", state.decisions_empty);
    counters.emplace_back("mrai_deferrals", state.mrai_deferrals);
    doc.emplace_back("counters", std::move(counters));
  }

  doc.emplace_back("decisions_by_rule", rule_array(state.decisions_by_rule));
  {
    Array by_node;
    by_node.reserve(state.decisions_by_node.size());
    for (const auto& rules : state.decisions_by_node) by_node.emplace_back(rule_array(rules));
    doc.emplace_back("decisions_by_node", std::move(by_node));
  }
  doc.emplace_back("flips_by_node", uint_array(state.flips_by_node));

  {
    Array flaps;
    flaps.reserve(state.flap_log.size());
    for (const auto& r : state.flap_log) {
      Array tuple;
      tuple.emplace_back(r.time);
      tuple.emplace_back(static_cast<std::uint64_t>(r.node));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(r.old_best)));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(r.new_best)));
      flaps.emplace_back(std::move(tuple));
    }
    doc.emplace_back("flap_log", std::move(flaps));
  }
  {
    Array faults;
    faults.reserve(state.fault_log.size());
    for (const auto& r : state.fault_log) {
      Array tuple;
      tuple.emplace_back(r.time);
      tuple.emplace_back(static_cast<std::uint64_t>(r.kind));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(r.a)));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(r.b)));
      tuple.emplace_back(static_cast<std::int64_t>(r.cost));
      faults.emplace_back(std::move(tuple));
    }
    doc.emplace_back("fault_log", std::move(faults));
  }
  {
    Array fibs;
    fibs.reserve(state.fib_log.size());
    for (const auto& r : state.fib_log) {
      Array tuple;
      tuple.emplace_back(r.time);
      tuple.emplace_back(static_cast<std::uint64_t>(r.node));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(r.old_path)));
      tuple.emplace_back(static_cast<std::int64_t>(static_cast<std::int64_t>(r.new_path)));
      fibs.emplace_back(std::move(tuple));
    }
    doc.emplace_back("fib_log", std::move(fibs));
  }
  return Value(std::move(doc));
}

engine::EngineState parse_engine_state(const util::json::Value& doc) {
  if (!doc.is_object()) bad("document is not an object");
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != kCkptSchema) {
    bad("schema mismatch (want '" + std::string(kCkptSchema) + "')");
  }

  engine::EngineState state;
  state.instance = field(doc, "instance").as_string();
  state.protocol = field(doc, "protocol").as_string();
  state.node_count = get_uint(doc, "node_count");
  state.path_count = get_uint(doc, "path_count");
  state.link_count = get_uint(doc, "link_count");
  state.mrai = get_uint(doc, "mrai");
  state.stale_timer = get_uint(doc, "stale_timer");
  state.next_seq = get_uint(doc, "next_seq");
  state.session_msg_seq = get_uint(doc, "session_msg_seq");
  state.deliveries = get_uint(doc, "deliveries");
  state.end_time = get_uint(doc, "end_time");

  for (const auto& entry : field(doc, "queue").as_array()) {
    // 9 elements = pre-lineage checkpoint (every pending event becomes a
    // causal root on restore), 10 = with the trailing pid element.
    const auto& tuple = entry.as_array();
    if (tuple.size() != 9 && tuple.size() != 10) {
      bad("queue entry: expected 9 or 10 elements, got " +
          std::to_string(tuple.size()));
    }
    engine::EngineState::PendingEvent e;
    e.time = tuple[0].as_uint();
    e.seq = tuple[1].as_uint();
    const std::uint64_t kind = tuple[2].as_uint();
    if (kind > 0xFF) bad("queue entry kind out of range");
    e.kind = static_cast<std::uint8_t>(kind);
    e.from = static_cast<NodeId>(tuple[3].as_int());
    e.to = static_cast<NodeId>(tuple[4].as_int());
    e.path = static_cast<PathId>(tuple[5].as_int());
    e.announce = tuple[6].as_uint() != 0;
    e.epoch = tuple[7].as_uint();
    e.cost = tuple[8].as_int();
    if (tuple.size() == 10) {
      const std::int64_t pid = tuple[9].as_int();
      e.pid = pid < 0 ? engine::kNoCause : static_cast<std::uint64_t>(pid);
    }
    state.queue.push_back(e);
  }

  for (const auto& entry : field(doc, "nodes").as_array()) {
    engine::EngineState::NodeSnapshot snap;
    snap.holders = get_nested<NodeId>(entry, "holders");
    snap.stale = get_nested<NodeId>(entry, "stale");
    snap.own = get_bools(entry, "own");
    snap.has_best = field(entry, "has_best").as_bool();
    snap.best_path = static_cast<PathId>(field(entry, "best_path").as_int());
    snap.best_metric = field(entry, "best_metric").as_int();
    snap.best_learned_from = static_cast<BgpId>(get_uint(entry, "best_learned_from"));
    snap.best_is_ebgp = field(entry, "best_is_ebgp").as_bool();
    snap.advertised_out = get_nested<PathId>(entry, "advertised_out");
    snap.desired_out = get_nested<PathId>(entry, "desired_out");
    snap.mrai_ready = get_nums<engine::SimTime>(entry, "mrai_ready");
    snap.flush_scheduled = get_bools(entry, "flush_scheduled");
    state.nodes.push_back(std::move(snap));
  }

  state.session_last_delivery = get_nums<engine::SimTime>(doc, "session_last_delivery");
  state.session_epoch = get_uints(doc, "session_epoch");
  state.session_admin_down = get_bools(doc, "session_admin_down");
  state.node_up = get_bools(doc, "node_up");
  state.graceful_down = get_bools(doc, "graceful_down");
  state.gr_generation = get_uints(doc, "gr_generation");
  state.fib = get_nums<PathId>(doc, "fib");
  state.fib_frozen = get_bools(doc, "fib_frozen");
  state.ebgp_live = get_bools(doc, "ebgp_live");
  state.link_cost = get_nums<Cost>(doc, "link_cost");
  state.link_down = get_bools(doc, "link_down");

  for (const auto& entry : field(doc, "igp_log").as_array()) {
    const auto& tuple = get_tuple(entry, 2, "igp_log entry");
    engine::EngineState::IgpSnapshot snapshot;
    snapshot.time = tuple[0].as_uint();
    snapshot.effective = get_nums<Cost>(tuple[1]);
    state.igp_log.push_back(std::move(snapshot));
  }

  const Value& counters = field(doc, "counters");
  state.updates_sent = get_uint(counters, "updates_sent");
  state.best_flips = get_uint(counters, "best_flips");
  state.messages_dropped = get_uint(counters, "messages_dropped");
  state.messages_duplicated = get_uint(counters, "messages_duplicated");
  state.deliveries_voided = get_uint(counters, "deliveries_voided");
  state.eor_sent = get_uint(counters, "eor_sent");
  state.stale_retained = get_uint(counters, "stale_retained");
  state.stale_swept_eor = get_uint(counters, "stale_swept_eor");
  state.stale_swept_expired = get_uint(counters, "stale_swept_expired");
  state.igp_swaps = get_uint(counters, "igp_swaps");
  state.decisions_total = get_uint(counters, "decisions_total");
  state.decisions_empty = get_uint(counters, "decisions_empty");
  state.mrai_deferrals = get_uint(counters, "mrai_deferrals");

  state.decisions_by_rule = get_rules(field(doc, "decisions_by_rule"));
  for (const auto& rules : field(doc, "decisions_by_node").as_array()) {
    state.decisions_by_node.push_back(get_rules(rules));
  }
  state.flips_by_node = get_uints(doc, "flips_by_node");

  for (const auto& entry : field(doc, "flap_log").as_array()) {
    const auto& tuple = get_tuple(entry, 4, "flap_log entry");
    engine::EventEngine::FlapRecord r;
    r.time = tuple[0].as_uint();
    r.node = static_cast<NodeId>(tuple[1].as_uint());
    r.old_best = static_cast<PathId>(tuple[2].as_int());
    r.new_best = static_cast<PathId>(tuple[3].as_int());
    state.flap_log.push_back(r);
  }
  for (const auto& entry : field(doc, "fault_log").as_array()) {
    const auto& tuple = get_tuple(entry, 5, "fault_log entry");
    engine::EventEngine::FaultRecord r;
    r.time = tuple[0].as_uint();
    const std::uint64_t kind = tuple[1].as_uint();
    if (kind > static_cast<std::uint64_t>(engine::FaultKind::kLinkUp)) {
      bad("fault_log entry kind out of range");
    }
    r.kind = static_cast<engine::FaultKind>(kind);
    r.a = static_cast<NodeId>(tuple[2].as_int());
    r.b = static_cast<NodeId>(tuple[3].as_int());
    r.cost = tuple[4].as_int();
    state.fault_log.push_back(r);
  }
  for (const auto& entry : field(doc, "fib_log").as_array()) {
    const auto& tuple = get_tuple(entry, 4, "fib_log entry");
    engine::EventEngine::FibRecord r;
    r.time = tuple[0].as_uint();
    r.node = static_cast<NodeId>(tuple[1].as_uint());
    r.old_path = static_cast<PathId>(tuple[2].as_int());
    r.new_path = static_cast<PathId>(tuple[3].as_int());
    state.fib_log.push_back(r);
  }
  return state;
}

bool save_checkpoint(const std::string& path, const engine::EngineState& state) {
  return util::json::write_file_atomic(path, engine_state_json(state));
}

engine::EngineState load_checkpoint(const std::string& path) {
  std::string error;
  auto state = try_load_checkpoint(path, &error);
  if (!state) throw std::runtime_error("load_checkpoint: " + error);
  return *std::move(state);
}

std::optional<engine::EngineState> try_load_checkpoint(const std::string& path,
                                                       std::string* error) {
  std::string read_error;
  const auto doc = util::json::read_file(path, &read_error);
  if (!doc) {
    if (error != nullptr) *error = read_error;
    return std::nullopt;
  }
  try {
    return parse_engine_state(*doc);
  } catch (const std::runtime_error& e) {
    if (error != nullptr) *error = path + ": " + e.what();
    return std::nullopt;
  }
}

}  // namespace ibgp::ckpt
