#pragma once
// Fundamental identifier and metric types shared by every ibgp module.
//
// The paper (Section 4) works with a node set V of I-BGP speakers inside one
// autonomous system AS0, neighboring autonomous systems AS1..ASm, IGP link
// costs, MED values, and BGP identifiers used as the final selection
// tie-breaker.  We give each of these its own named type so interfaces stay
// self-describing (Core Guidelines I.4).

#include <cstdint>
#include <limits>

namespace ibgp {

/// Index of an I-BGP speaker (a node of the physical/logical graphs).
using NodeId = std::uint32_t;

/// Identifier of an autonomous system (AS0's neighbors AS1..ASm).
using AsId = std::uint32_t;

/// IGP path metric.  Signed 64-bit so sums of link costs can never overflow
/// for any realistic topology and so "infinite"/invalid can be represented.
using Cost = std::int64_t;

/// Multi-Exit-Discriminator attribute value: non-negative, lower preferred.
using Med = std::uint32_t;

/// BGP identifier of a speaker; the route learned from the *lowest* peer
/// identifier wins the final tie-break (selection rule 6).
using BgpId = std::uint32_t;

/// Degree of preference (LOCAL-PREF): higher preferred (selection rule 1).
using LocalPref = std::uint32_t;

/// Unique identifier of an exit path (an E-BGP route injected into AS0).
using PathId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no path".
inline constexpr PathId kNoPath = std::numeric_limits<PathId>::max();

/// Sentinel for an unreachable / undefined IGP metric.
inline constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

}  // namespace ibgp
