#pragma once
// Deterministic pseudo-random number generation.
//
// Everything stochastic in this library (random topologies, random fair
// activation sequences, random message delays, random 3-SAT formulas) is
// driven by these generators so that every experiment is reproducible from a
// single 64-bit seed.  We use splitmix64 for seeding and xoshiro256** as the
// main generator (public-domain algorithms by Blackman & Vigna).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ibgp::util {

/// splitmix64: tiny, fast, passes BigCrush; ideal for turning one seed into
/// a stream of independent seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 256-bit-state generator.  Satisfies the
/// C++ UniformRandomBitGenerator requirements so it can drive <random>
/// distributions as well.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from splitmix64(seed).
  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Unbiased uniform draw from [0, bound) using Lemire's method.
  /// Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform draw from the inclusive range [lo, hi].  Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fisher-Yates shuffle of an arbitrary span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t pick_index(const Container& c) {
    return static_cast<std::size_t>(below(c.size()));
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Derives the i-th child seed of a parent seed; used to give independent
/// randomness to independent sub-experiments.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t index);

}  // namespace ibgp::util
