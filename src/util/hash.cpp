#include "util/hash.hpp"

namespace ibgp::util {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace ibgp::util
