#pragma once
// Small string helpers used by the .topo parser, DIMACS parser and CLI tools.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <cstdint>

namespace ibgp::util {

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Splits on a separator character; empty fields are kept.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Splits on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string_view> split_ws(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Parses a signed 64-bit decimal integer; rejects trailing garbage.
std::optional<std::int64_t> parse_i64(std::string_view text);

/// Parses an unsigned 64-bit decimal integer; rejects trailing garbage.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Parses a double; rejects trailing garbage.
std::optional<double> parse_f64(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

}  // namespace ibgp::util
