#pragma once
// Hashing utilities used for global-state fingerprints.
//
// The oscillation detectors (engine/oscillation.hpp) fingerprint the entire
// routing configuration every step and look for repeats; a strong 64-bit mix
// keeps false positives negligible over the millions of states a sweep can
// visit.

#include <cstdint>
#include <span>
#include <string_view>

namespace ibgp::util {

/// 64-bit FNV-1a over raw bytes.
std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept;

/// 64-bit FNV-1a over a string.
std::uint64_t fnv1a(std::string_view text) noexcept;

/// Strong 64-bit finalizer (murmur3 fmix64).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combiner: fold `value` into accumulator `h`.
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t value) noexcept {
  return mix64(h ^ (value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Incremental fingerprint builder for heterogeneous state.
class Fingerprint {
 public:
  constexpr Fingerprint() = default;

  constexpr Fingerprint& add(std::uint64_t value) noexcept {
    state_ = hash_combine(state_, value);
    return *this;
  }

  Fingerprint& add(std::string_view text) noexcept {
    state_ = hash_combine(state_, fnv1a(text));
    return *this;
  }

  template <typename Iterable>
  Fingerprint& add_range(const Iterable& items) noexcept {
    for (const auto& item : items) add(static_cast<std::uint64_t>(item));
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return mix64(state_); }

 private:
  std::uint64_t state_ = 0x243f6a8885a308d3ULL;  // pi digits
};

}  // namespace ibgp::util
