#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace ibgp::util {

std::size_t resolve_jobs(std::size_t requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  return std::clamp<std::size_t>(requested, 1, kMaxJobs);
}

std::optional<std::size_t> parse_jobs(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) return std::nullopt;
  if (value > kMaxJobs) return std::nullopt;
  return value;
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const std::size_t workers = std::min(jobs, count);
  std::atomic<std::size_t> next{0};
  // First failure by item index, so the rethrown exception is the same one
  // a serial run would have surfaced first.
  std::mutex failure_mutex;
  std::size_t failed_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr failure;

  const auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (i < failed_index) {
          failed_index = i;
          failure = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(work);
  work();
  for (auto& thread : pool) thread.join();
  if (failure) std::rethrow_exception(failure);
}

}  // namespace ibgp::util
