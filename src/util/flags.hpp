#pragma once
// Tiny command-line flag parser for the example programs.
//
// Supports `--name=value`, `--name value`, boolean `--name` /
// `--no-name`, positional arguments, and generated --help text.  Parsing
// errors are reported, not thrown: example binaries print usage and exit.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ibgp::util {

class Flags {
 public:
  /// `program` and `summary` feed the generated help text.
  Flags(std::string program, std::string summary);

  /// Registers flags before parse().  `help` is the one-line description.
  void add_string(std::string name, std::string default_value, std::string help);
  void add_int(std::string name, std::int64_t default_value, std::string help);
  void add_double(std::string name, double default_value, std::string help);
  void add_bool(std::string name, bool default_value, std::string help);

  /// Parses argv.  Returns false (and fills error()) on malformed input or
  /// unknown flags.  `--help` sets help_requested() and returns true.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string_view error() const { return error_; }
  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] std::string_view get_string(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Entry {
    Kind kind;
    std::string value;     // canonical textual value
    std::string fallback;  // default, for help text
    std::string help;
  };

  bool assign(const std::string& name, std::string_view value);
  const Entry* find(std::string_view name) const;

  std::string program_;
  std::string summary_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace ibgp::util
