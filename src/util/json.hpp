#pragma once
// Minimal JSON document builder + reader for machine-readable artifacts.
//
// The BENCH_*.json trajectory files need a stable, diffable serialization:
// object keys keep insertion order, numbers print with no locale or
// precision surprises (integers exactly, doubles via shortest round-trip),
// and dump() emits deterministic two-space-indented text.  The checkpoint
// layer (ibgp-ckpt-v1, sweep journals) additionally needs to read its own
// output back, so a strict RFC 8259 parser and typed accessors live here
// too — the parser accepts exactly what the builder emits (plus arbitrary
// standard JSON) and rejects everything else with a position diagnostic.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ibgp::util::json {

class Value;

/// JSON array with append-only construction.
using Array = std::vector<Value>;
/// JSON object preserving insertion order (stable dumps for diffing).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Value(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(unsigned int u) : Value(static_cast<std::uint64_t>(u)) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(std::string_view s) : Value(std::string(s)) {}
  Value(const char* s) : Value(std::string(s)) {}
  Value(Array a) : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  /// Serializes with two-space indentation and a trailing newline at the
  /// top level, so dumps are stable `diff` targets.
  [[nodiscard]] std::string dump() const;

  /// Single-line serialization (no indentation, no trailing newline) for
  /// line-oriented formats such as the ibgp-trace-v1 JSONL stream.
  [[nodiscard]] std::string dump_compact() const;

  // --- reading back (used by checkpoint restore and journal resume) ---

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }

  /// Typed reads.  Integer accessors accept any numeric kind whose value is
  /// exactly representable in the target type; everything else throws
  /// std::runtime_error naming the expected type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup (first match in insertion order); nullptr when
  /// absent or when this value is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Object member lookup that throws std::runtime_error when the key is
  /// missing — restore paths want loud failures, not defaults.
  [[nodiscard]] const Value& at(std::string_view key) const;

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject,
  };

  void write(std::string& out, int indent) const;
  void write_compact(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Quotes and escapes a string per RFC 8259.
std::string escape(std::string_view text);

/// Writes `value.dump()` to `path`.  Returns false (and leaves no partial
/// file guarantee) when the file cannot be opened or written.
bool write_file(const std::string& path, const Value& value);

/// Crash-consistent write: dumps to `path + ".tmp"`, writes with short-write
/// and EINTR retry, fsyncs the temp file, renames over `path`, then fsyncs
/// the containing directory so the rename itself is durable.  A reader
/// therefore only ever observes the old complete file or the new complete
/// file, never a torn write — and after a successful return the new file
/// survives power loss, the property the checkpoint/journal layer's
/// kill-at-any-instant guarantee rests on.
bool write_file_atomic(const std::string& path, const Value& value);

/// Parser knobs for hostile input (wire ingest, fuzz corpora).  The
/// defaults match what `parse(text, error)` always enforced, plus
/// duplicate-key rejection: every internal writer emits unique keys, so a
/// duplicate can only come from a corrupt or adversarial document and is
/// rejected loudly rather than silently shadowed.
struct ParseOptions {
  std::size_t max_depth = 96;         ///< max container nesting before "nesting too deep"
  bool reject_duplicate_keys = true;  ///< duplicate object key -> parse error
};

/// Parses a complete JSON document.  On failure returns std::nullopt and,
/// when `error` is non-null, stores a "offset N: reason" diagnostic.
/// Trailing garbage after the document is an error.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Same, with explicit limits — the wire ingest path parses untrusted lines
/// with a much smaller depth bound than checkpoint documents need.
std::optional<Value> parse(std::string_view text, const ParseOptions& options,
                           std::string* error = nullptr);

/// Reads and parses a whole file.  std::nullopt on open/read/parse failure
/// (diagnostic includes the path when `error` is non-null).
std::optional<Value> read_file(const std::string& path, std::string* error = nullptr);

}  // namespace ibgp::util::json
