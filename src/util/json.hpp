#pragma once
// Minimal JSON document builder for machine-readable bench output.
//
// The BENCH_*.json trajectory files need a stable, diffable serialization:
// object keys keep insertion order, numbers print with no locale or
// precision surprises (integers exactly, doubles via shortest round-trip),
// and dump() emits deterministic two-space-indented text.  Only writing is
// supported — the repo produces these files, CI and external tooling
// consume them — so there is deliberately no parser here.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ibgp::util::json {

class Value;

/// JSON array with append-only construction.
using Array = std::vector<Value>;
/// JSON object preserving insertion order (stable dumps for diffing).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Value(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(unsigned int u) : Value(static_cast<std::uint64_t>(u)) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(std::string_view s) : Value(std::string(s)) {}
  Value(const char* s) : Value(std::string(s)) {}
  Value(Array a) : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  /// Serializes with two-space indentation and a trailing newline at the
  /// top level, so dumps are stable `diff` targets.
  [[nodiscard]] std::string dump() const;

  /// Single-line serialization (no indentation, no trailing newline) for
  /// line-oriented formats such as the ibgp-trace-v1 JSONL stream.
  [[nodiscard]] std::string dump_compact() const;

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject,
  };

  void write(std::string& out, int indent) const;
  void write_compact(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Quotes and escapes a string per RFC 8259.
std::string escape(std::string_view text);

/// Writes `value.dump()` to `path`.  Returns false (and leaves no partial
/// file guarantee) when the file cannot be opened or written.
bool write_file(const std::string& path, const Value& value);

}  // namespace ibgp::util::json
