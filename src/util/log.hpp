#pragma once
// Minimal leveled logger.
//
// The engines can narrate every activation / message delivery when tracing a
// counterexample; benches and tests run silent by default.  A single global
// level (set explicitly by main programs) keeps the interface trivial; sinks
// allow tests to capture output.
//
// Thread safety: the parallel sweep runner (util/parallel, fault/sweep) runs
// simulation cells on worker threads, and any cell may log.  The level is an
// atomic (so the disabled-level fast path stays a single relaxed load) and
// sink replacement + writes share a mutex, so concurrent log lines are
// serialized whole — never interleaved mid-line — and never race a
// set_sink().  Configure level and sink from the main thread before fanning
// out; mutating them mid-sweep is safe but applies to in-flight lines
// nondeterministically.

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ibgp::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the fixed-width display name of a level ("TRACE", "DEBUG", ...).
std::string_view log_level_name(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive, so
/// `info` and `INFO` are interchangeable in env vars and flags).  Returns
/// kInfo for unrecognized input.
LogLevel parse_log_level(std::string_view text);

/// Whole-line output sink: the single write path shared by the logger and
/// the observability layer (obs::TraceWriter has the same shape).  Lines
/// arrive without a trailing newline.
using LineSink = std::function<void(std::string_view line)>;

/// The default LineSink: one line to stderr.
LineSink stderr_line_sink();

/// Applies IBGP_LOG_LEVEL from the environment (case-insensitive level
/// names via parse_log_level); leaves the level untouched when the variable
/// is unset or empty.  Returns the level in force afterwards.  Call from
/// main() before fanning out workers.
LogLevel init_log_level_from_env();

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Global logger instance.  Safe to use from sweep worker threads: see
  /// the thread-safety note at the top of this header.
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Replaces the output sink (default: formatted lines through
  /// stderr_line_sink()).  Pass nullptr to restore the default sink.
  void set_sink(Sink sink);

  /// Routes formatted "[LEVEL] message" lines through a LineSink — the
  /// single write path shared with the rest of the toolkit.  Pass nullptr
  /// to restore the default stderr_line_sink().
  void set_line_sink(LineSink sink);

  void write(LogLevel level, std::string_view message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  // guards sink_ (replacement and invocation)
  Sink sink_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ibgp::util

// Streaming log macros; the stream expression is not evaluated when the
// level is disabled.
#define IBGP_LOG(level)                                     \
  if (!::ibgp::util::Logger::instance().enabled(level)) {}  \
  else ::ibgp::util::detail::LogLine(level)

#define IBGP_TRACE() IBGP_LOG(::ibgp::util::LogLevel::kTrace)
#define IBGP_DEBUG() IBGP_LOG(::ibgp::util::LogLevel::kDebug)
#define IBGP_INFO() IBGP_LOG(::ibgp::util::LogLevel::kInfo)
#define IBGP_WARN() IBGP_LOG(::ibgp::util::LogLevel::kWarn)
#define IBGP_ERROR() IBGP_LOG(::ibgp::util::LogLevel::kError)
