#include "util/rng.hpp"

#include <bit>

namespace ibgp::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // A zero state would be a fixed point; splitmix64 output is never all-zero
  // across four draws in practice, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Xoshiro256::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Xoshiro256::uniform01() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t index) {
  SplitMix64 sm(parent ^ (0xa0761d6478bd642fULL + index * 0xe7037ed1a0b428dbULL));
  sm.next();
  return sm.next();
}

}  // namespace ibgp::util
