#pragma once
// Deterministic fan-out over independent work items.
//
// The sweeps in this repo (fault campaigns, ensemble statistics, seeded
// event-engine trials) are embarrassingly parallel: every cell owns its
// engine and its RNG, and the only shared state is the result slot the
// cell writes.  parallel_for() runs `fn(i)` for i in [0, count) across a
// small worker pool; callers keep determinism by making each item a pure
// function of its index (derive the item's seed from the index, never from
// a shared generator) and by aggregating results in index order afterwards.
// Under that discipline a --jobs N run is byte-identical to --jobs 1.
//
// Scheduling is dynamic (an atomic work counter), so which *thread* runs an
// item is nondeterministic — only the item->result mapping matters, and
// that is index-keyed.  Exceptions thrown by items are captured; the first
// one (by item index) is rethrown on the calling thread after all workers
// join, so a throwing item cannot leak detached threads.

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>

namespace ibgp::util {

/// Upper bound resolve_jobs() clamps to.  Requests beyond this are almost
/// always a mistyped flag (e.g. "--jobs 88888"); spawning that many threads
/// would thrash or abort rather than help.
inline constexpr std::size_t kMaxJobs = 1024;

/// Resolves a --jobs request: 0 means "one per hardware thread" (at least
/// 1); any other value is clamped into [1, kMaxJobs].
std::size_t resolve_jobs(std::size_t requested);

/// Strict parser for --jobs flag values: accepts only a non-negative base-10
/// integer with no sign, suffix, or embedded garbage, and rejects values
/// beyond kMaxJobs.  Returns std::nullopt on any violation so CLIs can fail
/// loudly instead of silently treating "-4" or "abc" as 0 (= all cores).
std::optional<std::size_t> parse_jobs(std::string_view text);

/// Runs fn(i) for every i in [0, count), using up to `jobs` threads
/// (`jobs` <= 1 runs inline on the calling thread, spawning nothing).
/// Blocks until every item completed.  If items throw, the exception of
/// the lowest-indexed throwing item is rethrown after all workers join.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ibgp::util
