#include "util/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ibgp::util::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; null is the honest spelling
    out += "null";
    return;
  }
  std::array<char, 32> buf;
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  if (ec == std::errc{}) {
    out.append(buf.data(), end);
  } else {
    out += "0";
  }
}

void indent_to(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Value::write(std::string& out, int indent) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_number(out, double_); break;
    case Kind::kString: out += escape(string_); break;
    case Kind::kArray: {
      if (!array_ || array_->empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < array_->size(); ++i) {
        indent_to(out, indent + 1);
        (*array_)[i].write(out, indent + 1);
        out += i + 1 < array_->size() ? ",\n" : "\n";
      }
      indent_to(out, indent);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (!object_ || object_->empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < object_->size(); ++i) {
        indent_to(out, indent + 1);
        out += escape((*object_)[i].first);
        out += ": ";
        (*object_)[i].second.write(out, indent + 1);
        out += i + 1 < object_->size() ? ",\n" : "\n";
      }
      indent_to(out, indent);
      out += '}';
      break;
    }
  }
}

void Value::write_compact(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_number(out, double_); break;
    case Kind::kString: out += escape(string_); break;
    case Kind::kArray: {
      out += '[';
      if (array_) {
        for (std::size_t i = 0; i < array_->size(); ++i) {
          if (i > 0) out += ", ";
          (*array_)[i].write_compact(out);
        }
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      if (object_) {
        for (std::size_t i = 0; i < object_->size(); ++i) {
          if (i > 0) out += ", ";
          out += escape((*object_)[i].first);
          out += ": ";
          (*object_)[i].second.write_compact(out);
        }
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

std::string Value::dump_compact() const {
  std::string out;
  write_compact(out);
  return out;
}

bool write_file(const std::string& path, const Value& value) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::string text = value.dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return (std::fclose(file) == 0) && ok;
}

}  // namespace ibgp::util::json
