#include "util/json.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace ibgp::util::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; null is the honest spelling
    out += "null";
    return;
  }
  std::array<char, 32> buf;
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  if (ec == std::errc{}) {
    out.append(buf.data(), end);
  } else {
    out += "0";
  }
}

void indent_to(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Value::write(std::string& out, int indent) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_number(out, double_); break;
    case Kind::kString: out += escape(string_); break;
    case Kind::kArray: {
      if (!array_ || array_->empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < array_->size(); ++i) {
        indent_to(out, indent + 1);
        (*array_)[i].write(out, indent + 1);
        out += i + 1 < array_->size() ? ",\n" : "\n";
      }
      indent_to(out, indent);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (!object_ || object_->empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < object_->size(); ++i) {
        indent_to(out, indent + 1);
        out += escape((*object_)[i].first);
        out += ": ";
        (*object_)[i].second.write(out, indent + 1);
        out += i + 1 < object_->size() ? ",\n" : "\n";
      }
      indent_to(out, indent);
      out += '}';
      break;
    }
  }
}

void Value::write_compact(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_number(out, double_); break;
    case Kind::kString: out += escape(string_); break;
    case Kind::kArray: {
      out += '[';
      if (array_) {
        for (std::size_t i = 0; i < array_->size(); ++i) {
          if (i > 0) out += ", ";
          (*array_)[i].write_compact(out);
        }
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      if (object_) {
        for (std::size_t i = 0; i < object_->size(); ++i) {
          if (i > 0) out += ", ";
          out += escape((*object_)[i].first);
          out += ": ";
          (*object_)[i].second.write_compact(out);
        }
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

std::string Value::dump_compact() const {
  std::string out;
  write_compact(out);
  return out;
}

bool write_file(const std::string& path, const Value& value) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::string text = value.dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return (std::fclose(file) == 0) && ok;
}

namespace {

// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t got = ::write(fd, data + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

int open_retry(const char* path, int flags, mode_t mode = 0) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

bool fsync_retry(int fd) {
  int rc = -1;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  return rc == 0;
}

// fsync the directory holding `path` so a completed rename survives power
// loss.  Best effort: some filesystems refuse O_RDONLY directory fds, and a
// failure here leaves the file itself already complete and renamed.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = open_retry(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  fsync_retry(fd);
  ::close(fd);
}

}  // namespace

bool write_file_atomic(const std::string& path, const Value& value) {
  const std::string tmp = path + ".tmp";
  const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::string text = value.dump();
  bool ok = write_all(fd, text.data(), text.size());
  ok = fsync_retry(fd) && ok;
  ok = (::close(fd) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

// --- typed accessors ---

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) type_error("a bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint:
      if (uint_ > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
        type_error("an int64-representable number");
      return static_cast<std::int64_t>(uint_);
    case Kind::kDouble: {
      const auto i = static_cast<std::int64_t>(double_);
      if (static_cast<double>(i) != double_) type_error("an integral number");
      return i;
    }
    default: type_error("a number");
  }
}

std::uint64_t Value::as_uint() const {
  switch (kind_) {
    case Kind::kUint: return uint_;
    case Kind::kInt:
      if (int_ < 0) type_error("a non-negative number");
      return static_cast<std::uint64_t>(int_);
    case Kind::kDouble: {
      if (double_ < 0) type_error("a non-negative number");
      const auto u = static_cast<std::uint64_t>(double_);
      if (static_cast<double>(u) != double_) type_error("an integral number");
      return u;
    }
    default: type_error("a number");
  }
}

double Value::as_double() const {
  switch (kind_) {
    case Kind::kDouble: return double_;
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    default: type_error("a number");
  }
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) type_error("a string");
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray || !array_) {
    static const Array kEmpty;
    if (kind_ == Kind::kArray) return kEmpty;
    type_error("an array");
  }
  return *array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject || !object_) {
    static const Object kEmpty;
    if (kind_ == Kind::kObject) return kEmpty;
    type_error("an object");
  }
  return *object_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject || !object_) return nullptr;
  for (const auto& [name, value] : *object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

// --- parser ---

namespace {

// Strict RFC 8259 recursive-descent parser.  Depth-bounded so corrupt
// checkpoints cannot blow the stack.
class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  std::optional<Value> run(std::string* error) {
    try {
      skip_ws();
      Value v = parse_value(0);
      skip_ws();
      if (pos_ != text_.size()) fail("trailing garbage after document");
      return v;
    } catch (const std::runtime_error& e) {
      if (error != nullptr) *error = e.what();
      return std::nullopt;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth > options_.max_depth) fail("nesting too deep");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case '"': return Value(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const unsigned code = parse_hex4();
          append_utf8(out, decode_surrogate(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  unsigned decode_surrogate(unsigned code) {
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
        fail("unpaired high surrogate");
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      return 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    if (code >= 0xDC00 && code <= 0xDFFF) fail("unpaired low surrogate");
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) fail("bad number");
    const std::size_t first_digit = text_[start] == '-' ? start + 1 : start;
    if (pos_ - first_digit > 1 && text_[first_digit] == '0')
      fail("leading zero in number");
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == frac) fail("bad number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == exp) fail("bad number");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      if (token[0] == '-') {
        std::int64_t i = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), i);
        if (ec == std::errc{} && p == token.end()) return Value(i);
      } else {
        std::uint64_t u = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), u);
        if (ec == std::errc{} && p == token.end()) return Value(u);
      }
      // Out-of-range integers degrade to double, matching common readers.
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(token.begin(), token.end(), d);
    if (ec != std::errc{} || p != token.end()) fail("bad number");
    return Value(d);
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      out.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or ']'");
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (options_.reject_duplicate_keys) {
        for (const auto& [name, ignored] : out) {
          if (name == key) fail("duplicate object key \"" + key + "\"");
        }
      }
      skip_ws();
      expect(':');
      skip_ws();
      out.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text, ParseOptions{}).run(error);
}

std::optional<Value> parse(std::string_view text, const ParseOptions& options,
                           std::string* error) {
  return Parser(text, options).run(error);
}

std::optional<Value> read_file(const std::string& path, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  std::array<char, 65536> buf;
  std::size_t got = 0;
  while ((got = std::fread(buf.data(), 1, buf.size(), file)) > 0) {
    text.append(buf.data(), got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    if (error != nullptr) *error = "read error on " + path;
    return std::nullopt;
  }
  std::string parse_error;
  auto value = parse(text, &parse_error);
  if (!value && error != nullptr) *error = path + ": " + parse_error;
  return value;
}

}  // namespace ibgp::util::json
