#include "util/flags.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace ibgp::util {

Flags::Flags(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Flags::add_string(std::string name, std::string default_value, std::string help) {
  order_.push_back(name);
  entries_[std::move(name)] =
      Entry{Kind::kString, default_value, default_value, std::move(help)};
}

void Flags::add_int(std::string name, std::int64_t default_value, std::string help) {
  order_.push_back(name);
  const std::string text = std::to_string(default_value);
  entries_[std::move(name)] = Entry{Kind::kInt, text, text, std::move(help)};
}

void Flags::add_double(std::string name, double default_value, std::string help) {
  order_.push_back(name);
  std::ostringstream oss;
  oss << default_value;
  entries_[std::move(name)] = Entry{Kind::kDouble, oss.str(), oss.str(), std::move(help)};
}

void Flags::add_bool(std::string name, bool default_value, std::string help) {
  order_.push_back(name);
  const std::string text = default_value ? "true" : "false";
  entries_[std::move(name)] = Entry{Kind::kBool, text, text, std::move(help)};
}

bool Flags::assign(const std::string& name, std::string_view value) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    error_ = "unknown flag: --" + name;
    return false;
  }
  Entry& entry = it->second;
  switch (entry.kind) {
    case Kind::kString:
      entry.value = std::string(value);
      return true;
    case Kind::kInt:
      if (!parse_i64(value)) {
        error_ = "flag --" + name + " expects an integer, got '" + std::string(value) + "'";
        return false;
      }
      entry.value = std::string(trim(value));
      return true;
    case Kind::kDouble:
      if (!parse_f64(value)) {
        error_ = "flag --" + name + " expects a number, got '" + std::string(value) + "'";
        return false;
      }
      entry.value = std::string(trim(value));
      return true;
    case Kind::kBool: {
      const std::string lower = to_lower(trim(value));
      if (lower == "true" || lower == "1" || lower == "yes") {
        entry.value = "true";
      } else if (lower == "false" || lower == "0" || lower == "no") {
        entry.value = "false";
      } else {
        error_ = "flag --" + name + " expects a boolean, got '" + std::string(value) + "'";
        return false;
      }
      return true;
    }
  }
  return false;
}

const Flags::Entry* Flags::find(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    if (!value) {
      const Entry* entry = find(name);
      if (entry == nullptr && starts_with(name, "no-")) {
        const std::string positive = name.substr(3);
        const Entry* pos_entry = find(positive);
        if (pos_entry != nullptr && pos_entry->kind == Kind::kBool) {
          if (!assign(positive, "false")) return false;
          continue;
        }
      }
      if (entry == nullptr) {
        error_ = "unknown flag: --" + name;
        return false;
      }
      if (entry->kind == Kind::kBool) {
        if (!assign(name, "true")) return false;
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag --" + name + " expects a value";
        return false;
      }
      value = std::string(argv[++i]);
    }
    if (!assign(name, *value)) return false;
  }
  return true;
}

std::string Flags::help_text() const {
  std::ostringstream oss;
  oss << program_ << " — " << summary_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Entry& entry = entries_.at(name);
    oss << "  --" << name << " (default: " << entry.fallback << ")\n      " << entry.help
        << "\n";
  }
  oss << "  --help\n      Show this message.\n";
  return oss.str();
}

std::string_view Flags::get_string(std::string_view name) const {
  const Entry* entry = find(name);
  return entry != nullptr ? std::string_view(entry->value) : std::string_view{};
}

std::int64_t Flags::get_int(std::string_view name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) return 0;
  return parse_i64(entry->value).value_or(0);
}

double Flags::get_double(std::string_view name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) return 0.0;
  return parse_f64(entry->value).value_or(0.0);
}

bool Flags::get_bool(std::string_view name) const {
  const Entry* entry = find(name);
  return entry != nullptr && entry->value == "true";
}

}  // namespace ibgp::util
