#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace ibgp::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::optional<std::int64_t> parse_i64(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  text = trim(text);
  if (text.empty() || text.front() == '-') return std::nullopt;
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> parse_f64(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+.
  double value = 0.0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace ibgp::util
