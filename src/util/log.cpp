#include "util/log.hpp"

#include <cstdio>

namespace ibgp::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) {
  auto eq = [&](std::string_view name) {
    if (text.size() != name.size()) return false;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char a = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
      if (a != name[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::kTrace;
  if (eq("debug")) return LogLevel::kDebug;
  if (eq("info")) return LogLevel::kInfo;
  if (eq("warn")) return LogLevel::kWarn;
  if (eq("error")) return LogLevel::kError;
  if (eq("off")) return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level).data(),
                 static_cast<int>(message.size()), message.data());
  };
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view message) {
      std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level).data(),
                   static_cast<int>(message.size()), message.data());
    };
  }
}

void Logger::write(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_(level, message);
}

}  // namespace ibgp::util
