#include "util/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ibgp::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) {
  auto eq = [&](std::string_view name) {
    if (text.size() != name.size()) return false;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char a = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
      if (a != name[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::kTrace;
  if (eq("debug")) return LogLevel::kDebug;
  if (eq("info")) return LogLevel::kInfo;
  if (eq("warn")) return LogLevel::kWarn;
  if (eq("error")) return LogLevel::kError;
  if (eq("off")) return LogLevel::kOff;
  return LogLevel::kInfo;
}

LineSink stderr_line_sink() {
  return [](std::string_view line) {
    std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()), line.data());
  };
}

LogLevel init_log_level_from_env() {
  Logger& logger = Logger::instance();
  if (const char* env = std::getenv("IBGP_LOG_LEVEL");
      env != nullptr && *env != '\0') {
    logger.set_level(parse_log_level(env));
  }
  return logger.level();
}

namespace {

/// Formats "[LEVEL] message" and hands the whole line to `out` — the one
/// place log records become text.
Logger::Sink line_sink_adapter(LineSink out) {
  return [out = std::move(out)](LogLevel level, std::string_view message) {
    std::string line;
    line.reserve(message.size() + 8);
    line += '[';
    line += log_level_name(level);
    line += "] ";
    line += message;
    out(line);
  };
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { sink_ = line_sink_adapter(stderr_line_sink()); }

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink ? std::move(sink) : line_sink_adapter(stderr_line_sink());
}

void Logger::set_line_sink(LineSink sink) {
  set_sink(line_sink_adapter(sink ? std::move(sink) : stderr_line_sink()));
}

void Logger::write(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_(level, message);
}

}  // namespace ibgp::util
