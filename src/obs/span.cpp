#include "obs/span.hpp"

#include <algorithm>
#include <cmath>

namespace ibgp::obs {

const std::vector<std::int64_t>& span_bounds_ns() {
  // Exponential ladder, x4 per step: 100ns .. ~1.6s finite bounds.  Wide
  // enough that delivery (~us) and WAL fsync (~ms) share one layout.
  static const std::vector<std::int64_t> bounds = [] {
    std::vector<std::int64_t> out;
    for (std::int64_t bound = 100; bound <= 2'000'000'000; bound *= 4) {
      out.push_back(bound);
    }
    return out;
  }();
  return bounds;
}

Histogram& span_histogram(MetricsRegistry& registry, std::string_view name) {
  return registry.histogram(name, span_bounds_ns(), MetricClass::kVolatile);
}

double histogram_quantile(const std::vector<std::int64_t>& bounds,
                          const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t count : counts) total += count;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no finite upper edge; report the last bound.
      return static_cast<double>(bounds.back());
    }
    const double upper = static_cast<double>(bounds[i]);
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) return upper;
    const double before = static_cast<double>(cumulative - in_bucket);
    const double frac = (rank - before) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return static_cast<double>(bounds.back());
}

double histogram_quantile(const Histogram& histogram, double q) {
  return histogram_quantile(histogram.bounds(), histogram.counts(), q);
}

util::json::Value span_summary_json(const Histogram& histogram) {
  const auto counts = histogram.counts();
  const auto& bounds = histogram.bounds();
  util::json::Object out;
  out.emplace_back("count", histogram.total());
  out.emplace_back("sum_ns", histogram.sum());
  out.emplace_back("p50_ns", histogram_quantile(bounds, counts, 0.50));
  out.emplace_back("p95_ns", histogram_quantile(bounds, counts, 0.95));
  out.emplace_back("p99_ns", histogram_quantile(bounds, counts, 0.99));
  return util::json::Value(std::move(out));
}

}  // namespace ibgp::obs
