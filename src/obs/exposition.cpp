#include "obs/exposition.hpp"

#include <cctype>
#include <string>

namespace ibgp::obs {

std::string exposition_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool valid = alpha || c == '_' || c == ':' || (digit && i > 0);
    out.push_back(valid ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string exposition_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void append_line(std::string& out, const std::string& name,
                 const std::string& labels, const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string render_exposition(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& sample : samples) {
    const std::string base = exposition_name(sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter: {
        const std::string name = base + "_total";
        out += "# TYPE " + name + " counter\n";
        append_line(out, name, "", std::to_string(sample.counter_value));
        break;
      }
      case MetricSample::Kind::kGauge: {
        out += "# TYPE " + base + " gauge\n";
        append_line(out, base, "", std::to_string(sample.gauge_value));
        break;
      }
      case MetricSample::Kind::kHistogram: {
        out += "# TYPE " + base + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          if (i < sample.counts.size()) cumulative += sample.counts[i];
          const std::string le =
              exposition_escape_label(std::to_string(sample.bounds[i]));
          append_line(out, base + "_bucket", "le=\"" + le + "\"",
                      std::to_string(cumulative));
        }
        // +Inf bucket = everything, must equal _count.
        std::uint64_t all = 0;
        for (const std::uint64_t count : sample.counts) all += count;
        append_line(out, base + "_bucket", "le=\"+Inf\"", std::to_string(all));
        append_line(out, base + "_sum", "", std::to_string(sample.sum));
        append_line(out, base + "_count", "", std::to_string(all));
        break;
      }
    }
  }
  return out;
}

}  // namespace ibgp::obs
