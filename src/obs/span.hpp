#pragma once
// Scoped profiler spans feeding volatile MetricsRegistry histograms.
//
// A Span is an RAII timer: construction reads the monotonic clock, the
// destructor observes the elapsed nanoseconds into a Histogram.  The sink
// is a plain pointer and the *null sink is the off switch*: a Span built
// with nullptr never touches the clock — the whole body is one branch —
// so instrumented hot paths cost nothing measurable when profiling is
// disabled, the same compile-out-by-data discipline the provenance-sink
// specialization in bgp/selection.cpp uses (the decisions count and the
// metrics fingerprint stay bit-identical with profiling off).
//
// Span histograms are always registered kVolatile: wall time is schedule-
// and host-dependent by nature and must never enter a fingerprint.  The
// shared bucket layout (span_bounds_ns: exponential, ~100ns..1s) makes
// every span histogram renderable by the same exposition path and
// summarizable by the same quantile estimator.
//
// Nesting: spans are independent timers — a Span opened inside another
// span's extent records its own (inner) elapsed time into its own
// histogram; the outer span's sample includes the inner's.  Aggregation
// is therefore per-histogram, not per-stack: sum(outer) >= sum(inner)
// when the inner site only runs inside the outer one.

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace ibgp::obs {

/// The shared bucket layout for span histograms: exponential nanosecond
/// bounds from 100ns to 1s (plus the implicit overflow bucket).
const std::vector<std::int64_t>& span_bounds_ns();

/// Registers (or fetches) a volatile histogram with the span bucket layout.
Histogram& span_histogram(MetricsRegistry& registry, std::string_view name);

/// Scoped monotonic timer.  Null sink: no clock read, no observation.
class Span {
 public:
  explicit Span(Histogram* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Span() {
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->observe(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// Prometheus-style quantile estimate from cumulative bucket counts:
/// linear interpolation inside the bucket holding the q-th sample, the
/// last finite bound for samples in the overflow bucket.  Returns 0 when
/// the histogram is empty.  `q` in [0, 1].
double histogram_quantile(const std::vector<std::int64_t>& bounds,
                          const std::vector<std::uint64_t>& counts, double q);
double histogram_quantile(const Histogram& histogram, double q);

/// {"count": N, "sum_ns": S, "p50_ns": ..., "p95_ns": ..., "p99_ns": ...}
/// — the summary object sweep/bench volatile JSON carries per span.
util::json::Value span_summary_json(const Histogram& histogram);

}  // namespace ibgp::obs
