#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace ibgp::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::logic_error("histogram needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i - 1] >= bounds_[i]) {
      throw std::logic_error("histogram bounds must be strictly increasing");
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(std::int64_t sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name) {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name, MetricClass metric_class) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name)) {
    if (entry->kind != Kind::kCounter || entry->metric_class != metric_class) {
      throw std::logic_error("metric re-registered with a different kind/class: " +
                             std::string(name));
    }
    return *entry->counter;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = Kind::kCounter;
  entry->metric_class = metric_class;
  entry->counter = std::unique_ptr<Counter>(new Counter());
  Counter& out = *entry->counter;
  entries_.push_back(std::move(entry));
  return out;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name)) {
    if (entry->kind != Kind::kGauge) {
      throw std::logic_error("metric re-registered with a different kind: " +
                             std::string(name));
    }
    return *entry->gauge;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = Kind::kGauge;
  entry->metric_class = MetricClass::kVolatile;
  entry->gauge = std::unique_ptr<Gauge>(new Gauge());
  Gauge& out = *entry->gauge;
  entries_.push_back(std::move(entry));
  return out;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::int64_t> bounds,
                                      MetricClass metric_class) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name)) {
    if (entry->kind != Kind::kHistogram || entry->metric_class != metric_class ||
        entry->histogram->bounds() != bounds) {
      throw std::logic_error("metric re-registered with different kind/class/bounds: " +
                             std::string(name));
    }
    return *entry->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = Kind::kHistogram;
  entry->metric_class = metric_class;
  entry->histogram = std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  Histogram& out = *entry->histogram;
  entries_.push_back(std::move(entry));
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = find(name);
  if (entry == nullptr || entry->kind != Kind::kCounter) return 0;
  return entry->counter->value();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->value_.store(0, std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        entry->gauge->value_.store(0, std::memory_order_relaxed);
        break;
      case Kind::kHistogram: {
        Histogram& h = *entry->histogram;
        for (std::size_t i = 0; i <= h.bounds_.size(); ++i) {
          h.counts_[i].store(0, std::memory_order_relaxed);
        }
        h.total_.store(0, std::memory_order_relaxed);
        h.sum_.store(0, std::memory_order_relaxed);
        break;
      }
    }
  }
}

namespace {

util::json::Value histogram_json(const Histogram& histogram) {
  util::json::Array le;
  for (const std::int64_t bound : histogram.bounds()) le.emplace_back(bound);
  util::json::Array counts;
  for (const std::uint64_t count : histogram.counts()) counts.emplace_back(count);
  util::json::Object out;
  out.emplace_back("le", std::move(le));
  out.emplace_back("counts", std::move(counts));
  out.emplace_back("total", histogram.total());
  out.emplace_back("sum", histogram.sum());
  return util::json::Value(std::move(out));
}

}  // namespace

util::json::Object MetricsRegistry::deterministic_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::json::Object out;
  for (const auto& entry : entries_) {
    if (entry->metric_class != MetricClass::kDeterministic) continue;
    switch (entry->kind) {
      case Kind::kCounter:
        out.emplace_back(entry->name, entry->counter->value());
        break;
      case Kind::kHistogram:
        out.emplace_back(entry->name, histogram_json(*entry->histogram));
        break;
      case Kind::kGauge:
        break;  // gauges are always volatile
    }
  }
  return out;
}

util::json::Object MetricsRegistry::volatile_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::json::Object out;
  for (const auto& entry : entries_) {
    if (entry->metric_class != MetricClass::kVolatile) continue;
    switch (entry->kind) {
      case Kind::kCounter:
        out.emplace_back(entry->name, entry->counter->value());
        break;
      case Kind::kGauge:
        out.emplace_back(entry->name, entry->gauge->value());
        break;
      case Kind::kHistogram:
        out.emplace_back(entry->name, histogram_json(*entry->histogram));
        break;
    }
  }
  return out;
}

util::json::Value MetricsRegistry::json() const {
  util::json::Object doc;
  doc.emplace_back("schema", "ibgp-metrics-v1");
  doc.emplace_back("deterministic", deterministic_json());
  doc.emplace_back("volatile", volatile_json());
  return util::json::Value(std::move(doc));
}

std::uint64_t MetricsRegistry::fingerprint() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::Fingerprint fp;
  for (const auto& entry : entries_) {
    if (entry->metric_class != MetricClass::kDeterministic) continue;
    fp.add(entry->name);
    fp.add(static_cast<std::uint64_t>(entry->kind));
    switch (entry->kind) {
      case Kind::kCounter:
        fp.add(entry->counter->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        for (const std::int64_t bound : h.bounds()) {
          fp.add(static_cast<std::uint64_t>(bound));
        }
        for (const std::uint64_t count : h.counts()) fp.add(count);
        fp.add(h.total());
        fp.add(static_cast<std::uint64_t>(h.sum()));
        break;
      }
      case Kind::kGauge:
        break;
    }
  }
  return fp.value();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.metric_class = entry->metric_class;
    switch (entry->kind) {
      case Kind::kCounter:
        sample.kind = MetricSample::Kind::kCounter;
        sample.counter_value = entry->counter->value();
        break;
      case Kind::kGauge:
        sample.kind = MetricSample::Kind::kGauge;
        sample.gauge_value = entry->gauge->value();
        break;
      case Kind::kHistogram:
        sample.kind = MetricSample::Kind::kHistogram;
        sample.bounds = entry->histogram->bounds();
        sample.counts = entry->histogram->counts();
        sample.total = entry->histogram->total();
        sample.sum = entry->histogram->sum();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace ibgp::obs
