#pragma once
// Causal propagation DAG over an ibgp-trace-v2 stream, and blame-chain
// extraction for sustained oscillations.
//
// v2 records carry "lid" (the engine event seq being processed) and "pid"
// (the seq of the event that caused it; absent on injection roots), so the
// stream encodes a DAG: every UPDATE delivery points at the delivery whose
// processing sent it, an "mrai-flush" relay points at the delivery that
// scheduled it, and decisions join via their triggering lid.  pid < lid by
// construction, so the graph is acyclic per run even while the *route
// system* oscillates forever — an orbit shows up as an infinite causal
// chain whose hop signatures repeat, not as a graph cycle.
//
// A blame chain makes that repetition explicit: starting from a node's most
// recent best-route flip, walk pid links backward through the updates that
// sustained it, label each hop with (session, path, announce, decisive
// rule), and report the smallest period with which the hop signatures
// repeat.  For the paper's Fig 3 that names the exact reflected
// advertisements bouncing B between r3/r4 and C between r5/r6 — the causal
// counterpart of trace_inspect's periodicity-only orbit census.
//
// Consumption is forward-compatible by construction: records whose "ev" is
// not recognized are skipped, the discipline v2+ readers owe v3.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace ibgp::obs {

/// One causal hop: an UPDATE delivered on session from->to that triggered a
/// decision at `to`.  `rule` is the decisive selection rule of that
/// decision ("" when the stream carried no matching decision record).
struct CausalHop {
  std::int64_t lid = -1;   ///< delivery seq of this update
  std::int64_t pid = -1;   ///< causal parent seq (-1 = injection root)
  std::int64_t from = -1;
  std::int64_t to = -1;
  std::int64_t path = -1;
  bool announce = true;
  std::string rule;

  /// Signature equality for period detection: same session, same payload,
  /// same decisive rule — lids differ every lap by definition.
  [[nodiscard]] bool same_signature(const CausalHop& other) const {
    return from == other.from && to == other.to && path == other.path &&
           announce == other.announce && rule == other.rule;
  }
};

/// The minimal causal cycle sustaining one node's oscillation.
struct BlameChain {
  std::int64_t node = -1;
  std::size_t period = 0;        ///< hops per lap (== cycle.size())
  std::size_t chain_length = 0;  ///< hops walked before periodicity was cut
  std::vector<CausalHop> cycle;  ///< one lap, oldest hop first
};

class CausalGraph {
 public:
  /// Ingests one parsed record; unknown "ev" names are skipped.
  void add(const TraceRecord& record);
  /// Parses and ingests one JSONL line (header and malformed lines skipped).
  void add_line(std::string_view line);

  /// Nodes that flipped best route at least `min_flips` times, ascending id.
  [[nodiscard]] std::vector<std::int64_t> oscillating_nodes(
      std::size_t min_flips = 4) const;

  /// Walks the causal chain backward from `node`'s most recent flip and
  /// extracts the smallest repeating hop cycle.  nullopt when the node
  /// never flipped, the chain has no update hops, or no period emerges
  /// within `max_walk` hops.
  [[nodiscard]] std::optional<BlameChain> blame(std::int64_t node,
                                                std::size_t max_walk = 256) const;

  /// Human-readable one-line hop rendering using the trace's node/path
  /// directory: "r3 -> B announce r3-AS2 [rule med]".
  [[nodiscard]] std::string format_hop(const CausalHop& hop) const;

  /// Directory lookups; "#<id>" when the preamble never named the id.
  [[nodiscard]] std::string node_name(std::int64_t id) const;
  [[nodiscard]] std::string path_name(std::int64_t id) const;

  /// Every lid seen on any record (updates, flushes, injections, EoR,
  /// faults) — the "live parent" domain for DAG validation.
  [[nodiscard]] bool knows_lid(std::int64_t lid) const {
    return lids_.count(lid) != 0;
  }
  [[nodiscard]] std::size_t update_count() const { return updates_.size(); }

 private:
  struct UpdateRec {
    std::int64_t pid = -1;
    std::int64_t from = -1;
    std::int64_t to = -1;
    std::int64_t path = -1;
    bool announce = true;
    bool flush = false;  ///< mrai-flush relay: pass-through, not a hop
  };
  struct DecisionRec {
    std::int64_t node = -1;
    std::string rule;
    bool flip = false;
  };

  std::unordered_map<std::int64_t, UpdateRec> updates_;  // lid -> delivery
  std::unordered_map<std::int64_t, DecisionRec> decisions_;  // lid -> decision
  std::map<std::int64_t, std::vector<std::int64_t>> flips_;  // node -> flip lids
  std::map<std::int64_t, std::string> node_names_;
  std::map<std::int64_t, std::string> path_names_;
  std::unordered_map<std::int64_t, char> lids_;
};

}  // namespace ibgp::obs
