#pragma once
// Prometheus text exposition (version 0.0.4) rendering for registry
// snapshots.  This is the operator-facing wire format the daemon serves
// via the `metrics` query's file twin (`ibgpd --metrics-file`): counters
// become `<name>_total`, gauges plain samples, histograms the standard
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
//
// Metric names are mangled dot→underscore ("daemon.span.wal_fsync_ns" →
// "daemon_span_wal_fsync_ns") since Prometheus names admit [a-zA-Z0-9_:]
// only; any remaining invalid character also maps to '_'.  Label values
// (the `le` bounds here) are escaped per the format spec: backslash,
// double-quote, and newline.

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ibgp::obs {

/// Mangles a registry metric name into a valid Prometheus metric name.
std::string exposition_name(std::string_view name);

/// Escapes a label value: \ -> \\, " -> \", newline -> \n.
std::string exposition_escape_label(std::string_view value);

/// Renders one snapshot as Prometheus text exposition.  Each metric gets a
/// `# TYPE` line; histograms render cumulative buckets ending in the
/// mandatory `le="+Inf"` bucket (equal to `_count`).  Ends with a newline.
std::string render_exposition(const std::vector<MetricSample>& samples);

}  // namespace ibgp::obs
