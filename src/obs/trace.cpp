#include "obs/trace.hpp"

#include <cctype>
#include <charconv>
#include <utility>

namespace ibgp::obs {

TraceSink::~TraceSink() { close(); }

std::string TraceSink::header_line() {
  util::json::Object header;
  header.emplace_back("schema", "ibgp-trace-v2");
  return util::json::Value(std::move(header)).dump_compact();
}

bool TraceSink::open_file(const std::string& path) {
  close();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  file_ = file;
  writer_ = [this](std::string_view line) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
  };
  seq_ = 0;
  enabled_ = true;
  write_line(header_line());
  return true;
}

void TraceSink::open_writer(TraceWriter writer) {
  close();
  const std::lock_guard<std::mutex> lock(mutex_);
  writer_ = std::move(writer);
  seq_ = 0;
  enabled_ = true;
  write_line(header_line());
}

void TraceSink::open_ring(std::size_t capacity, TraceWriter dump_writer) {
  close();
  const std::lock_guard<std::mutex> lock(mutex_);
  writer_ = std::move(dump_writer);
  ring_capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(ring_capacity_);
  ring_next_ = 0;
  ring_dropped_ = 0;
  seq_ = 0;
  enabled_ = true;
}

void TraceSink::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = false;
  writer_ = nullptr;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  ring_capacity_ = 0;
  ring_.clear();
  ring_next_ = 0;
}

void TraceSink::write_line(const std::string& line) {
  if (ring_capacity_ > 0) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(line);
    } else {
      ring_[ring_next_] = line;
      ring_next_ = (ring_next_ + 1) % ring_capacity_;
      ++ring_dropped_;
    }
    return;
  }
  if (writer_) writer_(line);
}

void TraceSink::emit(std::uint64_t time, std::string_view event,
                     util::json::Object fields) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  util::json::Object record;
  record.reserve(fields.size() + 3);
  record.emplace_back("ev", event);
  record.emplace_back("seq", seq_++);
  record.emplace_back("t", time);
  for (auto& field : fields) record.push_back(std::move(field));
  write_line(util::json::Value(std::move(record)).dump_compact());
}

void TraceSink::dump_ring() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_capacity_ == 0 || !writer_) return;
  writer_(header_line());
  util::json::Object marker;
  marker.emplace_back("ev", "ring-dump");
  marker.emplace_back("retained", static_cast<std::uint64_t>(ring_.size()));
  marker.emplace_back("dropped", ring_dropped_);
  writer_(util::json::Value(std::move(marker)).dump_compact());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    writer_(ring_[(ring_next_ + i) % ring_.size()]);
  }
}

const TraceRecord::Field* TraceRecord::find(std::string_view key) const {
  for (const auto& field : fields) {
    if (field.key == key) return &field;
  }
  return nullptr;
}

std::string_view TraceRecord::str(std::string_view key, std::string_view fallback) const {
  const Field* field = find(key);
  return field != nullptr && field->kind == Field::Kind::kString ? field->string_value
                                                                 : fallback;
}

std::int64_t TraceRecord::num(std::string_view key, std::int64_t fallback) const {
  const Field* field = find(key);
  if (field == nullptr) return fallback;
  if (field->kind == Field::Kind::kInt) return field->int_value;
  if (field->kind == Field::Kind::kBool) return field->bool_value ? 1 : 0;
  return fallback;
}

namespace {

// Tiny scanner for flat ibgp-trace records; see trace.hpp.
struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  void skip_space() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_space();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            unsigned code = 0;
            const auto [ptr, ec] = std::from_chars(text.data() + pos,
                                                   text.data() + pos + 4, code, 16);
            if (ec != std::errc{} || ptr != text.data() + pos + 4) return false;
            pos += 4;
            // Flat records only escape control characters (util/json::escape),
            // so a one-byte append is faithful for the streams we produce.
            out += static_cast<char>(code);
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse_value(TraceRecord::Field& field) {
    skip_space();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '"') {
      field.kind = TraceRecord::Field::Kind::kString;
      return parse_string(field.string_value);
    }
    if (c == '{' || c == '[') return false;  // flat records only
    if (literal("true")) {
      field.kind = TraceRecord::Field::Kind::kBool;
      field.bool_value = true;
      return true;
    }
    if (literal("false")) {
      field.kind = TraceRecord::Field::Kind::kBool;
      field.bool_value = false;
      return true;
    }
    if (literal("null")) {
      field.kind = TraceRecord::Field::Kind::kNull;
      return true;
    }
    std::size_t end = pos;
    bool is_double = false;
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           std::isspace(static_cast<unsigned char>(text[end])) == 0) {
      if (text[end] == '.' || text[end] == 'e' || text[end] == 'E') is_double = true;
      ++end;
    }
    const std::string_view token = text.substr(pos, end - pos);
    if (token.empty()) return false;
    if (is_double) {
      field.kind = TraceRecord::Field::Kind::kDouble;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), field.double_value);
      if (ec != std::errc{} || ptr != token.data() + token.size()) return false;
    } else {
      field.kind = TraceRecord::Field::Kind::kInt;
      // Large unsigned values (fingerprints) overflow int64; reparse as
      // uint64 and wrap — accessors only compare these for equality.
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), field.int_value);
      if (ec == std::errc::result_out_of_range && token.front() != '-') {
        std::uint64_t wide = 0;
        const auto [wptr, wec] =
            std::from_chars(token.data(), token.data() + token.size(), wide);
        if (wec != std::errc{} || wptr != token.data() + token.size()) return false;
        field.int_value = static_cast<std::int64_t>(wide);
      } else if (ec != std::errc{} || ptr != token.data() + token.size()) {
        return false;
      }
    }
    pos = end;
    return true;
  }
};

}  // namespace

std::optional<TraceRecord> parse_trace_line(std::string_view line) {
  Scanner scanner{line};
  if (!scanner.consume('{')) return std::nullopt;
  TraceRecord record;
  scanner.skip_space();
  if (scanner.consume('}')) return record;
  while (true) {
    TraceRecord::Field field;
    if (!scanner.parse_string(field.key)) return std::nullopt;
    if (!scanner.consume(':')) return std::nullopt;
    if (!scanner.parse_value(field)) return std::nullopt;
    record.fields.push_back(std::move(field));
    if (scanner.consume(',')) continue;
    if (scanner.consume('}')) break;
    return std::nullopt;
  }
  return record;
}

}  // namespace ibgp::obs
