#include "obs/causal.hpp"

#include <algorithm>

namespace ibgp::obs {

void CausalGraph::add(const TraceRecord& record) {
  const std::string_view ev = record.str("ev");
  const std::int64_t lid = record.num("lid", -1);
  if (lid >= 0) lids_.emplace(lid, 1);

  if (ev == "update" || ev == "mrai-flush") {
    if (lid < 0) return;  // v1-era line without lineage: nothing to link
    UpdateRec rec;
    rec.pid = record.num("pid", -1);
    rec.from = record.num("from", -1);
    rec.to = record.num("to", -1);
    rec.path = record.num("path", -1);
    rec.announce = record.num("announce", 1) != 0;
    rec.flush = ev == "mrai-flush";
    updates_[lid] = rec;
    return;
  }
  if (ev == "decision") {
    DecisionRec rec;
    rec.node = record.num("node", -1);
    rec.rule = std::string(record.str("rule"));
    rec.flip = record.num("flip", 0) != 0;
    if (lid >= 0) decisions_[lid] = rec;
    if (rec.flip && lid >= 0 && rec.node >= 0) flips_[rec.node].push_back(lid);
    return;
  }
  if (ev == "node") {
    node_names_[record.num("id", -1)] = std::string(record.str("name"));
    return;
  }
  if (ev == "path") {
    path_names_[record.num("id", -1)] = std::string(record.str("name"));
    return;
  }
  // All other events ("ebgp-announce", "eor", "fault", future additions)
  // only contribute their lid to the live-parent domain, recorded above.
}

void CausalGraph::add_line(std::string_view line) {
  const auto record = parse_trace_line(line);
  if (!record) return;  // header/blank/malformed: skip, never error
  add(*record);
}

std::vector<std::int64_t> CausalGraph::oscillating_nodes(std::size_t min_flips) const {
  std::vector<std::int64_t> out;
  for (const auto& [node, lids] : flips_) {
    if (lids.size() >= min_flips) out.push_back(node);
  }
  return out;
}

std::optional<BlameChain> CausalGraph::blame(std::int64_t node,
                                             std::size_t max_walk) const {
  const auto flip_it = flips_.find(node);
  if (flip_it == flips_.end() || flip_it->second.empty()) return std::nullopt;

  // Walk backward from the most recent flip; newest hop first.
  std::vector<CausalHop> hops;
  std::int64_t cur = flip_it->second.back();
  for (std::size_t walked = 0; walked < max_walk && cur >= 0; ++walked) {
    const auto it = updates_.find(cur);
    if (it == updates_.end()) break;  // injection root or untraced ancestor
    const UpdateRec& rec = it->second;
    if (rec.flush) {
      cur = rec.pid;  // relay: pass through without emitting a hop
      continue;
    }
    CausalHop hop;
    hop.lid = cur;
    hop.pid = rec.pid;
    hop.from = rec.from;
    hop.to = rec.to;
    hop.path = rec.path;
    hop.announce = rec.announce;
    const auto dit = decisions_.find(cur);
    if (dit != decisions_.end()) hop.rule = dit->second.rule;
    hops.push_back(std::move(hop));
    cur = rec.pid;
  }
  if (hops.empty()) return std::nullopt;

  // Smallest period over the newest hops, demanding agreement across two
  // full laps (or as much as the chain holds): the oscillation is steady at
  // the recent end and transient near the injection roots, so the check
  // window anchors at index 0 (newest).
  for (std::size_t period = 1; period * 2 <= hops.size(); ++period) {
    const std::size_t window = std::min(hops.size() - period, 2 * period);
    bool ok = true;
    for (std::size_t i = 0; i < window; ++i) {
      if (!hops[i].same_signature(hops[i + period])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    BlameChain chain;
    chain.node = node;
    chain.period = period;
    chain.chain_length = hops.size();
    chain.cycle.assign(hops.begin(), hops.begin() + static_cast<std::ptrdiff_t>(period));
    std::reverse(chain.cycle.begin(), chain.cycle.end());  // oldest first
    return chain;
  }
  return std::nullopt;
}

std::string CausalGraph::node_name(std::int64_t id) const {
  const auto it = node_names_.find(id);
  return it != node_names_.end() ? it->second : "#" + std::to_string(id);
}

std::string CausalGraph::path_name(std::int64_t id) const {
  const auto it = path_names_.find(id);
  return it != path_names_.end() ? it->second : "#" + std::to_string(id);
}

std::string CausalGraph::format_hop(const CausalHop& hop) const {
  std::string out = node_name(hop.from);
  out += " -> ";
  out += node_name(hop.to);
  out += hop.announce ? " announce " : " withdraw ";
  out += path_name(hop.path);
  if (!hop.rule.empty()) {
    out += " [rule ";
    out += hop.rule;
    out += "]";
  }
  return out;
}

}  // namespace ibgp::obs
