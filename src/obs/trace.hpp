#pragma once
// Structured event tracing: the `ibgp-trace-v2` JSONL stream.
//
// A TraceSink serializes simulation events — activations, advertisements,
// withdrawals, selection decisions with provenance, fault events, IGP epoch
// swaps, GR phases — as one flat JSON object per line.  The first line is a
// header record `{"schema": "ibgp-trace-v2", ...}`; every subsequent record
// carries `"ev"` (event name), `"seq"` (emission sequence number), `"t"`
// (virtual time), plus event-specific scalar fields.  Records are flat by
// construction (scalar values only — no nested arrays/objects), which keeps
// the bundled TraceReader a ~hundred-line scanner instead of a JSON parser
// (util/json is deliberately write-only).
//
// v2 adds causal lineage on top of v1's record set: delivery-driven records
// carry `"lid"` (the engine event seq being processed) and `"pid"` (the seq
// of the event that caused it; omitted on injection roots), plus one new
// event name, `"mrai-flush"`, marking a deferred-flush firing.  Forward
// compatibility is the reader's contract, not the writer's: parse_trace_line
// preserves unknown scalar fields verbatim, and consumers must skip records
// whose `"ev"` they do not recognize — which is exactly how v1-era tools
// keep working on v2 streams (pinned by the negative-corpus tests in
// tests/test_obs.cpp).
//
// Zero overhead when disabled: instrumentation sites guard on `enabled()`,
// a single bool load, and never build the field object on the cold path.
//
// Ring-buffer mode (open_ring) retains only the last N records in memory;
// the campaign runner calls dump_ring() when the invariant checker flags a
// violation, producing a "flight recorder" tail of the events leading up to
// the failure without paying for full-stream I/O on healthy runs.
//
// Thread safety: emit() serializes whole lines under a mutex, so a sink may
// be shared across sweep workers — but interleaving across cells is then
// schedule-dependent, so deterministic trace diffs should use --jobs 1
// (bench smokes attach the trace to their serial pass only).

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ibgp::obs {

/// Whole-line writer; the trace equivalent of util/log's sink. The line has
/// no trailing newline.
using TraceWriter = std::function<void(std::string_view line)>;

class TraceSink {
 public:
  TraceSink() = default;
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Streams records to `path` (truncates). Returns false if the file
  /// cannot be opened.
  bool open_file(const std::string& path);

  /// Streams records through `writer` (tests, custom transports).
  void open_writer(TraceWriter writer);

  /// Flight-recorder mode: keep the last `capacity` records in memory and
  /// write them through `dump_writer` only when dump_ring() is called.
  void open_ring(std::size_t capacity, TraceWriter dump_writer);

  /// Flushes and closes; the sink reads as disabled afterwards.
  void close();

  /// Single cheap guard for instrumentation sites: build fields and call
  /// emit() only when this returns true.
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool ring_mode() const { return ring_capacity_ > 0; }

  /// Serializes one record: {"ev": event, "seq": N, "t": time, ...fields}.
  /// Fields must hold scalar values only (see file comment).
  void emit(std::uint64_t time, std::string_view event, util::json::Object fields);

  /// Writes the header plus the retained ring records through the dump
  /// writer, oldest first, preceded by a "ring-dump" record carrying the
  /// number of records discarded before the window.  No-op outside ring
  /// mode.
  void dump_ring();

  [[nodiscard]] std::uint64_t events_emitted() const { return seq_; }
  /// Records discarded by the ring so far (0 outside ring mode).
  [[nodiscard]] std::uint64_t ring_dropped() const { return ring_dropped_; }

  /// The header line every ibgp-trace-v2 stream starts with.
  static std::string header_line();

 private:
  void write_line(const std::string& line);

  mutable std::mutex mutex_;
  bool enabled_ = false;
  TraceWriter writer_;
  std::FILE* file_ = nullptr;
  std::uint64_t seq_ = 0;
  // Ring state (flight-recorder mode).
  std::size_t ring_capacity_ = 0;
  std::size_t ring_next_ = 0;
  std::uint64_t ring_dropped_ = 0;
  std::vector<std::string> ring_;
};

/// One parsed trace record: the flat key/value pairs of a line.
struct TraceRecord {
  struct Field {
    std::string key;
    enum class Kind : std::uint8_t { kString, kInt, kDouble, kBool, kNull } kind;
    std::string string_value;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };
  std::vector<Field> fields;

  [[nodiscard]] const Field* find(std::string_view key) const;
  /// Convenience accessors returning fallback when absent or mistyped.
  [[nodiscard]] std::string_view str(std::string_view key,
                                     std::string_view fallback = {}) const;
  [[nodiscard]] std::int64_t num(std::string_view key, std::int64_t fallback = 0) const;
};

/// Parses one flat-JSON trace line.  Returns nullopt on malformed input or
/// nested values (ibgp-trace records are flat by contract, every version).
/// Unknown keys are preserved as ordinary fields — a v1-era consumer reads
/// a v2 line without error and simply ignores "lid"/"pid".
std::optional<TraceRecord> parse_trace_line(std::string_view line);

}  // namespace ibgp::obs
