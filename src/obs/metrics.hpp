#pragma once
// Thread-safe metrics registry with deterministic snapshots.
//
// Counters, gauges, and fixed-bucket histograms, split along the repo's
// determinism contract (README "Running sweeps in parallel"):
//
//  * kDeterministic metrics accumulate only schedule-independent facts —
//    message counts, per-rule decision counts, MRAI deferrals, IGP epoch
//    swaps.  Increments commute, so a registry shared across sweep worker
//    threads yields byte-identical snapshots for --jobs 1 and --jobs N, and
//    fingerprint() folds them into the sweep determinism checks.
//  * kVolatile metrics hold schedule- and wall-clock-dependent values —
//    timings, SPF-cache hit/miss, queue depths.  They are reported under the
//    "volatile" JSON sub-object (the existing convention for wall-seconds
//    and speedup in BENCH_*.json) and never enter a fingerprint.
//
// Snapshot determinism also requires deterministic *ordering*: snapshots
// walk metrics in registration order, so register every metric from the
// main thread before fanning out (see register_campaign_metrics /
// register_event_engine_metrics).  Lookups of already-registered names are
// safe from any thread; value updates are lock-free atomics.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ibgp::obs {

enum class MetricClass : std::uint8_t {
  kDeterministic,  ///< schedule-independent; folded into fingerprints
  kVolatile,       ///< timing / schedule dependent; "volatile" JSON only
};

/// Monotone counter.  add() is a relaxed atomic increment: counter updates
/// commute, which is exactly why deterministic counters stay deterministic
/// under parallel sweeps.
class Counter {
 public:
  void add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins scalar with a monotone-max helper.  Gauges are
/// inherently schedule-dependent, so the registry only accepts them as
/// kVolatile.
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void record_max(std::int64_t value) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (value > cur &&
           !value_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over int64 samples.  Bucket i counts samples
/// <= bounds[i] (upper-inclusive, "le" semantics); one extra overflow bucket
/// counts everything above the last bound.  Bounds are fixed at
/// registration, so bucket increments commute like counter increments.
class Histogram {
 public:
  void observe(std::int64_t sample);
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<std::int64_t> bounds);
  std::vector<std::int64_t> bounds_;  // strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// One metric's state copied out of the registry — the exchange format the
/// Prometheus exposition renderer (obs/exposition.hpp) and other exporters
/// consume without holding registry locks.
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  MetricClass metric_class = MetricClass::kDeterministic;
  std::uint64_t counter_value = 0;           ///< kCounter
  std::int64_t gauge_value = 0;              ///< kGauge
  std::vector<std::int64_t> bounds;          ///< kHistogram, finite "le" bounds
  std::vector<std::uint64_t> counts;         ///< kHistogram, bounds+1 (overflow)
  std::uint64_t total = 0;                   ///< kHistogram
  std::int64_t sum = 0;                      ///< kHistogram
};

/// Named metric registry.  Registration (counter()/gauge()/histogram()) is
/// mutex-guarded and idempotent — repeating a name returns the existing
/// metric, and re-registering under a different kind/class/bounds throws
/// std::logic_error.  Returned references stay valid for the registry's
/// lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name,
                   MetricClass metric_class = MetricClass::kDeterministic);
  Gauge& gauge(std::string_view name);  // always kVolatile
  Histogram& histogram(std::string_view name, std::vector<std::int64_t> bounds,
                       MetricClass metric_class = MetricClass::kDeterministic);

  /// Value of a registered counter, or 0 when absent.  Never registers.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Zeroes every metric value; names, order, and bounds are retained.
  void reset();

  /// Snapshot of the deterministic metrics in registration order.
  /// Counters render as integers, histograms as {"le", "counts", "total",
  /// "sum"} objects.  Byte-identical across --jobs when only deterministic
  /// facts were recorded (see file comment).
  [[nodiscard]] util::json::Object deterministic_json() const;

  /// Snapshot of the volatile metrics in registration order (counters,
  /// gauges, and volatile histograms).
  [[nodiscard]] util::json::Object volatile_json() const;

  /// Full "ibgp-metrics-v1" document: schema tag + both snapshots.
  [[nodiscard]] util::json::Value json() const;

  /// Order-sensitive hash over the deterministic metrics (names, kinds,
  /// bounds, values) — foldable into sweep fingerprints.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Copies every metric (deterministic and volatile) out in registration
  /// order.  Each histogram's buckets are read once; the per-bucket loads
  /// are individually atomic but the row is not a consistent cut — fine for
  /// telemetry, same relaxation the JSON snapshots make.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind;
    MetricClass metric_class;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find(std::string_view name);
  const Entry* find(std::string_view name) const;

  mutable std::mutex mutex_;  // guards entries_ layout; values are atomics
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace ibgp::obs
