#include "explore/minimize.hpp"

#include <utility>

namespace ibgp::explore {

namespace {

/// try_build + satisfies in one step.
bool spec_satisfies(const InstanceSpec& spec, const MinimizeGoal& goal,
                    MinimizeStats* stats) {
  if (stats != nullptr) ++stats->candidates_tried;
  const auto inst = try_build(spec);
  return inst && satisfies(*inst, goal);
}

/// Tries candidate; on success replaces spec and returns true.
bool accept_if_better(InstanceSpec& spec, InstanceSpec candidate, const MinimizeGoal& goal,
                      MinimizeStats* stats) {
  if (!spec_satisfies(candidate, goal, stats)) return false;
  spec = std::move(candidate);
  if (stats != nullptr) ++stats->accepted;
  return true;
}

/// One greedy pass over every shrink move; returns whether anything shrank.
bool shrink_pass(InstanceSpec& spec, const MinimizeGoal& goal, MinimizeStats* stats) {
  bool changed = false;

  // Routers first: removing one drops its links, sessions, exits and maps
  // in a single oracle call.  High-to-low keeps earlier indices valid.
  for (std::size_t v = spec.nodes.size(); v-- > 0;) {
    InstanceSpec candidate = spec;
    remove_node(candidate, static_cast<NodeId>(v));
    changed |= accept_if_better(spec, std::move(candidate), goal, stats);
  }
  for (std::size_t i = spec.exits.size(); i-- > 0;) {
    InstanceSpec candidate = spec;
    candidate.exits.erase(candidate.exits.begin() + static_cast<std::ptrdiff_t>(i));
    changed |= accept_if_better(spec, std::move(candidate), goal, stats);
  }
  for (std::size_t i = spec.route_maps.size(); i-- > 0;) {
    InstanceSpec candidate = spec;
    candidate.route_maps.erase(candidate.route_maps.begin() +
                               static_cast<std::ptrdiff_t>(i));
    changed |= accept_if_better(spec, std::move(candidate), goal, stats);
  }
  for (std::size_t i = spec.client_sessions.size(); i-- > 0;) {
    InstanceSpec candidate = spec;
    candidate.client_sessions.erase(candidate.client_sessions.begin() +
                                    static_cast<std::ptrdiff_t>(i));
    changed |= accept_if_better(spec, std::move(candidate), goal, stats);
  }
  for (std::size_t i = spec.links.size(); i-- > 0;) {
    InstanceSpec candidate = spec;
    candidate.links.erase(candidate.links.begin() + static_cast<std::ptrdiff_t>(i));
    changed |= accept_if_better(spec, std::move(candidate), goal, stats);
  }
  for (std::size_t i = spec.policy.med_overrides.size(); i-- > 0;) {
    InstanceSpec candidate = spec;
    candidate.policy.med_overrides.erase(candidate.policy.med_overrides.begin() +
                                         static_cast<std::ptrdiff_t>(i));
    changed |= accept_if_better(spec, std::move(candidate), goal, stats);
  }

  // Attribute flattening: drive every value to its least-interesting form
  // that still reproduces the signature.
  for (std::size_t i = 0; i < spec.exits.size(); ++i) {
    const ExitSpec& exit = spec.exits[i];
    if (exit.med != 0) {
      InstanceSpec candidate = spec;
      candidate.exits[i].med = 0;
      changed |= accept_if_better(spec, std::move(candidate), goal, stats);
    }
    if (exit.local_pref != 100) {
      InstanceSpec candidate = spec;
      candidate.exits[i].local_pref = 100;
      changed |= accept_if_better(spec, std::move(candidate), goal, stats);
    }
    if (exit.as_path_length != 3) {
      InstanceSpec candidate = spec;
      candidate.exits[i].as_path_length = 3;
      changed |= accept_if_better(spec, std::move(candidate), goal, stats);
    }
    if (exit.exit_cost != 0) {
      InstanceSpec candidate = spec;
      candidate.exits[i].exit_cost = 0;
      changed |= accept_if_better(spec, std::move(candidate), goal, stats);
    }
    if (exit.communities != 0) {
      InstanceSpec candidate = spec;
      candidate.exits[i].communities = 0;
      changed |= accept_if_better(spec, std::move(candidate), goal, stats);
    }
  }
  for (std::size_t i = 0; i < spec.links.size(); ++i) {
    if (spec.links[i].cost != 1) {
      InstanceSpec candidate = spec;
      candidate.links[i].cost = 1;
      changed |= accept_if_better(spec, std::move(candidate), goal, stats);
    }
  }
  return changed;
}

}  // namespace

bool satisfies(const core::Instance& inst, const MinimizeGoal& goal) {
  const auto sig = analysis::classify(inst, goal.protocol, goal.max_steps);
  // Exact per-schedule match; a kStepLimit verdict only equals kStepLimit,
  // so a truncated run can never stand in for a proven cycle.
  if (sig.round_robin != goal.signature.round_robin) return false;
  if (sig.synchronous != goal.signature.synchronous) return false;
  if (goal.modified_converges) {
    const auto modified =
        analysis::classify(inst, core::ProtocolKind::kModified, goal.max_steps);
    if (!modified.converges_always_tested()) return false;
  }
  if (goal.med_induced) {
    bgp::SelectionPolicy no_med = inst.policy();
    no_med.med = bgp::MedMode::kIgnore;
    no_med.med_overrides.clear();
    const auto without =
        analysis::classify(inst.with_policy(no_med), goal.protocol, goal.max_steps);
    if (!without.converges_always_tested()) return false;
  }
  return true;
}

InstanceSpec minimize(InstanceSpec spec, const MinimizeGoal& goal, MinimizeStats* stats) {
  if (!spec_satisfies(spec, goal, stats)) return spec;  // precondition violated
  while (shrink_pass(spec, goal, stats)) {
    if (stats != nullptr) ++stats->passes;
  }
  if (stats != nullptr) ++stats->passes;  // the final no-change pass
  return spec;
}

}  // namespace ibgp::explore
