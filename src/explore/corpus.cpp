#include "explore/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "engine/oscillation.hpp"
#include "topo/dsl.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace ibgp::explore {

namespace {

constexpr std::string_view kMagic = "ibgp-corpus-v1";

constexpr std::array<core::ProtocolKind, kCorpusProtocols> kProtocols = {
    core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
    core::ProtocolKind::kModified};

// Field-level failures from the helpers below; parse_corpus_entry catches
// this (and only this) to attach the source:line prefix.
struct CorpusFieldError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

engine::RunStatus parse_status(std::string_view word) {
  for (const auto status : {engine::RunStatus::kConverged, engine::RunStatus::kCycleDetected,
                            engine::RunStatus::kStepLimit}) {
    if (word == engine::run_status_name(status)) return status;
  }
  throw CorpusFieldError("unknown run status '" + std::string(word) + "'");
}

std::size_t protocol_index(std::string_view word) {
  for (std::size_t i = 0; i < kProtocols.size(); ++i) {
    if (word == core::protocol_name(kProtocols[i])) return i;
  }
  throw CorpusFieldError("unknown protocol '" + std::string(word) + "'");
}

engine::RunStatus parse_schedule_field(std::string_view token, std::string_view key) {
  if (!token.starts_with(key) || token.size() <= key.size() ||
      token[key.size()] != '=') {
    throw CorpusFieldError("expected " + std::string(key) + "=STATUS, got '" +
                           std::string(token) + "'");
  }
  return parse_status(token.substr(key.size() + 1));
}

}  // namespace

std::string write_corpus_entry(const CorpusEntry& entry) {
  std::ostringstream out;
  out << "#! " << kMagic << "\n";
  out << "#! max-steps " << entry.max_steps << "\n";
  if (entry.med_induced) out << "#! tag med-induced\n";
  if (entry.hybrid) out << "#! tag hybrid\n";
  for (std::size_t i = 0; i < kProtocols.size(); ++i) {
    const auto& sig = entry.signatures[i];
    out << "#! signature " << core::protocol_name(kProtocols[i])
        << " round-robin=" << engine::run_status_name(sig.round_robin)
        << " synchronous=" << engine::run_status_name(sig.synchronous) << "\n";
  }
  out << entry.topo_text;
  return out.str();
}

CorpusEntry parse_corpus_entry(std::string_view text, std::string_view name) {
  // Diagnostics carry "SOURCE:LINE:" like the topo parser, so a broken
  // checked-in entry pinpoints the offending header line.
  const std::string source = name.empty() ? std::string("<corpus>") : std::string(name);
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& message) -> void {
    throw std::runtime_error(source + ":" + std::to_string(line_no) +
                             ": corpus parse error: " + message);
  };

  CorpusEntry entry;
  entry.name = std::string(name);
  bool magic_seen = false;
  bool any_body = false;
  std::array<bool, kCorpusProtocols> signature_seen{};
  std::ostringstream body;

  for (std::string_view line : util::split(text, '\n')) {
    ++line_no;
    if (!line.starts_with("#!")) {
      // Body-presence check strips '#' comments the same way the DSL does.
      if (!util::split_ws(line.substr(0, line.find('#'))).empty()) any_body = true;
      body << line << "\n";
      continue;
    }
    const auto tokens = util::split_ws(line.substr(2));
    if (tokens.empty()) continue;
    try {
      if (tokens[0] == kMagic) {
        magic_seen = true;
      } else if (tokens[0] == "max-steps" && tokens.size() == 2) {
        const auto value = util::parse_u64(tokens[1]);
        if (!value || *value == 0) {
          fail("max-steps must be a positive integer, got '" + std::string(tokens[1]) + "'");
        }
        entry.max_steps = static_cast<std::size_t>(*value);
      } else if (tokens[0] == "tag" && tokens.size() == 2) {
        if (tokens[1] == "med-induced") {
          entry.med_induced = true;
        } else if (tokens[1] == "hybrid") {
          entry.hybrid = true;
        } else {
          fail("unknown tag '" + std::string(tokens[1]) + "'");
        }
      } else if (tokens[0] == "signature" && tokens.size() == 4) {
        const std::size_t index = protocol_index(tokens[1]);
        entry.signatures[index].round_robin = parse_schedule_field(tokens[2], "round-robin");
        entry.signatures[index].synchronous = parse_schedule_field(tokens[3], "synchronous");
        signature_seen[index] = true;
      } else {
        fail("unrecognized header line '" + std::string(line) + "'");
      }
    } catch (const CorpusFieldError& e) {
      fail(e.what());  // helper errors get the source:line prefix attached
    }
  }

  // Trailer checks point at the end of the document (no single bad line).
  if (!magic_seen) fail("missing '#! ibgp-corpus-v1' header");
  for (std::size_t i = 0; i < kProtocols.size(); ++i) {
    if (!signature_seen[i]) {
      fail(std::string("missing signature line for ") + core::protocol_name(kProtocols[i]));
    }
  }
  if (!any_body) fail("truncated entry: headers present but no topo body");
  entry.topo_text = body.str();
  // The line join appended exactly one '\n' beyond the original body (either
  // after a final unterminated line, or for the empty field a trailing '\n'
  // splits off); drop it.
  if (!entry.topo_text.empty()) entry.topo_text.pop_back();
  return entry;
}

CorpusEntry make_corpus_entry(const core::Instance& inst, std::size_t max_steps,
                              bool med_induced, bool hybrid) {
  CorpusEntry entry;
  entry.name = inst.name();
  entry.max_steps = max_steps;
  entry.med_induced = med_induced;
  entry.hybrid = hybrid;
  for (std::size_t i = 0; i < kProtocols.size(); ++i) {
    entry.signatures[i] = analysis::classify(inst, kProtocols[i], max_steps);
  }
  entry.topo_text = topo::write_topo(inst);
  return entry;
}

std::vector<CorpusEntry> load_corpus_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    if (dirent.path().extension() == ".topo") files.push_back(dirent.path());
  }
  if (ec) throw std::runtime_error("corpus: cannot read directory " + dir);
  std::sort(files.begin(), files.end());

  std::vector<CorpusEntry> entries;
  entries.reserve(files.size());
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("corpus: cannot open " + path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      entries.push_back(parse_corpus_entry(buffer.str(), path.stem().string()));
    } catch (const std::runtime_error& e) {
      // The entry-level diagnostic names the stem; prepend the directory
      // part so the message is an openable path.
      throw std::runtime_error(path.string() + ": " + e.what());
    }
  }
  return entries;
}

bool ReplayReport::all_match() const {
  return std::all_of(rows.begin(), rows.end(),
                     [](const ReplayRow& row) { return row.match; });
}

bool ReplayReport::modified_safe() const {
  return std::none_of(rows.begin(), rows.end(),
                      [](const ReplayRow& row) { return row.modified_oscillates; });
}

ReplayReport replay_corpus(std::span<const CorpusEntry> entries, std::size_t jobs) {
  ReplayReport report;
  report.rows.resize(entries.size());
  util::parallel_for(entries.size(), util::resolve_jobs(jobs), [&](std::size_t i) {
    const CorpusEntry& entry = entries[i];
    ReplayRow& row = report.rows[i];
    row.name = entry.name;
    const core::Instance inst = topo::parse_topo(entry.topo_text, entry.name);
    bool match = true;
    for (std::size_t p = 0; p < kProtocols.size(); ++p) {
      row.replayed[p] = analysis::classify(inst, kProtocols[p], entry.max_steps);
      match = match && row.replayed[p].round_robin == entry.signatures[p].round_robin &&
              row.replayed[p].synchronous == entry.signatures[p].synchronous;
    }
    row.match = match;
    constexpr std::size_t kModifiedIndex = 2;
    row.modified_oscillates = row.replayed[kModifiedIndex].oscillates();
  });
  // Index-ordered fold after the fan-out: byte-identical across --jobs.
  util::Fingerprint fp;
  for (const ReplayRow& row : report.rows) {
    fp.add(row.name);
    fp.add(row.match ? 1u : 0u);
    for (const auto& sig : row.replayed) {
      fp.add(static_cast<std::uint64_t>(sig.round_robin));
      fp.add(static_cast<std::uint64_t>(sig.synchronous));
    }
  }
  report.fingerprint = fp.value();
  return report;
}

}  // namespace ibgp::explore
