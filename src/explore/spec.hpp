#pragma once
// The explorer's configuration genotype.
//
// The search in explorer.hpp mutates *configurations*, not finalized
// instances: an InstanceSpec is the plain-data mirror of everything
// topo::InstanceBuilder consumes (nodes, links, optional client sessions,
// raw exit attributes, ingress route-maps, the selection policy with its
// per-AS MED overrides).  Specs are cheap to copy, trivially mutable, and
// convert both ways:
//
//   build(spec)     -> finalized core::Instance (throws on invalid specs;
//                      try_build() returns nullopt instead, which is how the
//                      mutator discards structurally broken offspring)
//   spec_of(inst)   -> the genotype of an existing instance, reading the RAW
//                      exit table so route-maps are not baked in twice
//
// hybrid_spec() maps a BGP confederation onto route reflection — member
// sub-ASes become clusters, border routers become reflectors, the intra-
// sub-AS full mesh becomes explicit client-client sessions — giving the
// explorer RFC 3345-shaped seeds in the reflection search space.

#include <optional>
#include <string>
#include <vector>

#include "bgp/route_map.hpp"
#include "bgp/selection.hpp"
#include "confed/layout.hpp"
#include "core/instance.hpp"
#include "netsim/cluster_layout.hpp"
#include "util/types.hpp"

namespace ibgp::explore {

struct NodeSpec {
  std::string label;
  netsim::ClusterId cluster = 0;
  bool reflector = false;
  BgpId bgp_id = 0;
};

struct LinkSpec {
  NodeId a = 0, b = 0;
  Cost cost = 1;
};

struct SessionSpec {
  NodeId a = 0, b = 0;  ///< same-cluster client-client I-BGP session
};

struct ExitSpec {
  std::string name;
  NodeId at = 0;
  AsId next_as = 1;
  Med med = 0;
  LocalPref local_pref = 100;
  std::uint32_t as_path_length = 3;
  Cost exit_cost = 0;
  BgpId ebgp_peer = 0;
  std::uint32_t communities = 0;  ///< raw (pre-route-map) tag bitmask
};

struct RouteMapSpec {
  NodeId node = 0;
  bgp::RouteMapClause clause;
};

struct InstanceSpec {
  std::string name = "spec";
  std::vector<NodeSpec> nodes;
  std::vector<LinkSpec> links;
  std::vector<SessionSpec> client_sessions;
  std::vector<ExitSpec> exits;
  std::vector<RouteMapSpec> route_maps;  ///< clause order = application order
  bgp::SelectionPolicy policy;
};

/// Finalizes the spec.  Throws std::invalid_argument on structural errors
/// (empty cluster, dangling node id, duplicate label, ...).
core::Instance build(const InstanceSpec& spec);

/// build() that swallows validation errors; the mutator/minimizer oracle.
std::optional<core::Instance> try_build(const InstanceSpec& spec);

/// Extracts the genotype of a finalized instance (raw exit attributes, so
/// build(spec_of(inst)) reproduces inst including its ingress maps).
InstanceSpec spec_of(const core::Instance& inst);

/// Renumbers cluster ids densely (first appearance order by node index);
/// required after node removal because ClusterLayout demands dense ids.
void normalize_clusters(InstanceSpec& spec);

/// Removes node v: drops its exits, route-maps, links and sessions, remaps
/// higher node ids down by one, and re-densifies clusters.
void remove_node(InstanceSpec& spec, NodeId v);

/// Confederation -> route-reflection hybrid: sub-AS i becomes cluster i,
/// border routers become its reflectors (the lowest router is promoted when
/// a sub-AS has none), and the intra-sub-AS mesh survives as client-client
/// sessions.  Exit paths, IGP costs and the selection policy carry over.
InstanceSpec hybrid_spec(const confed::ConfedInstance& confed);

}  // namespace ibgp::explore
