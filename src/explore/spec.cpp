#include "explore/spec.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "topo/builder.hpp"

namespace ibgp::explore {

core::Instance build(const InstanceSpec& spec) {
  topo::InstanceBuilder builder;
  for (std::size_t v = 0; v < spec.nodes.size(); ++v) {
    const NodeSpec& node = spec.nodes[v];
    std::string label = node.label.empty() ? "n" + std::to_string(v) : node.label;
    if (node.reflector) {
      builder.reflector(std::move(label), node.cluster);
    } else {
      builder.client(std::move(label), node.cluster);
    }
  }
  const auto label_of = [&](NodeId v) -> std::string {
    if (v >= spec.nodes.size()) {
      throw std::invalid_argument("InstanceSpec: dangling node id " + std::to_string(v));
    }
    return spec.nodes[v].label.empty() ? "n" + std::to_string(v) : spec.nodes[v].label;
  };
  for (std::size_t v = 0; v < spec.nodes.size(); ++v) {
    builder.bgp_id(label_of(static_cast<NodeId>(v)), spec.nodes[v].bgp_id);
  }
  for (const LinkSpec& link : spec.links) {
    builder.link(label_of(link.a), label_of(link.b), link.cost);
  }
  for (const SessionSpec& session : spec.client_sessions) {
    builder.client_session(label_of(session.a), label_of(session.b));
  }
  for (std::size_t i = 0; i < spec.exits.size(); ++i) {
    const ExitSpec& exit = spec.exits[i];
    topo::ExitSpec out;
    out.name = exit.name.empty() ? "r" + std::to_string(i) : exit.name;
    out.at = label_of(exit.at);
    out.next_as = exit.next_as;
    out.med = exit.med;
    out.local_pref = exit.local_pref;
    out.as_path_length = exit.as_path_length;
    out.exit_cost = exit.exit_cost;
    out.ebgp_peer = exit.ebgp_peer;
    out.communities = exit.communities;
    builder.exit(std::move(out));
  }
  for (const RouteMapSpec& entry : spec.route_maps) {
    builder.route_map(label_of(entry.node), entry.clause);
  }
  return builder.build(spec.name, spec.policy);
}

std::optional<core::Instance> try_build(const InstanceSpec& spec) {
  try {
    return build(spec);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

InstanceSpec spec_of(const core::Instance& inst) {
  InstanceSpec spec;
  spec.name = inst.name();
  spec.policy = inst.policy();
  spec.nodes.reserve(inst.node_count());
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    NodeSpec node;
    node.label = inst.node_name(v);
    node.cluster = inst.clusters().cluster_of(v);
    node.reflector = inst.clusters().is_reflector(v);
    node.bgp_id = inst.bgp_id(v);
    spec.nodes.push_back(std::move(node));
  }
  for (const auto& link : inst.physical().links()) {
    spec.links.push_back({link.a, link.b, link.cost});
  }
  for (const auto& edge : inst.sessions().edges()) {
    if (edge.kind == netsim::SessionKind::kClientClient) {
      spec.client_sessions.push_back({edge.u, edge.v});
    }
  }
  for (const auto& path : inst.raw_exits().all()) {
    ExitSpec exit;
    exit.name = path.name;
    exit.at = path.exit_point;
    exit.next_as = path.next_as;
    exit.med = path.med;
    exit.local_pref = path.local_pref;
    exit.as_path_length = path.as_path_length;
    exit.exit_cost = path.exit_cost;
    exit.ebgp_peer = path.ebgp_peer;
    exit.communities = path.communities;
    spec.exits.push_back(std::move(exit));
  }
  const auto maps = inst.ingress_maps();
  for (NodeId v = 0; v < maps.size(); ++v) {
    for (const auto& clause : maps[v].clauses) {
      spec.route_maps.push_back({v, clause});
    }
  }
  return spec;
}

void normalize_clusters(InstanceSpec& spec) {
  std::vector<netsim::ClusterId> order;
  for (const NodeSpec& node : spec.nodes) {
    if (std::find(order.begin(), order.end(), node.cluster) == order.end()) {
      order.push_back(node.cluster);
    }
  }
  for (NodeSpec& node : spec.nodes) {
    const auto it = std::find(order.begin(), order.end(), node.cluster);
    node.cluster = static_cast<netsim::ClusterId>(it - order.begin());
  }
}

void remove_node(InstanceSpec& spec, NodeId v) {
  if (v >= spec.nodes.size()) return;
  spec.nodes.erase(spec.nodes.begin() + static_cast<std::ptrdiff_t>(v));
  const auto touches = [v](NodeId a, NodeId b) { return a == v || b == v; };
  std::erase_if(spec.links, [&](const LinkSpec& l) { return touches(l.a, l.b); });
  std::erase_if(spec.client_sessions,
                [&](const SessionSpec& s) { return touches(s.a, s.b); });
  std::erase_if(spec.exits, [&](const ExitSpec& e) { return e.at == v; });
  std::erase_if(spec.route_maps, [&](const RouteMapSpec& r) { return r.node == v; });
  const auto remap = [v](NodeId& id) {
    if (id > v) --id;
  };
  for (LinkSpec& l : spec.links) {
    remap(l.a);
    remap(l.b);
  }
  for (SessionSpec& s : spec.client_sessions) {
    remap(s.a);
    remap(s.b);
  }
  for (ExitSpec& e : spec.exits) remap(e.at);
  for (RouteMapSpec& r : spec.route_maps) remap(r.node);
  normalize_clusters(spec);
}

InstanceSpec hybrid_spec(const confed::ConfedInstance& confed) {
  InstanceSpec spec;
  spec.name = confed.name() + "-hybrid";
  spec.policy = confed.policy();

  // Border routers become the reflectors of their sub-AS's cluster.
  std::vector<bool> border(confed.node_count(), false);
  for (NodeId v = 0; v < confed.node_count(); ++v) {
    for (const NodeId peer : confed.peers(v)) {
      if (confed.is_border_session(v, peer)) {
        border[v] = true;
        break;
      }
    }
  }
  // A sub-AS with no border router still needs a reflector: promote its
  // lowest-numbered router.
  std::vector<bool> has_reflector(confed.sub_as_count(), false);
  for (NodeId v = 0; v < confed.node_count(); ++v) {
    if (border[v]) has_reflector[confed.sub_as_of(v)] = true;
  }
  for (NodeId v = 0; v < confed.node_count(); ++v) {
    const auto sub = confed.sub_as_of(v);
    if (!has_reflector[sub]) {
      border[v] = true;
      has_reflector[sub] = true;
    }
  }

  spec.nodes.reserve(confed.node_count());
  for (NodeId v = 0; v < confed.node_count(); ++v) {
    NodeSpec node;
    node.label = confed.node_name(v);
    node.cluster = confed.sub_as_of(v);
    node.reflector = border[v];
    node.bgp_id = confed.bgp_id(v);
    spec.nodes.push_back(std::move(node));
  }
  for (const auto& link : confed.physical().links()) {
    spec.links.push_back({link.a, link.b, link.cost});
  }
  // The intra-sub-AS full mesh: reflector-reflector and client-reflector
  // sessions come with the layout; client pairs need explicit sessions.
  for (NodeId u = 0; u < confed.node_count(); ++u) {
    for (NodeId v = u + 1; v < confed.node_count(); ++v) {
      if (confed.same_sub_as(u, v) && !border[u] && !border[v]) {
        spec.client_sessions.push_back({u, v});
      }
    }
  }
  for (const auto& path : confed.exits().all()) {
    ExitSpec exit;
    exit.name = path.name;
    exit.at = path.exit_point;
    exit.next_as = path.next_as;
    exit.med = path.med;
    exit.local_pref = path.local_pref;
    exit.as_path_length = path.as_path_length;
    exit.exit_cost = path.exit_cost;
    exit.ebgp_peer = path.ebgp_peer;
    exit.communities = path.communities;
    spec.exits.push_back(std::move(exit));
  }
  return spec;
}

}  // namespace ibgp::explore
