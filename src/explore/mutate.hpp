#pragma once
// Seeded mutation menu over InstanceSpec genotypes.
//
// mutate() is a pure function of (parent, seed): the same pair always yields
// the same child, so the explorer's batched parallel evaluation stays
// byte-identical across --jobs.  Offspring may be structurally invalid
// (e.g. a cluster left without a reflector) — callers filter through
// try_build().
//
// The menu spans every policy knob the paper's configuration model exposes
// plus the structural moves delta debugging later undoes:
//   topology:   add/remove/re-cost IGP links, grow a client, mesh a cluster
//   sessions:   add/remove client-client sessions
//   exits:      add/remove exits, perturb MED / LOCAL-PREF / exit cost /
//               AS-path length / community tags
//   policy:     rotate the global MED mode, add/remove per-AS MED overrides
//   route-maps: add/remove ingress clauses (community or AS matched,
//               LOCAL-PREF / MED setting, tag adding)

#include <cstdint>

#include "explore/spec.hpp"

namespace ibgp::explore {

/// Returns a mutated copy of `parent` (1-3 menu picks, seed-determined).
InstanceSpec mutate(const InstanceSpec& parent, std::uint64_t seed);

}  // namespace ibgp::explore
