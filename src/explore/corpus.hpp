#pragma once
// The checked-in counterexample corpus (examples/data/corpus/*.topo).
//
// Every file is a self-describing, still-parseable .topo document: a block
// of `#!` header lines (comments to the DSL parser) carrying the recorded
// convergence signatures, followed by the ordinary topo text:
//
//   #! ibgp-corpus-v1
//   #! max-steps 4000
//   #! tag med-induced            (optional, repeatable: med-induced|hybrid)
//   #! signature standard round-robin=oscillates synchronous=oscillates
//   #! signature walton round-robin=converged synchronous=converged
//   #! signature modified round-robin=converged synchronous=converged
//   instance ce-...
//   ...
//
// Status words are engine::run_status_name() spellings.  replay_corpus()
// re-derives every signature from scratch (both deterministic schedules,
// all three protocols) and compares against the header — the regression
// gate bench_corpus (E18) fails hard if the modified protocol ever lands in
// the oscillating bucket, since that would falsify the paper's Theorem 2.
// Replays fan out with util::parallel_for and fold a fingerprint in entry
// index order, so --jobs 1 and --jobs N reports are byte-identical.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/finder.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"

namespace ibgp::explore {

inline constexpr std::size_t kCorpusProtocols = 3;  // standard, walton, modified

struct CorpusEntry {
  std::string name;            ///< file stem / instance label
  std::size_t max_steps = 4000;
  bool med_induced = false;    ///< tag: vanishes when MEDs are ignored
  bool hybrid = false;         ///< tag: confederation-derived layout
  /// Recorded signatures indexed by core::ProtocolKind order.
  std::array<analysis::ConvergenceSignature, kCorpusProtocols> signatures{};
  std::string topo_text;       ///< parseable body (no #! lines)
};

/// Renders the entry (headers + body).  The result re-parses both as a
/// corpus entry and as a plain .topo file.
std::string write_corpus_entry(const CorpusEntry& entry);

/// Parses headers + body.  Throws std::runtime_error on malformed or
/// version-mismatched headers.
CorpusEntry parse_corpus_entry(std::string_view text, std::string_view name = "");

/// Classifies `inst` under all three protocols and wraps it as an entry.
CorpusEntry make_corpus_entry(const core::Instance& inst, std::size_t max_steps,
                              bool med_induced, bool hybrid);

/// Loads every *.topo file of `dir`, sorted by filename (deterministic
/// ordering for replay fingerprints).  Throws std::runtime_error when the
/// directory cannot be read or an entry is malformed.
std::vector<CorpusEntry> load_corpus_dir(const std::string& dir);

struct ReplayRow {
  std::string name;
  bool match = false;                ///< replay reproduced every recorded status
  bool modified_oscillates = false;  ///< theorem gate: must stay false
  std::array<analysis::ConvergenceSignature, kCorpusProtocols> replayed{};
};

struct ReplayReport {
  std::vector<ReplayRow> rows;     ///< entry order = corpus order
  std::uint64_t fingerprint = 0;   ///< index-ordered fold over all verdicts

  [[nodiscard]] bool all_match() const;
  /// True iff no replay put the modified protocol in the oscillating bucket.
  [[nodiscard]] bool modified_safe() const;
};

/// Replays every entry (parallel across entries; deterministic across jobs).
ReplayReport replay_corpus(std::span<const CorpusEntry> entries, std::size_t jobs);

}  // namespace ibgp::explore
