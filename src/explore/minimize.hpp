#pragma once
// Delta-debugging minimizer for explorer hits.
//
// Given a configuration with an interesting convergence signature, shrink it
// while an oracle keeps holding: remove routers, IGP links, client-client
// sessions, exit paths, route-map clauses and MED overrides, and flatten
// attribute values (MED -> 0, LOCAL-PREF -> 100, costs -> minimal, tags ->
// none).  Greedy one-element-at-a-time passes repeat until a full pass
// removes nothing (a 1-minimal configuration in the ddmin sense).
//
// The oracle is exact signature preservation: the target protocol must keep
// the SAME RunStatus under BOTH deterministic schedules (not merely "still
// oscillate" — a hit that cycles under round-robin but converges
// synchronously must stay that shape).  Optional side conditions mirror the
// finder criteria: the modified protocol keeps converging, and MED-induced
// hits stay MED-induced (the oscillation still vanishes with MEDs ignored).
// Step-budget exhaustion is never accepted as equivalent to a cycle.

#include <cstddef>

#include "analysis/finder.hpp"
#include "core/policy.hpp"
#include "explore/spec.hpp"

namespace ibgp::explore {

struct MinimizeGoal {
  core::ProtocolKind protocol = core::ProtocolKind::kStandard;
  /// The signature build(spec) must keep showing, verbatim, per schedule.
  analysis::ConvergenceSignature signature;
  /// Keep requiring the modified protocol to converge under both schedules.
  bool modified_converges = true;
  /// Keep requiring the oscillation to vanish when MEDs are ignored.
  bool med_induced = false;
  std::size_t max_steps = 4000;
};

/// Whether `inst` satisfies the goal (exact signature + side conditions).
bool satisfies(const core::Instance& inst, const MinimizeGoal& goal);

struct MinimizeStats {
  std::size_t candidates_tried = 0;  ///< shrink attempts evaluated
  std::size_t accepted = 0;          ///< attempts that kept the signature
  std::size_t passes = 0;            ///< full passes until fixed point
};

/// Shrinks `spec` to a 1-minimal configuration for `goal`.  Precondition:
/// build(spec) satisfies the goal (checked; returns spec unchanged if not).
InstanceSpec minimize(InstanceSpec spec, const MinimizeGoal& goal,
                      MinimizeStats* stats = nullptr);

}  // namespace ibgp::explore
