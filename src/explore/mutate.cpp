#include "explore/mutate.hpp"

#include <algorithm>
#include <string>

#include "util/rng.hpp"

namespace ibgp::explore {

namespace {

using util::Xoshiro256;

// Small attribute pools keep mutants in the regime where oscillation lives:
// the paper's examples need *ties* on the early rules, which huge random
// values would destroy.
constexpr Med kMaxMed = 3;
constexpr Cost kMaxLinkCost = 10;
constexpr Cost kMaxExitCost = 5;
constexpr AsId kMaxAs = 3;

std::string fresh_label(const InstanceSpec& spec, const char* prefix, Xoshiro256& rng) {
  for (;;) {
    std::string label = prefix + std::to_string(rng.below(10000));
    const bool taken = std::any_of(spec.nodes.begin(), spec.nodes.end(),
                                   [&](const NodeSpec& n) { return n.label == label; });
    const bool taken_exit = std::any_of(spec.exits.begin(), spec.exits.end(),
                                        [&](const ExitSpec& e) { return e.name == label; });
    if (!taken && !taken_exit) return label;
  }
}

bgp::MedMode random_med_mode(Xoshiro256& rng) {
  switch (rng.below(3)) {
    case 0: return bgp::MedMode::kPerNeighborAs;
    case 1: return bgp::MedMode::kAlwaysCompare;
    default: return bgp::MedMode::kIgnore;
  }
}

bgp::RouteMapClause random_clause(Xoshiro256& rng) {
  bgp::RouteMapClause clause;
  if (rng.chance(0.5)) clause.match_as = static_cast<AsId>(1 + rng.below(kMaxAs));
  if (rng.chance(0.4)) clause.match_communities = 1u << rng.below(4);
  switch (rng.below(3)) {
    case 0:
      clause.set_local_pref = static_cast<LocalPref>(90 + 10 * rng.below(4));  // 90..120
      break;
    case 1:
      clause.set_med = static_cast<Med>(rng.below(kMaxMed + 1));
      break;
    default:
      clause.add_communities = 1u << rng.below(4);
      break;
  }
  return clause;
}

void mutate_once(InstanceSpec& spec, Xoshiro256& rng) {
  const std::size_t n = spec.nodes.size();
  if (n == 0) return;
  switch (rng.below(15)) {
    case 0: {  // re-cost a link
      if (spec.links.empty()) break;
      spec.links[rng.pick_index(spec.links)].cost =
          static_cast<Cost>(1 + rng.below(kMaxLinkCost));
      break;
    }
    case 1: {  // add a link
      if (n < 2) break;
      const NodeId a = static_cast<NodeId>(rng.below(n));
      const NodeId b = static_cast<NodeId>(rng.below(n));
      if (a == b) break;
      spec.links.push_back({a, b, static_cast<Cost>(1 + rng.below(kMaxLinkCost))});
      break;
    }
    case 2: {  // remove a link (keep at least a chance of connectivity)
      if (spec.links.size() < 2) break;
      spec.links.erase(spec.links.begin() +
                       static_cast<std::ptrdiff_t>(rng.pick_index(spec.links)));
      break;
    }
    case 3: {  // add a same-cluster client-client session
      std::vector<std::pair<NodeId, NodeId>> candidates;
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
          if (!spec.nodes[u].reflector && !spec.nodes[v].reflector &&
              spec.nodes[u].cluster == spec.nodes[v].cluster) {
            candidates.emplace_back(u, v);
          }
        }
      }
      if (candidates.empty()) break;
      const auto [u, v] = candidates[rng.pick_index(candidates)];
      spec.client_sessions.push_back({u, v});
      break;
    }
    case 4: {  // remove a client-client session
      if (spec.client_sessions.empty()) break;
      spec.client_sessions.erase(
          spec.client_sessions.begin() +
          static_cast<std::ptrdiff_t>(rng.pick_index(spec.client_sessions)));
      break;
    }
    case 5: {  // add an exit
      ExitSpec exit;
      exit.name = fresh_label(spec, "x", rng);
      exit.at = static_cast<NodeId>(rng.below(n));
      exit.next_as = static_cast<AsId>(1 + rng.below(kMaxAs));
      exit.med = static_cast<Med>(rng.below(kMaxMed + 1));
      exit.exit_cost = static_cast<Cost>(rng.below(kMaxExitCost + 1));
      exit.ebgp_peer = static_cast<BgpId>(1000 + rng.below(1000));
      if (rng.chance(0.3)) exit.communities = 1u << rng.below(4);
      spec.exits.push_back(std::move(exit));
      break;
    }
    case 6: {  // remove an exit
      if (spec.exits.size() < 2) break;
      spec.exits.erase(spec.exits.begin() +
                       static_cast<std::ptrdiff_t>(rng.pick_index(spec.exits)));
      break;
    }
    case 7: {  // perturb exit MED / moving it between AS groups matters
      if (spec.exits.empty()) break;
      spec.exits[rng.pick_index(spec.exits)].med = static_cast<Med>(rng.below(kMaxMed + 1));
      break;
    }
    case 8: {  // perturb exit cost or AS
      if (spec.exits.empty()) break;
      ExitSpec& exit = spec.exits[rng.pick_index(spec.exits)];
      if (rng.chance(0.5)) {
        exit.exit_cost = static_cast<Cost>(rng.below(kMaxExitCost + 1));
      } else {
        exit.next_as = static_cast<AsId>(1 + rng.below(kMaxAs));
      }
      break;
    }
    case 9: {  // toggle a community tag on an exit
      if (spec.exits.empty()) break;
      spec.exits[rng.pick_index(spec.exits)].communities ^= 1u << rng.below(4);
      break;
    }
    case 10: {  // rotate the global MED mode
      spec.policy.med = random_med_mode(rng);
      break;
    }
    case 11: {  // add or drop a per-AS MED override (regime mix)
      if (!spec.policy.med_overrides.empty() && rng.chance(0.4)) {
        spec.policy.med_overrides.erase(
            spec.policy.med_overrides.begin() +
            static_cast<std::ptrdiff_t>(rng.pick_index(spec.policy.med_overrides)));
      } else {
        bgp::MedOverride override;
        override.as = static_cast<AsId>(1 + rng.below(kMaxAs));
        override.mode = random_med_mode(rng);
        spec.policy.med_overrides.push_back(override);
      }
      break;
    }
    case 12: {  // add or drop an ingress route-map clause
      if (!spec.route_maps.empty() && rng.chance(0.4)) {
        spec.route_maps.erase(spec.route_maps.begin() +
                              static_cast<std::ptrdiff_t>(rng.pick_index(spec.route_maps)));
      } else {
        spec.route_maps.push_back(
            {static_cast<NodeId>(rng.below(n)), random_clause(rng)});
      }
      break;
    }
    case 13: {  // grow a client in a random cluster, linked to a random node
      if (n >= 24) break;  // keep mutants classifiable in the step budget
      NodeSpec node;
      node.label = fresh_label(spec, "g", rng);
      node.cluster = spec.nodes[rng.below(n)].cluster;
      node.reflector = false;
      node.bgp_id = static_cast<BgpId>(n);
      const NodeId anchor = static_cast<NodeId>(rng.below(n));
      spec.nodes.push_back(std::move(node));
      spec.links.push_back({static_cast<NodeId>(n), anchor,
                            static_cast<Cost>(1 + rng.below(kMaxLinkCost))});
      break;
    }
    default: {  // mesh a cluster: pairwise sessions among its clients (the
                // confederation-flavored move)
      const auto cluster = spec.nodes[rng.below(n)].cluster;
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
          if (spec.nodes[u].cluster != cluster || spec.nodes[v].cluster != cluster) continue;
          if (spec.nodes[u].reflector || spec.nodes[v].reflector) continue;
          const bool present = std::any_of(
              spec.client_sessions.begin(), spec.client_sessions.end(),
              [&](const SessionSpec& s) {
                return (s.a == u && s.b == v) || (s.a == v && s.b == u);
              });
          if (!present) spec.client_sessions.push_back({u, v});
        }
      }
      break;
    }
  }
}

}  // namespace

InstanceSpec mutate(const InstanceSpec& parent, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  InstanceSpec child = parent;
  const std::size_t edits = 1 + rng.below(3);
  for (std::size_t i = 0; i < edits; ++i) mutate_once(child, rng);
  return child;
}

}  // namespace ibgp::explore
