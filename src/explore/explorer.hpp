#pragma once
// Coverage-guided adversarial search over the policy/configuration space.
//
// Classic random sampling (analysis/finder) draws every candidate fresh; the
// explorer instead *evolves* a frontier, AFL-style.  Fitness is not a score
// but coverage novelty: every evaluated mutant runs once through the
// message-level EventEngine, and its aggregated SelectionProvenance
// histogram (which selection rule was decisive how often, log2-bucketed, plus
// the convergence verdicts and a best-flip-volume bucket) is hashed into a
// coverage key.  A mutant whose key was never seen before joins the frontier
// even if it does not oscillate — it exercises a new decision pattern, and
// its neighborhood is where new failure shapes live.
//
// Seeds combine random route-reflection instances with confederation-derived
// hybrids (explore::hybrid_spec over rfc3345_confederation and random
// confederations), so the search starts in both problem families the RFC
// 3345 lineage documents.
//
// Every oscillating find (a provable cycle under a deterministic schedule —
// step-budget exhaustion is counted separately and never treated as a hit)
// is delta-debugged down by explore::minimize and deduplicated by the
// fingerprint of its canonical .topo serialization.
//
// Determinism: evaluation fans out in fixed-size batches where mutant i of
// round r is a pure function of derive_seed(seed, r * batch + i) and the
// frontier snapshot taken before the batch; results fold in index order, so
// --jobs N reproduces --jobs 1 exactly.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/finder.hpp"
#include "core/policy.hpp"
#include "explore/spec.hpp"
#include "topo/random.hpp"

namespace ibgp::explore {

struct ExploreConfig {
  /// The protocol under attack (whose oscillations we hunt).
  core::ProtocolKind attack = core::ProtocolKind::kStandard;

  std::uint64_t seed = 1;
  /// Mutants to evaluate in total.  Rounds always run as full batches, so
  /// the search stops at the first round boundary at or past the budget
  /// (evaluated may exceed budget by up to batch-1); this keeps every round
  /// a pure function of (seed, round, batch) for checkpoint/resume.
  std::size_t budget = 2000;
  std::size_t batch = 64;           ///< parallel evaluation batch size
  std::size_t max_steps = 4000;     ///< schedule-engine budget per classify
  std::size_t max_deliveries = 20000;  ///< event-engine budget per coverage run
  std::size_t frontier_cap = 64;    ///< retained seeds (oldest evicted)
  std::size_t jobs = 1;             ///< worker threads for batch evaluation

  /// Hit criteria, mirroring analysis::FinderCriteria.
  bool require_med_induced = false;
  bool require_modified_converges = true;

  bool minimize = true;             ///< delta-debug every hit

  /// Random route-reflection seed instances (seeds 0..random_seeds-1).
  topo::RandomConfig random_config;
  std::size_t random_seeds = 8;
  /// Confederation-derived hybrid seeds: rfc3345_confederation() plus
  /// hybrid_seeds-1 random confederations.
  std::size_t hybrid_seeds = 2;

  /// Resumable search frontier.  With a non-empty checkpoint_path, the full
  /// search state — round counter, stats, frontier specs, coverage/hit
  /// dedup sets, accumulated hits — is written atomically to that path
  /// after every completed round ("ibgp-explore-ckpt-v1").  With resume
  /// also set, a matching checkpoint (same seed, attack protocol, and
  /// batch — the determinism-critical parameters) is loaded and the search
  /// continues at the next round, bit-for-bit as if never interrupted:
  /// mutant i of round r is a pure function of the seed and r*batch+i, so
  /// a resumed budget-256 run equals an uninterrupted budget-256 run
  /// (tests/test_explore.cpp pins this).  A missing, torn, or mismatched
  /// checkpoint starts from scratch — never an error.
  std::string checkpoint_path;
  bool resume = false;
};

struct ExploreHit {
  InstanceSpec spec;        ///< minimized when config.minimize, else raw
  analysis::ConvergenceSignature signature;  ///< attack protocol, minimized spec
  bool med_induced = false;
  bool hybrid = false;      ///< descended from a confederation hybrid seed
  /// Fingerprint of the canonical serialization (name-independent); the
  /// dedup key and the corpus entry's content address.
  std::uint64_t fingerprint = 0;
};

struct ExploreStats {
  std::size_t evaluated = 0;       ///< mutants built and run
  std::size_t invalid = 0;         ///< offspring try_build rejected
  std::size_t truncated_runs = 0;  ///< classifications with a step-limit verdict
  std::size_t new_coverage = 0;    ///< frontier admissions
  std::size_t hits_raw = 0;        ///< oscillating finds before dedup
  /// Mutants where the attack protocol oscillated but kModified did too —
  /// would falsify the paper's Theorem 2; must stay 0.
  std::size_t theorem_violations = 0;
};

struct ExploreResult {
  std::vector<ExploreHit> hits;  ///< deduplicated, discovery order
  ExploreStats stats;
};

/// The coverage key of one evaluated instance (exposed for tests).
std::uint64_t coverage_key(const core::Instance& inst, core::ProtocolKind attack,
                           std::size_t max_deliveries);

ExploreResult explore(const ExploreConfig& config);

}  // namespace ibgp::explore
