#include "explore/explorer.hpp"

#include <bit>
#include <deque>
#include <optional>
#include <unordered_set>
#include <utility>

#include "confed/engine.hpp"
#include "engine/event_engine.hpp"
#include "explore/minimize.hpp"
#include "explore/mutate.hpp"
#include "topo/dsl.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ibgp::explore {

namespace {

/// log2 bucket (bit width): collapses counts so coverage keys describe the
/// *shape* of the rule histogram, not exact totals.
std::uint64_t bucket(std::uint64_t count) { return std::bit_width(count); }

struct FrontierItem {
  InstanceSpec spec;
  bool hybrid = false;
};

/// Everything one batched evaluation produces; folded sequentially after
/// the parallel_for, in index order.
struct Evaluation {
  bool valid = false;
  bool hybrid = false;
  InstanceSpec spec;
  analysis::ConvergenceSignature signature;
  std::uint64_t coverage = 0;
};

std::uint64_t canonical_fingerprint(const InstanceSpec& spec) {
  InstanceSpec canonical = spec;
  canonical.name = "ce";  // name-independent content address
  const auto inst = try_build(canonical);
  if (!inst) return 0;
  return util::fnv1a(topo::write_topo(*inst));
}

}  // namespace

std::uint64_t coverage_key(const core::Instance& inst, core::ProtocolKind attack,
                           std::size_t max_deliveries) {
  engine::EventEngine event_engine(inst, attack);
  event_engine.inject_all_exits(0);
  const auto result = event_engine.run(max_deliveries);

  util::Fingerprint fp;
  fp.add(result.converged ? 1u : 0u);
  fp.add(bucket(result.best_flips));
  for (const auto count : result.decisions_by_rule) fp.add(bucket(count));
  fp.add(bucket(result.decisions_empty));
  return fp.value();
}

ExploreResult explore(const ExploreConfig& config) {
  ExploreResult result;
  std::deque<FrontierItem> frontier;
  std::unordered_set<std::uint64_t> seen_coverage;
  std::unordered_set<std::uint64_t> seen_hits;

  const auto admit = [&](FrontierItem item, std::uint64_t key) {
    if (!seen_coverage.insert(key).second) return;
    ++result.stats.new_coverage;
    frontier.push_back(std::move(item));
    if (frontier.size() > config.frontier_cap) frontier.pop_front();
  };

  // --- seed pool ------------------------------------------------------------
  for (std::size_t i = 0; i < config.random_seeds; ++i) {
    const auto inst =
        topo::random_instance(config.random_config, util::derive_seed(config.seed, i));
    if (inst.exits().empty()) continue;
    admit({spec_of(inst), /*hybrid=*/false},
          coverage_key(inst, config.attack, config.max_deliveries));
  }
  for (std::size_t i = 0; i < config.hybrid_seeds; ++i) {
    confed::ConfedInstance confed =
        i == 0 ? confed::rfc3345_confederation()
               : confed::random_confederation(
                     confed::RandomConfedConfig{},
                     util::derive_seed(config.seed ^ 0x9e3779b9u, i));
    InstanceSpec spec = hybrid_spec(confed);
    const auto inst = try_build(spec);
    if (!inst || inst->exits().empty()) continue;
    admit({std::move(spec), /*hybrid=*/true},
          coverage_key(*inst, config.attack, config.max_deliveries));
  }
  if (frontier.empty()) return result;  // nothing valid to mutate

  // --- handle one oscillating evaluation (sequential, index order) ----------
  const auto process_hit = [&](const Evaluation& eval) {
    ++result.stats.hits_raw;

    if (config.require_modified_converges) {
      const auto inst = try_build(eval.spec);
      const auto modified =
          analysis::classify(*inst, core::ProtocolKind::kModified, config.max_steps);
      if (modified.oscillates()) {
        ++result.stats.theorem_violations;
        return;
      }
      if (!modified.converges_always_tested()) return;  // indeterminate: skip
    }

    MinimizeGoal goal;
    goal.protocol = config.attack;
    goal.signature = eval.signature;
    goal.modified_converges = config.require_modified_converges;
    goal.med_induced = config.require_med_induced;
    goal.max_steps = config.max_steps;

    if (config.require_med_induced) {
      const auto inst = try_build(eval.spec);
      if (!satisfies(*inst, goal)) return;  // not MED-induced: not a hit here
    }

    ExploreHit hit;
    hit.spec = config.minimize ? minimize(eval.spec, goal) : eval.spec;
    hit.hybrid = eval.hybrid;
    hit.med_induced = config.require_med_induced;
    hit.fingerprint = canonical_fingerprint(hit.spec);
    const auto minimized_inst = try_build(hit.spec);
    if (!minimized_inst || hit.fingerprint == 0) return;
    hit.signature = analysis::classify(*minimized_inst, config.attack, config.max_steps);
    if (!config.require_med_induced) {
      // Opportunistic tag: is the find MED-induced anyway?
      MinimizeGoal med_goal = goal;
      med_goal.signature = hit.signature;
      med_goal.med_induced = true;
      hit.med_induced = satisfies(*minimized_inst, med_goal);
    }
    if (seen_hits.insert(hit.fingerprint).second) result.hits.push_back(std::move(hit));
  };

  // --- batched coverage-guided search ---------------------------------------
  std::size_t round = 0;
  while (result.stats.evaluated < config.budget) {
    const std::size_t batch =
        std::min(config.batch, config.budget - result.stats.evaluated);
    // Snapshot: mutants of this round see a fixed frontier regardless of
    // evaluation order.
    const std::vector<FrontierItem> snapshot(frontier.begin(), frontier.end());

    std::vector<Evaluation> evals(batch);
    util::parallel_for(batch, util::resolve_jobs(config.jobs), [&](std::size_t i) {
      const std::uint64_t child_seed =
          util::derive_seed(config.seed, 1 + round * config.batch + i);
      util::Xoshiro256 rng(child_seed);
      const FrontierItem& parent = snapshot[rng.pick_index(snapshot)];
      Evaluation& eval = evals[i];
      eval.hybrid = parent.hybrid;
      eval.spec = mutate(parent.spec, util::derive_seed(child_seed, 1));
      const auto inst = try_build(eval.spec);
      if (!inst || inst->exits().empty()) return;
      eval.valid = true;
      eval.coverage = coverage_key(*inst, config.attack, config.max_deliveries);
      eval.signature = analysis::classify(*inst, config.attack, config.max_steps);
    });

    for (Evaluation& eval : evals) {
      ++result.stats.evaluated;
      if (!eval.valid) {
        ++result.stats.invalid;
        continue;
      }
      if (eval.signature.truncated()) ++result.stats.truncated_runs;
      admit({eval.spec, eval.hybrid}, eval.coverage);
      // A hit needs a PROVEN cycle; truncated() alone never qualifies
      // (oscillates() is only true on a kCycleDetected verdict).
      if (eval.signature.oscillates()) process_hit(eval);
    }
    ++round;
  }
  return result;
}

}  // namespace ibgp::explore
