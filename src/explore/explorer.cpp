#include "explore/explorer.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "confed/engine.hpp"
#include "engine/event_engine.hpp"
#include "explore/minimize.hpp"
#include "explore/mutate.hpp"
#include "topo/dsl.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ibgp::explore {

namespace {

/// log2 bucket (bit width): collapses counts so coverage keys describe the
/// *shape* of the rule histogram, not exact totals.
std::uint64_t bucket(std::uint64_t count) { return std::bit_width(count); }

struct FrontierItem {
  InstanceSpec spec;
  bool hybrid = false;
};

/// Everything one batched evaluation produces; folded sequentially after
/// the parallel_for, in index order.
struct Evaluation {
  bool valid = false;
  bool hybrid = false;
  InstanceSpec spec;
  analysis::ConvergenceSignature signature;
  std::uint64_t coverage = 0;
};

std::uint64_t canonical_fingerprint(const InstanceSpec& spec) {
  InstanceSpec canonical = spec;
  canonical.name = "ce";  // name-independent content address
  const auto inst = try_build(canonical);
  if (!inst) return 0;
  return util::fnv1a(topo::write_topo(*inst));
}

// --- round-granularity checkpointing (ibgp-explore-ckpt-v1) -----------------
//
// The InstanceSpec genotype is serialized field-for-field (NOT via a .topo
// round-trip): mutants are pure functions of the parent spec, so any
// normalization on the way through a different format would fork the resumed
// search from the uninterrupted one.

using util::json::Array;
using util::json::Object;
using util::json::Value;

constexpr std::string_view kExploreCkptSchema = "ibgp-explore-ckpt-v1";

Value spec_json(const InstanceSpec& spec) {
  Object out;
  out.emplace_back("name", spec.name);
  {
    Array nodes;
    nodes.reserve(spec.nodes.size());
    for (const auto& n : spec.nodes) {
      Array tuple;
      tuple.emplace_back(n.label);
      tuple.emplace_back(static_cast<std::uint64_t>(n.cluster));
      tuple.emplace_back(n.reflector);
      tuple.emplace_back(static_cast<std::uint64_t>(n.bgp_id));
      nodes.emplace_back(std::move(tuple));
    }
    out.emplace_back("nodes", std::move(nodes));
  }
  {
    Array links;
    links.reserve(spec.links.size());
    for (const auto& l : spec.links) {
      Array tuple;
      tuple.emplace_back(static_cast<std::uint64_t>(l.a));
      tuple.emplace_back(static_cast<std::uint64_t>(l.b));
      tuple.emplace_back(static_cast<std::int64_t>(l.cost));
      links.emplace_back(std::move(tuple));
    }
    out.emplace_back("links", std::move(links));
  }
  {
    Array sessions;
    sessions.reserve(spec.client_sessions.size());
    for (const auto& s : spec.client_sessions) {
      Array tuple;
      tuple.emplace_back(static_cast<std::uint64_t>(s.a));
      tuple.emplace_back(static_cast<std::uint64_t>(s.b));
      sessions.emplace_back(std::move(tuple));
    }
    out.emplace_back("client_sessions", std::move(sessions));
  }
  {
    Array exits;
    exits.reserve(spec.exits.size());
    for (const auto& e : spec.exits) {
      Array tuple;
      tuple.emplace_back(e.name);
      tuple.emplace_back(static_cast<std::uint64_t>(e.at));
      tuple.emplace_back(static_cast<std::uint64_t>(e.next_as));
      tuple.emplace_back(static_cast<std::uint64_t>(e.med));
      tuple.emplace_back(static_cast<std::uint64_t>(e.local_pref));
      tuple.emplace_back(static_cast<std::uint64_t>(e.as_path_length));
      tuple.emplace_back(static_cast<std::int64_t>(e.exit_cost));
      tuple.emplace_back(static_cast<std::uint64_t>(e.ebgp_peer));
      tuple.emplace_back(static_cast<std::uint64_t>(e.communities));
      exits.emplace_back(std::move(tuple));
    }
    out.emplace_back("exits", std::move(exits));
  }
  {
    Array maps;
    maps.reserve(spec.route_maps.size());
    for (const auto& m : spec.route_maps) {
      Object entry;
      entry.emplace_back("node", static_cast<std::uint64_t>(m.node));
      entry.emplace_back("match_as", m.clause.match_as
                                         ? Value(static_cast<std::uint64_t>(*m.clause.match_as))
                                         : Value(nullptr));
      entry.emplace_back("match_communities",
                         static_cast<std::uint64_t>(m.clause.match_communities));
      entry.emplace_back("set_local_pref",
                         m.clause.set_local_pref
                             ? Value(static_cast<std::uint64_t>(*m.clause.set_local_pref))
                             : Value(nullptr));
      entry.emplace_back("set_med", m.clause.set_med
                                        ? Value(static_cast<std::uint64_t>(*m.clause.set_med))
                                        : Value(nullptr));
      entry.emplace_back("add_communities",
                         static_cast<std::uint64_t>(m.clause.add_communities));
      maps.emplace_back(std::move(entry));
    }
    out.emplace_back("route_maps", std::move(maps));
  }
  {
    Object policy;
    policy.emplace_back("order", static_cast<std::uint64_t>(spec.policy.order));
    policy.emplace_back("med", static_cast<std::uint64_t>(spec.policy.med));
    Array overrides;
    overrides.reserve(spec.policy.med_overrides.size());
    for (const auto& o : spec.policy.med_overrides) {
      Array tuple;
      tuple.emplace_back(static_cast<std::uint64_t>(o.as));
      tuple.emplace_back(static_cast<std::uint64_t>(o.mode));
      overrides.emplace_back(std::move(tuple));
    }
    policy.emplace_back("med_overrides", std::move(overrides));
    out.emplace_back("policy", std::move(policy));
  }
  return Value(std::move(out));
}

const Value& ckpt_field(const Value& doc, std::string_view key) {
  const Value* v = doc.find(key);
  if (v == nullptr) {
    throw std::runtime_error("ibgp-explore-ckpt-v1: missing field '" + std::string(key) +
                             "'");
  }
  return *v;
}

const Array& ckpt_tuple(const Value& value, std::size_t arity) {
  const auto& arr = value.as_array();
  if (arr.size() != arity) {
    throw std::runtime_error("ibgp-explore-ckpt-v1: tuple arity mismatch");
  }
  return arr;
}

InstanceSpec parse_spec(const Value& doc) {
  InstanceSpec spec;
  spec.name = ckpt_field(doc, "name").as_string();
  for (const auto& entry : ckpt_field(doc, "nodes").as_array()) {
    const auto& tuple = ckpt_tuple(entry, 4);
    NodeSpec n;
    n.label = tuple[0].as_string();
    n.cluster = static_cast<netsim::ClusterId>(tuple[1].as_uint());
    n.reflector = tuple[2].as_bool();
    n.bgp_id = static_cast<BgpId>(tuple[3].as_uint());
    spec.nodes.push_back(std::move(n));
  }
  for (const auto& entry : ckpt_field(doc, "links").as_array()) {
    const auto& tuple = ckpt_tuple(entry, 3);
    spec.links.push_back({static_cast<NodeId>(tuple[0].as_uint()),
                          static_cast<NodeId>(tuple[1].as_uint()),
                          static_cast<Cost>(tuple[2].as_int())});
  }
  for (const auto& entry : ckpt_field(doc, "client_sessions").as_array()) {
    const auto& tuple = ckpt_tuple(entry, 2);
    spec.client_sessions.push_back({static_cast<NodeId>(tuple[0].as_uint()),
                                    static_cast<NodeId>(tuple[1].as_uint())});
  }
  for (const auto& entry : ckpt_field(doc, "exits").as_array()) {
    const auto& tuple = ckpt_tuple(entry, 9);
    ExitSpec e;
    e.name = tuple[0].as_string();
    e.at = static_cast<NodeId>(tuple[1].as_uint());
    e.next_as = static_cast<AsId>(tuple[2].as_uint());
    e.med = static_cast<Med>(tuple[3].as_uint());
    e.local_pref = static_cast<LocalPref>(tuple[4].as_uint());
    e.as_path_length = static_cast<std::uint32_t>(tuple[5].as_uint());
    e.exit_cost = static_cast<Cost>(tuple[6].as_int());
    e.ebgp_peer = static_cast<BgpId>(tuple[7].as_uint());
    e.communities = static_cast<std::uint32_t>(tuple[8].as_uint());
    spec.exits.push_back(std::move(e));
  }
  for (const auto& entry : ckpt_field(doc, "route_maps").as_array()) {
    RouteMapSpec m;
    m.node = static_cast<NodeId>(ckpt_field(entry, "node").as_uint());
    const Value& match_as = ckpt_field(entry, "match_as");
    if (!match_as.is_null()) m.clause.match_as = static_cast<AsId>(match_as.as_uint());
    m.clause.match_communities =
        static_cast<std::uint32_t>(ckpt_field(entry, "match_communities").as_uint());
    const Value& set_lp = ckpt_field(entry, "set_local_pref");
    if (!set_lp.is_null()) m.clause.set_local_pref = static_cast<LocalPref>(set_lp.as_uint());
    const Value& set_med = ckpt_field(entry, "set_med");
    if (!set_med.is_null()) m.clause.set_med = static_cast<Med>(set_med.as_uint());
    m.clause.add_communities =
        static_cast<std::uint32_t>(ckpt_field(entry, "add_communities").as_uint());
    spec.route_maps.push_back(std::move(m));
  }
  const Value& policy = ckpt_field(doc, "policy");
  {
    const std::uint64_t order = ckpt_field(policy, "order").as_uint();
    if (order > static_cast<std::uint64_t>(bgp::RuleOrder::kIgpCostFirst)) {
      throw std::runtime_error("ibgp-explore-ckpt-v1: policy order out of range");
    }
    spec.policy.order = static_cast<bgp::RuleOrder>(order);
    const std::uint64_t med = ckpt_field(policy, "med").as_uint();
    if (med > static_cast<std::uint64_t>(bgp::MedMode::kIgnore)) {
      throw std::runtime_error("ibgp-explore-ckpt-v1: policy med mode out of range");
    }
    spec.policy.med = static_cast<bgp::MedMode>(med);
    for (const auto& entry : ckpt_field(policy, "med_overrides").as_array()) {
      const auto& tuple = ckpt_tuple(entry, 2);
      const std::uint64_t mode = tuple[1].as_uint();
      if (mode > static_cast<std::uint64_t>(bgp::MedMode::kIgnore)) {
        throw std::runtime_error("ibgp-explore-ckpt-v1: override med mode out of range");
      }
      spec.policy.med_overrides.push_back(
          {static_cast<AsId>(tuple[0].as_uint()), static_cast<bgp::MedMode>(mode)});
    }
  }
  return spec;
}

Array sorted_set_json(const std::unordered_set<std::uint64_t>& set) {
  std::vector<std::uint64_t> values(set.begin(), set.end());
  std::sort(values.begin(), values.end());
  Array out;
  out.reserve(values.size());
  for (const auto v : values) out.emplace_back(v);
  return out;
}

void save_explore_checkpoint(const ExploreConfig& config, const ExploreResult& result,
                             const std::deque<FrontierItem>& frontier,
                             const std::unordered_set<std::uint64_t>& seen_coverage,
                             const std::unordered_set<std::uint64_t>& seen_hits,
                             std::size_t round) {
  Object doc;
  doc.emplace_back("schema", kExploreCkptSchema);
  doc.emplace_back("seed", config.seed);
  doc.emplace_back("attack", core::protocol_name(config.attack));
  doc.emplace_back("batch", config.batch);
  doc.emplace_back("round", round);
  {
    Object stats;
    stats.emplace_back("evaluated", result.stats.evaluated);
    stats.emplace_back("invalid", result.stats.invalid);
    stats.emplace_back("truncated_runs", result.stats.truncated_runs);
    stats.emplace_back("new_coverage", result.stats.new_coverage);
    stats.emplace_back("hits_raw", result.stats.hits_raw);
    stats.emplace_back("theorem_violations", result.stats.theorem_violations);
    doc.emplace_back("stats", std::move(stats));
  }
  {
    Array items;
    items.reserve(frontier.size());
    for (const auto& item : frontier) {
      Object entry;
      entry.emplace_back("hybrid", item.hybrid);
      entry.emplace_back("spec", spec_json(item.spec));
      items.emplace_back(std::move(entry));
    }
    doc.emplace_back("frontier", std::move(items));
  }
  doc.emplace_back("seen_coverage", sorted_set_json(seen_coverage));
  doc.emplace_back("seen_hits", sorted_set_json(seen_hits));
  {
    Array hits;
    hits.reserve(result.hits.size());
    for (const auto& hit : result.hits) {
      Object entry;
      entry.emplace_back("hybrid", hit.hybrid);
      entry.emplace_back("med_induced", hit.med_induced);
      entry.emplace_back("fingerprint", hit.fingerprint);
      entry.emplace_back("spec", spec_json(hit.spec));
      hits.emplace_back(std::move(entry));
    }
    doc.emplace_back("hits", std::move(hits));
  }
  // Best-effort: a failed write costs resumability, never the search.
  (void)util::json::write_file_atomic(config.checkpoint_path, Value(std::move(doc)));
}

bool load_explore_checkpoint(const ExploreConfig& config, ExploreResult& result,
                             std::deque<FrontierItem>& frontier,
                             std::unordered_set<std::uint64_t>& seen_coverage,
                             std::unordered_set<std::uint64_t>& seen_hits,
                             std::size_t& round) {
  const auto doc = util::json::read_file(config.checkpoint_path);
  if (!doc) return false;
  try {
    const Value* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != kExploreCkptSchema) {
      return false;
    }
    // Identity guard on the determinism-critical parameters (budget is
    // deliberately NOT guarded: resuming with a larger budget extends the
    // very same search).
    if (ckpt_field(*doc, "seed").as_uint() != config.seed) return false;
    if (ckpt_field(*doc, "attack").as_string() != core::protocol_name(config.attack)) {
      return false;
    }
    if (ckpt_field(*doc, "batch").as_uint() != config.batch) return false;

    round = ckpt_field(*doc, "round").as_uint();
    const Value& stats = ckpt_field(*doc, "stats");
    result.stats.evaluated = ckpt_field(stats, "evaluated").as_uint();
    result.stats.invalid = ckpt_field(stats, "invalid").as_uint();
    result.stats.truncated_runs = ckpt_field(stats, "truncated_runs").as_uint();
    result.stats.new_coverage = ckpt_field(stats, "new_coverage").as_uint();
    result.stats.hits_raw = ckpt_field(stats, "hits_raw").as_uint();
    result.stats.theorem_violations = ckpt_field(stats, "theorem_violations").as_uint();
    for (const auto& entry : ckpt_field(*doc, "frontier").as_array()) {
      FrontierItem item;
      item.hybrid = ckpt_field(entry, "hybrid").as_bool();
      item.spec = parse_spec(ckpt_field(entry, "spec"));
      frontier.push_back(std::move(item));
    }
    for (const auto& v : ckpt_field(*doc, "seen_coverage").as_array()) {
      seen_coverage.insert(v.as_uint());
    }
    for (const auto& v : ckpt_field(*doc, "seen_hits").as_array()) {
      seen_hits.insert(v.as_uint());
    }
    for (const auto& entry : ckpt_field(*doc, "hits").as_array()) {
      ExploreHit hit;
      hit.hybrid = ckpt_field(entry, "hybrid").as_bool();
      hit.med_induced = ckpt_field(entry, "med_induced").as_bool();
      hit.fingerprint = ckpt_field(entry, "fingerprint").as_uint();
      hit.spec = parse_spec(ckpt_field(entry, "spec"));
      // The signature is recomputed, not stored: classify() is a pure
      // function of the spec, and recomputing keeps the checkpoint free of
      // analysis-internal shapes.
      const auto inst = try_build(hit.spec);
      if (!inst) throw std::runtime_error("ibgp-explore-ckpt-v1: unbuildable hit spec");
      hit.signature = analysis::classify(*inst, config.attack, config.max_steps);
      result.hits.push_back(std::move(hit));
    }
    return true;
  } catch (const std::exception&) {
    // Torn or stale checkpoint: discard any partial state and start fresh.
    result = ExploreResult{};
    frontier.clear();
    seen_coverage.clear();
    seen_hits.clear();
    round = 0;
    return false;
  }
}

}  // namespace

std::uint64_t coverage_key(const core::Instance& inst, core::ProtocolKind attack,
                           std::size_t max_deliveries) {
  engine::EventEngine event_engine(inst, attack);
  event_engine.inject_all_exits(0);
  const auto result = event_engine.run(max_deliveries);

  util::Fingerprint fp;
  fp.add(result.converged ? 1u : 0u);
  fp.add(bucket(result.best_flips));
  for (const auto count : result.decisions_by_rule) fp.add(bucket(count));
  fp.add(bucket(result.decisions_empty));
  return fp.value();
}

ExploreResult explore(const ExploreConfig& config) {
  ExploreResult result;
  std::deque<FrontierItem> frontier;
  std::unordered_set<std::uint64_t> seen_coverage;
  std::unordered_set<std::uint64_t> seen_hits;
  std::size_t round = 0;

  const auto admit = [&](FrontierItem item, std::uint64_t key) {
    if (!seen_coverage.insert(key).second) return;
    ++result.stats.new_coverage;
    frontier.push_back(std::move(item));
    if (frontier.size() > config.frontier_cap) frontier.pop_front();
  };

  const bool resumed =
      config.resume && !config.checkpoint_path.empty() &&
      load_explore_checkpoint(config, result, frontier, seen_coverage, seen_hits, round);

  if (!resumed) {
    // --- seed pool ----------------------------------------------------------
    for (std::size_t i = 0; i < config.random_seeds; ++i) {
      const auto inst =
          topo::random_instance(config.random_config, util::derive_seed(config.seed, i));
      if (inst.exits().empty()) continue;
      admit({spec_of(inst), /*hybrid=*/false},
            coverage_key(inst, config.attack, config.max_deliveries));
    }
    for (std::size_t i = 0; i < config.hybrid_seeds; ++i) {
      confed::ConfedInstance confed =
          i == 0 ? confed::rfc3345_confederation()
                 : confed::random_confederation(
                       confed::RandomConfedConfig{},
                       util::derive_seed(config.seed ^ 0x9e3779b9u, i));
      InstanceSpec spec = hybrid_spec(confed);
      const auto inst = try_build(spec);
      if (!inst || inst->exits().empty()) continue;
      admit({std::move(spec), /*hybrid=*/true},
            coverage_key(*inst, config.attack, config.max_deliveries));
    }
  }
  if (frontier.empty()) return result;  // nothing valid to mutate

  // --- handle one oscillating evaluation (sequential, index order) ----------
  const auto process_hit = [&](const Evaluation& eval) {
    ++result.stats.hits_raw;

    if (config.require_modified_converges) {
      const auto inst = try_build(eval.spec);
      const auto modified =
          analysis::classify(*inst, core::ProtocolKind::kModified, config.max_steps);
      if (modified.oscillates()) {
        ++result.stats.theorem_violations;
        return;
      }
      if (!modified.converges_always_tested()) return;  // indeterminate: skip
    }

    MinimizeGoal goal;
    goal.protocol = config.attack;
    goal.signature = eval.signature;
    goal.modified_converges = config.require_modified_converges;
    goal.med_induced = config.require_med_induced;
    goal.max_steps = config.max_steps;

    if (config.require_med_induced) {
      const auto inst = try_build(eval.spec);
      if (!satisfies(*inst, goal)) return;  // not MED-induced: not a hit here
    }

    ExploreHit hit;
    hit.spec = config.minimize ? minimize(eval.spec, goal) : eval.spec;
    hit.hybrid = eval.hybrid;
    hit.med_induced = config.require_med_induced;
    hit.fingerprint = canonical_fingerprint(hit.spec);
    const auto minimized_inst = try_build(hit.spec);
    if (!minimized_inst || hit.fingerprint == 0) return;
    hit.signature = analysis::classify(*minimized_inst, config.attack, config.max_steps);
    if (!config.require_med_induced) {
      // Opportunistic tag: is the find MED-induced anyway?
      MinimizeGoal med_goal = goal;
      med_goal.signature = hit.signature;
      med_goal.med_induced = true;
      hit.med_induced = satisfies(*minimized_inst, med_goal);
    }
    if (seen_hits.insert(hit.fingerprint).second) result.hits.push_back(std::move(hit));
  };

  // --- batched coverage-guided search ---------------------------------------
  // Rounds are always FULL batches (the final round may overshoot the budget
  // by up to batch-1 mutants): round r's contents are a pure function of
  // (seed, r, batch), so a checkpoint taken at any round boundary resumes
  // bit-for-bit even when the interrupting budget was not batch-aligned.
  while (result.stats.evaluated < config.budget) {
    const std::size_t batch = config.batch;
    // Snapshot: mutants of this round see a fixed frontier regardless of
    // evaluation order.
    const std::vector<FrontierItem> snapshot(frontier.begin(), frontier.end());

    std::vector<Evaluation> evals(batch);
    util::parallel_for(batch, util::resolve_jobs(config.jobs), [&](std::size_t i) {
      const std::uint64_t child_seed =
          util::derive_seed(config.seed, 1 + round * config.batch + i);
      util::Xoshiro256 rng(child_seed);
      const FrontierItem& parent = snapshot[rng.pick_index(snapshot)];
      Evaluation& eval = evals[i];
      eval.hybrid = parent.hybrid;
      eval.spec = mutate(parent.spec, util::derive_seed(child_seed, 1));
      const auto inst = try_build(eval.spec);
      if (!inst || inst->exits().empty()) return;
      eval.valid = true;
      eval.coverage = coverage_key(*inst, config.attack, config.max_deliveries);
      eval.signature = analysis::classify(*inst, config.attack, config.max_steps);
    });

    for (Evaluation& eval : evals) {
      ++result.stats.evaluated;
      if (!eval.valid) {
        ++result.stats.invalid;
        continue;
      }
      if (eval.signature.truncated()) ++result.stats.truncated_runs;
      admit({eval.spec, eval.hybrid}, eval.coverage);
      // A hit needs a PROVEN cycle; truncated() alone never qualifies
      // (oscillates() is only true on a kCycleDetected verdict).
      if (eval.signature.oscillates()) process_hit(eval);
    }
    ++round;
    if (!config.checkpoint_path.empty()) {
      save_explore_checkpoint(config, result, frontier, seen_coverage, seen_hits, round);
    }
  }
  return result;
}

}  // namespace ibgp::explore
