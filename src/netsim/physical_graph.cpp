#include "netsim/physical_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ibgp::netsim {

PhysicalGraph::PhysicalGraph(std::size_t node_count) : adjacency_(node_count) {}

void PhysicalGraph::check_node(NodeId v) const {
  if (v >= adjacency_.size()) {
    throw std::invalid_argument("PhysicalGraph: node " + std::to_string(v) +
                                " out of range (node_count=" +
                                std::to_string(adjacency_.size()) + ")");
  }
}

NodeId PhysicalGraph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void PhysicalGraph::add_link(NodeId a, NodeId b, Cost cost) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("PhysicalGraph: self-loop on node " + std::to_string(a));
  if (cost <= 0) {
    throw std::invalid_argument("PhysicalGraph: IGP link costs must be positive, got " +
                                std::to_string(cost));
  }
  // Parallel links collapse to the cheapest one.
  for (auto& adj : adjacency_[a]) {
    if (adj.neighbor == b) {
      if (cost < adj.cost) {
        adj.cost = cost;
        for (auto& back : adjacency_[b]) {
          if (back.neighbor == a) back.cost = cost;
        }
        for (auto& link : links_) {
          if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) link.cost = cost;
        }
      }
      return;
    }
  }
  adjacency_[a].push_back({b, cost});
  adjacency_[b].push_back({a, cost});
  links_.push_back({std::min(a, b), std::max(a, b), cost});
}

std::span<const Adjacency> PhysicalGraph::neighbors(NodeId v) const {
  check_node(v);
  return adjacency_[v];
}

Cost PhysicalGraph::link_cost(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  for (const auto& adj : adjacency_[a]) {
    if (adj.neighbor == b) return adj.cost;
  }
  return kInfCost;
}

std::optional<std::size_t> PhysicalGraph::find_link(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].a == lo && links_[i].b == hi) return i;
  }
  return std::nullopt;
}

bool PhysicalGraph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const auto& adj : adjacency_[v]) {
      if (!seen[adj.neighbor]) {
        seen[adj.neighbor] = true;
        ++count;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return count == adjacency_.size();
}

}  // namespace ibgp::netsim
