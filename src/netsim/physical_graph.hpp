#pragma once
// The physical graph G_P = (V, E_P) of Section 4: routers of AS0 and their
// physical links with positive IGP costs.  I-BGP sessions ride on top of this
// graph; route metrics are IGP shortest-path costs computed over it.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace ibgp::netsim {

/// One undirected physical link with its IGP metric.
struct Link {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  Cost cost = 0;

  friend bool operator==(const Link&, const Link&) = default;
};

/// Adjacency entry: neighbor and the cost of the connecting link.
struct Adjacency {
  NodeId neighbor = kNoNode;
  Cost cost = 0;
};

/// Undirected weighted graph over nodes 0..node_count-1.
///
/// Link costs must be strictly positive (the paper requires positive integer
/// IGP metrics; zero-cost links would make "shortest path" tie-breaking
/// dominate every comparison).  Parallel links collapse to the cheapest.
class PhysicalGraph {
 public:
  PhysicalGraph() = default;
  explicit PhysicalGraph(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Adds (or cheapens) the undirected link a—b.
  /// Throws std::invalid_argument on self-loops, out-of-range nodes, or
  /// non-positive costs.
  void add_link(NodeId a, NodeId b, Cost cost);

  /// Appends a new isolated node; returns its id.
  NodeId add_node();

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId v) const;
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  /// Cost of the direct link a—b, or kInfCost if absent.
  [[nodiscard]] Cost link_cost(NodeId a, NodeId b) const;

  /// Index into links() of the undirected link a—b (either endpoint order),
  /// or nullopt if absent.  LinkState and the churn faults address links by
  /// this index.
  [[nodiscard]] std::optional<std::size_t> find_link(NodeId a, NodeId b) const;

  [[nodiscard]] bool has_link(NodeId a, NodeId b) const {
    return link_cost(a, b) != kInfCost;
  }

  /// True if every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  void check_node(NodeId v) const;

  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<Link> links_;
};

}  // namespace ibgp::netsim
