#pragma once
// Structural validation of an I-BGP-with-route-reflection substrate against
// the constraints of Section 4.  Returns human-readable violations rather
// than throwing, so tools can report all problems at once.

#include <string>
#include <vector>

#include "netsim/cluster_layout.hpp"
#include "netsim/physical_graph.hpp"
#include "netsim/session_graph.hpp"

namespace ibgp::netsim {

struct ValidationReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Checks:
///  - layout completeness (every node assigned, every cluster has a reflector)
///  - E_I constraint 1: reflector full mesh present
///  - E_I constraint 2: every client peers with every reflector of its cluster
///  - E_I constraint 3: no client session leaves its cluster
///  - warning: physical graph disconnected (some routes will be unusable)
///  - warning: triangle-inequality violations on reflector-mesh physical costs
///    (the paper's NP-hardness construction requires the triangle inequality
///    because I-BGP sessions ride shortest IGP paths)
ValidationReport validate(const PhysicalGraph& physical, const ClusterLayout& layout,
                          const SessionGraph& sessions);

}  // namespace ibgp::netsim
