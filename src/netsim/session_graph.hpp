#pragma once
// The logical graph G_I = (V, E_I) of Section 4: I-BGP peering sessions.
//
// E_I is determined by the cluster layout:
//   1. an edge between every pair of reflectors (the top-level full mesh),
//   2. an edge from every client of C_i to every reflector of C_i,
//   3. no edges between a client of C_i and any node of C_j (i != j),
//   4. optionally, edges between clients of the *same* cluster (the paper's
//      model explicitly permits these).
//
// build_session_graph() constructs 1+2 automatically and lets callers add
// same-cluster client-client sessions; constraint 3 is enforced.

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/cluster_layout.hpp"
#include "util/types.hpp"

namespace ibgp::netsim {

/// Classification of a session edge, used by the announcement rules.
enum class SessionKind : std::uint8_t {
  kReflectorMesh,    ///< reflector <-> reflector (any clusters)
  kReflectorClient,  ///< reflector <-> its client
  kClientClient,     ///< client <-> client, same cluster
};

class SessionGraph {
 public:
  SessionGraph() = default;
  explicit SessionGraph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }

  /// Adds the undirected session u—v of the given kind (idempotent).
  void add_session(NodeId u, NodeId v, SessionKind kind);

  [[nodiscard]] bool has_session(NodeId u, NodeId v) const;

  /// Peers of v in ascending node order.
  [[nodiscard]] std::span<const NodeId> peers(NodeId v) const { return adjacency_.at(v); }

  [[nodiscard]] std::size_t session_count() const { return edges_.size(); }

  struct Edge {
    NodeId u, v;  // u < v
    SessionKind kind;
  };
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Edge> edges_;
};

/// Builds E_I from the layout: the reflector mesh plus reflector-client
/// sessions.  `client_client_sessions` lists optional same-cluster client
/// pairs; a pair violating constraint 3 (different clusters) or involving a
/// reflector throws std::invalid_argument.
SessionGraph build_session_graph(
    const ClusterLayout& layout,
    std::span<const std::pair<NodeId, NodeId>> client_client_sessions = {});

}  // namespace ibgp::netsim
