#pragma once
// Memoized deterministic SPF recomputation for IGP churn.
//
// Every IGP epoch is a pure function of the effective link-cost vector
// (LinkState::effective()), so recomputation is cached on exactly that key.
// The cache is shared wherever the owning Instance is shared — including
// across the worker threads of a parallel fault sweep, where many cells
// visit the same churned states — so lookups are mutex-serialized.  The
// mapping is key -> value for a *pure* value, which keeps sweep results
// byte-identical regardless of which thread first computed an epoch; only
// hit/miss counters are schedule-dependent, and they are deliberately not
// part of any per-cell result or trace hash.
//
// Epochs are handed out as shared_ptr<const ShortestPaths>: an engine holds
// its current epoch alive independently of the cache and of other engines,
// and reverting to previously seen costs returns the *identical* object
// (pointer equality), making "link_up restored the original IGP" checkable.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "netsim/physical_graph.hpp"
#include "netsim/shortest_paths.hpp"
#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace ibgp::netsim {

/// Lookup statistics.  Schedule-dependent when the cache is shared across
/// sweep workers (whichever thread sees a key first takes the miss), hence
/// exported as *volatile* metrics only — never folded into trace hashes.
struct SpfCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;  ///< == misses: every miss materializes an epoch
};

class SpfCache {
 public:
  /// Copies the base graph (topology + node count); effective cost vectors
  /// passed to get() must be index-aligned with base.links().
  explicit SpfCache(const PhysicalGraph& base);

  /// The all-pairs shortest paths for the given effective link costs
  /// (kInfCost = link down), computing and memoizing on first sight.
  /// Throws std::invalid_argument on a size mismatch with the base graph.
  std::shared_ptr<const ShortestPaths> get(std::span<const Cost> effective);

  /// Distinct epochs materialized so far (>= 1 once the base was queried).
  [[nodiscard]] std::size_t size() const;

  /// Lookup counters since construction.  The base epoch is computed when
  /// the owning Instance primes the cache, so it costs exactly one miss at
  /// construction time and every later base-vector lookup is a hit (tested
  /// in test_obs).
  [[nodiscard]] SpfCacheStats stats() const;

  /// Mirrors the counters into `registry` as the volatile metrics
  /// "spf.hits" / "spf.misses" / "spf.inserts", from now on.  Pass nullptr
  /// to detach.
  void attach_metrics(obs::MetricsRegistry* registry);

 private:
  PhysicalGraph base_;
  mutable std::mutex mutex_;
  std::map<std::vector<Cost>, std::shared_ptr<const ShortestPaths>> cache_;
  SpfCacheStats stats_;  // guarded by mutex_
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* inserts_ = nullptr;
};

}  // namespace ibgp::netsim
