#pragma once
// Memoized deterministic SPF recomputation for IGP churn.
//
// Every IGP epoch is a pure function of the effective link-cost vector
// (LinkState::effective()), so recomputation is cached on exactly that key.
// The cache is shared wherever the owning Instance is shared — including
// across the worker threads of a parallel fault sweep, where many cells
// visit the same churned states — so lookups are mutex-serialized.  The
// mapping is key -> value for a *pure* value, which keeps sweep results
// byte-identical regardless of which thread first computed an epoch; only
// hit/miss counters are schedule-dependent, and they are deliberately not
// part of any per-cell result or trace hash.
//
// Epochs are handed out as shared_ptr<const ShortestPaths>: an engine holds
// its current epoch alive independently of the cache and of other engines,
// and reverting to previously seen costs returns the *identical* object
// (pointer equality), making "link_up restored the original IGP" checkable.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "netsim/physical_graph.hpp"
#include "netsim/shortest_paths.hpp"
#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace ibgp::netsim {

/// Lookup statistics.  Schedule-dependent when the cache is shared across
/// sweep workers (whichever thread sees a key first takes the miss), hence
/// exported as *volatile* metrics only — never folded into trace hashes.
struct SpfCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;   ///< == misses: every miss materializes an epoch
  std::uint64_t evictions = 0; ///< LRU evictions (0 while unbounded)
};

class SpfCache {
 public:
  /// Copies the base graph (topology + node count); effective cost vectors
  /// passed to get() must be index-aligned with base.links().
  explicit SpfCache(const PhysicalGraph& base);

  /// The all-pairs shortest paths for the given effective link costs
  /// (kInfCost = link down), computing and memoizing on first sight.
  /// Throws std::invalid_argument on a size mismatch with the base graph.
  std::shared_ptr<const ShortestPaths> get(std::span<const Cost> effective);

  /// Distinct epochs materialized so far (>= 1 once the base was queried).
  [[nodiscard]] std::size_t size() const;

  /// Bounds the number of memoized epochs.  0 (the default) means
  /// unbounded — the batch/sweep contract, where "reverting to previously
  /// seen costs returns the identical object" must hold forever.  A
  /// long-lived daemon under IGP churn sets a cap instead: when a miss
  /// would exceed it, the least-recently-used epoch is evicted (counted in
  /// stats().evictions and the volatile metric "spf.evictions").  The
  /// *base* epoch — the first key ever inserted, primed by the owning
  /// Instance — is never evicted, so the steady-state graph stays warm and
  /// pointer-stable.  Engines keep their current epoch alive via
  /// shared_ptr, so eviction never invalidates an in-use epoch; a revisit
  /// after eviction simply recomputes the same pure value.
  void set_capacity(std::size_t max_epochs);

  /// Lookup counters since construction.  The base epoch is computed when
  /// the owning Instance primes the cache, so it costs exactly one miss at
  /// construction time and every later base-vector lookup is a hit (tested
  /// in test_obs).
  [[nodiscard]] SpfCacheStats stats() const;

  /// Mirrors the counters into `registry` as the volatile metrics
  /// "spf.hits" / "spf.misses" / "spf.inserts", from now on, and records
  /// each miss's recompute wall time into the volatile span histogram
  /// "spf.recompute_ns" — the measured baseline for the ROADMAP
  /// incremental-SPF item.  Pass nullptr to detach.
  void attach_metrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    std::shared_ptr<const ShortestPaths> spf;
    std::uint64_t last_use = 0;  ///< tick of the most recent get() touch
    bool pinned = false;         ///< base epoch: never evicted
  };

  void evict_lru_locked();  // requires mutex_ held; skips pinned entries

  PhysicalGraph base_;
  mutable std::mutex mutex_;
  std::map<std::vector<Cost>, Entry> cache_;
  SpfCacheStats stats_;  // guarded by mutex_
  std::size_t capacity_ = 0;   // 0 = unbounded
  std::uint64_t use_tick_ = 0; // monotonically increasing LRU clock
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Histogram* recompute_ns_ = nullptr;  // miss-path wall time (volatile)
};

}  // namespace ibgp::netsim
