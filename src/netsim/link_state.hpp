#pragma once
// Mutable runtime view of the physical graph's link metrics.
//
// The paper parameterizes every route by IGP shortest-path distances
// (Section 4), and the base PhysicalGraph is immutable by design — an
// Instance is the static tuple SR.  IGP churn (metric changes, link
// failures) is therefore modeled as a *state vector over the base graph's
// links*: per link, the currently configured cost and an up/down flag.
// The effective cost vector (kInfCost where down) is the canonical key of
// an IGP epoch: two states with equal effective vectors yield identical
// shortest paths, which is what SpfCache memoizes on.

#include <span>
#include <vector>

#include "netsim/physical_graph.hpp"
#include "util/types.hpp"

namespace ibgp::netsim {

class LinkState {
 public:
  LinkState() = default;

  /// Starts with every link up at its base-graph cost.
  explicit LinkState(const PhysicalGraph& graph);

  [[nodiscard]] std::size_t link_count() const { return cost_.size(); }

  [[nodiscard]] bool is_down(std::size_t link) const { return down_.at(link); }

  /// The configured (administrative) cost — retained while the link is down
  /// so a later link-up restores it.
  [[nodiscard]] Cost cost(std::size_t link) const { return cost_.at(link); }

  /// Per-link effective costs, index-aligned with graph.links():
  /// the configured cost where up, kInfCost where down.  This vector is the
  /// IGP-epoch cache key.
  [[nodiscard]] std::span<const Cost> effective() const { return effective_; }

  /// Sets the configured cost (must be positive; throws otherwise).
  /// Returns true iff the *effective* vector changed (a cost change on a
  /// down link only retargets the eventual link-up).
  bool set_cost(std::size_t link, Cost cost);

  /// Fails the link.  Returns true iff it was up (effective change).
  bool set_down(std::size_t link);

  /// Restores the link at its configured cost.  Returns true iff it was
  /// down (effective change).
  bool set_up(std::size_t link);

 private:
  std::vector<Cost> cost_;       // configured cost per link
  std::vector<bool> down_;       // failure flag per link
  std::vector<Cost> effective_;  // cost_ masked by down_
};

}  // namespace ibgp::netsim
