#include "netsim/shortest_paths.hpp"

#include <queue>
#include <stdexcept>

#include "util/hash.hpp"

namespace ibgp::netsim {

ShortestPaths::ShortestPaths(const PhysicalGraph& graph)
    : n_(graph.node_count()), dist_(n_ * n_, kInfCost), next_(n_ * n_, kNoNode) {
  using Item = std::pair<Cost, NodeId>;  // (distance, node), min-heap
  for (NodeId src = 0; src < n_; ++src) {
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    Cost* dist = dist_.data() + index(src, 0);
    dist[src] = 0;
    heap.emplace(0, src);
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d != dist[v]) continue;  // stale entry
      for (const auto& adj : graph.neighbors(v)) {
        const Cost nd = d + adj.cost;
        if (nd < dist[adj.neighbor]) {
          dist[adj.neighbor] = nd;
          heap.emplace(nd, adj.neighbor);
        }
      }
    }
  }

  // Deterministic next hops: from u toward v, the lowest-numbered neighbor x
  // of u with cost(u,x) + dist(x,v) == dist(u,v).  Precomputed so the object
  // never needs the graph again (and lookups are O(1)).
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < n_; ++v) {
      if (u == v || dist_[index(u, v)] == kInfCost) continue;
      NodeId best = kNoNode;
      for (const auto& adj : graph.neighbors(u)) {
        if (dist_[index(adj.neighbor, v)] == kInfCost) continue;
        if (adj.cost + dist_[index(adj.neighbor, v)] == dist_[index(u, v)]) {
          if (best == kNoNode || adj.neighbor < best) best = adj.neighbor;
        }
      }
      next_[index(u, v)] = best;
    }
  }

  util::Fingerprint fp;
  fp.add(n_).add_range(dist_).add_range(next_);
  fingerprint_ = fp.value();
}

NodeId ShortestPaths::next_hop(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_) throw std::invalid_argument("ShortestPaths: node out of range");
  if (u == v) return kNoNode;
  return next_[index(u, v)];
}

std::vector<NodeId> ShortestPaths::path(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_) throw std::invalid_argument("ShortestPaths: node out of range");
  std::vector<NodeId> out;
  if (!reachable(u, v)) return out;
  out.push_back(u);
  NodeId cur = u;
  while (cur != v) {
    cur = next_hop(cur, v);
    // next_hop on a reachable pair always advances strictly toward v
    // (distance decreases), so this loop terminates.
    out.push_back(cur);
  }
  return out;
}

std::optional<std::size_t> ShortestPaths::hop_count(NodeId u, NodeId v) const {
  if (!reachable(u, v)) return std::nullopt;
  return path(u, v).size() - 1;
}

}  // namespace ibgp::netsim
