#include "netsim/cluster_layout.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ibgp::netsim {

ClusterLayout::ClusterLayout(std::size_t node_count)
    : cluster_of_(node_count, kUnassigned), role_of_(node_count, Role::kClient) {}

ClusterLayout ClusterLayout::full_mesh(std::size_t node_count) {
  ClusterLayout layout(node_count);
  for (NodeId v = 0; v < node_count; ++v) {
    layout.assign(v, static_cast<ClusterId>(v), Role::kReflector);
  }
  return layout;
}

void ClusterLayout::assign(NodeId v, ClusterId c, Role role) {
  if (v >= cluster_of_.size()) {
    throw std::invalid_argument("ClusterLayout: node " + std::to_string(v) + " out of range");
  }
  if (cluster_of_[v] != kUnassigned) {
    throw std::invalid_argument("ClusterLayout: node " + std::to_string(v) +
                                " assigned twice");
  }
  if (c > cluster_members_.size()) {
    throw std::invalid_argument("ClusterLayout: cluster ids must be dense; got " +
                                std::to_string(c) + " with only " +
                                std::to_string(cluster_members_.size()) + " clusters");
  }
  if (c == cluster_members_.size()) cluster_members_.emplace_back();
  cluster_of_[v] = c;
  role_of_[v] = role;
  cluster_members_[c].push_back(v);
  std::sort(cluster_members_[c].begin(), cluster_members_[c].end());
}

std::vector<NodeId> ClusterLayout::reflectors_of(ClusterId c) const {
  std::vector<NodeId> out;
  for (const NodeId v : members(c)) {
    if (is_reflector(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> ClusterLayout::clients_of(ClusterId c) const {
  std::vector<NodeId> out;
  for (const NodeId v : members(c)) {
    if (is_client(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> ClusterLayout::all_reflectors() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < cluster_of_.size(); ++v) {
    if (cluster_of_[v] != kUnassigned && is_reflector(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> ClusterLayout::all_clients() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < cluster_of_.size(); ++v) {
    if (cluster_of_[v] != kUnassigned && is_client(v)) out.push_back(v);
  }
  return out;
}

bool ClusterLayout::complete() const {
  for (const ClusterId c : cluster_of_) {
    if (c == kUnassigned) return false;
  }
  for (ClusterId c = 0; c < cluster_members_.size(); ++c) {
    if (reflectors_of(c).empty()) return false;
  }
  return true;
}

}  // namespace ibgp::netsim
