#include "netsim/spf_cache.hpp"

#include <stdexcept>
#include <utility>

#include "obs/span.hpp"

namespace ibgp::netsim {

SpfCache::SpfCache(const PhysicalGraph& base) : base_(base) {}

std::shared_ptr<const ShortestPaths> SpfCache::get(std::span<const Cost> effective) {
  if (effective.size() != base_.link_count()) {
    throw std::invalid_argument("SpfCache: effective cost vector size mismatch");
  }
  std::vector<Cost> key(effective.begin(), effective.end());

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.hits;
    it->second.last_use = ++use_tick_;
    if (hits_ != nullptr) hits_->increment();
    return it->second.spf;
  }
  ++stats_.misses;
  ++stats_.inserts;
  if (misses_ != nullptr) misses_->increment();
  if (inserts_ != nullptr) inserts_->increment();

  // Materialize the churned graph: base topology with the effective costs,
  // down links (kInfCost) omitted entirely.  Dijkstra then reports whatever
  // became unreachable as kInfCost distances.  The span times graph
  // materialization + Dijkstra — the baseline the ROADMAP incremental-SPF
  // item must beat (null sink when no registry is attached).
  std::shared_ptr<const ShortestPaths> spf;
  {
    const obs::Span recompute_span(recompute_ns_);
    PhysicalGraph churned(base_.node_count());
    const auto links = base_.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (key[i] != kInfCost) churned.add_link(links[i].a, links[i].b, key[i]);
    }
    spf = std::make_shared<const ShortestPaths>(churned);
  }
  if (capacity_ != 0 && cache_.size() >= capacity_) evict_lru_locked();
  Entry entry;
  entry.spf = spf;
  entry.last_use = ++use_tick_;
  entry.pinned = cache_.empty();  // first key ever inserted = base epoch
  cache_.emplace(std::move(key), std::move(entry));
  return spf;
}

void SpfCache::evict_lru_locked() {
  auto victim = cache_.end();
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->second.pinned) continue;
    if (victim == cache_.end() || it->second.last_use < victim->second.last_use) {
      victim = it;
    }
  }
  if (victim == cache_.end()) return;  // only the pinned base left
  cache_.erase(victim);
  ++stats_.evictions;
  if (evictions_ != nullptr) evictions_->increment();
}

std::size_t SpfCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void SpfCache::set_capacity(std::size_t max_epochs) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = max_epochs;
  if (capacity_ == 0) return;
  while (cache_.size() > capacity_) {
    const std::size_t before = cache_.size();
    evict_lru_locked();
    if (cache_.size() == before) break;  // nothing evictable remains
  }
}

SpfCacheStats SpfCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SpfCache::attach_metrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    hits_ = misses_ = inserts_ = evictions_ = nullptr;
    recompute_ns_ = nullptr;
    return;
  }
  hits_ = &registry->counter("spf.hits", obs::MetricClass::kVolatile);
  misses_ = &registry->counter("spf.misses", obs::MetricClass::kVolatile);
  inserts_ = &registry->counter("spf.inserts", obs::MetricClass::kVolatile);
  evictions_ = &registry->counter("spf.evictions", obs::MetricClass::kVolatile);
  recompute_ns_ = &obs::span_histogram(*registry, "spf.recompute_ns");
}

}  // namespace ibgp::netsim
