#include "netsim/spf_cache.hpp"

#include <stdexcept>
#include <utility>

namespace ibgp::netsim {

SpfCache::SpfCache(const PhysicalGraph& base) : base_(base) {}

std::shared_ptr<const ShortestPaths> SpfCache::get(std::span<const Cost> effective) {
  if (effective.size() != base_.link_count()) {
    throw std::invalid_argument("SpfCache: effective cost vector size mismatch");
  }
  std::vector<Cost> key(effective.begin(), effective.end());

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.hits;
    if (hits_ != nullptr) hits_->increment();
    return it->second;
  }
  ++stats_.misses;
  ++stats_.inserts;
  if (misses_ != nullptr) misses_->increment();
  if (inserts_ != nullptr) inserts_->increment();

  // Materialize the churned graph: base topology with the effective costs,
  // down links (kInfCost) omitted entirely.  Dijkstra then reports whatever
  // became unreachable as kInfCost distances.
  PhysicalGraph churned(base_.node_count());
  const auto links = base_.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (key[i] != kInfCost) churned.add_link(links[i].a, links[i].b, key[i]);
  }
  auto spf = std::make_shared<const ShortestPaths>(churned);
  cache_.emplace(std::move(key), spf);
  return spf;
}

std::size_t SpfCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

SpfCacheStats SpfCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SpfCache::attach_metrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    hits_ = misses_ = inserts_ = nullptr;
    return;
  }
  hits_ = &registry->counter("spf.hits", obs::MetricClass::kVolatile);
  misses_ = &registry->counter("spf.misses", obs::MetricClass::kVolatile);
  inserts_ = &registry->counter("spf.inserts", obs::MetricClass::kVolatile);
}

}  // namespace ibgp::netsim
