#include "netsim/spf_cache.hpp"

#include <stdexcept>
#include <utility>

namespace ibgp::netsim {

SpfCache::SpfCache(const PhysicalGraph& base) : base_(base) {}

std::shared_ptr<const ShortestPaths> SpfCache::get(std::span<const Cost> effective) {
  if (effective.size() != base_.link_count()) {
    throw std::invalid_argument("SpfCache: effective cost vector size mismatch");
  }
  std::vector<Cost> key(effective.begin(), effective.end());

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  // Materialize the churned graph: base topology with the effective costs,
  // down links (kInfCost) omitted entirely.  Dijkstra then reports whatever
  // became unreachable as kInfCost distances.
  PhysicalGraph churned(base_.node_count());
  const auto links = base_.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (key[i] != kInfCost) churned.add_link(links[i].a, links[i].b, key[i]);
  }
  auto spf = std::make_shared<const ShortestPaths>(churned);
  cache_.emplace(std::move(key), spf);
  return spf;
}

std::size_t SpfCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace ibgp::netsim
