#pragma once
// Route-reflection cluster structure of Section 4.
//
// The node set V is partitioned into clusters C_1..C_k.  Within cluster C_i a
// non-empty subset R_i are route reflectors, the rest N_i are clients of
// every reflector in R_i.  Fully-meshed I-BGP is the special case where every
// node is a reflector in its own singleton cluster.

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace ibgp::netsim {

using ClusterId = std::uint32_t;

enum class Role : std::uint8_t {
  kReflector,  ///< member of R_i: meshed with all other reflectors
  kClient,     ///< member of N_i: sessions only to the reflectors of C_i
};

class ClusterLayout {
 public:
  ClusterLayout() = default;

  /// Creates a layout over `node_count` nodes with no assignments yet.
  explicit ClusterLayout(std::size_t node_count);

  /// Fully-meshed I-BGP: every node a reflector in its own cluster.
  static ClusterLayout full_mesh(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return cluster_of_.size(); }
  [[nodiscard]] std::size_t cluster_count() const { return cluster_members_.size(); }

  /// Assigns node v to cluster c with the given role.  Clusters are created
  /// implicitly; cluster ids must be used densely starting from 0.
  void assign(NodeId v, ClusterId c, Role role);

  [[nodiscard]] ClusterId cluster_of(NodeId v) const { return cluster_of_.at(v); }
  [[nodiscard]] Role role_of(NodeId v) const { return role_of_.at(v); }
  [[nodiscard]] bool is_reflector(NodeId v) const { return role_of(v) == Role::kReflector; }
  [[nodiscard]] bool is_client(NodeId v) const { return role_of(v) == Role::kClient; }
  [[nodiscard]] bool same_cluster(NodeId u, NodeId v) const {
    return cluster_of(u) == cluster_of(v);
  }

  /// All members of cluster c (reflectors and clients, in node order).
  [[nodiscard]] std::span<const NodeId> members(ClusterId c) const {
    return cluster_members_.at(c);
  }

  /// Reflectors of cluster c.
  [[nodiscard]] std::vector<NodeId> reflectors_of(ClusterId c) const;

  /// Clients of cluster c.
  [[nodiscard]] std::vector<NodeId> clients_of(ClusterId c) const;

  /// All reflector nodes R = union of R_i, in node order.
  [[nodiscard]] std::vector<NodeId> all_reflectors() const;

  /// All client nodes N = union of N_i, in node order.
  [[nodiscard]] std::vector<NodeId> all_clients() const;

  /// True iff every node has been assigned and every cluster has >= 1
  /// reflector.
  [[nodiscard]] bool complete() const;

 private:
  static constexpr ClusterId kUnassigned = ~ClusterId{0};

  std::vector<ClusterId> cluster_of_;
  std::vector<Role> role_of_;
  std::vector<std::vector<NodeId>> cluster_members_;
};

}  // namespace ibgp::netsim
