#include "netsim/link_state.hpp"

#include <stdexcept>
#include <string>

namespace ibgp::netsim {

LinkState::LinkState(const PhysicalGraph& graph) {
  const auto links = graph.links();
  cost_.reserve(links.size());
  for (const Link& link : links) cost_.push_back(link.cost);
  down_.assign(links.size(), false);
  effective_ = cost_;
}

bool LinkState::set_cost(std::size_t link, Cost cost) {
  if (cost <= 0 || cost == kInfCost) {
    throw std::invalid_argument("LinkState: link costs must be positive, got " +
                                std::to_string(cost));
  }
  cost_.at(link) = cost;
  if (down_[link] || effective_[link] == cost) return false;
  effective_[link] = cost;
  return true;
}

bool LinkState::set_down(std::size_t link) {
  if (down_.at(link)) return false;
  down_[link] = true;
  effective_[link] = kInfCost;
  return true;
}

bool LinkState::set_up(std::size_t link) {
  if (!down_.at(link)) return false;
  down_[link] = false;
  effective_[link] = cost_[link];
  return true;
}

}  // namespace ibgp::netsim
