#include "netsim/session_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ibgp::netsim {

void SessionGraph::add_session(NodeId u, NodeId v, SessionKind kind) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    throw std::invalid_argument("SessionGraph: node out of range");
  }
  if (u == v) throw std::invalid_argument("SessionGraph: self-session");
  if (has_session(u, v)) return;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  std::sort(adjacency_[u].begin(), adjacency_[u].end());
  std::sort(adjacency_[v].begin(), adjacency_[v].end());
  edges_.push_back({std::min(u, v), std::max(u, v), kind});
}

bool SessionGraph::has_session(NodeId u, NodeId v) const {
  const auto& adj = adjacency_.at(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

SessionGraph build_session_graph(
    const ClusterLayout& layout,
    std::span<const std::pair<NodeId, NodeId>> client_client_sessions) {
  if (!layout.complete()) {
    throw std::invalid_argument(
        "build_session_graph: layout incomplete (unassigned node or reflector-less cluster)");
  }
  SessionGraph sessions(layout.node_count());

  // 1. Full mesh among all reflectors.
  const std::vector<NodeId> reflectors = layout.all_reflectors();
  for (std::size_t i = 0; i < reflectors.size(); ++i) {
    for (std::size_t j = i + 1; j < reflectors.size(); ++j) {
      sessions.add_session(reflectors[i], reflectors[j], SessionKind::kReflectorMesh);
    }
  }

  // 2. Every client peers with every reflector of its own cluster.
  for (ClusterId c = 0; c < layout.cluster_count(); ++c) {
    for (const NodeId client : layout.clients_of(c)) {
      for (const NodeId reflector : layout.reflectors_of(c)) {
        sessions.add_session(client, reflector, SessionKind::kReflectorClient);
      }
    }
  }

  // 4. Optional same-cluster client-client sessions (constraint 3 enforced).
  for (const auto& [a, b] : client_client_sessions) {
    if (!layout.is_client(a) || !layout.is_client(b)) {
      throw std::invalid_argument("build_session_graph: client-client session on non-client " +
                                  std::to_string(layout.is_client(a) ? b : a));
    }
    if (!layout.same_cluster(a, b)) {
      throw std::invalid_argument(
          "build_session_graph: client-client session across clusters (" + std::to_string(a) +
          ", " + std::to_string(b) + ") violates Section 4 constraint 3");
    }
    sessions.add_session(a, b, SessionKind::kClientClient);
  }
  return sessions;
}

}  // namespace ibgp::netsim
