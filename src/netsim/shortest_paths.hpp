#pragma once
// Deterministic all-pairs shortest paths over the physical graph.
//
// Section 4: "The shortest path, SP(u, v), between two nodes in V, is chosen
// (deterministically) from one of the least cost paths."  We realize the
// deterministic choice hop-by-hop: at node u, the selected next hop toward v
// is the lowest-numbered neighbor x minimizing cost(u,x) + dist(x,v).  This
// matches how an IGP forwards packets (each hop makes an independent,
// consistent choice) and is exactly what the forwarding-plane analysis of
// Section 7/8 (routing loops, Fig 14) requires.

#include <cstdint>
#include <optional>
#include <vector>

#include "netsim/physical_graph.hpp"
#include "util/types.hpp"

namespace ibgp::netsim {

class ShortestPaths {
 public:
  /// Runs Dijkstra from every node and precomputes the deterministic
  /// next-hop matrix.  O(n * m log n).  The graph is only used during
  /// construction — the object holds no reference to it afterwards, so it
  /// stays valid across moves/destruction of the source graph.
  explicit ShortestPaths(const PhysicalGraph& graph);

  [[nodiscard]] std::size_t node_count() const { return n_; }

  /// IGP cost of SP(u, v); kInfCost if v is unreachable from u. dist(u,u)=0.
  [[nodiscard]] Cost cost(NodeId u, NodeId v) const { return dist_[index(u, v)]; }

  [[nodiscard]] bool reachable(NodeId u, NodeId v) const {
    return cost(u, v) != kInfCost;
  }

  /// The deterministic next hop from u toward v (u != v, v reachable).
  /// Returns kNoNode when v is unreachable or u == v.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId v) const;

  /// The full selected shortest path u = p_0, p_1, ..., p_k = v
  /// (empty if unreachable).  path(u,u) == {u}.
  [[nodiscard]] std::vector<NodeId> path(NodeId u, NodeId v) const;

  /// Number of hops on the selected path, or nullopt if unreachable.
  [[nodiscard]] std::optional<std::size_t> hop_count(NodeId u, NodeId v) const;

  /// Order-dependent 64-bit digest of the full distance + next-hop
  /// matrices, precomputed at construction.  Two epochs with equal
  /// fingerprints route identically (up to hash collision); trace hashes
  /// use it to pin an engine's IGP-epoch timeline.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  [[nodiscard]] std::size_t index(NodeId u, NodeId v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::size_t n_;
  std::vector<Cost> dist_;      // row-major n x n
  std::vector<NodeId> next_;    // row-major n x n; kNoNode when unreachable
  std::uint64_t fingerprint_ = 0;
};

}  // namespace ibgp::netsim
