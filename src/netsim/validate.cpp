#include "netsim/validate.hpp"

#include <string>

#include "netsim/shortest_paths.hpp"

namespace ibgp::netsim {

namespace {
std::string node_name(NodeId v) { return "node " + std::to_string(v); }
}  // namespace

ValidationReport validate(const PhysicalGraph& physical, const ClusterLayout& layout,
                          const SessionGraph& sessions) {
  ValidationReport report;

  if (physical.node_count() != layout.node_count() ||
      physical.node_count() != sessions.node_count()) {
    report.errors.push_back("node-count mismatch between physical graph (" +
                            std::to_string(physical.node_count()) + "), layout (" +
                            std::to_string(layout.node_count()) + ") and sessions (" +
                            std::to_string(sessions.node_count()) + ")");
    return report;  // nothing else is meaningful
  }

  if (!layout.complete()) {
    report.errors.push_back(
        "cluster layout incomplete: unassigned node or cluster without a reflector");
    return report;
  }

  // Constraint 1: reflector full mesh.
  const auto reflectors = layout.all_reflectors();
  for (std::size_t i = 0; i < reflectors.size(); ++i) {
    for (std::size_t j = i + 1; j < reflectors.size(); ++j) {
      if (!sessions.has_session(reflectors[i], reflectors[j])) {
        report.errors.push_back("missing reflector-mesh session " + node_name(reflectors[i]) +
                                " — " + node_name(reflectors[j]));
      }
    }
  }

  // Constraint 2: client <-> every reflector of its cluster.
  for (ClusterId c = 0; c < layout.cluster_count(); ++c) {
    for (const NodeId client : layout.clients_of(c)) {
      for (const NodeId reflector : layout.reflectors_of(c)) {
        if (!sessions.has_session(client, reflector)) {
          report.errors.push_back("missing client session " + node_name(client) + " — " +
                                  node_name(reflector) + " (cluster " + std::to_string(c) +
                                  ")");
        }
      }
    }
  }

  // Constraint 3: clients never peer outside their cluster.
  for (const auto& edge : sessions.edges()) {
    const bool u_client = layout.is_client(edge.u);
    const bool v_client = layout.is_client(edge.v);
    if ((u_client || v_client) && !layout.same_cluster(edge.u, edge.v)) {
      report.errors.push_back("session " + node_name(edge.u) + " — " + node_name(edge.v) +
                              " crosses clusters but involves a client");
    }
    if (u_client && v_client && !layout.same_cluster(edge.u, edge.v)) {
      report.errors.push_back("client-client session " + node_name(edge.u) + " — " +
                              node_name(edge.v) + " crosses clusters");
    }
  }

  if (!physical.connected()) {
    report.warnings.push_back(
        "physical graph is disconnected: some exit points are unreachable");
  } else {
    // Triangle-inequality check over reflector-mesh pairs with direct links
    // (footnote: I-BGP sessions ride shortest IGP paths, so direct costs
    // should not exceed the shortest-path cost).
    const ShortestPaths igp(physical);
    for (const auto& link : physical.links()) {
      if (igp.cost(link.a, link.b) < link.cost) {
        report.warnings.push_back("physical link " + node_name(link.a) + " — " +
                                  node_name(link.b) + " (cost " + std::to_string(link.cost) +
                                  ") is costlier than the shortest path between its ends (" +
                                  std::to_string(igp.cost(link.a, link.b)) +
                                  "); triangle inequality violated");
      }
    }
  }

  return report;
}

}  // namespace ibgp::netsim
