#pragma once
// Event-driven simulator for BGP confederations.
//
// Differences from the route-reflection event engine:
//  * announcement rules: a router forwards to its sub-AS mesh every route it
//    learned via E-BGP or over a confed-E-BGP border (never routes learned
//    from the mesh); across a border it announces its advertised set with
//    the AS_CONFED_SEQUENCE extended by its own sub-AS;
//  * loop prevention: a border router rejects any announcement whose
//    confed path already contains its own sub-AS (the confederation
//    analogue of AS-path loop detection);
//  * route selection adds the confederation class rule: own E-BGP >
//    confed-external > internal (the Cisco/Juniper behavior matching the
//    paper's rule-4 ordering), while LOCAL-PREF, MED and IGP metric to the
//    exit point pass through the confederation unchanged — the combination
//    RFC 3345 Section 2.2 blames for persistent oscillation.
//
// Two advertisement policies mirror the paper's dichotomy:
//  * kStandard: announce the single best route;
//  * kModified: announce every LOCAL-PREF/AS-path/MED survivor (Choose^B),
//    the paper's fix transplanted onto confederations.  The paper leaves
//    this case open (Section 1); experiment E11 probes it empirically.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "confed/layout.hpp"
#include "util/types.hpp"

namespace ibgp::confed {

enum class ConfedProtocol {
  kStandard,
  kModified,
};

/// How a node currently knows a path (best class among its copies).
enum class RouteClass : std::uint8_t {
  kOwnEbgp = 0,        ///< exit point is this node
  kConfedExternal = 1, ///< learned over a border session
  kInternal = 2,       ///< learned from the sub-AS mesh
};

class ConfedEngine {
 public:
  using SimTime = std::uint64_t;
  using DelayFn = std::function<SimTime(NodeId from, NodeId to, std::uint64_t seq)>;

  ConfedEngine(const ConfedInstance& inst, ConfedProtocol protocol, DelayFn delay = {});

  void inject_exit(PathId p, SimTime when);
  void inject_all_exits(SimTime when = 0);
  void withdraw_exit(PathId p, SimTime when);

  struct Result {
    bool converged = false;
    std::size_t deliveries = 0;
    std::size_t updates_sent = 0;
    std::size_t best_flips = 0;
    std::vector<PathId> final_best;
  };

  Result run(std::size_t max_deliveries = 1'000'000);

  [[nodiscard]] PathId best_path(NodeId v) const {
    return nodes_.at(v).best ? *nodes_.at(v).best : kNoPath;
  }
  [[nodiscard]] std::span<const std::size_t> flips_by_node() const { return flips_by_node_; }

 private:
  struct Copy {
    /// AS_CONFED_SEQUENCE the announcement carried (empty for mesh-internal
    /// announcements).
    std::vector<SubAsId> confed_path;
  };

  struct NodeState {
    /// rib_in[peer][path] -> the copy announced by that peer (absent = none).
    std::map<NodeId, std::map<PathId, Copy>> rib_in;
    std::vector<bool> own;  // E-BGP-injected exits
    std::optional<PathId> best;
    /// advertised_out[peer] = path set last announced to that peer.
    std::map<NodeId, std::vector<PathId>> advertised_out;
  };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t { kInject, kWithdrawExit, kUpdate } kind = Kind::kUpdate;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    PathId path = kNoPath;
    bool announce = true;
    std::vector<SubAsId> confed_path;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// The class and attribution of path p at node u, across all its copies.
  struct View {
    RouteClass route_class = RouteClass::kInternal;
    BgpId learned_from = 0;
    const std::vector<SubAsId>* confed_path = nullptr;
  };
  [[nodiscard]] std::optional<View> view_of(NodeId u, PathId p) const;

  /// Full confederation route selection over the currently visible paths.
  [[nodiscard]] std::optional<PathId> select_best(NodeId u,
                                                  std::span<const PathId> candidates) const;

  /// The advertised set under the active protocol.
  [[nodiscard]] std::vector<PathId> advertised_set(NodeId u,
                                                   std::span<const PathId> visible) const;

  [[nodiscard]] bool may_send(NodeId u, NodeId peer, PathId p) const;

  void reconsider(NodeId u, SimTime now);
  void enqueue_update(NodeId from, NodeId to, PathId p, bool announce, SimTime now);

  const ConfedInstance* inst_;
  ConfedProtocol protocol_;
  DelayFn delay_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::vector<NodeState> nodes_;
  std::map<std::pair<NodeId, NodeId>, SimTime> session_last_;
  std::uint64_t next_seq_ = 0;
  std::size_t updates_sent_ = 0;
  std::size_t best_flips_ = 0;
  std::vector<std::size_t> flips_by_node_;
};

/// The RFC 3345 Section 2.2-shaped oscillator: the Fig 1(a) scenario with
/// clusters replaced by member sub-ASes (border routers in place of route
/// reflectors).  Oscillates under the standard confederation protocol; the
/// Choose^B advertisement empirically settles it.
ConfedInstance rfc3345_confederation();

/// Random confederation ensembles (mirrors topo::random_instance): a chain
/// of member sub-ASes with 1-3 routers each, random border sessions between
/// adjacent (and occasionally non-adjacent) sub-AS pairs, random IGP costs,
/// and random exits/MEDs.  Used to probe, empirically, whether the Choose^B
/// advertisement ever fails to settle a confederation — a question the
/// paper's proofs do NOT answer (they cover route reflection only).
struct RandomConfedConfig {
  std::size_t sub_ases = 3;
  std::size_t min_routers = 1;
  std::size_t max_routers = 3;
  std::size_t neighbor_ases = 2;
  std::size_t exits = 4;
  Med max_med = 3;
  Cost max_link_cost = 10;
  Cost max_exit_cost = 4;
  /// Probability of an extra border session between a non-adjacent sub-AS
  /// pair (adjacent pairs in the chain always get one).
  double extra_border_prob = 0.3;
  bgp::SelectionPolicy policy = {};
};
ConfedInstance random_confederation(const RandomConfedConfig& config, std::uint64_t seed);

}  // namespace ibgp::confed
