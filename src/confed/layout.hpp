#pragma once
// BGP confederations (RFC 3065 / RFC 5065): the OTHER mechanism for scaling
// I-BGP past the full mesh — and the other mechanism for which RFC 3345
// reports persistent MED oscillations.  The paper's positive results cover
// route reflection only (Section 1); this module reproduces the
// confederation side of the problem statement and empirically extends the
// paper's fix to it (Experiment E11).
//
// Model: AS0 is partitioned into member sub-ASes.  Routers inside one
// sub-AS run classic fully-meshed I-BGP; designated border-router pairs run
// confed-E-BGP sessions between sub-ASes.  Within the confederation,
// LOCAL-PREF, MED and the IGP metric to the exit point are all preserved —
// which is exactly what re-creates the Fig 1(a)-style hide/reveal toggles:
// a border router announces only its current best route into the next
// sub-AS, just as a route reflector announces only its best into the mesh.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/exit_table.hpp"
#include "bgp/selection.hpp"
#include "netsim/physical_graph.hpp"
#include "netsim/shortest_paths.hpp"
#include "util/types.hpp"

namespace ibgp::confed {

using SubAsId = std::uint32_t;

/// A confederation instance: physical substrate, the member-sub-AS
/// partition, explicit confed-E-BGP border sessions, and the exit paths.
class ConfedInstance {
 public:
  /// `sub_as_of[v]` assigns every node to a member sub-AS (dense ids from
  /// 0).  `borders` lists confed-E-BGP sessions; both ends must be in
  /// different sub-ASes.  Intra-sub-AS I-BGP is an implicit full mesh.
  ConfedInstance(std::string name, netsim::PhysicalGraph physical,
                 std::vector<SubAsId> sub_as_of,
                 std::vector<std::pair<NodeId, NodeId>> borders, bgp::ExitTable exits,
                 bgp::SelectionPolicy policy = {},
                 std::vector<std::string> node_names = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t node_count() const { return physical_.node_count(); }
  [[nodiscard]] const netsim::PhysicalGraph& physical() const { return physical_; }
  [[nodiscard]] const netsim::ShortestPaths& igp() const { return igp_; }
  [[nodiscard]] const bgp::ExitTable& exits() const { return exits_; }
  [[nodiscard]] const bgp::SelectionPolicy& policy() const { return policy_; }

  [[nodiscard]] SubAsId sub_as_of(NodeId v) const { return sub_as_of_.at(v); }
  [[nodiscard]] std::size_t sub_as_count() const { return sub_as_count_; }
  [[nodiscard]] bool same_sub_as(NodeId u, NodeId v) const {
    return sub_as_of(u) == sub_as_of(v);
  }

  /// All I-BGP / confed-E-BGP peers of v (mesh mates + border peers).
  [[nodiscard]] std::span<const NodeId> peers(NodeId v) const { return peers_.at(v); }

  /// True iff u—v is a confed-E-BGP (inter-sub-AS border) session.
  [[nodiscard]] bool is_border_session(NodeId u, NodeId v) const;

  [[nodiscard]] BgpId bgp_id(NodeId v) const { return v; }
  [[nodiscard]] const std::string& node_name(NodeId v) const { return node_names_.at(v); }
  [[nodiscard]] NodeId find_node(std::string_view label) const;

 private:
  std::string name_;
  netsim::PhysicalGraph physical_;
  std::vector<SubAsId> sub_as_of_;
  std::size_t sub_as_count_ = 0;
  std::vector<std::pair<NodeId, NodeId>> borders_;  // normalized u < v
  bgp::ExitTable exits_;
  bgp::SelectionPolicy policy_;
  std::vector<std::string> node_names_;
  std::vector<std::vector<NodeId>> peers_;
  netsim::ShortestPaths igp_;
};

}  // namespace ibgp::confed
