#include "confed/engine.hpp"

#include <algorithm>
#include <limits>

#include "util/rng.hpp"

namespace ibgp::confed {

ConfedEngine::ConfedEngine(const ConfedInstance& inst, ConfedProtocol protocol,
                           DelayFn delay)
    : inst_(&inst),
      protocol_(protocol),
      delay_(delay ? std::move(delay)
                   : [](NodeId, NodeId, std::uint64_t) -> SimTime { return 1; }),
      nodes_(inst.node_count()),
      flips_by_node_(inst.node_count(), 0) {
  for (auto& node : nodes_) node.own.assign(inst.exits().size(), false);
}

void ConfedEngine::inject_exit(PathId p, SimTime when) {
  Event event;
  event.time = when;
  event.seq = next_seq_++;
  event.kind = Event::Kind::kInject;
  event.to = inst_->exits()[p].exit_point;
  event.path = p;
  queue_.push(event);
}

void ConfedEngine::inject_all_exits(SimTime when) {
  for (PathId p = 0; p < inst_->exits().size(); ++p) inject_exit(p, when);
}

void ConfedEngine::withdraw_exit(PathId p, SimTime when) {
  Event event;
  event.time = when;
  event.seq = next_seq_++;
  event.kind = Event::Kind::kWithdrawExit;
  event.to = inst_->exits()[p].exit_point;
  event.path = p;
  queue_.push(event);
}

std::optional<ConfedEngine::View> ConfedEngine::view_of(NodeId u, PathId p) const {
  const NodeState& node = nodes_[u];
  if (node.own[p]) {
    View view;
    view.route_class = RouteClass::kOwnEbgp;
    view.learned_from = inst_->exits()[p].ebgp_peer;
    view.confed_path = nullptr;
    return view;
  }
  // Attribution among copies: prefer the SHORTEST AS_CONFED_SEQUENCE (the
  // most direct copy — its presence depends only on the most direct
  // propagation chain, so the chosen copy is stable while longer echoes come
  // and go; preferring by class/peer first makes two borders re-attribute
  // each other's echoes forever and livelocks the advertisement diffs).
  // Ties break by class, then lowest BGP id — fully deterministic.
  std::optional<View> best;
  std::size_t best_len = std::numeric_limits<std::size_t>::max();
  RouteClass best_class = RouteClass::kInternal;
  BgpId best_id = std::numeric_limits<BgpId>::max();
  for (const auto& [peer, table] : node.rib_in) {
    const auto it = table.find(p);
    if (it == table.end()) continue;
    const RouteClass route_class = inst_->is_border_session(u, peer)
                                       ? RouteClass::kConfedExternal
                                       : RouteClass::kInternal;
    const BgpId id = inst_->bgp_id(peer);
    const std::size_t len = it->second.confed_path.size();
    if (!best || len < best_len || (len == best_len && route_class < best_class) ||
        (len == best_len && route_class == best_class && id < best_id)) {
      best = View{route_class, id, &it->second.confed_path};
      best_len = len;
      best_class = route_class;
      best_id = id;
    }
  }
  return best;
}

std::optional<PathId> ConfedEngine::select_best(
    NodeId u, std::span<const PathId> candidates) const {
  // Rules 1-3 are attribute-only.
  const auto survivors =
      bgp::choose_survivors(inst_->exits(), candidates, inst_->policy());

  // Rules 4-6 with the IOS confederation semantics: own E-BGP routes beat
  // everything; confed-external and internal routes compare by IGP metric to
  // the exit point (the confed class is NOT "external" for rule 4).
  std::optional<PathId> best;
  bool best_own = false;
  Cost best_metric = kInfCost;
  BgpId best_id = std::numeric_limits<BgpId>::max();
  for (const PathId p : survivors) {
    const auto view = view_of(u, p);
    if (!view) continue;
    const auto& path = inst_->exits()[p];
    if (!inst_->igp().reachable(u, path.exit_point)) continue;
    const Cost metric = inst_->igp().cost(u, path.exit_point) + path.exit_cost;
    const bool own = view->route_class == RouteClass::kOwnEbgp;
    const BgpId id = view->learned_from;

    bool better = false;
    if (!best) {
      better = true;
    } else if (own != best_own) {
      better = own;
    } else if (metric != best_metric) {
      better = metric < best_metric;
    } else if (id != best_id) {
      better = id < best_id;
    } else {
      better = p < *best;
    }
    if (better) {
      best = p;
      best_own = own;
      best_metric = metric;
      best_id = id;
    }
  }
  return best;
}

std::vector<PathId> ConfedEngine::advertised_set(NodeId u,
                                                 std::span<const PathId> visible) const {
  if (protocol_ == ConfedProtocol::kModified) {
    return bgp::choose_survivors(inst_->exits(), visible, inst_->policy());
  }
  const auto best = select_best(u, visible);
  if (!best) return {};
  return {*best};
}

bool ConfedEngine::may_send(NodeId u, NodeId peer, PathId p) const {
  const auto view = view_of(u, p);
  if (!view) return false;
  if (inst_->exits()[p].exit_point == peer) return false;

  if (inst_->is_border_session(u, peer)) {
    // Confed-E-BGP: anything goes, except announcements whose extended
    // AS_CONFED_SEQUENCE would loop through the receiver's sub-AS.
    if (view->confed_path != nullptr) {
      const SubAsId target = inst_->sub_as_of(peer);
      for (const SubAsId s : *view->confed_path) {
        if (s == target) return false;
      }
    }
    return true;
  }
  // Sub-AS mesh: classic I-BGP — never re-forward mesh-learned routes.
  return view->route_class != RouteClass::kInternal;
}

void ConfedEngine::enqueue_update(NodeId from, NodeId to, PathId p, bool announce,
                                  SimTime now) {
  Event event;
  event.kind = Event::Kind::kUpdate;
  event.from = from;
  event.to = to;
  event.path = p;
  event.announce = announce;
  event.seq = next_seq_++;
  if (announce) {
    const auto view = view_of(from, p);
    if (view && view->confed_path != nullptr) event.confed_path = *view->confed_path;
    if (inst_->is_border_session(from, to)) {
      event.confed_path.push_back(inst_->sub_as_of(from));
    }
  }
  SimTime& last = session_last_[{from, to}];
  event.time = std::max(now + delay_(from, to, next_seq_), last);
  last = event.time;
  queue_.push(event);
  ++updates_sent_;
}

void ConfedEngine::reconsider(NodeId u, SimTime now) {
  NodeState& node = nodes_[u];

  std::vector<PathId> visible;
  for (PathId p = 0; p < inst_->exits().size(); ++p) {
    if (node.own[p] || view_of(u, p)) visible.push_back(p);
  }

  const auto best = select_best(u, visible);
  const PathId old_best = node.best ? *node.best : kNoPath;
  const PathId new_best = best ? *best : kNoPath;
  if (old_best != new_best) {
    ++best_flips_;
    ++flips_by_node_[u];
  }
  node.best = best;

  const auto advertised = advertised_set(u, visible);
  for (const NodeId peer : inst_->peers(u)) {
    std::vector<PathId> target;
    for (const PathId p : advertised) {
      if (may_send(u, peer, p)) target.push_back(p);
    }
    std::vector<PathId>& current = node.advertised_out[peer];
    for (const PathId p : current) {
      if (!std::binary_search(target.begin(), target.end(), p)) {
        enqueue_update(u, peer, p, /*announce=*/false, now);
      }
    }
    for (const PathId p : target) {
      if (!std::binary_search(current.begin(), current.end(), p)) {
        enqueue_update(u, peer, p, /*announce=*/true, now);
      }
    }
    current = std::move(target);
  }
}

ConfedEngine::Result ConfedEngine::run(std::size_t max_deliveries) {
  Result result;
  while (!queue_.empty() && result.deliveries < max_deliveries) {
    const Event event = queue_.top();
    queue_.pop();
    ++result.deliveries;

    switch (event.kind) {
      case Event::Kind::kInject:
        nodes_[event.to].own[event.path] = true;
        reconsider(event.to, event.time);
        break;
      case Event::Kind::kWithdrawExit:
        nodes_[event.to].own[event.path] = false;
        reconsider(event.to, event.time);
        break;
      case Event::Kind::kUpdate: {
        NodeState& node = nodes_[event.to];
        if (event.announce) {
          // AS_CONFED_SEQUENCE loop detection, receiver side.
          bool loops = false;
          for (const SubAsId s : event.confed_path) {
            if (s == inst_->sub_as_of(event.to)) loops = true;
          }
          if (loops) {
            node.rib_in[event.from].erase(event.path);
          } else {
            node.rib_in[event.from][event.path] = Copy{event.confed_path};
          }
        } else {
          node.rib_in[event.from].erase(event.path);
        }
        reconsider(event.to, event.time);
        break;
      }
    }
  }

  result.converged = queue_.empty();
  result.updates_sent = updates_sent_;
  result.best_flips = best_flips_;
  for (NodeId v = 0; v < nodes_.size(); ++v) result.final_best.push_back(best_path(v));
  return result;
}

ConfedInstance rfc3345_confederation() {
  // Fig 1(a) with clusters replaced by member sub-ASes: border routers A and
  // B in place of the route reflectors; exits and metrics unchanged.
  netsim::PhysicalGraph physical(5);
  const NodeId a = 0, c1 = 1, c2 = 2, b = 3, c3 = 4;
  physical.add_link(a, c1, 5);
  physical.add_link(a, c2, 4);
  physical.add_link(a, c3, 13);
  physical.add_link(a, b, 6);
  physical.add_link(b, c3, 12);

  std::vector<SubAsId> sub_as{0, 0, 0, 1, 1};

  bgp::ExitTable exits;
  bgp::ExitPath r1;
  r1.name = "r1";
  r1.exit_point = c1;
  r1.next_as = 1;
  r1.med = 0;
  r1.ebgp_peer = 1001;
  exits.add(r1);
  bgp::ExitPath r2;
  r2.name = "r2";
  r2.exit_point = c2;
  r2.next_as = 2;
  r2.med = 10;
  r2.ebgp_peer = 1002;
  exits.add(r2);
  bgp::ExitPath r3;
  r3.name = "r3";
  r3.exit_point = c3;
  r3.next_as = 2;
  r3.med = 0;
  r3.ebgp_peer = 1003;
  exits.add(r3);

  return ConfedInstance("rfc3345-confed", std::move(physical), std::move(sub_as),
                        {{a, b}}, std::move(exits), {},
                        {"A", "c1", "c2", "B", "c3"});
}

ConfedInstance random_confederation(const RandomConfedConfig& config, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);

  // Roster: a chain of sub-ASes, each with 1..max routers.
  std::vector<SubAsId> sub_as_of;
  std::vector<std::vector<NodeId>> members(config.sub_ases);
  std::vector<std::string> names;
  for (SubAsId s = 0; s < config.sub_ases; ++s) {
    const auto count = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_routers),
                  static_cast<std::int64_t>(config.max_routers)));
    for (std::size_t i = 0; i < count; ++i) {
      members[s].push_back(static_cast<NodeId>(sub_as_of.size()));
      names.push_back("s" + std::to_string(s) + "r" + std::to_string(i));
      sub_as_of.push_back(s);
    }
  }
  const std::size_t n = sub_as_of.size();

  // Physical skeleton: a chain within each sub-AS, chained across sub-AS
  // boundaries, plus random shortcuts.
  netsim::PhysicalGraph physical(n);
  auto rand_cost = [&]() {
    return static_cast<Cost>(rng.range(1, static_cast<std::int64_t>(config.max_link_cost)));
  };
  for (SubAsId s = 0; s < config.sub_ases; ++s) {
    for (std::size_t i = 1; i < members[s].size(); ++i) {
      physical.add_link(members[s][i - 1], members[s][i], rand_cost());
    }
    if (s > 0) physical.add_link(members[s - 1][0], members[s][0], rand_cost());
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (!physical.has_link(a, b) && rng.chance(0.2)) physical.add_link(a, b, rand_cost());
    }
  }

  // Borders: one session between adjacent chain neighbors (random router
  // pair), plus optional extra sessions between random sub-AS pairs.
  std::vector<std::pair<NodeId, NodeId>> borders;
  for (SubAsId s = 1; s < config.sub_ases; ++s) {
    borders.emplace_back(members[s - 1][rng.pick_index(members[s - 1])],
                         members[s][rng.pick_index(members[s])]);
  }
  for (SubAsId a = 0; a < config.sub_ases; ++a) {
    for (SubAsId b = a + 2; b < config.sub_ases; ++b) {
      if (rng.chance(config.extra_border_prob)) {
        borders.emplace_back(members[a][rng.pick_index(members[a])],
                             members[b][rng.pick_index(members[b])]);
      }
    }
  }

  bgp::ExitTable exits;
  for (std::size_t i = 0; i < config.exits; ++i) {
    bgp::ExitPath path;
    path.name = "r" + std::to_string(i + 1);
    path.exit_point = static_cast<NodeId>(rng.below(n));
    path.next_as = static_cast<AsId>(1 + rng.below(std::max<std::size_t>(1, config.neighbor_ases)));
    path.med = static_cast<Med>(rng.range(0, static_cast<std::int64_t>(config.max_med)));
    path.exit_cost = static_cast<Cost>(rng.range(0, static_cast<std::int64_t>(config.max_exit_cost)));
    path.ebgp_peer = static_cast<BgpId>(1000 + i);
    exits.add(std::move(path));
  }

  return ConfedInstance("random-confed-" + std::to_string(seed), std::move(physical),
                        std::move(sub_as_of), std::move(borders), std::move(exits),
                        config.policy, std::move(names));
}

}  // namespace ibgp::confed
