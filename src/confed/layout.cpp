#include "confed/layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibgp::confed {

ConfedInstance::ConfedInstance(std::string name, netsim::PhysicalGraph physical,
                               std::vector<SubAsId> sub_as_of,
                               std::vector<std::pair<NodeId, NodeId>> borders,
                               bgp::ExitTable exits, bgp::SelectionPolicy policy,
                               std::vector<std::string> node_names)
    : name_(std::move(name)),
      physical_(std::move(physical)),
      sub_as_of_(std::move(sub_as_of)),
      borders_(std::move(borders)),
      exits_(std::move(exits)),
      policy_(policy),
      node_names_(std::move(node_names)),
      igp_(physical_) {
  const std::size_t n = physical_.node_count();
  if (sub_as_of_.size() != n) {
    throw std::invalid_argument("ConfedInstance: sub_as_of size mismatch");
  }
  for (const SubAsId s : sub_as_of_) {
    sub_as_count_ = std::max<std::size_t>(sub_as_count_, s + 1);
  }
  for (auto& [u, v] : borders_) {
    if (u >= n || v >= n) throw std::invalid_argument("ConfedInstance: border node range");
    if (sub_as_of_[u] == sub_as_of_[v]) {
      throw std::invalid_argument("ConfedInstance: border session inside one sub-AS");
    }
    if (u > v) std::swap(u, v);
  }
  for (const auto& path : exits_.all()) {
    if (path.exit_point >= n) {
      throw std::invalid_argument("ConfedInstance: exit path node out of range");
    }
  }
  if (node_names_.empty()) {
    node_names_.reserve(n);
    for (NodeId v = 0; v < n; ++v) node_names_.push_back("n" + std::to_string(v));
  } else if (node_names_.size() != n) {
    throw std::invalid_argument("ConfedInstance: node_names size mismatch");
  }

  // Peer lists: intra-sub-AS full mesh plus the border sessions.
  peers_.assign(n, {});
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && sub_as_of_[u] == sub_as_of_[v]) peers_[u].push_back(v);
    }
  }
  for (const auto& [u, v] : borders_) {
    peers_[u].push_back(v);
    peers_[v].push_back(u);
  }
  for (auto& list : peers_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

bool ConfedInstance::is_border_session(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  return std::find(borders_.begin(), borders_.end(), std::make_pair(u, v)) !=
         borders_.end();
}

NodeId ConfedInstance::find_node(std::string_view label) const {
  for (NodeId v = 0; v < node_names_.size(); ++v) {
    if (node_names_[v] == label) return v;
  }
  return kNoNode;
}

}  // namespace ibgp::confed
