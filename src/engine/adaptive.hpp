#pragma once
// Oscillation-triggered deployment of the modified protocol — the Section 10
// future-work idea, made concrete:
//
//   "it is possible to treat the propagation of extra routes as a feature
//    that is only triggered when route oscillations are detected for some
//    destination prefix."
//
// Every node starts on STANDARD I-BGP.  A controller watches per-node
// best-route flap counts over a sliding window of activation steps; a node
// whose flaps exceed the threshold is upgraded to the MODIFIED protocol
// (it starts advertising its MED-survivor set).  If the system is still
// churning after `escalation_rounds` windows with no new upgrades, every
// node is upgraded — which by the Section 7 theorem forces convergence, so
// the controller always terminates on oscillation-free outcomes.
//
// The interesting measurements (bench_adaptive): how FEW nodes need the
// upgrade in practice, and how the detection threshold trades flap damage
// against deployed add-paths state.

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "engine/activation.hpp"
#include "engine/sync_engine.hpp"
#include "util/types.hpp"

namespace ibgp::engine {

struct AdaptiveOptions {
  /// Sliding-window length in activation steps (default: 4 fairness periods,
  /// set by run_adaptive when 0).
  std::size_t window = 0;

  /// Flap count within one window that marks a node as oscillating.
  std::size_t flap_threshold = 3;

  /// After this many consecutive windows with churn but no new upgrades,
  /// upgrade every node (the global fallback that guarantees termination).
  std::size_t escalation_rounds = 6;

  /// Hard cap on activation steps.
  std::size_t max_steps = 200000;
};

struct AdaptiveResult {
  bool converged = false;
  std::size_t steps = 0;
  /// Nodes running the modified protocol at the end.
  std::vector<NodeId> upgraded;
  /// Step at which each upgrade happened (parallel to `upgraded`).
  std::vector<std::size_t> upgrade_step;
  /// True when the global fallback fired.
  bool escalated_all = false;
  /// Total best-route flaps observed before quiescence.
  std::size_t best_flips = 0;
  /// Final best route per node.
  std::vector<PathId> final_best;
};

/// Runs the adaptive deployment on `inst` under `sequence`.
AdaptiveResult run_adaptive(const core::Instance& inst, ActivationSequence& sequence,
                            const AdaptiveOptions& options = {});

}  // namespace ibgp::engine
