#pragma once
// Fair activation sequences (Section 4).
//
// A fair activation sequence is an infinite sequence of non-empty activation
// sets in which every node occurs infinitely often.  Generators produce the
// sequence lazily; all of them are fair by construction (each emits every
// node at least once within a bounded window, the generator's `period`).
//
//  - RoundRobin:    {0}, {1}, ..., {n-1}, {0}, ...      (sequential)
//  - FullSet:       {0..n-1}, {0..n-1}, ...             (synchronous)
//  - RandomFair:    a fresh uniformly random permutation of V each round,
//                   emitted as singletons (schedule-randomization used by the
//                   determinism experiments)
//  - RandomSubsets: random non-empty subsets, patched every `period` steps to
//                   include any node starved during the window (fairness)
//  - Scripted:      an explicit finite prefix, then round-robin (used to
//                   replay the paper's narrated update orders)

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ibgp::engine {

using ActivationSet = std::vector<NodeId>;  // ascending node ids, non-empty

/// Abstract lazy generator of a fair activation sequence.
class ActivationSequence {
 public:
  virtual ~ActivationSequence() = default;

  /// The next activation set.  Never empty.
  virtual ActivationSet next() = 0;

  /// An upper bound on the number of steps within which every node is
  /// guaranteed to have been activated at least once, measured from any
  /// point in the sequence.  Drives convergence detection: a configuration
  /// unchanged for a full period is a fixed point.
  [[nodiscard]] virtual std::size_t period() const = 0;

  /// Human-readable description for reports.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// {0}, {1}, ..., {n-1}, repeat.
std::unique_ptr<ActivationSequence> make_round_robin(std::size_t node_count);

/// {V}, {V}, ... — the fully synchronous schedule.
std::unique_ptr<ActivationSequence> make_full_set(std::size_t node_count);

/// Singletons from a fresh random permutation each round.
std::unique_ptr<ActivationSequence> make_random_fair(std::size_t node_count,
                                                     std::uint64_t seed);

/// Random non-empty subsets with starvation patching every `window` steps.
std::unique_ptr<ActivationSequence> make_random_subsets(std::size_t node_count,
                                                        std::uint64_t seed,
                                                        std::size_t window = 0);

/// Plays `prefix` verbatim, then falls back to round-robin.  Empty sets in
/// the prefix are rejected.
std::unique_ptr<ActivationSequence> make_scripted(std::size_t node_count,
                                                  std::vector<ActivationSet> prefix);

}  // namespace ibgp::engine
