#pragma once
// Convergence / oscillation detection on top of the synchronous engine.
//
// Definitions (Section 4, "Convergence" and Section 5):
//  - the system has CONVERGED under a schedule when a full fairness window
//    passes with no state change (the configuration is a fixed point);
//  - it OSCILLATES (persistently, under a deterministic schedule) when the
//    global state recurs at the same schedule phase while changes are still
//    happening — the run is then provably periodic and never converges.
//
// Cycle detection is sound only for deterministic generators (round-robin,
// full-set, scripted); for randomized schedules use the step limit and treat
// kStepLimit as "did not converge within budget".

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/activation.hpp"
#include "engine/sync_engine.hpp"
#include "util/types.hpp"

namespace ibgp::engine {

enum class RunStatus {
  kConverged,      ///< fixed point reached
  kCycleDetected,  ///< periodic non-converging orbit (persistent oscillation)
  kStepLimit,      ///< budget exhausted without either verdict
};

const char* run_status_name(RunStatus status);

struct RunOutcome {
  RunStatus status = RunStatus::kStepLimit;

  /// Steps executed in total.
  std::size_t steps = 0;

  /// For kConverged: the first step index after which nothing ever changed.
  std::size_t quiescent_since = 0;

  /// For kCycleDetected: the period of the orbit in steps.
  std::size_t cycle_length = 0;

  /// Best route (exit path id) per node at the end of the run; kNoPath for
  /// "no route".  For kConverged this is the stable configuration.
  std::vector<PathId> final_best;

  /// Fingerprint of the final configuration.
  std::uint64_t final_hash = 0;

  /// Total best-route changes observed across all nodes (flap volume).
  std::size_t best_flips = 0;

  [[nodiscard]] bool converged() const { return status == RunStatus::kConverged; }
  [[nodiscard]] bool oscillated() const { return status == RunStatus::kCycleDetected; }
};

struct RunLimits {
  /// Hard cap on activation steps.
  std::size_t max_steps = 100000;

  /// Enable state-recurrence cycle detection (requires a deterministic
  /// schedule whose phase repeats every `sequence.period()` steps).
  bool detect_cycles = true;
};

/// Drives `engine` with `sequence` until convergence, a detected cycle, or
/// the step limit.
RunOutcome run(SyncEngine& engine, ActivationSequence& sequence, const RunLimits& limits = {});

/// One-shot convenience: builds an engine, runs it, returns the outcome.
RunOutcome run_protocol(const core::Instance& inst, core::ProtocolKind protocol,
                        ActivationSequence& sequence, const RunLimits& limits = {});

/// Renders the per-node best routes as "node->name" pairs for reports.
std::string describe_best(const core::Instance& inst, const std::vector<PathId>& best);

}  // namespace ibgp::engine
