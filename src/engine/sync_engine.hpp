#pragma once
// The synchronous engine: a faithful executable of Section 4's operational
// semantics.
//
// State per node u at (virtual) time t:
//   PossibleExits(u,t) — exit paths visible to u, each with learnedFrom,
//   BestRoute(u,t)     — Choose_best over the protocol-visible candidates,
//   Advertised(u,t)    — what u offers to peers (protocol-dependent; the
//                        Transfer relation filters per receiving peer).
//
// One step with activation set sigma: every u in sigma simultaneously
// recomputes
//   PossibleExits(u,t) = MyExits(u)  union  U_v Transfer_{v->u}(Advertised(v, t-1))
// and re-decides; nodes outside sigma keep their state.  The recomputation
// is from scratch (the model is memoryless), which is what makes withdrawn
// routes flush (Lemma 7.2).
//
// learnedFrom determinism: a path obtainable from several peers in the same
// step is attributed to the advertising peer with the lowest BGP identifier;
// a node's own exits are attributed to their E-BGP peer.  Under the formal
// Transfer relation a node never receives its own exit back, so the two
// cases never collide.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/selection.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "engine/activation.hpp"
#include "util/types.hpp"

namespace ibgp::engine {

class SyncEngine {
 public:
  /// Starts from config(0): every exit announced, every node empty-handed
  /// (BestRoute = none, PossibleExits = MyExits discovered on first
  /// activation).
  SyncEngine(const core::Instance& inst, core::ProtocolKind protocol);

  [[nodiscard]] const core::Instance& instance() const { return *inst_; }
  [[nodiscard]] core::ProtocolKind protocol() const { return protocol_; }

  /// Per-node protocol override: the Section 10 "trigger the extra routes
  /// only when oscillation is detected" deployment runs most nodes on the
  /// standard protocol and upgrades flapping ones to the modified protocol.
  void set_node_protocol(NodeId v, core::ProtocolKind kind) { node_protocol_.at(v) = kind; }
  [[nodiscard]] core::ProtocolKind node_protocol(NodeId v) const {
    return node_protocol_.at(v);
  }

  // --- E-BGP dynamics -----------------------------------------------------

  /// Withdraws an exit path: it leaves MyExits(exitPoint) and will be
  /// flushed from the system by subsequent activations (Lemma 7.2).
  void withdraw_exit(PathId p);

  /// (Re-)announces a withdrawn exit path.
  void announce_exit(PathId p);

  [[nodiscard]] bool is_announced(PathId p) const { return announced_.at(p); }

  /// Ids of currently announced exits, ascending.
  [[nodiscard]] std::vector<PathId> announced_exits() const;

  /// Simulates a crash: the node forgets all BGP state and stops advertising
  /// until its next activation (its E-BGP sessions are assumed to re-deliver
  /// MyExits on restart).
  void crash_node(NodeId v);

  // --- stepping -----------------------------------------------------------

  /// Executes one activation step.  Returns true iff any activated node's
  /// state changed.
  bool step(const ActivationSet& sigma);

  /// Total steps executed so far.
  [[nodiscard]] std::size_t steps() const { return steps_; }

  // --- state inspection ---------------------------------------------------

  /// PossibleExits(v) with learnedFrom attribution, sorted by path id.
  [[nodiscard]] std::span<const bgp::Candidate> possible(NodeId v) const {
    return nodes_.at(v).possible;
  }

  /// Bare path ids of PossibleExits(v), ascending.
  [[nodiscard]] std::vector<PathId> possible_ids(NodeId v) const;

  [[nodiscard]] const std::optional<bgp::RouteView>& best(NodeId v) const {
    return nodes_.at(v).best;
  }

  /// The advertised set (GoodExits for the modified protocol), ascending.
  [[nodiscard]] std::span<const PathId> advertised(NodeId v) const {
    return nodes_.at(v).advertised;
  }

  /// Exit path id of v's best route, or kNoPath.
  [[nodiscard]] PathId best_path(NodeId v) const {
    const auto& best = nodes_.at(v).best;
    return best ? best->path : kNoPath;
  }

  /// Order-sensitive fingerprint of the entire routing configuration
  /// (possible sets with attribution, best routes, advertised sets).
  [[nodiscard]] std::uint64_t state_hash() const;

  /// Cumulative count of best-route changes across all nodes ("route flaps").
  [[nodiscard]] std::size_t best_flips() const { return best_flips_; }

  /// Per-node count of best-route changes.
  [[nodiscard]] std::span<const std::size_t> best_flips_by_node() const {
    return flips_by_node_;
  }

 private:
  struct NodeState {
    std::vector<bgp::Candidate> possible;  // sorted by path id
    std::optional<bgp::RouteView> best;
    std::vector<PathId> advertised;  // ascending

    friend bool operator==(const NodeState&, const NodeState&) = default;
  };

  [[nodiscard]] NodeState recompute(NodeId u) const;

  const core::Instance* inst_;
  core::ProtocolKind protocol_;
  std::vector<core::ProtocolKind> node_protocol_;
  std::vector<NodeState> nodes_;
  std::vector<bool> announced_;
  std::size_t steps_ = 0;
  std::size_t best_flips_ = 0;
  std::vector<std::size_t> flips_by_node_;
};

}  // namespace ibgp::engine
