#include "engine/sync_engine.hpp"

#include <algorithm>
#include <limits>

#include "core/transfer.hpp"
#include "util/hash.hpp"

namespace ibgp::engine {

SyncEngine::SyncEngine(const core::Instance& inst, core::ProtocolKind protocol)
    : inst_(&inst),
      protocol_(protocol),
      node_protocol_(inst.node_count(), protocol),
      nodes_(inst.node_count()),
      announced_(inst.exits().size(), true),
      flips_by_node_(inst.node_count(), 0) {}

void SyncEngine::withdraw_exit(PathId p) { announced_.at(p) = false; }

void SyncEngine::announce_exit(PathId p) { announced_.at(p) = true; }

std::vector<PathId> SyncEngine::announced_exits() const {
  std::vector<PathId> out;
  for (PathId p = 0; p < announced_.size(); ++p) {
    if (announced_[p]) out.push_back(p);
  }
  return out;
}

void SyncEngine::crash_node(NodeId v) { nodes_.at(v) = NodeState{}; }

SyncEngine::NodeState SyncEngine::recompute(NodeId u) const {
  // PossibleExits(u) = MyExits(u) ∪ ⋃_v Transfer_{v→u}(Advertised(v)),
  // with learnedFrom = min BGP id over supplying peers.
  constexpr BgpId kUnset = std::numeric_limits<BgpId>::max();
  std::vector<BgpId> learned(inst_->exits().size(), kUnset);
  std::vector<bool> mine(inst_->exits().size(), false);

  for (const auto& path : inst_->exits().all()) {
    if (path.exit_point == u && announced_[path.id]) {
      mine[path.id] = true;
      learned[path.id] = path.ebgp_peer;
    }
  }
  for (const NodeId v : inst_->sessions().peers(u)) {
    for (const PathId p : nodes_[v].advertised) {
      if (!core::transfer_allowed(*inst_, v, u, p)) continue;
      if (mine[p]) continue;  // cannot happen under the formal Transfer; guard anyway
      learned[p] = std::min(learned[p], inst_->bgp_id(v));
    }
  }

  NodeState state;
  for (PathId p = 0; p < learned.size(); ++p) {
    if (learned[p] != kUnset) state.possible.push_back({p, learned[p]});
  }
  auto decision = core::decide(*inst_, node_protocol_[u], u, state.possible);
  state.best = decision.best;
  state.advertised = std::move(decision.advertised);
  return state;
}

bool SyncEngine::step(const ActivationSet& sigma) {
  ++steps_;
  // Simultaneous semantics: compute every new state from the pre-step
  // configuration, then commit.
  std::vector<std::pair<NodeId, NodeState>> updates;
  updates.reserve(sigma.size());
  for (const NodeId u : sigma) updates.emplace_back(u, recompute(u));

  bool changed = false;
  for (auto& [u, state] : updates) {
    if (state == nodes_[u]) continue;
    changed = true;
    const PathId old_best = nodes_[u].best ? nodes_[u].best->path : kNoPath;
    const PathId new_best = state.best ? state.best->path : kNoPath;
    if (old_best != new_best) {
      ++best_flips_;
      ++flips_by_node_[u];
    }
    nodes_[u] = std::move(state);
  }
  return changed;
}

std::vector<PathId> SyncEngine::possible_ids(NodeId v) const {
  std::vector<PathId> out;
  out.reserve(nodes_.at(v).possible.size());
  for (const auto& candidate : nodes_[v].possible) out.push_back(candidate.path);
  return out;
}

std::uint64_t SyncEngine::state_hash() const {
  util::Fingerprint fp;
  for (const auto& node : nodes_) {
    fp.add(0xA11CE);  // node separator
    for (const auto& candidate : node.possible) {
      fp.add(candidate.path).add(candidate.learned_from);
    }
    fp.add(0xBE57);
    if (node.best) {
      fp.add(node.best->path).add(static_cast<std::uint64_t>(node.best->metric));
      fp.add(node.best->learned_from);
    } else {
      fp.add(0xDEAD);
    }
    fp.add(0xAD5);
    for (const PathId p : node.advertised) fp.add(p);
  }
  for (const bool a : announced_) fp.add(a ? 1 : 0);
  for (const auto kind : node_protocol_) fp.add(static_cast<std::uint64_t>(kind));
  return fp.value();
}

}  // namespace ibgp::engine
