#include "engine/activation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ibgp::engine {

namespace {

class RoundRobin final : public ActivationSequence {
 public:
  explicit RoundRobin(std::size_t n) : n_(n) {
    if (n == 0) throw std::invalid_argument("RoundRobin: empty node set");
  }
  ActivationSet next() override {
    const NodeId v = static_cast<NodeId>(cursor_);
    cursor_ = (cursor_ + 1) % n_;
    return {v};
  }
  [[nodiscard]] std::size_t period() const override { return n_; }
  [[nodiscard]] std::string describe() const override { return "round-robin"; }

 private:
  std::size_t n_;
  std::size_t cursor_ = 0;
};

class FullSet final : public ActivationSequence {
 public:
  explicit FullSet(std::size_t n) : n_(n) {
    if (n == 0) throw std::invalid_argument("FullSet: empty node set");
  }
  ActivationSet next() override {
    ActivationSet all(n_);
    std::iota(all.begin(), all.end(), NodeId{0});
    return all;
  }
  [[nodiscard]] std::size_t period() const override { return 1; }
  [[nodiscard]] std::string describe() const override { return "full-set (synchronous)"; }

 private:
  std::size_t n_;
};

class RandomFair final : public ActivationSequence {
 public:
  RandomFair(std::size_t n, std::uint64_t seed) : n_(n), rng_(seed), order_(n) {
    if (n == 0) throw std::invalid_argument("RandomFair: empty node set");
    std::iota(order_.begin(), order_.end(), NodeId{0});
    reshuffle();
  }
  ActivationSet next() override {
    if (cursor_ == n_) {
      reshuffle();
      cursor_ = 0;
    }
    return {order_[cursor_++]};
  }
  // Two partial rounds can separate consecutive activations of a node, so
  // the fairness window is 2n-1; use 2n as a safe bound.
  [[nodiscard]] std::size_t period() const override { return 2 * n_; }
  [[nodiscard]] std::string describe() const override { return "random-fair permutations"; }

 private:
  void reshuffle() { rng_.shuffle(std::span<NodeId>(order_)); }

  std::size_t n_;
  util::Xoshiro256 rng_;
  std::vector<NodeId> order_;
  std::size_t cursor_ = 0;
};

class RandomSubsets final : public ActivationSequence {
 public:
  RandomSubsets(std::size_t n, std::uint64_t seed, std::size_t window)
      : n_(n), window_(window == 0 ? 2 * n : window), rng_(seed), last_seen_(n, 0) {
    if (n == 0) throw std::invalid_argument("RandomSubsets: empty node set");
  }
  ActivationSet next() override {
    ++clock_;
    ActivationSet set;
    for (NodeId v = 0; v < n_; ++v) {
      if (rng_.chance(0.5)) set.push_back(v);
    }
    // Fairness patch: force-in any node starved for a full window, and never
    // emit an empty set.
    for (NodeId v = 0; v < n_; ++v) {
      if (clock_ - last_seen_[v] >= window_ &&
          !std::binary_search(set.begin(), set.end(), v)) {
        set.push_back(v);
      }
    }
    if (set.empty()) set.push_back(static_cast<NodeId>(rng_.below(n_)));
    std::sort(set.begin(), set.end());
    for (const NodeId v : set) last_seen_[v] = clock_;
    return set;
  }
  [[nodiscard]] std::size_t period() const override { return window_ + 1; }
  [[nodiscard]] std::string describe() const override { return "random fair subsets"; }

 private:
  std::size_t n_;
  std::size_t window_;
  util::Xoshiro256 rng_;
  std::vector<std::size_t> last_seen_;
  std::size_t clock_ = 0;
};

class Scripted final : public ActivationSequence {
 public:
  Scripted(std::size_t n, std::vector<ActivationSet> prefix)
      : n_(n), prefix_(std::move(prefix)), tail_(n) {
    for (auto& set : prefix_) {
      if (set.empty()) throw std::invalid_argument("Scripted: empty activation set");
      std::sort(set.begin(), set.end());
      for (const NodeId v : set) {
        if (v >= n) throw std::invalid_argument("Scripted: node out of range");
      }
    }
  }
  ActivationSet next() override {
    if (cursor_ < prefix_.size()) return prefix_[cursor_++];
    return tail_.next();
  }
  [[nodiscard]] std::size_t period() const override { return prefix_.size() + n_; }
  [[nodiscard]] std::string describe() const override {
    return "scripted prefix (" + std::to_string(prefix_.size()) + " steps) + round-robin";
  }

 private:
  std::size_t n_;
  std::vector<ActivationSet> prefix_;
  std::size_t cursor_ = 0;
  RoundRobin tail_;
};

}  // namespace

std::unique_ptr<ActivationSequence> make_round_robin(std::size_t node_count) {
  return std::make_unique<RoundRobin>(node_count);
}

std::unique_ptr<ActivationSequence> make_full_set(std::size_t node_count) {
  return std::make_unique<FullSet>(node_count);
}

std::unique_ptr<ActivationSequence> make_random_fair(std::size_t node_count,
                                                     std::uint64_t seed) {
  return std::make_unique<RandomFair>(node_count, seed);
}

std::unique_ptr<ActivationSequence> make_random_subsets(std::size_t node_count,
                                                        std::uint64_t seed,
                                                        std::size_t window) {
  return std::make_unique<RandomSubsets>(node_count, seed, window);
}

std::unique_ptr<ActivationSequence> make_scripted(std::size_t node_count,
                                                  std::vector<ActivationSet> prefix) {
  return std::make_unique<Scripted>(node_count, std::move(prefix));
}

}  // namespace ibgp::engine
