#include "engine/oscillation.hpp"

#include <sstream>
#include <unordered_map>

#include "util/hash.hpp"

namespace ibgp::engine {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kConverged: return "converged";
    case RunStatus::kCycleDetected: return "oscillates";
    case RunStatus::kStepLimit: return "step-limit";
  }
  return "?";
}

RunOutcome run(SyncEngine& engine, ActivationSequence& sequence, const RunLimits& limits) {
  RunOutcome outcome;
  const std::size_t period = std::max<std::size_t>(1, sequence.period());

  // (state hash, schedule phase) -> step index of first sighting.
  std::unordered_map<std::uint64_t, std::size_t> seen;
  std::size_t quiet_run = 0;   // consecutive no-change steps
  std::size_t last_change = 0;

  for (std::size_t step = 0; step < limits.max_steps; ++step) {
    const ActivationSet sigma = sequence.next();
    const bool changed = engine.step(sigma);
    if (changed) {
      quiet_run = 0;
      last_change = engine.steps();
    } else {
      ++quiet_run;
      if (quiet_run >= period) {
        outcome.status = RunStatus::kConverged;
        outcome.quiescent_since = last_change;
        break;
      }
    }

    if (limits.detect_cycles && changed) {
      const std::uint64_t phase = engine.steps() % period;
      const std::uint64_t key = util::hash_combine(engine.state_hash(), phase);
      const auto [it, inserted] = seen.emplace(key, engine.steps());
      if (!inserted) {
        outcome.status = RunStatus::kCycleDetected;
        outcome.cycle_length = engine.steps() - it->second;
        break;
      }
    }
  }

  outcome.steps = engine.steps();
  outcome.best_flips = engine.best_flips();
  outcome.final_hash = engine.state_hash();
  outcome.final_best.reserve(engine.instance().node_count());
  for (NodeId v = 0; v < engine.instance().node_count(); ++v) {
    outcome.final_best.push_back(engine.best_path(v));
  }
  return outcome;
}

RunOutcome run_protocol(const core::Instance& inst, core::ProtocolKind protocol,
                        ActivationSequence& sequence, const RunLimits& limits) {
  SyncEngine engine(inst, protocol);
  return run(engine, sequence, limits);
}

std::string describe_best(const core::Instance& inst, const std::vector<PathId>& best) {
  std::ostringstream oss;
  for (NodeId v = 0; v < best.size(); ++v) {
    if (v > 0) oss << ", ";
    oss << inst.node_name(v) << "->";
    if (best[v] == kNoPath) {
      oss << "(none)";
    } else {
      oss << inst.exits()[best[v]].name;
    }
  }
  return oss.str();
}

}  // namespace ibgp::engine
