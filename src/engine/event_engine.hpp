#pragma once
// Event-driven (message-passing) I-BGP simulator.
//
// Where the synchronous engine executes the paper's abstract config(t)
// semantics, this engine models the *operational* protocol: per-session FIFO
// UPDATE delivery with arbitrary per-message delays, Adj-RIB-In per peer,
// and RFC-1966-style reflection rules keyed on the peer class a route was
// learned from:
//
//   at a reflector:  own E-BGP route          -> all peers
//                    learned from a client    -> all peers except originator
//                    learned from a non-client-> own clients only
//   at a client:     own E-BGP route          -> all peers
//                    learned via I-BGP        -> nobody
//
// The advertised *content* is protocol-dependent (core::decide): the single
// best route (standard), the per-AS best vector (Walton), or GoodExits (the
// paper's modified protocol, which is essentially BGP add-paths for the
// MED-survivor set).  Withdraws are path-addressed, matching the add-paths
// abstraction; for the standard protocol this coincides with classic
// single-route announce/implicit-withdraw behavior.
//
// Message delays are the paper's source of *transient* oscillation (Fig 3 /
// Table 1): the same topology converges or flaps depending on the delay
// script.  Delays come from a caller-provided function of (from, to, seq);
// FIFO order per directed session is enforced regardless of the function.
//
// Beyond delays, the engine models the *failures* that drive real I-BGP
// churn (the src/fault/ harness scripts them):
//
//   - session down/up: a downed session voids its in-flight messages, both
//     endpoints flush every Adj-RIB-In entry learned over it (the Lemma 7.2
//     flush discipline applied to peer state), and re-establishment replays
//     a full advertisement sync, as a real OPEN/initial-table exchange does;
//   - router crash/restart: a crash downs every session of the router and
//     erases its entire state; on restart it re-learns its own E-BGP routes
//     (external neighbors still advertise them) and peers re-sync;
//   - per-message loss/duplication: a FaultInjector policy hook alongside
//     DelayFn.  Loss models transport failure — since BGP runs over TCP, a
//     lost UPDATE in reality means retransmission failure and hold-timer
//     expiry, so injectors typically answer a drop by scheduling a session
//     reset (ScriptInjector in fault/script.hpp does exactly this).
//
// The engine core stays fault-agnostic: faults enter only through the
// schedule_* calls and the FaultInjector hook, and every fault is an event
// in the same deterministic (time, seq) order as message deliveries, so a
// fault campaign is exactly reproducible from its script.
//
// Graceful restart (RFC 4724 semantics, router-level).  A *cold* crash is
// maximally disruptive: peers flush every route learned from the victim and
// the victim's forwarding plane dies with its control plane.  A *graceful*
// restart models a control-plane-only reboot with stale-path retention.
// The state machine, per restarting router v:
//
//   UP --graceful_down--> RESTARTING --restart--> UP        (warm recovery)
//                         RESTARTING --crash-->   DOWN      (restart failed)
//
//   graceful_down(v): v's sessions stop carrying messages (in-flight
//     UPDATEs are voided) and v loses its control-plane state, but each
//     peer *retains* its Adj-RIB-In entries from v, marked STALE — still
//     eligible for selection, advertisement, and forwarding.  v's
//     forwarding entry (the FIB, tracked separately from the best route)
//     freezes at its pre-restart value: the data plane keeps forwarding.
//   restart(v) while RESTARTING: v re-learns its live E-BGP exits, replays
//     its initial table to every peer, then emits an End-of-RIB marker per
//     session (FIFO-ordered after the replayed UPDATEs).  A peer receiving
//     the EoR sweeps whatever entries from v are *still* stale — anything
//     the replay did not refresh is gone for real.  v's FIB stays frozen
//     through the resync: it thaws (and resumes mirroring the best route)
//     only once v computes its first post-restart best route, so the
//     restarting router never blackholes while its table refills.
//   stale timer (set_stale_timer): bounds retention per restart.  If it
//     expires before the EoR arrived, every still-stale entry from v is
//     cold-flushed at its holder, and a still-frozen FIB at v thaws to the
//     current best route (usually none) — the restart-never-completes
//     degradation path.  0 disables the timer (retain until EoR).
//   crash(v) while RESTARTING: retention collapses — peers cold-flush v's
//     stale entries and v's frozen FIB is erased.
//
// End-of-RIB markers ride the normal per-session delay/FIFO machinery but
// bypass the FaultInjector: transport loss is already modeled by the
// injector's session-reset repair, which flushes stale state wholesale.
// The per-node FIB history (fib_log) plus the fault log let
// analysis/continuity replay forwarding tick-by-tick and price blackhole,
// stale-use, and loop windows — the quantitative cold-vs-graceful verdict.
//
// IGP topology churn (link-cost / link-failure faults).  The paper defines
// a route as an IGP shortest path plus an exit path (Section 4), so the
// underlay is a decision input, not scenery.  The engine therefore holds a
// mutable LinkState over the instance's physical links and a *current IGP
// epoch* — a shared_ptr<const ShortestPaths> swapped atomically (in virtual
// time) by three fault events:
//
//   - link_cost_change(a, b, c): the administrative metric of link a—b
//     becomes c (a change on a down link only retargets the later link-up);
//   - link_down(a, b): the link fails (effective cost = infinity);
//   - link_up(a, b): the link returns at its configured cost.
//
// Applying one of these recomputes shortest paths deterministically through
// the instance's memoized SPF cache (Instance::igp_epoch — the same
// link-state vector never runs Dijkstra twice, across engines and sweep
// cells), then:
//
//   1. I-BGP sessions whose endpoints lost IGP reachability are severed via
//      the existing session machinery (TCP cannot cross a partition):
//      in-flight messages epoch-void, both ends flush, exactly as a session
//      fault would.  session_up() is false while a session is IGP-severed;
//      reachability returning triggers the normal full-resync replay.
//   2. Every up node re-evaluates PossibleExits/BestRoute against the new
//      distances (selection prices candidates with the current epoch), and
//      the net-diff send logic re-advertises only where the selected or
//      advertised set actually changed.
//
// The epoch history (igp_log) joins the FIB and fault logs so
// analysis/continuity can replay forwarding against the IGP that was live
// in each interval, and analysis/invariants can assert post-quiescence that
// every selected route's metric matches the *current* graph.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <array>

#include "bgp/selection.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "netsim/link_state.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace ibgp::engine {

using SimTime = std::uint64_t;

/// Fate of one UPDATE message, decided at send time.
enum class MessageFate : std::uint8_t { kDeliver, kDrop, kDuplicate };

/// Categories of injected faults, as recorded in the fault log.
/// kGracefulDown starts a graceful restart; kStaleExpire is logged when a
/// stale timer fires and actually cold-flushes retained entries.
enum class FaultKind : std::uint8_t {
  kSessionDown,
  kSessionUp,
  kCrash,
  kRestart,
  kGracefulDown,
  kStaleExpire,
  kLinkCostChange,
  kLinkDown,
  kLinkUp,
};

/// Display name ("session-down", ...).
const char* fault_kind_name(FaultKind kind);

/// Thrown by run() when a wall-clock deadline (set_deadline) expires.  The
/// engine is left between events, so the caller can retry the whole cell
/// from scratch (the deterministic discipline makes retries byte-identical)
/// or record a structured timeout — the fault supervisor does both.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class EventEngine;
struct EngineState;

/// Causal-lineage sentinel: an event with pid == kNoCause is a root — it was
/// scheduled from outside event processing (scenario script, daemon ingest)
/// rather than caused by another delivery.  Trace records omit "pid" for
/// roots, which is how ibgp-trace-v2 consumers recognize injection points.
inline constexpr std::uint64_t kNoCause = ~std::uint64_t{0};

/// Per-message fault policy: classify() is keyed on the same (from, to, seq)
/// triple as DelayFn so implementations can be pure functions of a seed —
/// fully deterministic regardless of call order.  on_drop() fires right
/// after a message was discarded and may schedule repair faults on the
/// engine (e.g. the session reset a real hold-timer expiry would cause).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual MessageFate classify(NodeId from, NodeId to, std::uint64_t seq) = 0;
  virtual void on_drop(EventEngine& engine, NodeId from, NodeId to, SimTime now);
};

class EventEngine {
 public:
  /// Delay (in ticks) of the seq-th message on the directed session
  /// from->to.  Defaults to constant 1.
  using DelayFn = std::function<SimTime(NodeId from, NodeId to, std::uint64_t seq)>;

  EventEngine(const core::Instance& inst, core::ProtocolKind protocol,
              DelayFn delay = {});

  /// Enables a MinRouteAdvertisementInterval: after flushing UPDATEs to a
  /// peer, further changes for that peer are batched and sent as one net
  /// diff once `interval` ticks have passed.  Models the rate-limiting /
  /// flap-dampening family of mitigations (Section 9 of the paper): they
  /// slow persistent oscillations down but cannot remove them — which
  /// bench_mrai measures.
  ///
  /// Precondition: must be called before any event is scheduled (inject_*,
  /// withdraw_*, schedule_*) or processed; a mid-run change would apply the
  /// new interval to per-peer hold-down state computed under the old one.
  /// Throws std::logic_error if the precondition is violated.
  void set_mrai(SimTime interval);

  /// Installs the per-message fault policy (non-owning; pass nullptr to
  /// clear).  Same precondition as set_mrai: before any event is scheduled,
  /// so every message of the run is classified under one policy.
  void set_fault_injector(FaultInjector* injector);

  /// Attaches a metrics registry (non-owning; nullptr detaches).  The
  /// engine pushes its deterministic counters (deliveries, updates,
  /// per-rule decisions, MRAI deferrals, epoch swaps, ...) into the
  /// registry at the end of each run() — counter increments commute, so a
  /// registry shared across sweep workers stays byte-identical across
  /// --jobs (see obs/metrics.hpp).  Metric names are pre-registered via
  /// register_event_engine_metrics(); attach before fan-out to keep
  /// snapshot ordering deterministic.  Same precondition as set_mrai: must
  /// be called before any event is scheduled.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a trace sink (non-owning; nullptr detaches).  When the sink
  /// is enabled the engine emits ibgp-trace-v2 records for deliveries,
  /// E-BGP announce/withdraw, selection decisions (with the decisive rule),
  /// fault applications, IGP epoch swaps, MRAI flushes, and End-of-RIB
  /// markers — plus a meta/node/path preamble so downstream tools can label
  /// ids.  v2 adds causal lineage: each record carries "lid" (the event seq
  /// being processed) and "pid" (the seq of the event that caused it;
  /// omitted for injection roots), forming a per-run propagation DAG with
  /// pid < lid by construction.  v1 consumers that skip unknown fields keep
  /// working.  Disabled or absent sinks cost one branch per site.  Same
  /// precondition as set_mrai: must be called before any event is scheduled.
  void set_trace(obs::TraceSink* trace);

  /// Enables hot-path profiler spans: delivery, selection (core::decide),
  /// and per-peer export/Transfer wall times observed into volatile
  /// span histograms (engine.span.*_ns) on the attached registry.  Off by
  /// default; when off the instrumented sites cost one null-pointer branch
  /// and never read the clock, so the deterministic outputs stay
  /// bit-identical (same bar as the provenance-sink specialization).
  /// Enabled spans are *sampled*: 1 in 64 deliveries is timed (the first
  /// always is), with the delivery's nested decision/transfer spans armed
  /// together so per-sample nesting stays coherent.  The quantiles remain
  /// statistically sound at churn rates while the amortized clock cost
  /// keeps enabled overhead well under the 5% CI gate.
  /// Requires set_metrics first (no-op sink otherwise).  Same precondition
  /// as set_mrai: must be called before any event is scheduled.
  void set_profile(bool enabled);

  /// Bounds stale-path retention per graceful restart: `ticks` after a
  /// graceful down, any entry from the restarting router that is still
  /// stale is cold-flushed at its holder (the restart-never-completes
  /// degradation path).  0 (default) disables the timer: peers retain
  /// stale paths until the End-of-RIB marker.  Same precondition as
  /// set_mrai: must be called before any event is scheduled.
  void set_stale_timer(SimTime ticks);

  // --- scenario scripting ---------------------------------------------------

  /// Schedules E-BGP injection of path p at its exit point at `when`.
  void inject_exit(PathId p, SimTime when);

  /// Injects every registered exit path at time `when`.
  void inject_all_exits(SimTime when = 0);

  /// Schedules an E-BGP withdrawal of path p at `when`.
  void withdraw_exit(PathId p, SimTime when);

  // --- fault scripting ------------------------------------------------------

  /// Schedules an administrative down of session u—v: in-flight messages on
  /// it are voided, both endpoints flush routes learned over it (stale
  /// retention included — an admin down during a peer's graceful restart
  /// kills retention on that session).  Downing an already-down session is
  /// a well-defined no-op (nothing is logged or flushed twice).  Throws
  /// std::invalid_argument if u—v is not a session.
  void schedule_session_down(NodeId u, NodeId v, SimTime when);

  /// Schedules re-establishment of session u—v; both endpoints replay a
  /// full advertisement sync (no-op while an endpoint is crashed: the
  /// session only carries traffic once both ends are up).  Raising a
  /// session that is not administratively down is a well-defined no-op.
  void schedule_session_up(NodeId u, NodeId v, SimTime when);

  /// Schedules a crash of router v: all its sessions drop, all its state
  /// (Adj-RIB-In, best route, advertised sets, own E-BGP routes) is lost.
  /// Crashing mid-graceful-restart converts the warm recovery to cold:
  /// peers flush v's stale entries and v's frozen forwarding entry dies.
  /// Crashing an already-cold-down router is a well-defined no-op.
  void schedule_crash(NodeId v, SimTime when);

  /// Schedules a restart of router v: it re-learns whatever E-BGP routes
  /// are still live at its exit point and re-syncs with its peers.  After a
  /// graceful down this completes the warm recovery: the initial-table
  /// replay is followed by an End-of-RIB marker per session, on whose
  /// arrival the peer sweeps still-stale entries.  Restarting a router
  /// that is not down is a well-defined no-op (nothing is logged).
  void schedule_restart(NodeId v, SimTime when);

  /// Schedules a graceful restart of router v (RFC 4724 semantics): v's
  /// control plane goes down and its sessions stop carrying messages, but
  /// peers retain v's routes as STALE and v's forwarding entry freezes at
  /// its pre-restart value.  Pair with schedule_restart for the recovery;
  /// see set_stale_timer for the bounded-retention degradation path.
  /// Graceful down of an already-down router is a well-defined no-op.
  /// Throws std::invalid_argument if v is not a node.
  void schedule_graceful_down(NodeId v, SimTime when);

  /// Schedules an IGP metric change on physical link a—b: its administrative
  /// cost becomes `cost` at `when`, a new shortest-paths epoch is swapped in
  /// (deterministically memoized in the instance's SPF cache), and every up
  /// node re-evaluates its decision against the new distances.  Changing the
  /// cost of a *down* link swaps no epoch — it only retargets the eventual
  /// link-up.  A change to the current cost is a well-defined no-op.  Throws
  /// std::invalid_argument if a—b is not a physical link or `cost` is not a
  /// positive finite metric.
  void schedule_link_cost_change(NodeId a, NodeId b, Cost cost, SimTime when);

  /// Schedules a failure of physical link a—b at `when`: its effective cost
  /// becomes infinite, a new epoch is swapped in, and any I-BGP session
  /// whose endpoints lost IGP reachability is severed exactly as a session
  /// fault would (in-flight messages voided, both ends flushed); such
  /// sessions stay down (session_up() false) until reachability returns.
  /// Downing an already-down link is a well-defined no-op.  Throws
  /// std::invalid_argument if a—b is not a physical link.
  void schedule_link_down(NodeId a, NodeId b, SimTime when);

  /// Schedules repair of physical link a—b at `when`: it returns at its
  /// configured cost (as adjusted by any cost changes, including ones made
  /// while it was down).  Sessions that regain IGP reachability resume and
  /// replay a full advertisement sync.  Raising an up link is a well-defined
  /// no-op.  Throws std::invalid_argument if a—b is not a physical link.
  void schedule_link_up(NodeId a, NodeId b, SimTime when);

  // --- execution --------------------------------------------------------------

  struct Result {
    /// The event queue drained: nothing was left to do.  Independent of
    /// budget_exhausted — a run that spends its delivery budget on the very
    /// last event reports BOTH converged (drained) and budget_exhausted
    /// (the stop condition tripped), so "ran to quiescence" and "was cut
    /// off" are never conflated.
    bool converged = false;
    /// deliveries hit max_deliveries.  When converged is false this run was
    /// truncated: events_pending events (faults_pending of them scheduled
    /// faults) were still queued and silently never applied — consumers
    /// pricing fault timelines (settle time, continuity) must treat the
    /// history as incomplete past end_time.
    bool budget_exhausted = false;
    std::size_t events_pending = 0;  ///< events left unprocessed (0 iff converged)
    /// Unapplied fault events (session down/up, crash, restart, graceful
    /// down, stale-timer expiry) among events_pending, with the earliest
    /// one's time; next_fault_time is meaningful only when faults_pending
    /// is nonzero.  These are the script actions at or after end_time that
    /// a truncated run never got to.
    std::size_t faults_pending = 0;
    SimTime next_fault_time = 0;
    std::size_t deliveries = 0;  ///< events processed
    std::size_t updates_sent = 0;  ///< announce+withdraw messages enqueued
    SimTime end_time = 0;        ///< virtual time of the last processed event
    std::size_t best_flips = 0;  ///< total best-route changes
    std::vector<PathId> final_best;  ///< per node; kNoPath = no route
    std::size_t messages_dropped = 0;     ///< voided by the FaultInjector
    std::size_t messages_duplicated = 0;  ///< extra copies enqueued
    std::size_t deliveries_voided = 0;  ///< in-flight messages killed by session resets
    std::size_t faults_applied = 0;     ///< fault_log() entries
    std::size_t eor_markers_sent = 0;   ///< End-of-RIB markers enqueued
    std::size_t stale_retained = 0;     ///< Adj-RIB-In entries marked stale
    std::size_t stale_swept_eor = 0;    ///< stale entries swept by an EoR
    std::size_t stale_swept_expired = 0;  ///< stale entries cold-flushed by the timer
    std::size_t igp_epoch_swaps = 0;  ///< link faults that installed a new IGP epoch
    // --- decision provenance (bgp::SelectionProvenance, aggregated) ---------
    /// Total reconsider() selections that produced a best route.  Equals the
    /// sum of decisions_by_rule (tested in test_obs).
    std::uint64_t decisions_total = 0;
    std::uint64_t decisions_empty = 0;  ///< selections with no usable route
    std::uint64_t mrai_deferrals = 0;   ///< peer syncs batched by the MRAI hold-down
    /// decisions_by_rule[rule_index(r)] = selections where r was decisive.
    std::array<std::uint64_t, bgp::kSelectionRuleCount> decisions_by_rule{};
    /// Per-node decisive-rule histogram, indexed by NodeId.
    std::vector<std::array<std::uint64_t, bgp::kSelectionRuleCount>> decisions_by_node;
  };

  /// Processes events until the queue drains or `max_deliveries` is hit.
  /// On an engine restored from a checkpoint, deliveries/end_time continue
  /// from the captured run (so the budget and the returned Result are those
  /// of the equivalent uninterrupted run, not of the remainder).
  Result run(std::size_t max_deliveries = 1'000'000);

  /// Like run(), but also stops (without draining) as soon as the next
  /// pending event lies strictly after `horizon` — the cooperative stepping
  /// hook a long-lived service needs to interleave ingest with processing.
  /// Events AT the horizon are processed.  The returned Result's
  /// `converged` means "quiescent up to and including horizon": either the
  /// queue drained or everything left is scheduled later.  Repeated calls
  /// with increasing horizons are equivalent to one call with the final
  /// horizon (same deterministic (time, seq) order), which is what makes
  /// daemon replay-after-crash byte-identical to an uninterrupted run.
  Result run_until(SimTime horizon, std::size_t max_deliveries = 1'000'000);

  /// Arms (or, with nullopt, disarms) a cooperative wall-clock deadline for
  /// run(): checked every few thousand deliveries, an expired deadline makes
  /// run() throw DeadlineExceeded between two events.  Purely an execution
  /// guard — it never influences virtual-time behavior — so unlike the
  /// set_* configuration it may be changed at any point.
  void set_deadline(std::optional<std::chrono::steady_clock::time_point> deadline);

  // --- checkpoint / restore ---------------------------------------------------

  /// Snapshots the engine's complete deterministic state — pending events
  /// (the fault-script cursor lives in them), per-node RIBs/best/FIB, stale
  /// flags and GR generations, session epochs and FIFO clocks, MRAI holds,
  /// link state with the IGP epoch history, every log, all counters, and
  /// the cumulative deliveries/end_time of the run so far.  Callable
  /// between run() calls (never concurrently with one).  The snapshot is
  /// plain data: serialize it with ckpt::engine_state_json (ibgp-ckpt-v1).
  ///
  /// Not captured (by design): the delay function, fault injector, metrics
  /// registry, and trace sink — non-serializable attachments the restoring
  /// caller must re-create identically (fault/campaign.cpp rebuilds them
  /// from the cell's script and options); and the volatile
  /// max-queue-depth gauge input.
  [[nodiscard]] EngineState capture() const;

  /// Rebuilds the captured state into this engine, which must be freshly
  /// constructed over the *same* instance and protocol and still unsealed —
  /// configure set_mrai/set_stale_timer-equivalents via the state itself
  /// (restore overwrites both), but attach delay/injector/metrics/trace
  /// BEFORE calling restore, which seals the engine.  The next run() then
  /// continues bit-for-bit where capture() left off: resume ≡ uninterrupted.
  /// Throws std::logic_error when already sealed, std::runtime_error when
  /// the state does not match this instance/protocol or is malformed.
  void restore(const EngineState& state);

  // --- inspection -------------------------------------------------------------

  [[nodiscard]] const core::Instance& instance() const { return *inst_; }

  [[nodiscard]] PathId best_path(NodeId v) const {
    return nodes_.at(v).best ? nodes_.at(v).best->path : kNoPath;
  }
  [[nodiscard]] const std::optional<bgp::RouteView>& best(NodeId v) const {
    return nodes_.at(v).best;
  }
  [[nodiscard]] std::size_t updates_sent() const { return updates_sent_; }
  [[nodiscard]] std::span<const std::size_t> flips_by_node() const { return flips_by_node_; }

  /// Whether router v's control plane is currently up (not crashed and not
  /// mid-graceful-restart).
  [[nodiscard]] bool node_up(NodeId v) const { return node_up_.at(v); }

  /// Whether router v is inside a graceful-restart window: control plane
  /// down (node_up(v) is false) but data plane still forwarding on its
  /// frozen FIB entry.
  [[nodiscard]] bool restarting(NodeId v) const { return graceful_down_.at(v); }

  /// Router v's current *forwarding* entry (the FIB).  Mirrors the best
  /// route while v is up, freezes during a graceful restart, and is
  /// kNoPath while cold-down.
  [[nodiscard]] PathId node_forwarding(NodeId v) const { return fib_.at(v); }

  /// Whether session u—v currently carries messages: both endpoints up, no
  /// administrative down in force, and the endpoints IGP-reachable under
  /// the current epoch (TCP cannot cross a partition).
  [[nodiscard]] bool session_up(NodeId u, NodeId v) const;

  /// The IGP epoch currently in force (the base igp() of the instance until
  /// the first effective link fault).
  [[nodiscard]] const netsim::ShortestPaths& igp() const { return *igp_; }

  /// Shared handle to the current epoch (epochs are immutable and memoized:
  /// two engines — or a churn revert — reaching the same link-state vector
  /// hold pointer-identical objects).
  [[nodiscard]] std::shared_ptr<const netsim::ShortestPaths> igp_handle() const {
    return igp_;
  }

  /// Current link state (configured costs, down flags, effective vector).
  [[nodiscard]] const netsim::LinkState& link_state() const { return link_state_; }

  /// Whether path p's E-BGP origin is currently announcing it (independent
  /// of whether its exit point is up to hear it).
  [[nodiscard]] bool ebgp_live(PathId p) const { return ebgp_live_.at(p); }

  /// Peers currently announcing p to v (v's Adj-RIB-In support for p),
  /// ascending node order.  Includes stale (retained) entries.
  [[nodiscard]] std::span<const NodeId> rib_in(NodeId v, PathId p) const {
    return nodes_.at(v).holders.at(p);
  }

  /// The subset of rib_in(v, p) currently marked stale (retained across a
  /// peer's graceful restart, not yet refreshed or swept), ascending.
  [[nodiscard]] std::span<const NodeId> stale_rib_in(NodeId v, PathId p) const {
    return nodes_.at(v).stale.at(p);
  }

  /// The path set `from` believes it has advertised to `to` (ascending).
  [[nodiscard]] std::span<const PathId> advertised_to(NodeId from, NodeId to) const;

  [[nodiscard]] std::size_t messages_dropped() const { return messages_dropped_; }
  [[nodiscard]] std::size_t messages_duplicated() const { return messages_duplicated_; }
  [[nodiscard]] std::size_t deliveries_voided() const { return deliveries_voided_; }
  [[nodiscard]] std::size_t eor_markers_sent() const { return eor_sent_; }
  [[nodiscard]] std::size_t stale_retained() const { return stale_retained_; }
  [[nodiscard]] std::size_t stale_swept_eor() const { return stale_swept_eor_; }
  [[nodiscard]] std::size_t stale_swept_expired() const { return stale_swept_expired_; }

  /// One best-route change at a node, for flap traces (Table 1 reports).
  struct FlapRecord {
    SimTime time = 0;
    NodeId node = kNoNode;
    PathId old_best = kNoPath;
    PathId new_best = kNoPath;
  };
  [[nodiscard]] std::span<const FlapRecord> flap_log() const { return flap_log_; }

  /// One applied fault, in application order.  `a`,`b` are the session
  /// endpoints for session faults, the link endpoints for link faults; `a`
  /// the router for crash/restart.  `cost` is the effective cost a link
  /// fault left the link at (kInfCost for link-down; 0 for non-link kinds).
  struct FaultRecord {
    SimTime time = 0;
    FaultKind kind = FaultKind::kSessionDown;
    NodeId a = kNoNode;
    NodeId b = kNoNode;
    Cost cost = 0;
  };
  [[nodiscard]] std::span<const FaultRecord> fault_log() const { return fault_log_; }

  /// One IGP epoch swap: the shortest paths in force from `time` until the
  /// next record (the instance's base igp() is in force before the first).
  /// Together with fib_log and fault_log this lets analysis/continuity
  /// replay forwarding against the IGP that was live in each interval.
  struct IgpRecord {
    SimTime time = 0;
    std::uint64_t fingerprint = 0;  ///< ShortestPaths::fingerprint() of the epoch
    std::shared_ptr<const netsim::ShortestPaths> igp;
    /// The effective-cost vector that keyed this epoch.  Checkpoints store
    /// it so restore can re-materialize the epoch through the instance's
    /// memoized SPF cache (pointer-identical for the same vector).
    std::vector<Cost> effective;
  };
  [[nodiscard]] std::span<const IgpRecord> igp_log() const { return igp_log_; }

  /// One forwarding-entry (FIB) change at a node.  Together with the fault
  /// log this is a complete piecewise-constant history of the forwarding
  /// plane, which analysis/continuity replays tick-by-tick.
  struct FibRecord {
    SimTime time = 0;
    NodeId node = kNoNode;
    PathId old_path = kNoPath;
    PathId new_path = kNoPath;
  };
  [[nodiscard]] std::span<const FibRecord> fib_log() const { return fib_log_; }

 private:
  enum class EventKind : std::uint8_t {
    kEbgpAnnounce,
    kEbgpWithdraw,
    kUpdate,
    kMraiFlush,
    kSessionDown,
    kSessionUp,
    kCrash,
    kRestart,
    kGracefulDown,
    kEndOfRib,     // from -> to marker closing a graceful-restart replay
    kStaleExpire,  // from = restarting router whose stale timer fired
    kLinkCostChange,  // from—to = physical link endpoints, cost = new metric
    kLinkDown,
    kLinkUp,
  };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  // global tie-break preserving enqueue order
    std::uint64_t pid = kNoCause;  // seq of the causing event (kNoCause = root)
    EventKind kind = EventKind::kUpdate;
    NodeId from = kNoNode;  // kUpdate / kMraiFlush / session faults (endpoint a)
    NodeId to = kNoNode;
    PathId path = kNoPath;
    bool announce = true;      // kUpdate: announce vs withdraw
    std::uint64_t epoch = 0;   // kUpdate/kEndOfRib/kMraiFlush: voided if the
                               // session reset since scheduling; kStaleExpire:
                               // the graceful-restart generation it guards
                               // (stale timers of an older restart must not
                               // fire into a newer one)
    Cost cost = 0;             // kLinkCostChange: the new metric
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct NodeState {
    /// holders[p] = session peers currently announcing p to us, ascending.
    std::vector<std::vector<NodeId>> holders;
    /// stale[p] ⊆ holders[p]: entries retained across the peer's graceful
    /// restart, pending refresh (re-announce), EoR sweep, or timer expiry.
    std::vector<std::vector<NodeId>> stale;
    /// Own E-BGP paths currently injected.
    std::vector<bool> own;
    std::optional<bgp::RouteView> best;
    /// advertised_out[peer_index] = path set last sent to that peer.
    std::vector<std::vector<PathId>> advertised_out;
    /// MRAI state per peer: the latest desired set, the earliest next send
    /// time, and whether a flush event is already scheduled.
    std::vector<std::vector<PathId>> desired_out;
    std::vector<SimTime> mrai_ready;
    std::vector<bool> flush_scheduled;
  };

  void enqueue_update(NodeId from, NodeId to, PathId path, bool announce, SimTime now);
  void push_update(NodeId from, NodeId to, PathId path, bool announce, SimTime now,
                   std::uint64_t msg_seq);
  void reconsider(NodeId u, SimTime now);
  /// Sends the net diff desired_out -> advertised_out for one peer (MRAI
  /// permitting), or schedules the deferred flush.
  void sync_peer(NodeId u, std::size_t peer_index, SimTime now);
  [[nodiscard]] bool may_send(NodeId u, NodeId peer, PathId p) const;
  [[nodiscard]] std::size_t peer_index(NodeId u, NodeId peer) const;
  /// The peer whose copy of p node u has attributed (lowest BGP id holder),
  /// or kNoNode for own paths / unseen paths.
  [[nodiscard]] NodeId attributed_source(NodeId u, PathId p) const;

  [[nodiscard]] std::size_t sess(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) * inst_->node_count() + to;
  }
  void push_fault(EventKind kind, NodeId a, NodeId b, SimTime when, Cost cost = 0);
  /// Validates that a—b is a physical link and returns its index.
  [[nodiscard]] std::size_t require_link(NodeId a, NodeId b, const char* what) const;
  /// Applies a link fault: mutates link_state_ and, if the effective cost
  /// vector changed, swaps in the memoized epoch, severs sessions that lost
  /// IGP reachability, and re-evaluates every up node.
  void apply_link_fault(EventKind kind, NodeId a, NodeId b, Cost cost, SimTime now);
  void record_best_loss(NodeId v, SimTime now);
  /// Voids in-flight messages on u—v (both directions) and flushes both
  /// endpoints' per-session state (Adj-RIB-In entries, advertised sets).
  void sever_session(NodeId u, NodeId v);
  /// Clears everything node u tracks about session u—peer.
  void flush_endpoint(NodeId u, NodeId peer);
  /// Voids in-flight messages on v—w and resets both ends' send state, but
  /// leaves w's Adj-RIB-In entries from v in place, marked stale — the
  /// graceful analogue of sever_session.
  void detach_session_graceful(NodeId v, NodeId w);
  /// Records a FIB change for v (no-op when unchanged).
  void set_fib(NodeId v, PathId path, SimTime now);
  /// Drops every still-stale entry from v at peer w; returns entries swept.
  std::size_t sweep_stale_from(NodeId w, NodeId v);
  void send_end_of_rib(NodeId v, NodeId w, SimTime now);
  /// Appends to the fault log and mirrors the record into the trace.
  void record_fault(const FaultRecord& record);
  [[nodiscard]] bool tracing() const { return trace_ != nullptr && trace_->enabled(); }
  /// Pushes the counters accumulated since the last flush into metrics_
  /// (deltas, so repeated run() calls never double-count).
  void flush_metrics(const Result& result);
  Result run_impl(std::size_t max_deliveries, std::optional<SimTime> horizon);
  void emit_trace_preamble();
  void apply_session_down(NodeId u, NodeId v, SimTime now);
  void apply_session_up(NodeId u, NodeId v, SimTime now);
  void apply_crash(NodeId v, SimTime now);
  void apply_restart(NodeId v, SimTime now);
  void apply_graceful_down(NodeId v, SimTime now);
  void apply_end_of_rib(NodeId v, NodeId w, std::uint64_t epoch, SimTime now);
  void apply_stale_expire(NodeId v, std::uint64_t generation, SimTime now);

  const core::Instance* inst_;
  core::ProtocolKind protocol_;
  DelayFn delay_;
  netsim::LinkState link_state_;  // mutable underlay state (costs + down flags)
  std::shared_ptr<const netsim::ShortestPaths> igp_;  // current epoch
  SimTime mrai_ = 0;  // 0 = disabled
  SimTime stale_timer_ = 0;  // 0 = retain until EoR
  FaultInjector* injector_ = nullptr;  // non-owning
  bool sealed_ = false;  // an event has been scheduled: config is frozen
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::vector<NodeState> nodes_;
  std::vector<SimTime> session_last_delivery_;  // FIFO enforcement, per directed session
  std::vector<std::uint64_t> session_epoch_;  // bumped per reset, voids in-flight msgs
  std::vector<bool> session_admin_down_;      // explicit session faults (symmetric)
  std::vector<bool> node_up_;
  std::vector<bool> graceful_down_;  // inside a graceful-restart window
  std::vector<std::uint64_t> gr_generation_;  // bumped per graceful down; guards timers
  std::vector<PathId> fib_;  // forwarding entries (frozen during graceful restart)
  // FIB freeze flag: set on graceful-down, cleared by the first post-restart
  // best route, a crash, or stale-timer expiry.  While set, reconsider()
  // does not push best-route changes into the FIB.
  std::vector<bool> fib_frozen_;
  std::vector<bool> ebgp_live_;  // per path: E-BGP origin currently announcing
  std::uint64_t next_seq_ = 0;
  std::uint64_t session_msg_seq_ = 0;
  // Checkpoint continuation: a restored engine starts its next run()'s
  // deliveries/end_time from these (consumed once); the end of every run()
  // records its cumulative totals so a later capture() can carry them.
  std::size_t resume_deliveries_ = 0;
  SimTime resume_end_time_ = 0;
  std::size_t last_run_deliveries_ = 0;
  SimTime last_run_end_time_ = 0;
  // Cooperative wall-clock guard (see set_deadline); never part of a hash.
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::size_t updates_sent_ = 0;
  std::size_t best_flips_ = 0;
  std::size_t messages_dropped_ = 0;
  std::size_t messages_duplicated_ = 0;
  std::size_t deliveries_voided_ = 0;
  std::size_t eor_sent_ = 0;
  std::size_t stale_retained_ = 0;
  std::size_t stale_swept_eor_ = 0;
  std::size_t stale_swept_expired_ = 0;
  std::size_t igp_swaps_ = 0;
  std::uint64_t decisions_total_ = 0;
  std::uint64_t decisions_empty_ = 0;
  std::uint64_t mrai_deferrals_ = 0;
  std::array<std::uint64_t, bgp::kSelectionRuleCount> decisions_by_rule_{};
  std::vector<std::array<std::uint64_t, bgp::kSelectionRuleCount>> decisions_by_node_;
  std::size_t max_queue_depth_ = 0;  // volatile-metric input, not in any hash
  // Observability attachments (non-owning) and cached metric handles.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  struct MetricHandles {
    obs::Counter* deliveries = nullptr;
    obs::Counter* updates_sent = nullptr;
    obs::Counter* deliveries_voided = nullptr;
    obs::Counter* messages_dropped = nullptr;
    obs::Counter* messages_duplicated = nullptr;
    obs::Counter* best_flips = nullptr;
    obs::Counter* mrai_deferrals = nullptr;
    obs::Counter* faults_applied = nullptr;
    obs::Counter* eor_markers_sent = nullptr;
    obs::Counter* stale_retained = nullptr;
    obs::Counter* stale_swept_eor = nullptr;
    obs::Counter* stale_swept_expired = nullptr;
    obs::Counter* igp_epoch_swaps = nullptr;
    obs::Counter* decisions = nullptr;
    obs::Counter* decisions_empty = nullptr;
    std::array<obs::Counter*, bgp::kSelectionRuleCount> decided{};
    obs::Gauge* queue_depth_max = nullptr;
  } handles_;
  /// Profiler span sinks (set_profile); null = off, sites never read the
  /// clock.  The span sites read the `live_*` pointers, armed once per
  /// delivery by arm(): every 64th delivery (and always the first) gets
  /// real sinks, the rest get null.  Sampling the whole delivery — outer
  /// span plus its nested decision/transfer spans — keeps each sample's
  /// nesting coherent and bounds enabled overhead to a fraction of a
  /// clock read per delivery.
  struct ProfileHandles {
    obs::Histogram* delivery = nullptr;
    obs::Histogram* decision = nullptr;
    obs::Histogram* transfer = nullptr;
    static constexpr std::uint32_t kSampleMask = 63;
    std::uint32_t tick = kSampleMask;  // first arm() samples
    obs::Histogram* live_delivery = nullptr;
    obs::Histogram* live_decision = nullptr;
    obs::Histogram* live_transfer = nullptr;
    void arm() {
      if (delivery == nullptr) return;  // off: live_* stay null
      const bool sample = (++tick & kSampleMask) == 0;
      live_delivery = sample ? delivery : nullptr;
      live_decision = sample ? decision : nullptr;
      live_transfer = sample ? transfer : nullptr;
    }
  } profile_;
  // Causal cursor: the (seq, pid) of the event currently being processed.
  // Set right after the queue pop in run_impl, reset to kNoCause between
  // runs so out-of-band injections (daemon ingest) become lineage roots.
  std::uint64_t cause_ = kNoCause;
  std::uint64_t cause_parent_ = kNoCause;
  /// Counter values already pushed into metrics_ (flush-delta state).
  struct Flushed {
    std::uint64_t updates_sent = 0;
    std::uint64_t deliveries_voided = 0;
    std::uint64_t messages_dropped = 0;
    std::uint64_t messages_duplicated = 0;
    std::uint64_t best_flips = 0;
    std::uint64_t mrai_deferrals = 0;
    std::uint64_t faults_applied = 0;
    std::uint64_t eor_markers_sent = 0;
    std::uint64_t stale_retained = 0;
    std::uint64_t stale_swept_eor = 0;
    std::uint64_t stale_swept_expired = 0;
    std::uint64_t igp_epoch_swaps = 0;
    std::uint64_t decisions = 0;
    std::uint64_t decisions_empty = 0;
    std::array<std::uint64_t, bgp::kSelectionRuleCount> decided{};
  } flushed_;
  std::vector<std::size_t> flips_by_node_;
  std::vector<FlapRecord> flap_log_;
  std::vector<FaultRecord> fault_log_;
  std::vector<FibRecord> fib_log_;
  std::vector<IgpRecord> igp_log_;
};

/// Registers every metric EventEngine::flush_metrics touches, so a registry
/// shared across sweep workers acquires its (insertion-ordered) layout
/// deterministically on the main thread before fan-out.  Idempotent.
void register_event_engine_metrics(obs::MetricsRegistry& registry);

/// Complete deterministic engine state, as captured by EventEngine::capture
/// and rebuilt by EventEngine::restore.  Plain data by design: src/ckpt/
/// serializes it to the versioned ibgp-ckpt-v1 JSON format.  The identity
/// fields pin which (instance, protocol) the snapshot belongs to; restore
/// refuses a mismatch rather than silently corrupting state.
///
/// Two state families are deliberately absent: RNG cursors (every FaultScript
/// consumes its RNG at construction time and schedules all actions up front,
/// so the "script cursor" is exactly the pending fault events in `queue`;
/// ScriptInjector classifies messages as a pure hash of (seed, from, to,
/// seq), so it is stateless) and process attachments (delay fn, injector,
/// metrics, trace — re-created by the restoring caller).
struct EngineState {
  // --- identity guard ---
  std::string instance;
  std::string protocol;
  std::uint64_t node_count = 0;
  std::uint64_t path_count = 0;
  std::uint64_t link_count = 0;

  // --- frozen configuration (restore installs these) ---
  SimTime mrai = 0;
  SimTime stale_timer = 0;

  /// One pending event, mirroring the engine's private Event struct.
  /// `kind` is the raw EventKind value; restore validates the range.
  struct PendingEvent {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint64_t pid = kNoCause;  // causal parent seq (kNoCause = root)
    std::uint8_t kind = 0;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    PathId path = kNoPath;
    bool announce = true;
    std::uint64_t epoch = 0;
    Cost cost = 0;
  };
  /// Pending events in ascending (time, seq) order — (time, seq) keys are
  /// unique, so re-pushing them rebuilds a heap with identical pop order.
  std::vector<PendingEvent> queue;

  struct NodeSnapshot {
    std::vector<std::vector<NodeId>> holders;  // per path, ascending
    std::vector<std::vector<NodeId>> stale;    // per path, ascending
    std::vector<bool> own;                     // per path
    bool has_best = false;
    PathId best_path = kNoPath;
    Cost best_metric = kInfCost;
    BgpId best_learned_from = 0;
    bool best_is_ebgp = false;
    std::vector<std::vector<PathId>> advertised_out;  // per peer index
    std::vector<std::vector<PathId>> desired_out;
    std::vector<SimTime> mrai_ready;
    std::vector<bool> flush_scheduled;
  };
  std::vector<NodeSnapshot> nodes;

  std::vector<SimTime> session_last_delivery;
  std::vector<std::uint64_t> session_epoch;
  std::vector<bool> session_admin_down;
  std::vector<bool> node_up;
  std::vector<bool> graceful_down;
  std::vector<std::uint64_t> gr_generation;
  std::vector<PathId> fib;
  std::vector<bool> fib_frozen;
  std::vector<bool> ebgp_live;

  // --- IGP underlay: configured costs + down flags; the epoch history is
  // re-materialized through the instance's memoized SPF cache on restore ---
  std::vector<Cost> link_cost;
  std::vector<bool> link_down;
  struct IgpSnapshot {
    SimTime time = 0;
    std::vector<Cost> effective;
  };
  std::vector<IgpSnapshot> igp_log;

  std::uint64_t next_seq = 0;
  std::uint64_t session_msg_seq = 0;

  // --- cumulative counters ---
  std::uint64_t updates_sent = 0;
  std::uint64_t best_flips = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t deliveries_voided = 0;
  std::uint64_t eor_sent = 0;
  std::uint64_t stale_retained = 0;
  std::uint64_t stale_swept_eor = 0;
  std::uint64_t stale_swept_expired = 0;
  std::uint64_t igp_swaps = 0;
  std::uint64_t decisions_total = 0;
  std::uint64_t decisions_empty = 0;
  std::uint64_t mrai_deferrals = 0;
  std::array<std::uint64_t, bgp::kSelectionRuleCount> decisions_by_rule{};
  std::vector<std::array<std::uint64_t, bgp::kSelectionRuleCount>> decisions_by_node;
  std::vector<std::uint64_t> flips_by_node;

  // --- logs (trace hashes and continuity replay read these) ---
  std::vector<EventEngine::FlapRecord> flap_log;
  std::vector<EventEngine::FaultRecord> fault_log;
  std::vector<EventEngine::FibRecord> fib_log;

  // --- Result continuation: cumulative deliveries/end_time so far ---
  std::uint64_t deliveries = 0;
  SimTime end_time = 0;
};

}  // namespace ibgp::engine
