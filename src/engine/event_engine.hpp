#pragma once
// Event-driven (message-passing) I-BGP simulator.
//
// Where the synchronous engine executes the paper's abstract config(t)
// semantics, this engine models the *operational* protocol: per-session FIFO
// UPDATE delivery with arbitrary per-message delays, Adj-RIB-In per peer,
// and RFC-1966-style reflection rules keyed on the peer class a route was
// learned from:
//
//   at a reflector:  own E-BGP route          -> all peers
//                    learned from a client    -> all peers except originator
//                    learned from a non-client-> own clients only
//   at a client:     own E-BGP route          -> all peers
//                    learned via I-BGP        -> nobody
//
// The advertised *content* is protocol-dependent (core::decide): the single
// best route (standard), the per-AS best vector (Walton), or GoodExits (the
// paper's modified protocol, which is essentially BGP add-paths for the
// MED-survivor set).  Withdraws are path-addressed, matching the add-paths
// abstraction; for the standard protocol this coincides with classic
// single-route announce/implicit-withdraw behavior.
//
// Message delays are the paper's source of *transient* oscillation (Fig 3 /
// Table 1): the same topology converges or flaps depending on the delay
// script.  Delays come from a caller-provided function of (from, to, seq);
// FIFO order per directed session is enforced regardless of the function.

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "bgp/selection.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "util/types.hpp"

namespace ibgp::engine {

using SimTime = std::uint64_t;

class EventEngine {
 public:
  /// Delay (in ticks) of the seq-th message on the directed session
  /// from->to.  Defaults to constant 1.
  using DelayFn = std::function<SimTime(NodeId from, NodeId to, std::uint64_t seq)>;

  EventEngine(const core::Instance& inst, core::ProtocolKind protocol,
              DelayFn delay = {});

  /// Enables a MinRouteAdvertisementInterval: after flushing UPDATEs to a
  /// peer, further changes for that peer are batched and sent as one net
  /// diff once `interval` ticks have passed.  Models the rate-limiting /
  /// flap-dampening family of mitigations (Section 9 of the paper): they
  /// slow persistent oscillations down but cannot remove them — which
  /// bench_mrai measures.  Call before injecting events.
  void set_mrai(SimTime interval) { mrai_ = interval; }

  // --- scenario scripting ---------------------------------------------------

  /// Schedules E-BGP injection of path p at its exit point at `when`.
  void inject_exit(PathId p, SimTime when);

  /// Injects every registered exit path at time `when`.
  void inject_all_exits(SimTime when = 0);

  /// Schedules an E-BGP withdrawal of path p at `when`.
  void withdraw_exit(PathId p, SimTime when);

  // --- execution --------------------------------------------------------------

  struct Result {
    bool converged = false;      ///< event queue drained
    std::size_t deliveries = 0;  ///< events processed
    std::size_t updates_sent = 0;  ///< announce+withdraw messages enqueued
    SimTime end_time = 0;        ///< virtual time of the last processed event
    std::size_t best_flips = 0;  ///< total best-route changes
    std::vector<PathId> final_best;  ///< per node; kNoPath = no route
  };

  /// Processes events until the queue drains or `max_deliveries` is hit.
  Result run(std::size_t max_deliveries = 1'000'000);

  // --- inspection -------------------------------------------------------------

  [[nodiscard]] PathId best_path(NodeId v) const {
    return nodes_.at(v).best ? nodes_.at(v).best->path : kNoPath;
  }
  [[nodiscard]] const std::optional<bgp::RouteView>& best(NodeId v) const {
    return nodes_.at(v).best;
  }
  [[nodiscard]] std::size_t updates_sent() const { return updates_sent_; }
  [[nodiscard]] std::span<const std::size_t> flips_by_node() const { return flips_by_node_; }

  /// One best-route change at a node, for flap traces (Table 1 reports).
  struct FlapRecord {
    SimTime time = 0;
    NodeId node = kNoNode;
    PathId old_best = kNoPath;
    PathId new_best = kNoPath;
  };
  [[nodiscard]] std::span<const FlapRecord> flap_log() const { return flap_log_; }

 private:
  enum class EventKind : std::uint8_t { kEbgpAnnounce, kEbgpWithdraw, kUpdate, kMraiFlush };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  // global tie-break preserving enqueue order
    EventKind kind = EventKind::kUpdate;
    NodeId from = kNoNode;  // kUpdate only
    NodeId to = kNoNode;
    PathId path = kNoPath;
    bool announce = true;  // kUpdate: announce vs withdraw
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct NodeState {
    /// holders[p] = session peers currently announcing p to us, ascending.
    std::vector<std::vector<NodeId>> holders;
    /// Own E-BGP paths currently injected.
    std::vector<bool> own;
    std::optional<bgp::RouteView> best;
    /// advertised_out[peer_index] = path set last sent to that peer.
    std::vector<std::vector<PathId>> advertised_out;
    /// MRAI state per peer: the latest desired set, the earliest next send
    /// time, and whether a flush event is already scheduled.
    std::vector<std::vector<PathId>> desired_out;
    std::vector<SimTime> mrai_ready;
    std::vector<bool> flush_scheduled;
  };

  void enqueue_update(NodeId from, NodeId to, PathId path, bool announce, SimTime now);
  void reconsider(NodeId u, SimTime now);
  /// Sends the net diff desired_out -> advertised_out for one peer (MRAI
  /// permitting), or schedules the deferred flush.
  void sync_peer(NodeId u, std::size_t peer_index, SimTime now);
  [[nodiscard]] bool may_send(NodeId u, NodeId peer, PathId p) const;
  [[nodiscard]] std::size_t peer_index(NodeId u, NodeId peer) const;
  /// The peer whose copy of p node u has attributed (lowest BGP id holder),
  /// or kNoNode for own paths / unseen paths.
  [[nodiscard]] NodeId attributed_source(NodeId u, PathId p) const;

  const core::Instance* inst_;
  core::ProtocolKind protocol_;
  DelayFn delay_;
  SimTime mrai_ = 0;  // 0 = disabled
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::vector<NodeState> nodes_;
  std::vector<SimTime> session_last_delivery_;  // FIFO enforcement, per directed session
  std::uint64_t next_seq_ = 0;
  std::uint64_t session_msg_seq_ = 0;
  std::size_t updates_sent_ = 0;
  std::size_t best_flips_ = 0;
  std::vector<std::size_t> flips_by_node_;
  std::vector<FlapRecord> flap_log_;
};

}  // namespace ibgp::engine
