#include "engine/event_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ibgp::engine {

EventEngine::EventEngine(const core::Instance& inst, core::ProtocolKind protocol,
                         DelayFn delay)
    : inst_(&inst),
      protocol_(protocol),
      delay_(delay ? std::move(delay)
                   : [](NodeId, NodeId, std::uint64_t) -> SimTime { return 1; }),
      nodes_(inst.node_count()),
      session_last_delivery_(inst.node_count() * inst.node_count(), 0),
      flips_by_node_(inst.node_count(), 0) {
  const std::size_t paths = inst.exits().size();
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const std::size_t peer_count = inst.sessions().peers(v).size();
    nodes_[v].holders.resize(paths);
    nodes_[v].own.assign(paths, false);
    nodes_[v].advertised_out.resize(peer_count);
    nodes_[v].desired_out.resize(peer_count);
    nodes_[v].mrai_ready.assign(peer_count, 0);
    nodes_[v].flush_scheduled.assign(peer_count, false);
  }
}

void EventEngine::inject_exit(PathId p, SimTime when) {
  Event event;
  event.time = when;
  event.seq = next_seq_++;
  event.kind = EventKind::kEbgpAnnounce;
  event.to = inst_->exits()[p].exit_point;
  event.path = p;
  queue_.push(event);
}

void EventEngine::inject_all_exits(SimTime when) {
  for (PathId p = 0; p < inst_->exits().size(); ++p) inject_exit(p, when);
}

void EventEngine::withdraw_exit(PathId p, SimTime when) {
  Event event;
  event.time = when;
  event.seq = next_seq_++;
  event.kind = EventKind::kEbgpWithdraw;
  event.to = inst_->exits()[p].exit_point;
  event.path = p;
  queue_.push(event);
}

std::size_t EventEngine::peer_index(NodeId u, NodeId peer) const {
  const auto peers = inst_->sessions().peers(u);
  const auto it = std::lower_bound(peers.begin(), peers.end(), peer);
  if (it == peers.end() || *it != peer) {
    throw std::logic_error("EventEngine: not a session peer");
  }
  return static_cast<std::size_t>(it - peers.begin());
}

NodeId EventEngine::attributed_source(NodeId u, PathId p) const {
  const auto& holders = nodes_[u].holders[p];
  NodeId best = kNoNode;
  BgpId best_id = std::numeric_limits<BgpId>::max();
  for (const NodeId v : holders) {
    if (inst_->bgp_id(v) < best_id) {
      best_id = inst_->bgp_id(v);
      best = v;
    }
  }
  return best;
}

bool EventEngine::may_send(NodeId u, NodeId peer, PathId p) const {
  const auto& clusters = inst_->clusters();
  const NodeId exit_point = inst_->exits()[p].exit_point;

  if (exit_point == u) return true;  // own E-BGP route: to every peer

  // A path is never announced back to its exit point (it already holds the
  // E-BGP original; mirrors ORIGINATOR_ID suppression).
  if (exit_point == peer) return false;

  if (clusters.is_client(u)) return false;  // clients never forward I-BGP routes

  // CLUSTER_LIST loop prevention (RFC 1966): a route exiting inside this
  // cluster must not bounce between the cluster's reflectors — every one of
  // them hears it from the exit point directly (constraint 2 of Section 4).
  // Without this, two same-cluster reflectors endlessly re-attribute each
  // other's reflections and the protocol livelocks.
  if (clusters.is_reflector(peer) && clusters.same_cluster(u, peer) &&
      clusters.same_cluster(exit_point, u)) {
    return false;
  }

  const NodeId src = attributed_source(u, p);
  if (src == kNoNode) return false;  // nothing to forward
  if (src == peer) return false;     // never echo to the originator session

  const bool src_is_my_client =
      clusters.is_client(src) && clusters.same_cluster(src, u);
  if (src_is_my_client) return true;  // reflect to all peers except originator

  // Learned from a non-client: reflect to own clients only.
  return clusters.is_client(peer) && clusters.same_cluster(peer, u);
}

void EventEngine::enqueue_update(NodeId from, NodeId to, PathId path, bool announce,
                                 SimTime now) {
  Event event;
  event.kind = EventKind::kUpdate;
  event.from = from;
  event.to = to;
  event.path = path;
  event.announce = announce;
  event.seq = next_seq_++;
  const SimTime requested = now + delay_(from, to, session_msg_seq_++);
  // FIFO per directed session: never deliver before an earlier message on
  // the same session.
  SimTime& last = session_last_delivery_[static_cast<std::size_t>(from) *
                                             inst_->node_count() +
                                         to];
  event.time = std::max(requested, last);
  last = event.time;
  queue_.push(event);
  ++updates_sent_;
}

void EventEngine::reconsider(NodeId u, SimTime now) {
  NodeState& node = nodes_[u];

  // Candidates: own injected exits plus everything some peer announced.
  std::vector<bgp::Candidate> candidates;
  for (PathId p = 0; p < inst_->exits().size(); ++p) {
    if (node.own[p]) {
      candidates.push_back({p, inst_->exits()[p].ebgp_peer});
    } else if (!node.holders[p].empty()) {
      BgpId lowest = std::numeric_limits<BgpId>::max();
      for (const NodeId v : node.holders[p]) lowest = std::min(lowest, inst_->bgp_id(v));
      candidates.push_back({p, lowest});
    }
  }

  const auto decision = core::decide(*inst_, protocol_, u, candidates);

  const PathId old_best = node.best ? node.best->path : kNoPath;
  const PathId new_best = decision.best ? decision.best->path : kNoPath;
  if (old_best != new_best) {
    ++best_flips_;
    ++flips_by_node_[u];
    flap_log_.push_back({now, u, old_best, new_best});
  }
  node.best = decision.best;

  // Per-peer target sets; UPDATE diffs flow immediately, or — with an MRAI
  // configured — as batched net diffs at the next permitted send time.
  const auto peers = inst_->sessions().peers(u);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const NodeId peer = peers[i];
    std::vector<PathId> target;
    for (const PathId p : decision.advertised) {
      if (may_send(u, peer, p)) target.push_back(p);
    }
    node.desired_out[i] = std::move(target);
    sync_peer(u, i, now);
  }
}

void EventEngine::sync_peer(NodeId u, std::size_t peer_index, SimTime now) {
  NodeState& node = nodes_[u];
  const NodeId peer = inst_->sessions().peers(u)[peer_index];
  if (mrai_ > 0 && now < node.mrai_ready[peer_index]) {
    // Inside the hold-down window: batch the change into one deferred flush.
    if (!node.flush_scheduled[peer_index]) {
      node.flush_scheduled[peer_index] = true;
      Event event;
      event.kind = EventKind::kMraiFlush;
      event.from = u;
      event.to = peer;
      event.time = node.mrai_ready[peer_index];
      event.seq = next_seq_++;
      queue_.push(event);
    }
    return;
  }

  const std::vector<PathId>& target = node.desired_out[peer_index];
  std::vector<PathId>& current = node.advertised_out[peer_index];
  bool sent = false;
  for (const PathId p : current) {
    if (!std::binary_search(target.begin(), target.end(), p)) {
      enqueue_update(u, peer, p, /*announce=*/false, now);
      sent = true;
    }
  }
  for (const PathId p : target) {
    if (!std::binary_search(current.begin(), current.end(), p)) {
      enqueue_update(u, peer, p, /*announce=*/true, now);
      sent = true;
    }
  }
  current = target;
  if (sent && mrai_ > 0) node.mrai_ready[peer_index] = now + mrai_;
}

EventEngine::Result EventEngine::run(std::size_t max_deliveries) {
  Result result;
  while (!queue_.empty() && result.deliveries < max_deliveries) {
    const Event event = queue_.top();
    queue_.pop();
    ++result.deliveries;
    result.end_time = event.time;

    switch (event.kind) {
      case EventKind::kEbgpAnnounce:
        nodes_[event.to].own[event.path] = true;
        reconsider(event.to, event.time);
        break;
      case EventKind::kEbgpWithdraw:
        nodes_[event.to].own[event.path] = false;
        reconsider(event.to, event.time);
        break;
      case EventKind::kUpdate: {
        auto& holders = nodes_[event.to].holders[event.path];
        const auto it = std::lower_bound(holders.begin(), holders.end(), event.from);
        if (event.announce) {
          if (it == holders.end() || *it != event.from) holders.insert(it, event.from);
        } else {
          if (it != holders.end() && *it == event.from) holders.erase(it);
        }
        reconsider(event.to, event.time);
        break;
      }
      case EventKind::kMraiFlush: {
        // event.from = the batching node, event.to = the peer.
        const std::size_t peer_index = this->peer_index(event.from, event.to);
        nodes_[event.from].flush_scheduled[peer_index] = false;
        sync_peer(event.from, peer_index, event.time);
        break;
      }
    }
  }

  result.converged = queue_.empty();
  result.updates_sent = updates_sent_;
  result.best_flips = best_flips_;
  result.final_best.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) result.final_best.push_back(best_path(v));
  return result;
}

}  // namespace ibgp::engine
