#include "engine/event_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/span.hpp"

namespace ibgp::engine {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSessionDown: return "session-down";
    case FaultKind::kSessionUp: return "session-up";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kGracefulDown: return "graceful-down";
    case FaultKind::kStaleExpire: return "stale-expire";
    case FaultKind::kLinkCostChange: return "link-cost";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
  }
  return "?";
}

void FaultInjector::on_drop(EventEngine&, NodeId, NodeId, SimTime) {}

EventEngine::EventEngine(const core::Instance& inst, core::ProtocolKind protocol,
                         DelayFn delay)
    : inst_(&inst),
      protocol_(protocol),
      delay_(delay ? std::move(delay)
                   : [](NodeId, NodeId, std::uint64_t) -> SimTime { return 1; }),
      link_state_(inst.physical()),
      igp_(inst.igp_handle()),
      nodes_(inst.node_count()),
      session_last_delivery_(inst.node_count() * inst.node_count(), 0),
      session_epoch_(inst.node_count() * inst.node_count(), 0),
      session_admin_down_(inst.node_count() * inst.node_count(), false),
      node_up_(inst.node_count(), true),
      graceful_down_(inst.node_count(), false),
      gr_generation_(inst.node_count(), 0),
      fib_(inst.node_count(), kNoPath),
      fib_frozen_(inst.node_count(), false),
      ebgp_live_(inst.exits().size(), false),
      decisions_by_node_(inst.node_count()),
      flips_by_node_(inst.node_count(), 0) {
  const std::size_t paths = inst.exits().size();
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const std::size_t peer_count = inst.sessions().peers(v).size();
    nodes_[v].holders.resize(paths);
    nodes_[v].stale.resize(paths);
    nodes_[v].own.assign(paths, false);
    nodes_[v].advertised_out.resize(peer_count);
    nodes_[v].desired_out.resize(peer_count);
    nodes_[v].mrai_ready.assign(peer_count, 0);
    nodes_[v].flush_scheduled.assign(peer_count, false);
  }
}

void EventEngine::set_mrai(SimTime interval) {
  if (sealed_) {
    throw std::logic_error(
        "EventEngine::set_mrai: must be called before any event is scheduled");
  }
  mrai_ = interval;
}

void EventEngine::set_fault_injector(FaultInjector* injector) {
  if (sealed_) {
    throw std::logic_error(
        "EventEngine::set_fault_injector: must be called before any event is scheduled");
  }
  injector_ = injector;
}

void EventEngine::set_stale_timer(SimTime ticks) {
  if (sealed_) {
    throw std::logic_error(
        "EventEngine::set_stale_timer: must be called before any event is scheduled");
  }
  stale_timer_ = ticks;
}

namespace {

std::string rule_metric_name(std::size_t rule) {
  return "engine.decided." +
         std::string(bgp::selection_rule_name(static_cast<bgp::SelectionRule>(rule)));
}

}  // namespace

void register_event_engine_metrics(obs::MetricsRegistry& registry) {
  registry.counter("engine.deliveries");
  registry.counter("engine.updates_sent");
  registry.counter("engine.deliveries_voided");
  registry.counter("engine.messages_dropped");
  registry.counter("engine.messages_duplicated");
  registry.counter("engine.best_flips");
  registry.counter("engine.mrai_deferrals");
  registry.counter("engine.faults_applied");
  registry.counter("engine.eor_markers_sent");
  registry.counter("engine.stale_retained");
  registry.counter("engine.stale_swept_eor");
  registry.counter("engine.stale_swept_expired");
  registry.counter("engine.igp_epoch_swaps");
  registry.counter("engine.decisions");
  registry.counter("engine.decisions_empty");
  for (std::size_t rule = 0; rule < bgp::kSelectionRuleCount; ++rule) {
    registry.counter(rule_metric_name(rule));
  }
  registry.gauge("engine.queue_depth_max");  // schedule-dependent: volatile
  // Profiler span sinks (set_profile): wall time is volatile by nature.
  obs::span_histogram(registry, "engine.span.delivery_ns");
  obs::span_histogram(registry, "engine.span.decision_ns");
  obs::span_histogram(registry, "engine.span.transfer_ns");
}

void EventEngine::set_metrics(obs::MetricsRegistry* registry) {
  if (sealed_) {
    throw std::logic_error(
        "EventEngine::set_metrics: must be called before any event is scheduled");
  }
  metrics_ = registry;
  handles_ = MetricHandles{};
  profile_ = ProfileHandles{};  // re-enable via set_profile after this call
  if (registry == nullptr) return;
  register_event_engine_metrics(*registry);
  handles_.deliveries = &registry->counter("engine.deliveries");
  handles_.updates_sent = &registry->counter("engine.updates_sent");
  handles_.deliveries_voided = &registry->counter("engine.deliveries_voided");
  handles_.messages_dropped = &registry->counter("engine.messages_dropped");
  handles_.messages_duplicated = &registry->counter("engine.messages_duplicated");
  handles_.best_flips = &registry->counter("engine.best_flips");
  handles_.mrai_deferrals = &registry->counter("engine.mrai_deferrals");
  handles_.faults_applied = &registry->counter("engine.faults_applied");
  handles_.eor_markers_sent = &registry->counter("engine.eor_markers_sent");
  handles_.stale_retained = &registry->counter("engine.stale_retained");
  handles_.stale_swept_eor = &registry->counter("engine.stale_swept_eor");
  handles_.stale_swept_expired = &registry->counter("engine.stale_swept_expired");
  handles_.igp_epoch_swaps = &registry->counter("engine.igp_epoch_swaps");
  handles_.decisions = &registry->counter("engine.decisions");
  handles_.decisions_empty = &registry->counter("engine.decisions_empty");
  for (std::size_t rule = 0; rule < bgp::kSelectionRuleCount; ++rule) {
    handles_.decided[rule] = &registry->counter(rule_metric_name(rule));
  }
  handles_.queue_depth_max = &registry->gauge("engine.queue_depth_max");
}

void EventEngine::set_profile(bool enabled) {
  if (sealed_) {
    throw std::logic_error(
        "EventEngine::set_profile: must be called before any event is scheduled");
  }
  profile_ = ProfileHandles{};
  if (!enabled || metrics_ == nullptr) return;
  profile_.delivery = &obs::span_histogram(*metrics_, "engine.span.delivery_ns");
  profile_.decision = &obs::span_histogram(*metrics_, "engine.span.decision_ns");
  profile_.transfer = &obs::span_histogram(*metrics_, "engine.span.transfer_ns");
}

void EventEngine::set_trace(obs::TraceSink* trace) {
  if (sealed_) {
    throw std::logic_error(
        "EventEngine::set_trace: must be called before any event is scheduled");
  }
  trace_ = trace;
  if (tracing()) emit_trace_preamble();
}

void EventEngine::emit_trace_preamble() {
  // meta + node/path directory records so trace consumers (trace_inspect)
  // can label ids without the instance at hand.
  {
    util::json::Object fields;
    fields.emplace_back("instance", inst_->name());
    fields.emplace_back("protocol", core::protocol_name(protocol_));
    fields.emplace_back("nodes", static_cast<std::uint64_t>(inst_->node_count()));
    fields.emplace_back("paths", static_cast<std::uint64_t>(inst_->exits().size()));
    trace_->emit(0, "meta", std::move(fields));
  }
  for (NodeId v = 0; v < inst_->node_count(); ++v) {
    util::json::Object fields;
    fields.emplace_back("id", v);
    fields.emplace_back("name", inst_->node_name(v));
    fields.emplace_back("bgp_id", inst_->bgp_id(v));
    fields.emplace_back("client", inst_->clusters().is_client(v));
    trace_->emit(0, "node", std::move(fields));
  }
  for (PathId p = 0; p < inst_->exits().size(); ++p) {
    const auto& path = inst_->exits()[p];
    util::json::Object fields;
    fields.emplace_back("id", p);
    fields.emplace_back("name", path.name);
    fields.emplace_back("exit_point", path.exit_point);
    fields.emplace_back("next_as", path.next_as);
    fields.emplace_back("local_pref", path.local_pref);
    fields.emplace_back("med", path.med);
    trace_->emit(0, "path", std::move(fields));
  }
}

bool EventEngine::session_up(NodeId u, NodeId v) const {
  return node_up_.at(u) && node_up_.at(v) && !session_admin_down_[sess(u, v)] &&
         igp_->reachable(u, v);
}

std::span<const PathId> EventEngine::advertised_to(NodeId from, NodeId to) const {
  return nodes_.at(from).advertised_out.at(peer_index(from, to));
}

void EventEngine::inject_exit(PathId p, SimTime when) {
  sealed_ = true;
  Event event;
  event.time = when;
  event.seq = next_seq_++;
  event.kind = EventKind::kEbgpAnnounce;
  event.to = inst_->exits()[p].exit_point;
  event.path = p;
  queue_.push(event);
}

void EventEngine::inject_all_exits(SimTime when) {
  for (PathId p = 0; p < inst_->exits().size(); ++p) inject_exit(p, when);
}

void EventEngine::withdraw_exit(PathId p, SimTime when) {
  sealed_ = true;
  Event event;
  event.time = when;
  event.seq = next_seq_++;
  event.kind = EventKind::kEbgpWithdraw;
  event.to = inst_->exits()[p].exit_point;
  event.path = p;
  queue_.push(event);
}

void EventEngine::push_fault(EventKind kind, NodeId a, NodeId b, SimTime when,
                             Cost cost) {
  sealed_ = true;
  Event event;
  event.time = when;
  event.seq = next_seq_++;
  // Script-time faults are lineage roots; repair faults scheduled from a
  // FaultInjector::on_drop mid-delivery inherit the dropped message's cause.
  event.pid = cause_;
  event.kind = kind;
  event.from = a;
  event.to = b;
  event.cost = cost;
  queue_.push(event);
}

void EventEngine::schedule_session_down(NodeId u, NodeId v, SimTime when) {
  if (!inst_->sessions().has_session(u, v)) {
    throw std::invalid_argument("EventEngine::schedule_session_down: no such session");
  }
  push_fault(EventKind::kSessionDown, u, v, when);
}

void EventEngine::schedule_session_up(NodeId u, NodeId v, SimTime when) {
  if (!inst_->sessions().has_session(u, v)) {
    throw std::invalid_argument("EventEngine::schedule_session_up: no such session");
  }
  push_fault(EventKind::kSessionUp, u, v, when);
}

void EventEngine::schedule_crash(NodeId v, SimTime when) {
  if (v >= inst_->node_count()) {
    throw std::invalid_argument("EventEngine::schedule_crash: no such node");
  }
  push_fault(EventKind::kCrash, v, kNoNode, when);
}

void EventEngine::schedule_restart(NodeId v, SimTime when) {
  if (v >= inst_->node_count()) {
    throw std::invalid_argument("EventEngine::schedule_restart: no such node");
  }
  push_fault(EventKind::kRestart, v, kNoNode, when);
}

void EventEngine::schedule_graceful_down(NodeId v, SimTime when) {
  if (v >= inst_->node_count()) {
    throw std::invalid_argument("EventEngine::schedule_graceful_down: no such node");
  }
  push_fault(EventKind::kGracefulDown, v, kNoNode, when);
}

std::size_t EventEngine::require_link(NodeId a, NodeId b, const char* what) const {
  const auto link = inst_->physical().find_link(a, b);
  if (!link) {
    throw std::invalid_argument(std::string("EventEngine::") + what +
                                ": no such physical link");
  }
  return *link;
}

void EventEngine::schedule_link_cost_change(NodeId a, NodeId b, Cost cost,
                                            SimTime when) {
  require_link(a, b, "schedule_link_cost_change");
  if (cost <= 0 || cost >= kInfCost) {
    throw std::invalid_argument(
        "EventEngine::schedule_link_cost_change: cost must be a positive finite metric");
  }
  push_fault(EventKind::kLinkCostChange, a, b, when, cost);
}

void EventEngine::schedule_link_down(NodeId a, NodeId b, SimTime when) {
  require_link(a, b, "schedule_link_down");
  push_fault(EventKind::kLinkDown, a, b, when);
}

void EventEngine::schedule_link_up(NodeId a, NodeId b, SimTime when) {
  require_link(a, b, "schedule_link_up");
  push_fault(EventKind::kLinkUp, a, b, when);
}

std::size_t EventEngine::peer_index(NodeId u, NodeId peer) const {
  const auto peers = inst_->sessions().peers(u);
  const auto it = std::lower_bound(peers.begin(), peers.end(), peer);
  if (it == peers.end() || *it != peer) {
    throw std::logic_error("EventEngine: not a session peer");
  }
  return static_cast<std::size_t>(it - peers.begin());
}

NodeId EventEngine::attributed_source(NodeId u, PathId p) const {
  const auto& holders = nodes_[u].holders[p];
  NodeId best = kNoNode;
  BgpId best_id = std::numeric_limits<BgpId>::max();
  for (const NodeId v : holders) {
    if (inst_->bgp_id(v) < best_id) {
      best_id = inst_->bgp_id(v);
      best = v;
    }
  }
  return best;
}

bool EventEngine::may_send(NodeId u, NodeId peer, PathId p) const {
  const auto& clusters = inst_->clusters();
  const NodeId exit_point = inst_->exits()[p].exit_point;

  if (exit_point == u) return true;  // own E-BGP route: to every peer

  // A path is never announced back to its exit point (it already holds the
  // E-BGP original; mirrors ORIGINATOR_ID suppression).
  if (exit_point == peer) return false;

  if (clusters.is_client(u)) return false;  // clients never forward I-BGP routes

  // CLUSTER_LIST loop prevention (RFC 1966): a route exiting inside this
  // cluster must not bounce between the cluster's reflectors — every one of
  // them hears it from the exit point directly (constraint 2 of Section 4).
  // Without this, two same-cluster reflectors endlessly re-attribute each
  // other's reflections and the protocol livelocks.
  if (clusters.is_reflector(peer) && clusters.same_cluster(u, peer) &&
      clusters.same_cluster(exit_point, u)) {
    return false;
  }

  const NodeId src = attributed_source(u, p);
  if (src == kNoNode) return false;  // nothing to forward
  if (src == peer) return false;     // never echo to the originator session

  const bool src_is_my_client =
      clusters.is_client(src) && clusters.same_cluster(src, u);
  if (src_is_my_client) return true;  // reflect to all peers except originator

  // Learned from a non-client: reflect to own clients only.
  return clusters.is_client(peer) && clusters.same_cluster(peer, u);
}

void EventEngine::push_update(NodeId from, NodeId to, PathId path, bool announce,
                              SimTime now, std::uint64_t msg_seq) {
  Event event;
  event.kind = EventKind::kUpdate;
  event.from = from;
  event.to = to;
  event.path = path;
  event.announce = announce;
  event.seq = next_seq_++;
  event.pid = cause_;  // the delivery being processed caused this send
  event.epoch = session_epoch_[sess(from, to)];
  const SimTime requested = now + delay_(from, to, msg_seq);
  // FIFO per directed session: never deliver before an earlier message on
  // the same session.
  SimTime& last = session_last_delivery_[sess(from, to)];
  event.time = std::max(requested, last);
  last = event.time;
  queue_.push(event);
}

void EventEngine::enqueue_update(NodeId from, NodeId to, PathId path, bool announce,
                                 SimTime now) {
  const std::uint64_t msg_seq = session_msg_seq_++;
  ++updates_sent_;
  MessageFate fate = MessageFate::kDeliver;
  if (injector_) fate = injector_->classify(from, to, msg_seq);
  if (fate == MessageFate::kDrop) {
    // The sender still believes the message went out (advertised_out was
    // already updated); the receiver's RIB silently diverges until a repair
    // — exactly the perturbation the invariant checker hunts.
    ++messages_dropped_;
    injector_->on_drop(*this, from, to, now);
    return;
  }
  push_update(from, to, path, announce, now, msg_seq);
  if (fate == MessageFate::kDuplicate) {
    ++messages_duplicated_;
    ++updates_sent_;
    push_update(from, to, path, announce, now, session_msg_seq_++);
  }
}

void EventEngine::reconsider(NodeId u, SimTime now) {
  NodeState& node = nodes_[u];

  // Candidates: own injected exits plus everything some peer announced.
  std::vector<bgp::Candidate> candidates;
  for (PathId p = 0; p < inst_->exits().size(); ++p) {
    if (node.own[p]) {
      candidates.push_back({p, inst_->exits()[p].ebgp_peer});
    } else if (!node.holders[p].empty()) {
      BgpId lowest = std::numeric_limits<BgpId>::max();
      for (const NodeId v : node.holders[p]) lowest = std::min(lowest, inst_->bgp_id(v));
      candidates.push_back({p, lowest});
    }
  }

  // Selection prices candidates with the *current* IGP epoch: after a link
  // fault the same candidate set can pick a different exit purely because
  // the distances moved.
  bgp::SelectionProvenance provenance;
  const auto decision = [&] {
    const obs::Span span(profile_.live_decision);
    return core::decide(*inst_, *igp_, protocol_, u, candidates, &provenance);
  }();
  if (provenance.selected) {
    ++decisions_total_;
    ++decisions_by_rule_[rule_index(provenance.decisive)];
    ++decisions_by_node_[u][rule_index(provenance.decisive)];
  } else {
    ++decisions_empty_;
  }

  const PathId old_best = node.best ? node.best->path : kNoPath;
  const PathId new_best = decision.best ? decision.best->path : kNoPath;
  if (old_best != new_best) {
    ++best_flips_;
    ++flips_by_node_[u];
    flap_log_.push_back({now, u, old_best, new_best});
  }
  if (tracing()) {
    util::json::Object fields;
    fields.emplace_back("node", u);
    fields.emplace_back("best", new_best == kNoPath ? std::int64_t{-1}
                                                    : std::int64_t{new_best});
    fields.emplace_back("rule", bgp::selection_rule_name(provenance.decisive));
    fields.emplace_back("candidates",
                        static_cast<std::uint64_t>(provenance.candidates));
    fields.emplace_back("flip", old_best != new_best);
    // Joins the decision into the causal DAG: lid = the delivery that
    // triggered this reconsideration (decisions never spawn events
    // themselves, so they carry no pid of their own).
    if (cause_ != kNoCause) fields.emplace_back("lid", cause_);
    trace_->emit(now, "decision", std::move(fields));
  }
  node.best = decision.best;
  // reconsider only runs on control-plane-up nodes, so the FIB tracks the
  // best route here.  A FIB frozen by graceful restart stays on its
  // pre-restart entry through the post-restart resync (when best is
  // transiently empty); the first real best route thaws it.
  if (fib_frozen_[u]) {
    if (new_best != kNoPath) {
      fib_frozen_[u] = false;
      set_fib(u, new_best, now);
    }
  } else {
    set_fib(u, new_best, now);
  }

  // Per-peer target sets; UPDATE diffs flow immediately, or — with an MRAI
  // configured — as batched net diffs at the next permitted send time.
  const auto peers = inst_->sessions().peers(u);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const NodeId peer = peers[i];
    std::vector<PathId> target;
    for (const PathId p : decision.advertised) {
      if (may_send(u, peer, p)) target.push_back(p);
    }
    node.desired_out[i] = std::move(target);
    sync_peer(u, i, now);
  }
}

void EventEngine::sync_peer(NodeId u, std::size_t peer_index, SimTime now) {
  const obs::Span span(profile_.live_transfer);
  NodeState& node = nodes_[u];
  const NodeId peer = inst_->sessions().peers(u)[peer_index];
  if (!session_up(u, peer)) return;  // nothing flows on a downed session
  if (mrai_ > 0 && now < node.mrai_ready[peer_index]) {
    // Inside the hold-down window: batch the change into one deferred flush.
    ++mrai_deferrals_;
    if (!node.flush_scheduled[peer_index]) {
      node.flush_scheduled[peer_index] = true;
      Event event;
      event.kind = EventKind::kMraiFlush;
      event.from = u;
      event.to = peer;
      event.time = node.mrai_ready[peer_index];
      event.seq = next_seq_++;
      event.pid = cause_;  // the deferral-triggering delivery is the cause
      // Stamped with the session epoch so a flush scheduled before a session
      // reset is voided instead of leaking a stale hold-down advertisement
      // into the re-established session (whose resync already replayed the
      // full table).
      event.epoch = session_epoch_[sess(u, peer)];
      queue_.push(event);
    }
    return;
  }

  const std::vector<PathId>& target = node.desired_out[peer_index];
  std::vector<PathId>& current = node.advertised_out[peer_index];
  bool sent = false;
  for (const PathId p : current) {
    if (!std::binary_search(target.begin(), target.end(), p)) {
      enqueue_update(u, peer, p, /*announce=*/false, now);
      sent = true;
    }
  }
  for (const PathId p : target) {
    if (!std::binary_search(current.begin(), current.end(), p)) {
      enqueue_update(u, peer, p, /*announce=*/true, now);
      sent = true;
    }
  }
  current = target;
  if (sent && mrai_ > 0) node.mrai_ready[peer_index] = now + mrai_;
}

void EventEngine::record_fault(const FaultRecord& record) {
  fault_log_.push_back(record);
  if (tracing()) {
    util::json::Object fields;
    fields.emplace_back("kind", fault_kind_name(record.kind));
    fields.emplace_back("a", record.a == kNoNode ? std::int64_t{-1}
                                                 : std::int64_t{record.a});
    fields.emplace_back("b", record.b == kNoNode ? std::int64_t{-1}
                                                 : std::int64_t{record.b});
    fields.emplace_back("cost", record.cost);
    if (cause_ != kNoCause) fields.emplace_back("lid", cause_);
    if (cause_parent_ != kNoCause) fields.emplace_back("pid", cause_parent_);
    trace_->emit(record.time, "fault", std::move(fields));
  }
}

void EventEngine::record_best_loss(NodeId v, SimTime now) {
  NodeState& node = nodes_[v];
  if (!node.best) return;
  ++best_flips_;
  ++flips_by_node_[v];
  flap_log_.push_back({now, v, node.best->path, kNoPath});
  node.best.reset();
}

void EventEngine::flush_endpoint(NodeId u, NodeId peer) {
  NodeState& node = nodes_[u];
  const std::size_t pi = peer_index(u, peer);
  node.advertised_out[pi].clear();
  node.desired_out[pi].clear();
  node.mrai_ready[pi] = 0;
  node.flush_scheduled[pi] = false;  // a pending flush event fires as a no-op
  for (auto& holders : node.holders) {
    const auto it = std::lower_bound(holders.begin(), holders.end(), peer);
    if (it != holders.end() && *it == peer) holders.erase(it);
  }
  for (auto& stale : node.stale) {
    const auto it = std::lower_bound(stale.begin(), stale.end(), peer);
    if (it != stale.end() && *it == peer) stale.erase(it);
  }
}

void EventEngine::detach_session_graceful(NodeId v, NodeId w) {
  // Like sever_session, but w keeps what it heard from v: the entries are
  // marked stale instead of flushed.  v's side loses everything (its
  // control plane is restarting).
  ++session_epoch_[sess(v, w)];
  ++session_epoch_[sess(w, v)];
  session_last_delivery_[sess(v, w)] = 0;
  session_last_delivery_[sess(w, v)] = 0;
  flush_endpoint(v, w);
  NodeState& wn = nodes_[w];
  const std::size_t pi = peer_index(w, v);
  // w must replay its full table on re-establishment (v remembers nothing).
  wn.advertised_out[pi].clear();
  wn.desired_out[pi].clear();
  wn.mrai_ready[pi] = 0;
  wn.flush_scheduled[pi] = false;
  for (PathId p = 0; p < wn.holders.size(); ++p) {
    const auto& holders = wn.holders[p];
    if (!std::binary_search(holders.begin(), holders.end(), v)) continue;
    auto& stale = wn.stale[p];
    const auto it = std::lower_bound(stale.begin(), stale.end(), v);
    if (it == stale.end() || *it != v) {
      stale.insert(it, v);
      ++stale_retained_;
    }
  }
}

void EventEngine::set_fib(NodeId v, PathId path, SimTime now) {
  if (fib_[v] == path) return;
  fib_log_.push_back({now, v, fib_[v], path});
  fib_[v] = path;
}

std::size_t EventEngine::sweep_stale_from(NodeId w, NodeId v) {
  NodeState& node = nodes_[w];
  std::size_t swept = 0;
  for (PathId p = 0; p < node.stale.size(); ++p) {
    auto& stale = node.stale[p];
    const auto sit = std::lower_bound(stale.begin(), stale.end(), v);
    if (sit == stale.end() || *sit != v) continue;
    stale.erase(sit);
    auto& holders = node.holders[p];
    const auto hit = std::lower_bound(holders.begin(), holders.end(), v);
    if (hit != holders.end() && *hit == v) holders.erase(hit);
    ++swept;
  }
  return swept;
}

void EventEngine::send_end_of_rib(NodeId v, NodeId w, SimTime now) {
  // Rides the same per-session delay/FIFO machinery as UPDATEs (so it lands
  // after the initial-table replay) but bypasses the FaultInjector: loss is
  // already modeled by the injector's session-reset repair, which flushes
  // stale state wholesale.
  Event event;
  event.kind = EventKind::kEndOfRib;
  event.from = v;
  event.to = w;
  event.seq = next_seq_++;
  event.pid = cause_;  // caused by the restart delivery that replayed the table
  event.epoch = session_epoch_[sess(v, w)];
  const SimTime requested = now + delay_(v, w, session_msg_seq_++);
  SimTime& last = session_last_delivery_[sess(v, w)];
  event.time = std::max(requested, last);
  last = event.time;
  queue_.push(event);
  ++eor_sent_;
}

void EventEngine::sever_session(NodeId u, NodeId v) {
  ++session_epoch_[sess(u, v)];
  ++session_epoch_[sess(v, u)];
  // Forget FIFO history: a delayed pre-reset message must not push
  // post-re-establishment traffic into the future.
  session_last_delivery_[sess(u, v)] = 0;
  session_last_delivery_[sess(v, u)] = 0;
  flush_endpoint(u, v);
  flush_endpoint(v, u);
}

void EventEngine::apply_session_down(NodeId u, NodeId v, SimTime now) {
  if (session_admin_down_[sess(u, v)]) return;  // already down
  session_admin_down_[sess(u, v)] = true;
  session_admin_down_[sess(v, u)] = true;
  record_fault({now, FaultKind::kSessionDown, u, v});
  sever_session(u, v);
  if (node_up_[u]) reconsider(u, now);
  if (node_up_[v]) reconsider(v, now);
}

void EventEngine::apply_session_up(NodeId u, NodeId v, SimTime now) {
  if (!session_admin_down_[sess(u, v)]) return;  // already up
  session_admin_down_[sess(u, v)] = false;
  session_admin_down_[sess(v, u)] = false;
  record_fault({now, FaultKind::kSessionUp, u, v});
  // Initial-table exchange: each side re-advertises its full desired set
  // (advertised_out toward the peer is empty since the down flush).
  if (session_up(u, v)) {
    reconsider(u, now);
    reconsider(v, now);
  }
}

void EventEngine::apply_crash(NodeId v, SimTime now) {
  if (!node_up_[v]) {
    if (!graceful_down_[v]) return;  // already cold-down
    // A hard crash mid-graceful-restart: the warm recovery failed.  Peers'
    // retention collapses to the cold discipline and the frozen forwarding
    // entry dies with the data plane.
    graceful_down_[v] = false;
    fib_frozen_[v] = false;
    record_fault({now, FaultKind::kCrash, v, kNoNode});
    set_fib(v, kNoPath, now);
    for (const NodeId w : inst_->sessions().peers(v)) {
      if (sweep_stale_from(w, v) > 0 && node_up_[w]) reconsider(w, now);
    }
    return;
  }
  record_fault({now, FaultKind::kCrash, v, kNoNode});
  node_up_[v] = false;
  const auto peers = inst_->sessions().peers(v);
  for (const NodeId w : peers) sever_session(v, w);
  // Total state loss at v; peers re-route around it.
  NodeState& node = nodes_[v];
  for (auto& holders : node.holders) holders.clear();
  for (auto& stale : node.stale) stale.clear();
  node.own.assign(node.own.size(), false);
  record_best_loss(v, now);
  fib_frozen_[v] = false;
  set_fib(v, kNoPath, now);
  for (std::size_t i = 0; i < node.advertised_out.size(); ++i) {
    node.advertised_out[i].clear();
    node.desired_out[i].clear();
    node.mrai_ready[i] = 0;
    node.flush_scheduled[i] = false;
  }
  for (const NodeId w : peers) {
    if (node_up_[w]) reconsider(w, now);
  }
}

void EventEngine::apply_restart(NodeId v, SimTime now) {
  if (node_up_[v]) return;  // already up
  const bool was_graceful = graceful_down_[v];
  graceful_down_[v] = false;
  record_fault({now, FaultKind::kRestart, v, kNoNode});
  node_up_[v] = true;
  // The external neighbors never stopped announcing: re-learn every E-BGP
  // route of ours that is still live.
  for (PathId p = 0; p < inst_->exits().size(); ++p) {
    if (inst_->exits()[p].exit_point == v && ebgp_live_[p]) nodes_[v].own[p] = true;
  }
  reconsider(v, now);
  if (was_graceful) {
    // The initial-table replay (the reconsider above) is on the wire; close
    // it with an End-of-RIB marker per live session.  FIFO guarantees the
    // marker lands after the replayed UPDATEs, so a peer sweeping on EoR
    // only drops what the replay really did not refresh.
    for (const NodeId w : inst_->sessions().peers(v)) {
      if (session_up(v, w)) send_end_of_rib(v, w, now);
    }
  }
  for (const NodeId w : inst_->sessions().peers(v)) {
    if (session_up(v, w)) reconsider(w, now);
  }
}

void EventEngine::apply_graceful_down(NodeId v, SimTime now) {
  if (!node_up_[v]) return;  // already down (cold or graceful)
  record_fault({now, FaultKind::kGracefulDown, v, kNoNode});
  node_up_[v] = false;
  graceful_down_[v] = true;
  ++gr_generation_[v];
  // Sessions stop carrying messages; peers retain v's routes as stale.
  for (const NodeId w : inst_->sessions().peers(v)) detach_session_graceful(v, w);
  // v's control plane loses everything (detach cleared its per-session
  // state); the FIB entry deliberately stays frozen — the data plane keeps
  // forwarding on it until restart, crash, or cold fallback.
  nodes_[v].own.assign(nodes_[v].own.size(), false);
  record_best_loss(v, now);
  fib_frozen_[v] = true;
  if (stale_timer_ > 0) {
    Event event;
    event.time = now + stale_timer_;
    event.seq = next_seq_++;
    event.pid = cause_;  // armed by the graceful-down delivery
    event.kind = EventKind::kStaleExpire;
    event.from = v;
    event.epoch = gr_generation_[v];
    queue_.push(event);
  }
  // Peers do NOT reconsider: their candidate sets are unchanged by design —
  // that is exactly the continuity graceful restart buys.
}

void EventEngine::apply_end_of_rib(NodeId v, NodeId w, std::uint64_t epoch, SimTime now) {
  if (tracing()) {
    util::json::Object fields;
    fields.emplace_back("from", v);
    fields.emplace_back("to", w);
    fields.emplace_back("voided", epoch != session_epoch_[sess(v, w)]);
    if (cause_ != kNoCause) fields.emplace_back("lid", cause_);
    if (cause_parent_ != kNoCause) fields.emplace_back("pid", cause_parent_);
    trace_->emit(now, "eor", std::move(fields));
  }
  if (epoch != session_epoch_[sess(v, w)]) {
    // The session reset after the marker was sent: it died in flight.
    ++deliveries_voided_;
    return;
  }
  const std::size_t swept = sweep_stale_from(w, v);
  if (swept > 0) {
    stale_swept_eor_ += swept;
    reconsider(w, now);
  }
}

void EventEngine::apply_stale_expire(NodeId v, std::uint64_t generation, SimTime now) {
  // A stale timer armed by an older graceful restart must not fire into a
  // newer one; the generation stamp disambiguates.
  if (generation != gr_generation_[v]) return;
  if (fib_frozen_[v]) {
    // The restart never produced a fresh best route: thaw the frozen entry
    // to whatever the control plane actually has (usually nothing).
    fib_frozen_[v] = false;
    const NodeState& node = nodes_[v];
    set_fib(v, node_up_[v] && node.best ? node.best->path : kNoPath, now);
  }
  std::size_t swept_total = 0;
  for (const NodeId w : inst_->sessions().peers(v)) {
    const std::size_t swept = sweep_stale_from(w, v);
    if (swept > 0) {
      swept_total += swept;
      if (node_up_[w]) reconsider(w, now);
    }
  }
  if (swept_total > 0) {
    // Logged only when it actually degraded to a cold flush — a timer that
    // fires after a completed recovery is a silent no-op.
    stale_swept_expired_ += swept_total;
    record_fault({now, FaultKind::kStaleExpire, v, kNoNode});
  }
}

void EventEngine::apply_link_fault(EventKind kind, NodeId a, NodeId b, Cost cost,
                                   SimTime now) {
  const std::size_t link = *inst_->physical().find_link(a, b);  // validated at schedule
  FaultKind record = FaultKind::kLinkDown;
  bool changed = false;
  switch (kind) {
    case EventKind::kLinkCostChange:
      record = FaultKind::kLinkCostChange;
      changed = link_state_.set_cost(link, cost);
      break;
    case EventKind::kLinkDown:
      record = FaultKind::kLinkDown;
      changed = link_state_.set_down(link);
      cost = kInfCost;
      break;
    case EventKind::kLinkUp:
      record = FaultKind::kLinkUp;
      changed = link_state_.set_up(link);
      cost = link_state_.cost(link);
      break;
    default:
      return;
  }
  // No effective change (down of a down link, change to the current cost,
  // retargeting a down link's cost): well-defined no-op, nothing logged —
  // mirrors the session-fault no-op discipline.
  if (!changed) return;

  record_fault({now, record, a, b, cost});
  const auto prev = igp_;
  igp_ = inst_->igp_epoch(link_state_.effective());
  ++igp_swaps_;
  igp_log_.push_back({now, igp_->fingerprint(), igp_,
                      {link_state_.effective().begin(), link_state_.effective().end()}});
  if (tracing()) {
    util::json::Object fields;
    fields.emplace_back("fingerprint", igp_->fingerprint());
    fields.emplace_back("swaps", static_cast<std::uint64_t>(igp_swaps_));
    trace_->emit(now, "igp-epoch", std::move(fields));
  }

  // Sessions that rode a now-dead IGP path go down exactly like session
  // faults (TCP cannot cross a partition): in-flight messages void, both
  // ends flush.  session_up() already reports them down under the new
  // epoch; when reachability returns, the next link fault's reconsider
  // sweep replays the full sync because both sides' advertised_out were
  // cleared here.
  for (const auto& edge : inst_->sessions().edges()) {
    if (prev->reachable(edge.u, edge.v) && !igp_->reachable(edge.u, edge.v)) {
      sever_session(edge.u, edge.v);
    }
  }

  // Every distance may have moved: force re-evaluation of every up node's
  // PossibleExits/BestRoute.  The net-diff send logic keeps the blast
  // radius honest — only nodes whose selected or advertised set actually
  // changed put UPDATEs on the wire.
  for (NodeId v = 0; v < inst_->node_count(); ++v) {
    if (node_up_[v]) reconsider(v, now);
  }
}

EventEngine::Result EventEngine::run(std::size_t max_deliveries) {
  return run_impl(max_deliveries, std::nullopt);
}

EventEngine::Result EventEngine::run_until(SimTime horizon,
                                           std::size_t max_deliveries) {
  return run_impl(max_deliveries, horizon);
}

EventEngine::Result EventEngine::run_impl(std::size_t max_deliveries,
                                          std::optional<SimTime> horizon) {
  sealed_ = true;
  Result result;
  // A restored engine continues the captured run: deliveries/end_time start
  // from the checkpoint's cumulative totals (consumed once), so the budget
  // spends only the remainder and the returned Result is the one the
  // uninterrupted run would have produced.
  result.deliveries = resume_deliveries_;
  result.end_time = resume_end_time_;
  resume_deliveries_ = 0;
  resume_end_time_ = 0;
  while (!queue_.empty() && result.deliveries < max_deliveries) {
    if (horizon && queue_.top().time > *horizon) break;
    if (deadline_ && (result.deliveries & 0xFFF) == 0 &&
        std::chrono::steady_clock::now() >= *deadline_) {
      throw DeadlineExceeded("EventEngine::run: wall-clock deadline exceeded");
    }
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    const Event event = queue_.top();
    queue_.pop();
    ++result.deliveries;
    result.end_time = event.time;
    // Causal cursor for everything this delivery touches: records emitted
    // during processing carry lid = this event's seq, and events scheduled
    // during processing inherit it as their pid.
    cause_ = event.seq;
    cause_parent_ = event.pid;

    // The switch is the last statement of the loop body, so this span times
    // exactly one delivery (dispatch + all cascaded work).  arm() decides
    // whether this delivery is one of the 1-in-64 samples; the nested
    // decision/transfer spans follow the same verdict.
    profile_.arm();
    const obs::Span delivery_span(profile_.live_delivery);
    switch (event.kind) {
      case EventKind::kEbgpAnnounce:
        ebgp_live_[event.path] = true;
        if (tracing()) {
          util::json::Object fields;
          fields.emplace_back("path", event.path);
          fields.emplace_back("node", event.to);
          fields.emplace_back("lid", event.seq);  // injection root: no pid
          trace_->emit(event.time, "ebgp-announce", std::move(fields));
        }
        if (node_up_[event.to]) {
          nodes_[event.to].own[event.path] = true;
          reconsider(event.to, event.time);
        }
        break;
      case EventKind::kEbgpWithdraw:
        ebgp_live_[event.path] = false;
        if (tracing()) {
          util::json::Object fields;
          fields.emplace_back("path", event.path);
          fields.emplace_back("node", event.to);
          fields.emplace_back("lid", event.seq);  // injection root: no pid
          trace_->emit(event.time, "ebgp-withdraw", std::move(fields));
        }
        if (node_up_[event.to]) {
          nodes_[event.to].own[event.path] = false;
          reconsider(event.to, event.time);
        }
        break;
      case EventKind::kUpdate: {
        const bool voided =
            event.epoch != session_epoch_[sess(event.from, event.to)];
        if (tracing()) {
          util::json::Object fields;
          fields.emplace_back("from", event.from);
          fields.emplace_back("to", event.to);
          fields.emplace_back("path", event.path);
          fields.emplace_back("announce", event.announce);
          fields.emplace_back("lid", event.seq);
          if (event.pid != kNoCause) fields.emplace_back("pid", event.pid);
          trace_->emit(event.time, voided ? "update-voided" : "update",
                       std::move(fields));
        }
        if (voided) {
          // Sent before a reset of this session: the message died with it.
          ++deliveries_voided_;
          break;
        }
        auto& holders = nodes_[event.to].holders[event.path];
        const auto it = std::lower_bound(holders.begin(), holders.end(), event.from);
        if (event.announce) {
          if (it == holders.end() || *it != event.from) holders.insert(it, event.from);
        } else {
          if (it != holders.end() && *it == event.from) holders.erase(it);
        }
        // Any post-restart UPDATE from this peer supersedes the retained
        // copy: an announce refreshes the entry (no longer stale), a
        // withdraw removes it outright.
        auto& stale = nodes_[event.to].stale[event.path];
        const auto sit = std::lower_bound(stale.begin(), stale.end(), event.from);
        if (sit != stale.end() && *sit == event.from) stale.erase(sit);
        reconsider(event.to, event.time);
        break;
      }
      case EventKind::kMraiFlush: {
        // event.from = the batching node, event.to = the peer.
        if (!node_up_[event.from]) break;  // state died with the crash
        if (event.epoch != session_epoch_[sess(event.from, event.to)]) {
          // Scheduled before a reset of this session: the hold-down state it
          // would have flushed died with the old epoch (flush_endpoint
          // cleared it), and the re-established session already replayed a
          // full sync.  Firing it would leak a stale scheduled advertisement
          // into the new session epoch.
          ++deliveries_voided_;
          break;
        }
        if (tracing()) {
          // v2-only record: updates sent by this flush carry pid = this
          // event's seq, so the flush must appear as a live lid in the DAG
          // (it is the causal relay between deferral and deferred send).
          util::json::Object fields;
          fields.emplace_back("from", event.from);
          fields.emplace_back("to", event.to);
          fields.emplace_back("lid", event.seq);
          if (event.pid != kNoCause) fields.emplace_back("pid", event.pid);
          trace_->emit(event.time, "mrai-flush", std::move(fields));
        }
        const std::size_t peer_index = this->peer_index(event.from, event.to);
        nodes_[event.from].flush_scheduled[peer_index] = false;
        sync_peer(event.from, peer_index, event.time);
        break;
      }
      case EventKind::kSessionDown:
        apply_session_down(event.from, event.to, event.time);
        break;
      case EventKind::kSessionUp:
        apply_session_up(event.from, event.to, event.time);
        break;
      case EventKind::kCrash:
        apply_crash(event.from, event.time);
        break;
      case EventKind::kRestart:
        apply_restart(event.from, event.time);
        break;
      case EventKind::kGracefulDown:
        apply_graceful_down(event.from, event.time);
        break;
      case EventKind::kEndOfRib:
        apply_end_of_rib(event.from, event.to, event.epoch, event.time);
        break;
      case EventKind::kStaleExpire:
        apply_stale_expire(event.from, event.epoch, event.time);
        break;
      case EventKind::kLinkCostChange:
      case EventKind::kLinkDown:
      case EventKind::kLinkUp:
        apply_link_fault(event.kind, event.from, event.to, event.cost, event.time);
        break;
    }
  }
  // Between runs there is no "current delivery": anything scheduled from
  // outside (daemon ingest, scripting against a resumed engine) is a root.
  cause_ = kNoCause;
  cause_parent_ = kNoCause;

  result.converged =
      queue_.empty() || (horizon && queue_.top().time > *horizon);
  result.budget_exhausted = result.deliveries >= max_deliveries;
  result.events_pending = queue_.size();
  if (!queue_.empty()) {
    // Scan a drained copy for fault events the budget cut off; the engine's
    // own queue stays intact so a later run() call can resume.
    auto pending = queue_;
    while (!pending.empty()) {
      const Event& event = pending.top();
      switch (event.kind) {
        case EventKind::kSessionDown:
        case EventKind::kSessionUp:
        case EventKind::kCrash:
        case EventKind::kRestart:
        case EventKind::kGracefulDown:
        case EventKind::kStaleExpire:
        case EventKind::kLinkCostChange:
        case EventKind::kLinkDown:
        case EventKind::kLinkUp:
          if (result.faults_pending == 0) result.next_fault_time = event.time;
          ++result.faults_pending;
          break;
        case EventKind::kEbgpAnnounce:
        case EventKind::kEbgpWithdraw:
        case EventKind::kUpdate:
        case EventKind::kMraiFlush:
        case EventKind::kEndOfRib:
          break;
      }
      pending.pop();
    }
  }
  result.updates_sent = updates_sent_;
  result.best_flips = best_flips_;
  result.messages_dropped = messages_dropped_;
  result.messages_duplicated = messages_duplicated_;
  result.deliveries_voided = deliveries_voided_;
  result.faults_applied = fault_log_.size();
  result.eor_markers_sent = eor_sent_;
  result.stale_retained = stale_retained_;
  result.stale_swept_eor = stale_swept_eor_;
  result.stale_swept_expired = stale_swept_expired_;
  result.igp_epoch_swaps = igp_swaps_;
  result.decisions_total = decisions_total_;
  result.decisions_empty = decisions_empty_;
  result.mrai_deferrals = mrai_deferrals_;
  result.decisions_by_rule = decisions_by_rule_;
  result.decisions_by_node = decisions_by_node_;
  result.final_best.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) result.final_best.push_back(best_path(v));
  // Record cumulative totals so a later capture() carries them forward.
  last_run_deliveries_ = result.deliveries;
  last_run_end_time_ = result.end_time;
  flush_metrics(result);
  return result;
}

void EventEngine::set_deadline(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  deadline_ = deadline;
}

void EventEngine::flush_metrics(const Result& result) {
  if (metrics_ == nullptr) return;
  // Engine counters are cumulative across run() calls; push only the delta
  // since the previous flush so resumed runs never double-count.
  const auto push = [](obs::Counter* counter, std::uint64_t current,
                       std::uint64_t& pushed) {
    counter->add(current - pushed);
    pushed = current;
  };
  handles_.deliveries->add(result.deliveries);  // per-run, not cumulative
  push(handles_.updates_sent, updates_sent_, flushed_.updates_sent);
  push(handles_.deliveries_voided, deliveries_voided_, flushed_.deliveries_voided);
  push(handles_.messages_dropped, messages_dropped_, flushed_.messages_dropped);
  push(handles_.messages_duplicated, messages_duplicated_,
       flushed_.messages_duplicated);
  push(handles_.best_flips, best_flips_, flushed_.best_flips);
  push(handles_.mrai_deferrals, mrai_deferrals_, flushed_.mrai_deferrals);
  push(handles_.faults_applied, fault_log_.size(), flushed_.faults_applied);
  push(handles_.eor_markers_sent, eor_sent_, flushed_.eor_markers_sent);
  push(handles_.stale_retained, stale_retained_, flushed_.stale_retained);
  push(handles_.stale_swept_eor, stale_swept_eor_, flushed_.stale_swept_eor);
  push(handles_.stale_swept_expired, stale_swept_expired_,
       flushed_.stale_swept_expired);
  push(handles_.igp_epoch_swaps, igp_swaps_, flushed_.igp_epoch_swaps);
  push(handles_.decisions, decisions_total_, flushed_.decisions);
  push(handles_.decisions_empty, decisions_empty_, flushed_.decisions_empty);
  for (std::size_t rule = 0; rule < bgp::kSelectionRuleCount; ++rule) {
    push(handles_.decided[rule], decisions_by_rule_[rule], flushed_.decided[rule]);
  }
  handles_.queue_depth_max->record_max(static_cast<std::int64_t>(max_queue_depth_));
}

EngineState EventEngine::capture() const {
  EngineState state;
  state.instance = std::string(inst_->name());
  state.protocol = core::protocol_name(protocol_);
  state.node_count = inst_->node_count();
  state.path_count = inst_->exits().size();
  state.link_count = link_state_.link_count();
  state.mrai = mrai_;
  state.stale_timer = stale_timer_;

  // Drain a copy of the heap: (time, seq) keys are unique, so this yields
  // the exact global pop order and re-pushing reproduces it.
  auto pending = queue_;
  state.queue.reserve(pending.size());
  while (!pending.empty()) {
    const Event& event = pending.top();
    EngineState::PendingEvent out;
    out.time = event.time;
    out.seq = event.seq;
    out.pid = event.pid;
    out.kind = static_cast<std::uint8_t>(event.kind);
    out.from = event.from;
    out.to = event.to;
    out.path = event.path;
    out.announce = event.announce;
    out.epoch = event.epoch;
    out.cost = event.cost;
    state.queue.push_back(out);
    pending.pop();
  }

  state.nodes.reserve(nodes_.size());
  for (const NodeState& node : nodes_) {
    EngineState::NodeSnapshot snap;
    snap.holders = node.holders;
    snap.stale = node.stale;
    snap.own = node.own;
    if (node.best) {
      snap.has_best = true;
      snap.best_path = node.best->path;
      snap.best_metric = node.best->metric;
      snap.best_learned_from = node.best->learned_from;
      snap.best_is_ebgp = node.best->is_ebgp;
    }
    snap.advertised_out = node.advertised_out;
    snap.desired_out = node.desired_out;
    snap.mrai_ready = node.mrai_ready;
    snap.flush_scheduled = node.flush_scheduled;
    state.nodes.push_back(std::move(snap));
  }

  state.session_last_delivery = session_last_delivery_;
  state.session_epoch = session_epoch_;
  state.session_admin_down = session_admin_down_;
  state.node_up = node_up_;
  state.graceful_down = graceful_down_;
  state.gr_generation = gr_generation_;
  state.fib = fib_;
  state.fib_frozen = fib_frozen_;
  state.ebgp_live = ebgp_live_;

  state.link_cost.reserve(link_state_.link_count());
  state.link_down.reserve(link_state_.link_count());
  for (std::size_t link = 0; link < link_state_.link_count(); ++link) {
    state.link_cost.push_back(link_state_.cost(link));
    state.link_down.push_back(link_state_.is_down(link));
  }
  state.igp_log.reserve(igp_log_.size());
  for (const IgpRecord& record : igp_log_) {
    state.igp_log.push_back({record.time, record.effective});
  }

  state.next_seq = next_seq_;
  state.session_msg_seq = session_msg_seq_;

  state.updates_sent = updates_sent_;
  state.best_flips = best_flips_;
  state.messages_dropped = messages_dropped_;
  state.messages_duplicated = messages_duplicated_;
  state.deliveries_voided = deliveries_voided_;
  state.eor_sent = eor_sent_;
  state.stale_retained = stale_retained_;
  state.stale_swept_eor = stale_swept_eor_;
  state.stale_swept_expired = stale_swept_expired_;
  state.igp_swaps = igp_swaps_;
  state.decisions_total = decisions_total_;
  state.decisions_empty = decisions_empty_;
  state.mrai_deferrals = mrai_deferrals_;
  state.decisions_by_rule = decisions_by_rule_;
  state.decisions_by_node = decisions_by_node_;
  state.flips_by_node.assign(flips_by_node_.begin(), flips_by_node_.end());

  state.flap_log = flap_log_;
  state.fault_log = fault_log_;
  state.fib_log = fib_log_;

  // Cumulative Result continuation: an unconsumed resume base (captured
  // again before any run) takes precedence over the last finished run.
  if (resume_deliveries_ != 0 || resume_end_time_ != 0) {
    state.deliveries = resume_deliveries_;
    state.end_time = resume_end_time_;
  } else {
    state.deliveries = last_run_deliveries_;
    state.end_time = last_run_end_time_;
  }
  return state;
}

namespace {

[[noreturn]] void restore_error(const std::string& what) {
  throw std::runtime_error("EventEngine::restore: " + what);
}

}  // namespace

void EventEngine::restore(const EngineState& state) {
  if (sealed_) {
    throw std::logic_error(
        "EventEngine::restore: engine already sealed (restore requires a fresh "
        "engine; attach delay/injector/metrics/trace first, then restore)");
  }
  // Identity guard: refuse a snapshot of a different scenario outright.
  if (state.instance != inst_->name()) restore_error("instance name mismatch");
  if (state.protocol != core::protocol_name(protocol_)) restore_error("protocol mismatch");
  if (state.node_count != inst_->node_count()) restore_error("node count mismatch");
  if (state.path_count != inst_->exits().size()) restore_error("path count mismatch");
  if (state.link_count != link_state_.link_count()) restore_error("link count mismatch");

  const std::size_t n = inst_->node_count();
  const std::size_t paths = inst_->exits().size();
  const std::size_t sessions = n * n;
  if (state.nodes.size() != n) restore_error("node snapshot count mismatch");
  if (state.session_last_delivery.size() != sessions ||
      state.session_epoch.size() != sessions ||
      state.session_admin_down.size() != sessions) {
    restore_error("session vector size mismatch");
  }
  if (state.node_up.size() != n || state.graceful_down.size() != n ||
      state.gr_generation.size() != n || state.fib.size() != n ||
      state.fib_frozen.size() != n || state.decisions_by_node.size() != n ||
      state.flips_by_node.size() != n) {
    restore_error("per-node vector size mismatch");
  }
  if (state.ebgp_live.size() != paths) restore_error("ebgp_live size mismatch");
  if (state.link_cost.size() != state.link_count ||
      state.link_down.size() != state.link_count) {
    restore_error("link vector size mismatch");
  }
  for (const auto& event : state.queue) {
    if (event.kind > static_cast<std::uint8_t>(EventKind::kLinkUp)) {
      restore_error("pending event with unknown kind");
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto& snap = state.nodes[v];
    const std::size_t peer_count = inst_->sessions().peers(v).size();
    if (snap.holders.size() != paths || snap.stale.size() != paths ||
        snap.own.size() != paths) {
      restore_error("node " + std::to_string(v) + ": per-path vector size mismatch");
    }
    if (snap.advertised_out.size() != peer_count || snap.desired_out.size() != peer_count ||
        snap.mrai_ready.size() != peer_count || snap.flush_scheduled.size() != peer_count) {
      restore_error("node " + std::to_string(v) + ": per-peer vector size mismatch");
    }
  }
  for (const auto& snapshot : state.igp_log) {
    if (snapshot.effective.size() != state.link_count) {
      restore_error("igp_log entry with wrong effective-vector length");
    }
  }

  mrai_ = state.mrai;
  stale_timer_ = state.stale_timer;

  // Underlay first: replay configured costs and down flags onto a fresh
  // LinkState, then re-materialize the current epoch and the epoch history
  // through the instance's memoized SPF cache (same effective vector ->
  // pointer-identical ShortestPaths, so continuity replay and epoch-revert
  // identities survive the round trip).
  link_state_ = netsim::LinkState(inst_->physical());
  for (std::size_t link = 0; link < state.link_count; ++link) {
    if (link_state_.cost(link) != state.link_cost[link]) {
      link_state_.set_cost(link, state.link_cost[link]);
    }
    if (state.link_down[link]) link_state_.set_down(link);
  }
  igp_ = inst_->igp_epoch(link_state_.effective());
  igp_log_.clear();
  igp_log_.reserve(state.igp_log.size());
  for (const auto& snapshot : state.igp_log) {
    auto epoch = inst_->igp_epoch(snapshot.effective);
    igp_log_.push_back({snapshot.time, epoch->fingerprint(), epoch, snapshot.effective});
  }

  for (NodeId v = 0; v < n; ++v) {
    const auto& snap = state.nodes[v];
    NodeState& node = nodes_[v];
    node.holders = snap.holders;
    node.stale = snap.stale;
    node.own = snap.own;
    if (snap.has_best) {
      node.best = bgp::RouteView{snap.best_path, snap.best_metric,
                                 snap.best_learned_from, snap.best_is_ebgp};
    } else {
      node.best.reset();
    }
    node.advertised_out = snap.advertised_out;
    node.desired_out = snap.desired_out;
    node.mrai_ready = snap.mrai_ready;
    node.flush_scheduled = snap.flush_scheduled;
  }

  session_last_delivery_ = state.session_last_delivery;
  session_epoch_ = state.session_epoch;
  session_admin_down_ = state.session_admin_down;
  node_up_ = state.node_up;
  graceful_down_ = state.graceful_down;
  gr_generation_ = state.gr_generation;
  fib_ = state.fib;
  fib_frozen_ = state.fib_frozen;
  ebgp_live_ = state.ebgp_live;

  queue_ = {};
  for (const auto& pending : state.queue) {
    Event event;
    event.time = pending.time;
    event.seq = pending.seq;
    event.pid = pending.pid;
    event.kind = static_cast<EventKind>(pending.kind);
    event.from = pending.from;
    event.to = pending.to;
    event.path = pending.path;
    event.announce = pending.announce;
    event.epoch = pending.epoch;
    event.cost = pending.cost;
    queue_.push(event);
  }

  next_seq_ = state.next_seq;
  session_msg_seq_ = state.session_msg_seq;

  updates_sent_ = state.updates_sent;
  best_flips_ = state.best_flips;
  messages_dropped_ = state.messages_dropped;
  messages_duplicated_ = state.messages_duplicated;
  deliveries_voided_ = state.deliveries_voided;
  eor_sent_ = state.eor_sent;
  stale_retained_ = state.stale_retained;
  stale_swept_eor_ = state.stale_swept_eor;
  stale_swept_expired_ = state.stale_swept_expired;
  igp_swaps_ = state.igp_swaps;
  decisions_total_ = state.decisions_total;
  decisions_empty_ = state.decisions_empty;
  mrai_deferrals_ = state.mrai_deferrals;
  decisions_by_rule_ = state.decisions_by_rule;
  decisions_by_node_ = state.decisions_by_node;
  flips_by_node_.assign(state.flips_by_node.begin(), state.flips_by_node.end());

  flap_log_ = state.flap_log;
  fault_log_ = state.fault_log;
  fib_log_ = state.fib_log;

  resume_deliveries_ = state.deliveries;
  resume_end_time_ = state.end_time;
  last_run_deliveries_ = 0;
  last_run_end_time_ = 0;
  max_queue_depth_ = queue_.size();

  // The snapshot already embeds scheduled work; further set_* configuration
  // would silently diverge from the captured run, so freeze it now.
  sealed_ = true;
}

}  // namespace ibgp::engine
