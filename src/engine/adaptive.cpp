#include "engine/adaptive.hpp"

#include <algorithm>

#include "core/policy.hpp"

namespace ibgp::engine {

AdaptiveResult run_adaptive(const core::Instance& inst, ActivationSequence& sequence,
                            const AdaptiveOptions& options) {
  AdaptiveResult result;
  SyncEngine engine(inst, core::ProtocolKind::kStandard);

  const std::size_t period = std::max<std::size_t>(1, sequence.period());
  const std::size_t window = options.window == 0 ? 4 * period : options.window;

  std::vector<std::size_t> flips_at_window_start(inst.node_count(), 0);
  std::vector<bool> upgraded(inst.node_count(), false);
  std::size_t stale_windows = 0;  // churning windows without new upgrades
  std::size_t quiet_run = 0;

  while (engine.steps() < options.max_steps) {
    // One window of activations, tracking quiescence.
    bool changed_in_window = false;
    for (std::size_t i = 0; i < window && engine.steps() < options.max_steps; ++i) {
      if (engine.step(sequence.next())) {
        changed_in_window = true;
        quiet_run = 0;
      } else if (++quiet_run >= period) {
        result.converged = true;
        break;
      }
    }
    if (result.converged) break;

    if (!changed_in_window) {
      result.converged = true;
      break;
    }

    // Detect flapping nodes and upgrade them.
    bool any_upgrade = false;
    const auto flips = engine.best_flips_by_node();
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      const std::size_t in_window = flips[v] - flips_at_window_start[v];
      flips_at_window_start[v] = flips[v];
      if (!upgraded[v] && in_window >= options.flap_threshold) {
        upgraded[v] = true;
        any_upgrade = true;
        engine.set_node_protocol(v, core::ProtocolKind::kModified);
        result.upgraded.push_back(v);
        result.upgrade_step.push_back(engine.steps());
      }
    }

    if (any_upgrade) {
      stale_windows = 0;
    } else if (++stale_windows >= options.escalation_rounds) {
      // Global fallback: upgrade everyone (guaranteed convergence, §7).
      result.escalated_all = true;
      for (NodeId v = 0; v < inst.node_count(); ++v) {
        if (!upgraded[v]) {
          upgraded[v] = true;
          engine.set_node_protocol(v, core::ProtocolKind::kModified);
          result.upgraded.push_back(v);
          result.upgrade_step.push_back(engine.steps());
        }
      }
      stale_windows = 0;
    }
  }

  result.steps = engine.steps();
  result.best_flips = engine.best_flips();
  result.final_best.reserve(inst.node_count());
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    result.final_best.push_back(engine.best_path(v));
  }
  return result;
}

}  // namespace ibgp::engine
