// bench_gr — graceful restart vs cold restart (E14).
//
// Runs PAIRED fault campaigns: for each (figure, protocol, outage level,
// seed), one campaign crashes the victims cold and one restarts the SAME
// victims at the SAME times gracefully (RFC 4724-style stale-path
// retention; the two scripts share one RNG draw sequence — see
// fault/script.hpp).  The forwarding-continuity checker then prices each
// run tick-by-tick: blackhole ticks (source-ticks with no usable route),
// stale ticks (forwarding carried by retained-stale state), transient
// loop ticks, and the longest contiguous per-source blackhole window.
//
// The headline claim: graceful restart strictly shrinks total blackhole
// time relative to cold restart, for every protocol variant — retention
// keeps the data plane forwarding while the control plane reboots.  The
// report ends with a per-protocol PASS/FAIL verdict on exactly that.
//
// `bench_gr --smoke` skips the sweep and runs one small deterministic
// cell twice in-process, printing the campaign trace hash and failing if
// the two runs disagree (CI runs the binary twice and compares the
// printed hashes across processes as well).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "bench_common.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

constexpr std::size_t kSeeds = 20;
constexpr std::size_t kBudget = 100000;
constexpr engine::SimTime kStaleTimer = 300;

struct Level {
  const char* label;
  std::size_t outages;  // crash/restart (cold) or graceful-down/restart pairs
  std::size_t flaps;
  double loss;
};

constexpr Level kLevels[] = {
    {"1 outage, quiet background", 1, 0, 0.0},
    {"2 outages, 2 flaps, 5% loss", 2, 2, 0.05},
};

struct Cell {
  std::size_t reconverged = 0;
  std::size_t clean = 0;
  std::uint64_t blackhole = 0;   // total source-ticks, summed over seeds
  std::uint64_t stale = 0;
  std::uint64_t loops = 0;
  std::uint64_t max_window = 0;  // worst contiguous blackhole window seen
  std::uint64_t settle_sum = 0;  // over reconverged runs
};

fault::FaultScriptConfig cell_config(std::uint64_t seed, const Level& level,
                                     bool graceful) {
  fault::FaultScriptConfig config;
  config.seed = seed;
  config.session_flaps = level.flaps;
  config.loss_prob = level.loss;
  config.window_start = 20;
  config.window_end = 400;
  if (graceful) {
    config.graceful_restarts = level.outages;
    config.stale_timer = kStaleTimer;
  } else {
    config.crashes = level.outages;
  }
  return config;
}

Cell run_cell(const core::Instance& inst, core::ProtocolKind protocol,
              const Level& level, bool graceful) {
  Cell cell;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto script = fault::make_fault_script(inst, cell_config(seed, level, graceful));
    fault::CampaignOptions options;
    options.max_deliveries = kBudget;
    const auto campaign = fault::run_campaign(inst, protocol, script, options);
    if (campaign.reconverged()) {
      ++cell.reconverged;
      cell.settle_sum += campaign.settle_time;
      if (campaign.invariants.clean()) ++cell.clean;
    }
    cell.blackhole += campaign.continuity.blackhole_ticks;
    cell.stale += campaign.continuity.stale_ticks;
    cell.loops += campaign.continuity.loop_ticks;
    cell.max_window = std::max(cell.max_window, campaign.continuity.max_blackhole_window);
  }
  return cell;
}

void report() {
  bench::heading("E14: graceful restart vs cold restart — forwarding continuity",
                 "stale-path retention (RFC 4724 semantics) strictly shrinks "
                 "blackhole time vs cold restart, for every protocol variant");

  // protocol -> (cold, graceful) blackhole totals across figures and levels.
  std::map<core::ProtocolKind, std::pair<std::uint64_t, std::uint64_t>> verdict;

  for (const auto& [name, inst] : topo::all_figures()) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    std::printf("\n%s (%zu paired seeds per cell, budget %zu deliveries, "
                "stale timer %" PRIu64 "):\n",
                name.c_str(), kSeeds, kBudget, kStaleTimer);
    std::printf("  %-28s | %-9s | %-8s | %-11s | %-6s | %-9s | %-6s | %-6s\n",
                "fault level", "protocol", "restart", "reconverged", "clean",
                "blackhole", "max-bh", "stale");
    std::printf("  %.28s-+-----------+----------+-------------+--------+-----------+--------+-------\n",
                "------------------------------");
    for (const auto& level : kLevels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        for (const bool graceful : {false, true}) {
          const Cell cell = run_cell(inst, protocol, level, graceful);
          std::printf("  %-28s | %-9s | %-8s | %5zu/%-5zu | %2zu/%-3zu | %9" PRIu64
                      " | %6" PRIu64 " | %6" PRIu64 "\n",
                      level.label, core::protocol_name(protocol),
                      graceful ? "graceful" : "cold", cell.reconverged, kSeeds,
                      cell.clean, cell.reconverged, cell.blackhole, cell.max_window,
                      cell.stale);
          auto& totals = verdict[protocol];
          (graceful ? totals.second : totals.first) += cell.blackhole;
        }
      }
    }
  }

  std::printf("\npaired verdict (total blackhole source-ticks, cold vs graceful):\n");
  for (const auto& [protocol, totals] : verdict) {
    std::printf("  %-9s : cold=%-8" PRIu64 " graceful=%-8" PRIu64 " -> %s\n",
                core::protocol_name(protocol), totals.first, totals.second,
                totals.second < totals.first ? "PASS (strictly smaller)" : "FAIL");
  }
  std::printf("\n(blackhole = source-ticks with no usable route; max-bh = longest\n"
              " contiguous per-source blackhole window; stale = source-ticks carried\n"
              " by retained-stale forwarding state — the price of continuity)\n");
}

// One small deterministic cell, run twice in-process; prints the campaign
// trace hash for cross-process comparison and fails on any divergence.
int smoke() {
  const auto inst = topo::fig3();
  fault::FaultScriptConfig config;
  config.seed = 7;
  config.session_flaps = 1;
  config.graceful_restarts = 2;
  config.stale_timer = kStaleTimer;
  config.loss_prob = 0.05;
  config.window_start = 20;
  config.window_end = 300;
  const auto script = fault::make_fault_script(inst, config);
  const auto first = fault::run_campaign(inst, core::ProtocolKind::kModified, script);
  const auto second = fault::run_campaign(inst, core::ProtocolKind::kModified, script);
  std::printf("bench_gr smoke: trace_hash=%016" PRIx64 " reconverged=%d clean=%d "
              "stale_retained=%" PRIu64 " blackhole=%" PRIu64 " stale_ticks=%" PRIu64 "\n",
              first.trace_hash, first.reconverged() ? 1 : 0,
              first.invariants.clean() ? 1 : 0,
              static_cast<std::uint64_t>(first.run.stale_retained),
              first.continuity.blackhole_ticks, first.continuity.stale_ticks);
  if (first.trace_hash != second.trace_hash) {
    std::fprintf(stderr, "bench_gr smoke: FAIL — trace hash differs between runs\n");
    return 1;
  }
  if (!first.reconverged() || !first.invariants.clean()) {
    std::fprintf(stderr, "bench_gr smoke: FAIL — campaign not reconverged/clean\n");
    return 1;
  }
  return 0;
}

void BM_GrCampaign(benchmark::State& state, bool graceful) {
  const auto inst = topo::fig3();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto script =
        fault::make_fault_script(inst, cell_config(++seed, kLevels[1], graceful));
    fault::CampaignOptions options;
    options.max_deliveries = kBudget;
    const auto campaign =
        fault::run_campaign(inst, core::ProtocolKind::kModified, script, options);
    benchmark::DoNotOptimize(campaign.trace_hash);
  }
}

BENCHMARK_CAPTURE(BM_GrCampaign, cold, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GrCampaign, graceful, true)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of IBGP_BENCH_MAIN: `--smoke` must be handled before
// google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return smoke();
  }
  report();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
