// bench_gr — graceful restart vs cold restart (E14).
//
// Runs PAIRED fault campaigns: for each (figure, protocol, outage level,
// seed), one campaign crashes the victims cold and one restarts the SAME
// victims at the SAME times gracefully (RFC 4724-style stale-path
// retention; the two scripts share one RNG draw sequence — see
// fault/script.hpp).  The forwarding-continuity checker then prices each
// run tick-by-tick: blackhole ticks (source-ticks with no usable route),
// stale ticks (forwarding carried by retained-stale state), transient
// loop ticks, and the longest contiguous per-source blackhole window.
//
// The headline claim: graceful restart strictly shrinks total blackhole
// time relative to cold restart, for every protocol variant — retention
// keeps the data plane forwarding while the control plane reboots.  The
// report ends with a per-protocol PASS/FAIL verdict on exactly that.
//
// The grid runs as one deterministic parallel sweep (fault/sweep.hpp), so
// --jobs N matches --jobs 1 hash-for-hash.  `bench_gr --smoke` runs a
// reduced paired sweep serially AND in parallel, prints the per-cell trace
// hashes (stdout is deterministic — CI diffs it across processes and
// across --jobs values), fails on any divergence, and records the measured
// speedup in the --json document (BENCH_E14.json).

#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "fault/script.hpp"
#include "fault/sweep.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

constexpr std::size_t kSeeds = 20;
constexpr std::size_t kBudget = 100000;
constexpr engine::SimTime kStaleTimer = 300;

struct Level {
  const char* label;
  std::size_t outages;  // crash/restart (cold) or graceful-down/restart pairs
  std::size_t flaps;
  double loss;
};

constexpr Level kLevels[] = {
    {"1 outage, quiet background", 1, 0, 0.0},
    {"2 outages, 2 flaps, 5% loss", 2, 2, 0.05},
};

struct CellStats {
  std::size_t reconverged = 0;
  std::size_t clean = 0;
  std::uint64_t blackhole = 0;   // total source-ticks, summed over seeds
  std::uint64_t stale = 0;
  std::uint64_t loops = 0;
  std::uint64_t max_window = 0;  // worst contiguous blackhole window seen
  std::uint64_t settle_sum = 0;  // over reconverged runs
};

fault::FaultScriptConfig cell_config(std::uint64_t seed, const Level& level,
                                     bool graceful) {
  fault::FaultScriptConfig config;
  config.seed = seed;
  config.session_flaps = level.flaps;
  config.loss_prob = level.loss;
  config.window_start = 20;
  config.window_end = 400;
  if (graceful) {
    config.graceful_restarts = level.outages;
    config.stale_timer = kStaleTimer;
  } else {
    config.crashes = level.outages;
  }
  return config;
}

fault::SweepCell make_cell(const core::Instance& inst, core::ProtocolKind protocol,
                           const Level& level, bool graceful, std::uint64_t seed,
                           std::size_t budget) {
  fault::SweepCell cell;
  cell.instance = &inst;
  cell.protocol = protocol;
  cell.script = fault::make_fault_script(inst, cell_config(seed, level, graceful));
  cell.options.max_deliveries = budget;
  cell.group = inst.name() + std::string(graceful ? "/graceful/" : "/cold/") + level.label;
  cell.seed = seed;
  return cell;
}

CellStats aggregate(const fault::SweepResult& sweep, std::size_t first,
                    std::size_t count) {
  CellStats stats;
  for (std::size_t i = first; i < first + count; ++i) {
    const auto& campaign = sweep.cells[i];
    if (campaign.reconverged()) {
      ++stats.reconverged;
      stats.settle_sum += *campaign.settle_time;
      if (campaign.invariants.clean()) ++stats.clean;
    }
    stats.blackhole += campaign.continuity.blackhole_ticks;
    stats.stale += campaign.continuity.stale_ticks;
    stats.loops += campaign.continuity.loop_ticks;
    stats.max_window = std::max(stats.max_window, campaign.continuity.max_blackhole_window);
  }
  return stats;
}

void report() {
  bench::heading("E14: graceful restart vs cold restart — forwarding continuity",
                 "stale-path retention (RFC 4724 semantics) strictly shrinks "
                 "blackhole time vs cold restart, for every protocol variant");

  // One sweep over the whole paired grid: figures outermost, then levels,
  // protocols, restart styles, seeds innermost — aggregation walks the
  // same order.
  const auto figures = topo::all_figures();
  std::vector<fault::SweepCell> cells;
  for (const auto& [name, inst] : figures) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    for (const auto& level : kLevels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        for (const bool graceful : {false, true}) {
          for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            cells.push_back(make_cell(inst, protocol, level, graceful, seed, kBudget));
          }
        }
      }
    }
  }

  bench::ObsSession obs;
  obs.open();
  for (const auto& [name, inst] : figures) {
    if (inst.name() == "fig1a" || inst.name() == "fig3") obs.attach_spf(inst);
  }
  obs.wire(cells, /*with_metrics=*/true, /*with_trace=*/true);

  auto sweep_options = bench::sweep_options("main");
  sweep_options.metrics = &obs.registry;
  const auto sweep = fault::run_sweep(cells, sweep_options);
  std::fprintf(stderr, "sweep: %zu cells in %.2fs on %zu jobs\n", cells.size(),
               sweep.wall_seconds, sweep.jobs);

  // protocol -> (cold, graceful) blackhole totals across figures and levels.
  std::map<core::ProtocolKind, std::pair<std::uint64_t, std::uint64_t>> verdict;

  std::size_t next = 0;
  for (const auto& [name, inst] : figures) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    std::printf("\n%s (%zu paired seeds per cell, budget %zu deliveries, "
                "stale timer %" PRIu64 "):\n",
                name.c_str(), kSeeds, kBudget, kStaleTimer);
    std::printf("  %-28s | %-9s | %-8s | %-11s | %-6s | %-9s | %-6s | %-6s\n",
                "fault level", "protocol", "restart", "reconverged", "clean",
                "blackhole", "max-bh", "stale");
    std::printf("  %.28s-+-----------+----------+-------------+--------+-----------+--------+-------\n",
                "------------------------------");
    for (const auto& level : kLevels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        for (const bool graceful : {false, true}) {
          const CellStats stats = aggregate(sweep, next, kSeeds);
          next += kSeeds;
          std::printf("  %-28s | %-9s | %-8s | %5zu/%-5zu | %2zu/%-3zu | %9" PRIu64
                      " | %6" PRIu64 " | %6" PRIu64 "\n",
                      level.label, core::protocol_name(protocol),
                      graceful ? "graceful" : "cold", stats.reconverged, kSeeds,
                      stats.clean, stats.reconverged, stats.blackhole, stats.max_window,
                      stats.stale);
          auto& totals = verdict[protocol];
          (graceful ? totals.second : totals.first) += stats.blackhole;
        }
      }
    }
  }

  std::printf("\npaired verdict (total blackhole source-ticks, cold vs graceful):\n");
  for (const auto& [protocol, totals] : verdict) {
    std::printf("  %-9s : cold=%-8" PRIu64 " graceful=%-8" PRIu64 " -> %s\n",
                core::protocol_name(protocol), totals.first, totals.second,
                totals.second < totals.first ? "PASS (strictly smaller)" : "FAIL");
  }
  std::printf("\n(blackhole = source-ticks with no usable route; max-bh = longest\n"
              " contiguous per-source blackhole window; stale = source-ticks carried\n"
              " by retained-stale forwarding state — the price of continuity)\n");

  std::printf("\ndecision provenance (whole sweep):\n");
  obs.print_decision_summary();

  if (!bench::config().json_path.empty()) {
    util::json::Object doc;
    doc.emplace_back("schema", "ibgp-bench-v1");
    doc.emplace_back("bench", "bench_gr");
    doc.emplace_back("experiment", "E14");
    doc.emplace_back("mode", "full");
    doc.emplace_back("metrics_fingerprint", obs.fingerprint_hex());
    doc.emplace_back("sweep", fault::sweep_json(cells, sweep));
    bench::write_json(util::json::Value(std::move(doc)));
  }
  obs.finish();
}

// Reduced paired sweep, run twice (serial, then --jobs N parallel; default
// 4).  stdout carries only deterministic lines, so CI can diff two
// invocations — across processes and across --jobs values — byte for byte.
int smoke() {
  const auto inst = topo::fig3();
  std::vector<fault::SweepCell> cells;
  for (const auto protocol : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                              core::ProtocolKind::kModified}) {
    for (const bool graceful : {false, true}) {
      for (std::uint64_t seed = 7; seed <= 10; ++seed) {
        cells.push_back(make_cell(inst, protocol, kLevels[1], graceful, seed, 60000));
      }
    }
  }

  const std::size_t jobs = bench::config().jobs == 0 ? 4 : bench::config().jobs;
  // Trace -> serial pass (stable JSONL interleaving); metrics -> parallel
  // pass (the printed summary is the cross---jobs determinism check).
  bench::ObsSession obs;
  obs.open();
  obs.attach_spf(inst);
  obs.wire(cells, /*with_metrics=*/false, /*with_trace=*/true);
  const auto serial = fault::run_sweep(cells, bench::sweep_options("serial", 1));
  obs.wire(cells, /*with_metrics=*/true, /*with_trace=*/false);
  const auto parallel =
      fault::run_sweep(cells, bench::sweep_options("parallel", static_cast<int>(jobs)));

  std::printf("bench_gr smoke: %zu paired cells, fingerprint=%016" PRIx64 "\n",
              cells.size(), serial.fingerprint);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("  cell %2zu %-9s %-42s seed=%" PRIu64 " hash=%016" PRIx64
                " reconverged=%d blackhole=%" PRIu64 " stale=%" PRIu64 "\n",
                i, core::protocol_name(cells[i].protocol), cells[i].group.c_str(),
                cells[i].seed, serial.cells[i].trace_hash,
                serial.cells[i].reconverged() ? 1 : 0,
                serial.cells[i].continuity.blackhole_ticks,
                serial.cells[i].continuity.stale_ticks);
  }
  obs.print_decision_summary();
  const double speedup =
      parallel.wall_seconds > 0 ? serial.wall_seconds / parallel.wall_seconds : 0;
  std::fprintf(stderr, "serial %.3fs, parallel %.3fs on %zu jobs (%.2fx)\n",
               serial.wall_seconds, parallel.wall_seconds, parallel.jobs, speedup);

  bool ok = serial.fingerprint == parallel.fingerprint;
  for (std::size_t i = 0; ok && i < cells.size(); ++i) {
    ok = serial.cells[i].trace_hash == parallel.cells[i].trace_hash;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "bench_gr smoke: FAIL — serial vs parallel trace hashes diverge\n");
  }

  util::json::Object doc;
  doc.emplace_back("schema", "ibgp-bench-v1");
  doc.emplace_back("bench", "bench_gr");
  doc.emplace_back("experiment", "E14");
  doc.emplace_back("mode", "smoke");
  doc.emplace_back("volatile", bench::smoke_volatile_json(
                                   serial.wall_seconds, parallel.wall_seconds,
                                   parallel.jobs, speedup));
  doc.emplace_back("fingerprint_match", ok);
  doc.emplace_back("metrics_fingerprint", obs.fingerprint_hex());
  doc.emplace_back("sweep", fault::sweep_json(cells, parallel));
  if (!bench::write_json(util::json::Value(std::move(doc)))) return 1;
  obs.finish();
  return ok ? 0 : 1;
}

void BM_GrCampaign(benchmark::State& state, bool graceful) {
  const auto inst = topo::fig3();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto script =
        fault::make_fault_script(inst, cell_config(++seed, kLevels[1], graceful));
    fault::CampaignOptions options;
    options.max_deliveries = kBudget;
    const auto campaign =
        fault::run_campaign(inst, core::ProtocolKind::kModified, script, options);
    benchmark::DoNotOptimize(campaign.trace_hash);
  }
}

BENCHMARK_CAPTURE(BM_GrCampaign, cold, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GrCampaign, graceful, true)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of IBGP_BENCH_MAIN: `--smoke` switches to the
// reduced sweep and must short-circuit before google-benchmark runs.
int main(int argc, char** argv) {
  ibgp::bench::strip_common_flags(argc, argv);
  if (ibgp::bench::config().smoke) return smoke();
  report();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
