// Experiment E9 — the scalability ablation the paper's Sections 1 and 10
// call out: the modified protocol trades extra advertised state ("each
// router must advertise multiple paths instead of a single best path") for
// guaranteed convergence.
//
// Measures, as topology size grows: advertised-set sizes per protocol
// (|best| = 1 vs Walton's <= #ASes vs the modified protocol's |S'|),
// activation steps and UPDATE-message counts to convergence in both engines,
// and wall-clock per activation.  Shape expected: modified's advertised set
// grows with the MED-survivor count (bounded by #exits), its message volume
// is a small constant factor over standard, and convergence steps stay
// linear in the fairness period.

#include "bench_common.hpp"

#include "core/fixed_point.hpp"
#include "engine/event_engine.hpp"
#include "engine/sync_engine.hpp"
#include "topo/random.hpp"

namespace {

using namespace ibgp;

topo::RandomConfig sized_config(std::size_t clusters, std::size_t exits) {
  topo::RandomConfig config;
  config.clusters = clusters;
  config.min_clients = 1;
  config.max_clients = 2;
  config.neighbor_ases = 3;
  config.exits = exits;
  config.max_med = 2;
  config.extra_link_prob = 0.1;
  return config;
}

struct Row {
  std::size_t nodes = 0;
  double steps = 0;        // sync steps to quiescence (converged runs)
  double messages = 0;     // event-engine updates sent
  double advertised = 0;   // mean advertised-set size at the fixed point
  std::size_t converged = 0;
};

Row measure(core::ProtocolKind kind, std::size_t clusters, std::size_t exits,
            std::size_t samples) {
  Row row;
  double steps_total = 0, msg_total = 0, adv_total = 0, adv_count = 0;
  for (std::uint64_t seed = 1; seed <= samples; ++seed) {
    const auto inst = topo::random_instance(sized_config(clusters, exits), 7000 + seed);
    row.nodes = inst.node_count();

    engine::SyncEngine sync(inst, kind);
    auto rr = engine::make_round_robin(inst.node_count());
    engine::RunLimits limits;
    limits.max_steps = 20000;
    const auto outcome = engine::run(sync, *rr, limits);
    if (!outcome.converged()) continue;
    ++row.converged;
    steps_total += static_cast<double>(outcome.quiescent_since);
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      adv_total += static_cast<double>(sync.advertised(v).size());
      ++adv_count;
    }

    engine::EventEngine event(inst, kind);
    event.inject_all_exits();
    const auto event_result = event.run(2'000'000);
    if (event_result.converged) msg_total += static_cast<double>(event_result.updates_sent);
  }
  if (row.converged > 0) {
    row.steps = steps_total / static_cast<double>(row.converged);
    row.messages = msg_total / static_cast<double>(row.converged);
  }
  if (adv_count > 0) row.advertised = adv_total / adv_count;
  return row;
}

void report() {
  bench::heading("E9 / scalability & advertisement overhead",
                 "the modified protocol's cost: multiple advertised paths "
                 "per prefix; its benefit: convergence independent of size");

  constexpr std::size_t kSamples = 40;
  std::printf("size sweep (%zu random instances per cell; converged runs only):\n",
              kSamples);
  std::printf(
      "  clusters exits | protocol  | nodes | conv | mean steps | mean msgs | mean |adv|\n");
  std::printf(
      "  ---------------+-----------+-------+------+------------+-----------+-----------\n");
  for (const auto [clusters, exits] :
       {std::pair<std::size_t, std::size_t>{2, 4}, {4, 6}, {6, 8}, {8, 10}, {12, 12}}) {
    for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                            core::ProtocolKind::kModified}) {
      const auto row = measure(kind, clusters, exits, kSamples);
      std::printf("  %8zu %5zu | %-9s | %5zu | %4zu | %10.1f | %9.1f | %9.2f\n", clusters,
                  exits, core::protocol_name(kind), row.nodes, row.converged, row.steps,
                  row.messages, row.advertised);
    }
  }
  std::printf(
      "\nNote: standard/Walton 'conv' < samples on ensembles where they oscillate;\n"
      "the modified protocol must show conv == samples on every row (Section 7).\n");
}

void BM_SyncStepModified(benchmark::State& state) {
  const auto clusters = static_cast<std::size_t>(state.range(0));
  const auto inst = topo::random_instance(sized_config(clusters, clusters + 4), 42);
  engine::SyncEngine engine(inst, core::ProtocolKind::kModified);
  auto rr = engine::make_round_robin(inst.node_count());
  for (auto _ : state) {
    engine.step(rr->next());
    benchmark::DoNotOptimize(engine.state_hash());
  }
  state.SetLabel(std::to_string(inst.node_count()) + " nodes");
}
BENCHMARK(BM_SyncStepModified)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_EventConvergenceModified(benchmark::State& state) {
  const auto clusters = static_cast<std::size_t>(state.range(0));
  const auto inst = topo::random_instance(sized_config(clusters, clusters + 4), 42);
  for (auto _ : state) {
    engine::EventEngine engine(inst, core::ProtocolKind::kModified);
    engine.inject_all_exits();
    auto result = engine.run(2'000'000);
    benchmark::DoNotOptimize(result.updates_sent);
  }
  state.SetLabel(std::to_string(inst.node_count()) + " nodes");
}
BENCHMARK(BM_EventConvergenceModified)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_FixedPointPrediction(benchmark::State& state) {
  const auto clusters = static_cast<std::size_t>(state.range(0));
  const auto inst = topo::random_instance(sized_config(clusters, clusters + 4), 42);
  for (auto _ : state) {
    auto prediction = core::predict_fixed_point(inst);
    benchmark::DoNotOptimize(prediction.s_prime.size());
  }
}
BENCHMARK(BM_FixedPointPrediction)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

IBGP_BENCH_MAIN(report)
