// Experiment E2 — Figure 1(b): sensitivity to the rule-4/5 ordering
// (footnote 4).
//
// Reproduces: under the paper's default ordering (E-BGP preferred before IGP
// cost — Cisco/Juniper behavior) the fully-meshed configuration converges,
// because B always keeps its own E-BGP route; under the RFC 1771 ordering
// (IGP cost first) the same configuration oscillates persistently with no
// stable solution.  The modified protocol converges under BOTH orderings.

#include "bench_common.hpp"

#include "analysis/stable_search.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

void report() {
  bench::heading("E2 / Figure 1(b): selection-rule ordering",
                 "converges under prefer-E-BGP ordering; diverges (fully "
                 "meshed!) under the RFC-1771 IGP-cost-first ordering");

  for (const auto [label, order] :
       {std::pair{"prefer-ebgp-first (paper default)", bgp::RuleOrder::kPreferEbgpFirst},
        std::pair{"igp-cost-first (RFC 1771 style)", bgp::RuleOrder::kIgpCostFirst}}) {
    bgp::SelectionPolicy policy;
    policy.order = order;
    const auto inst = topo::fig1b().with_policy(policy);
    const auto stable = analysis::enumerate_stable_standard(inst);
    std::printf("\n--- ordering: %s ---\n", label);
    std::printf("stable configurations (standard): %zu%s\n", stable.solutions.size(),
                stable.exhaustive ? " — exhaustive" : "");
    bench::report_grid(inst);
  }
}

void BM_DefaultOrdering(benchmark::State& state) {
  bench::run_protocol_benchmark(state, topo::fig1b(), core::ProtocolKind::kStandard, 20000);
}
BENCHMARK(BM_DefaultOrdering);

void BM_RfcOrderingUntilCycle(benchmark::State& state) {
  bgp::SelectionPolicy policy;
  policy.order = bgp::RuleOrder::kIgpCostFirst;
  const auto inst = topo::fig1b().with_policy(policy);
  bench::run_protocol_benchmark(state, inst, core::ProtocolKind::kStandard, 20000);
}
BENCHMARK(BM_RfcOrderingUntilCycle);

}  // namespace

IBGP_BENCH_MAIN(report)
