// Experiment E7 — Figure 14: forwarding loops (Section 8, from Dube-Scudder).
//
// Reproduces: under classic I-BGP and under Walton's fix the converged
// routing configuration forwards packets c1 -> c2 -> c1 forever; under the
// paper's modified protocol each client learns both exits, picks the
// IGP-closer one, and every forwarding trace leaves the AS (Lemma 7.6).

#include "bench_common.hpp"

#include "analysis/forwarding.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

void report() {
  bench::heading("E7 / Figure 14: routing loops in the forwarding plane",
                 "standard I-BGP and Walton both loop c1<->c2; the modified "
                 "protocol is loop-free");
  const auto inst = topo::fig14();

  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    auto rr = engine::make_round_robin(inst.node_count());
    const auto outcome = engine::run_protocol(inst, kind, *rr);
    std::printf("\n--- %s (converged: %s) ---\n", core::protocol_name(kind),
                outcome.converged() ? "yes" : "no");
    const auto fwd = analysis::analyze_forwarding(inst, outcome.final_best);
    for (const auto& trace : fwd.traces) {
      std::printf("  from %-4s : %s\n", inst.node_name(trace.source).c_str(),
                  analysis::describe_trace(inst, trace).c_str());
    }
    std::printf("  => %zu loop(s); loop-free: %s\n", fwd.loops,
                fwd.loop_free() ? "YES" : "no");
  }
}

void BM_ForwardingAnalysis(benchmark::State& state) {
  const auto inst = topo::fig14();
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, core::ProtocolKind::kStandard, *rr);
  for (auto _ : state) {
    auto report = analysis::analyze_forwarding(inst, outcome.final_best);
    benchmark::DoNotOptimize(report.loops);
  }
}
BENCHMARK(BM_ForwardingAnalysis);

}  // namespace

IBGP_BENCH_MAIN(report)
