#pragma once
// Shared helpers for the per-figure bench binaries.
//
// Each bench binary prints a human-readable report reproducing its paper
// artifact (the rows EXPERIMENTS.md records), then runs its google-benchmark
// timings.  Reports go to stdout before benchmark output so piping a bench
// run into a log keeps the experiment result adjacent to the timings.

#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/finder.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "fault/supervisor.hpp"
#include "fault/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace ibgp::bench {

/// Flags shared by every bench binary, stripped from argv before
/// google-benchmark parses it:
///   --jobs N       worker threads for sweep fan-out (0 = hardware)
///   --json PATH    write the machine-readable result file (BENCH_*.json)
///   --smoke        reduced deterministic sweep (CI-sized), where supported
///   --metrics PATH write the ibgp-metrics-v1 registry snapshot (sweep
///                  benches; deterministic section byte-stable across --jobs)
///   --trace PATH   write the ibgp-trace-v1 JSONL event stream (sweep
///                  benches; attached to the serial pass in --smoke so the
///                  stream is a single interleaving)
///   --checkpoint-dir DIR  cell-completion journal root (sweep benches):
///                  every finished cell lands in DIR/<pass>/cell-<i>.json
///                  the instant it completes, SIGKILL-safe
///   --resume       load journaled cells from --checkpoint-dir instead of
///                  re-running them; the final report and JSON are
///                  byte-identical to an uninterrupted run
///   --cell-deadline MS  per-cell wall-clock budget in milliseconds
///                  (0 = off); blown deadlines retry with doubled budget,
///                  then degrade to a structured per-cell error record
///   --strict       abort the whole sweep on the first failing cell
///                  (restores the historical lowest-index-wins policy)
///   --profile      enable engine.span.* hot-path profiler spans (delivery,
///                  choose_best, transfer); p50/p95/p99 summaries go to
///                  stderr + the volatile JSON section — never to stdout,
///                  which stays byte-identical to a run without the flag
struct BenchConfig {
  std::size_t jobs = 0;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string checkpoint_dir;
  std::size_t cell_deadline_ms = 0;
  bool resume = false;
  bool strict = false;
  bool smoke = false;
  bool profile = false;
  bool json_written = false;  ///< a report already produced its document
};

inline BenchConfig& config() {
  static BenchConfig instance;
  return instance;
}

/// Removes the shared flags from argv (in place) and records them in
/// config().  Unrecognized arguments are left for google-benchmark.
inline void strip_common_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&](std::string_view name) -> const char* {
      if (arg.rfind(name, 0) != 0) return nullptr;
      if (arg.size() > name.size() && arg[name.size()] == '=') {
        return argv[i] + name.size() + 1;
      }
      if (arg.size() == name.size() && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (arg == "--smoke") {
      config().smoke = true;
    } else if (arg == "--resume") {
      config().resume = true;
    } else if (arg == "--strict") {
      config().strict = true;
    } else if (arg == "--profile") {
      config().profile = true;
    } else if (const char* jobs = value_of("--jobs")) {
      // Strict parse: "0" means one worker per hardware thread, anything
      // non-numeric, negative, suffixed, or beyond util::kMaxJobs is a
      // usage error — not a silent wrap to some huge thread count.
      const auto parsed = util::parse_jobs(jobs);
      if (!parsed) {
        std::fprintf(stderr, "invalid --jobs value '%s' (want 0..%zu)\n", jobs,
                     util::kMaxJobs);
        std::exit(2);
      }
      config().jobs = *parsed;
    } else if (const char* deadline = value_of("--cell-deadline")) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long ms = std::strtoull(deadline, &end, 10);
      if (end == deadline || *end != '\0' || deadline[0] == '-' || errno == ERANGE) {
        std::fprintf(stderr, "invalid --cell-deadline value '%s' (milliseconds)\n",
                     deadline);
        std::exit(2);
      }
      config().cell_deadline_ms = static_cast<std::size_t>(ms);
    } else if (const char* dir = value_of("--checkpoint-dir")) {
      config().checkpoint_dir = dir;
    } else if (const char* path = value_of("--json")) {
      config().json_path = path;
    } else if (const char* path = value_of("--metrics")) {
      config().metrics_path = path;
    } else if (const char* path = value_of("--trace")) {
      config().trace_path = path;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

/// Supervised-sweep options derived from the shared flags.  `pass` names
/// the journal subdirectory (each independent sweep of a report — "main",
/// "serial", "parallel" — needs its own journal so cell indices don't
/// collide); jobs_override, when non-negative, pins the worker count for
/// the determinism passes that must run at a fixed --jobs.
inline fault::SweepOptions sweep_options(const char* pass, int jobs_override = -1) {
  fault::SweepOptions options;
  options.jobs = jobs_override >= 0 ? static_cast<std::size_t>(jobs_override)
                                    : config().jobs;
  options.strict = config().strict;
  options.cell_deadline = std::chrono::milliseconds(config().cell_deadline_ms);
  if (!config().checkpoint_dir.empty()) {
    options.journal_dir = config().checkpoint_dir + "/" + pass;
    options.resume = config().resume;
  }
  return options;
}

/// Writes `doc` to the --json path (no-op without --json).  Returns false
/// only on I/O failure.
inline bool write_json(const util::json::Value& doc) {
  if (config().json_path.empty()) return true;
  config().json_written = true;
  if (!util::json::write_file(config().json_path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", config().json_path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", config().json_path.c_str());
  return true;
}

/// Run-dependent smoke measurements, grouped under one "volatile" key so
/// committed BENCH_*.json regenerations diff fingerprint-only: strip every
/// "volatile" object and two runs that behaved identically dump identical
/// text.  Deterministic verdicts (fingerprint_match) stay top-level.
inline util::json::Value smoke_volatile_json(double serial_wall_seconds,
                                             double parallel_wall_seconds,
                                             std::size_t jobs, double speedup) {
  util::json::Object fields;
  fields.emplace_back("serial_wall_seconds", serial_wall_seconds);
  fields.emplace_back("parallel_wall_seconds", parallel_wall_seconds);
  fields.emplace_back("jobs", jobs);
  // Interprets the speedup: a single-core host can only record ~1x no
  // matter how correct the fan-out is.
  fields.emplace_back("hardware_threads", util::resolve_jobs(0));
  fields.emplace_back("speedup", speedup);
  return util::json::Value(std::move(fields));
}

/// Observability session for the sweep benches: one MetricsRegistry plus
/// one TraceSink shared by a report's cells.
///
/// Usage (see bench_faults.cpp):
///   ObsSession obs;  obs.open();           // fixes metric order up front
///   obs.attach_spf(inst);                  // volatile spf.* counters
///   obs.wire(cells, /*metrics=*/false, /*trace=*/true);   // serial pass
///   obs.wire(cells, /*metrics=*/true,  /*trace=*/false);  // parallel pass
///   obs.print_decision_summary();          // fingerprint + per-rule rows
///   obs.finish(instances);                 // write --metrics file, close
///
/// In --smoke, the trace rides the *serial* pass (one interleaving, stable
/// JSONL) while the registry rides the *parallel* pass — so the printed
/// deterministic fingerprint doubles as the cross---jobs byte-identity
/// check the CI smoke diff enforces.
struct ObsSession {
  obs::MetricsRegistry registry;
  obs::TraceSink trace;
  std::vector<const core::Instance*> attached;  ///< SPF mirrors to detach

  /// Pre-registers every supervisor/sweep/campaign/engine metric (fixing
  /// snapshot order before any fan-out) and opens the trace file when
  /// --trace was given.
  void open() {
    fault::register_supervisor_metrics(registry);
    if (!config().trace_path.empty()) trace.open_file(config().trace_path);
  }

  /// Mirrors the instance's shared SPF cache counters into the registry
  /// (volatile); finish() detaches.  The instance must outlive finish().
  void attach_spf(const core::Instance& inst) {
    inst.spf_cache().attach_metrics(&registry);
    attached.push_back(&inst);
  }

  /// The deterministic-metrics fingerprint as the usual 16-hex-digit text.
  [[nodiscard]] std::string fingerprint_hex() const {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(registry.fingerprint()));
    return std::string(buf);
  }

  /// Points every cell's campaign options at this session's registry and/or
  /// trace sink (or detaches with false/false).
  void wire(std::vector<fault::SweepCell>& cells, bool with_metrics, bool with_trace) {
    for (auto& cell : cells) {
      cell.options.metrics = with_metrics ? &registry : nullptr;
      // Spans need a registry to land in; profile rides whichever pass
      // carries the metrics.
      cell.options.profile = with_metrics && config().profile;
      cell.options.trace = with_trace ? &trace : nullptr;
    }
  }

  /// Prints the deterministic-metrics fingerprint and the per-rule decision
  /// breakdown to stdout.  Every value here is deterministic (counter adds
  /// commute), so the CI smoke diff across --jobs 1/8 covers these lines.
  void print_decision_summary() const {
    std::printf("  metrics fingerprint=%016llx\n",
                static_cast<unsigned long long>(registry.fingerprint()));
    std::printf("  decisions=%llu empty=%llu mrai_deferrals=%llu\n",
                static_cast<unsigned long long>(registry.counter_value("engine.decisions")),
                static_cast<unsigned long long>(registry.counter_value("engine.decisions_empty")),
                static_cast<unsigned long long>(registry.counter_value("engine.mrai_deferrals")));
    for (std::size_t r = 0; r < bgp::kSelectionRuleCount; ++r) {
      const std::string name(bgp::selection_rule_name(static_cast<bgp::SelectionRule>(r)));
      const auto count = registry.counter_value("engine.decided." + name);
      std::printf("    decided-by %-18s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  /// The span histograms a --profile run populates, in summary order.
  static constexpr const char* kSpanNames[] = {
      "engine.span.delivery_ns", "engine.span.decision_ns",
      "engine.span.transfer_ns", "spf.recompute_ns"};

  /// Volatile JSON object of per-span {count, sum_ns, p50/p95/p99_ns}
  /// summaries; empty without --profile.  Belongs under a "volatile" key —
  /// wall time must never land in fingerprinted or diffed output.
  [[nodiscard]] util::json::Value span_volatile_json() {
    util::json::Object spans;
    if (config().profile) {
      for (const char* name : kSpanNames) {
        spans.emplace_back(name,
                           obs::span_summary_json(obs::span_histogram(registry, name)));
      }
    }
    return util::json::Value(std::move(spans));
  }

  /// Prints the --profile span quantiles to *stderr* — stdout stays
  /// byte-identical with profiling off (the CI smoke diff and the overhead
  /// gate both depend on that).  No-op without --profile.
  void print_span_summary() {
    if (!config().profile) return;
    std::fprintf(stderr, "profiler spans (ns):\n");
    for (const char* name : kSpanNames) {
      const auto& hist = obs::span_histogram(registry, name);
      std::fprintf(stderr,
                   "  %-24s count=%llu p50=%.0f p95=%.0f p99=%.0f\n", name,
                   static_cast<unsigned long long>(hist.total()),
                   obs::histogram_quantile(hist, 0.50),
                   obs::histogram_quantile(hist, 0.95),
                   obs::histogram_quantile(hist, 0.99));
    }
  }

  /// Writes the --metrics snapshot (no-op without the flag), detaches every
  /// attach_spf() mirror, and closes the trace stream.
  void finish() {
    if (!config().metrics_path.empty()) {
      if (!util::json::write_file(config().metrics_path, registry.json())) {
        std::fprintf(stderr, "failed to write %s\n", config().metrics_path.c_str());
      } else {
        std::fprintf(stderr, "wrote %s\n", config().metrics_path.c_str());
      }
    }
    for (const auto* inst : attached) inst->spf_cache().attach_metrics(nullptr);
    attached.clear();
    trace.close();
  }
};

/// Fallback --json document for benches without a richer schema: name and
/// report wall-clock only, so every binary still emits a trajectory point.
inline void write_default_json(const char* argv0, double report_wall_seconds) {
  if (config().json_path.empty() || config().json_written) return;
  const char* base = std::strrchr(argv0, '/');
  util::json::Object doc;
  doc.emplace_back("schema", "ibgp-bench-v1");
  doc.emplace_back("bench", base != nullptr ? base + 1 : argv0);
  doc.emplace_back("report_wall_seconds", report_wall_seconds);
  write_json(util::json::Value(std::move(doc)));
}

inline void heading(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  paper claim: %s\n", experiment, claim);
  std::printf("================================================================\n");
}

/// Runs one (protocol, schedule) cell and prints a report row.
inline engine::RunOutcome report_row(const core::Instance& inst,
                                     core::ProtocolKind protocol, bool synchronous,
                                     std::size_t max_steps = 20000) {
  auto schedule = synchronous ? engine::make_full_set(inst.node_count())
                              : engine::make_round_robin(inst.node_count());
  engine::RunLimits limits;
  limits.max_steps = max_steps;
  const auto outcome = engine::run_protocol(inst, protocol, *schedule, limits);
  std::printf("  %-9s | %-11s | %-10s |", core::protocol_name(protocol),
              synchronous ? "synchronous" : "round-robin",
              engine::run_status_name(outcome.status));
  if (outcome.converged()) {
    std::printf(" steps=%-5zu flaps=%-4zu best: %s\n", outcome.quiescent_since,
                outcome.best_flips, engine::describe_best(inst, outcome.final_best).c_str());
  } else if (outcome.oscillated()) {
    std::printf(" cycle=%-4zu flaps=%zu (persistent oscillation)\n", outcome.cycle_length,
                outcome.best_flips);
  } else {
    std::printf(" no verdict in %zu steps\n", outcome.steps);
  }
  return outcome;
}

/// The standard three-protocol, two-schedule grid.
inline void report_grid(const core::Instance& inst, std::size_t max_steps = 20000) {
  std::printf("  %-9s | %-11s | %-10s |\n", "protocol", "schedule", "verdict");
  std::printf("  ----------+-------------+------------+\n");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    for (const bool synchronous : {false, true}) {
      report_row(inst, kind, synchronous, max_steps);
    }
  }
}

/// google-benchmark driver for a full protocol run on an instance.
inline void run_protocol_benchmark(benchmark::State& state, const core::Instance& inst,
                                   core::ProtocolKind protocol, std::size_t max_steps) {
  for (auto _ : state) {
    auto schedule = engine::make_round_robin(inst.node_count());
    engine::RunLimits limits;
    limits.max_steps = max_steps;
    auto outcome = engine::run_protocol(inst, protocol, *schedule, limits);
    benchmark::DoNotOptimize(outcome.final_hash);
  }
}

}  // namespace ibgp::bench

/// Strips the shared flags (--jobs/--json/--smoke), prints the report,
/// emits the --json document (the report's own, or the minimal fallback),
/// then hands the remaining argv to google-benchmark.
#define IBGP_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                      \
    ::ibgp::bench::strip_common_flags(argc, argv);       \
    const auto ibgp_bench_t0 = std::chrono::steady_clock::now(); \
    report_fn();                                         \
    ::ibgp::bench::write_default_json(                   \
        argv[0], std::chrono::duration<double>(          \
                     std::chrono::steady_clock::now() - ibgp_bench_t0).count()); \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }
