#pragma once
// Shared helpers for the per-figure bench binaries.
//
// Each bench binary prints a human-readable report reproducing its paper
// artifact (the rows EXPERIMENTS.md records), then runs its google-benchmark
// timings.  Reports go to stdout before benchmark output so piping a bench
// run into a log keeps the experiment result adjacent to the timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "analysis/finder.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"

namespace ibgp::bench {

inline void heading(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  paper claim: %s\n", experiment, claim);
  std::printf("================================================================\n");
}

/// Runs one (protocol, schedule) cell and prints a report row.
inline engine::RunOutcome report_row(const core::Instance& inst,
                                     core::ProtocolKind protocol, bool synchronous,
                                     std::size_t max_steps = 20000) {
  auto schedule = synchronous ? engine::make_full_set(inst.node_count())
                              : engine::make_round_robin(inst.node_count());
  engine::RunLimits limits;
  limits.max_steps = max_steps;
  const auto outcome = engine::run_protocol(inst, protocol, *schedule, limits);
  std::printf("  %-9s | %-11s | %-10s |", core::protocol_name(protocol),
              synchronous ? "synchronous" : "round-robin",
              engine::run_status_name(outcome.status));
  if (outcome.converged()) {
    std::printf(" steps=%-5zu flaps=%-4zu best: %s\n", outcome.quiescent_since,
                outcome.best_flips, engine::describe_best(inst, outcome.final_best).c_str());
  } else if (outcome.oscillated()) {
    std::printf(" cycle=%-4zu flaps=%zu (persistent oscillation)\n", outcome.cycle_length,
                outcome.best_flips);
  } else {
    std::printf(" no verdict in %zu steps\n", outcome.steps);
  }
  return outcome;
}

/// The standard three-protocol, two-schedule grid.
inline void report_grid(const core::Instance& inst, std::size_t max_steps = 20000) {
  std::printf("  %-9s | %-11s | %-10s |\n", "protocol", "schedule", "verdict");
  std::printf("  ----------+-------------+------------+\n");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    for (const bool synchronous : {false, true}) {
      report_row(inst, kind, synchronous, max_steps);
    }
  }
}

/// google-benchmark driver for a full protocol run on an instance.
inline void run_protocol_benchmark(benchmark::State& state, const core::Instance& inst,
                                   core::ProtocolKind protocol, std::size_t max_steps) {
  for (auto _ : state) {
    auto schedule = engine::make_round_robin(inst.node_count());
    engine::RunLimits limits;
    limits.max_steps = max_steps;
    auto outcome = engine::run_protocol(inst, protocol, *schedule, limits);
    benchmark::DoNotOptimize(outcome.final_hash);
  }
}

}  // namespace ibgp::bench

/// Prints the report, then hands argv to google-benchmark.
#define IBGP_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                      \
    report_fn();                                         \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }
