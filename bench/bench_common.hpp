#pragma once
// Shared helpers for the per-figure bench binaries.
//
// Each bench binary prints a human-readable report reproducing its paper
// artifact (the rows EXPERIMENTS.md records), then runs its google-benchmark
// timings.  Reports go to stdout before benchmark output so piping a bench
// run into a log keeps the experiment result adjacent to the timings.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/finder.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace ibgp::bench {

/// Flags shared by every bench binary, stripped from argv before
/// google-benchmark parses it:
///   --jobs N       worker threads for sweep fan-out (0 = hardware)
///   --json PATH    write the machine-readable result file (BENCH_*.json)
///   --smoke        reduced deterministic sweep (CI-sized), where supported
struct BenchConfig {
  std::size_t jobs = 0;
  std::string json_path;
  bool smoke = false;
  bool json_written = false;  ///< a report already produced its document
};

inline BenchConfig& config() {
  static BenchConfig instance;
  return instance;
}

/// Removes the shared flags from argv (in place) and records them in
/// config().  Unrecognized arguments are left for google-benchmark.
inline void strip_common_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&](std::string_view name) -> const char* {
      if (arg.rfind(name, 0) != 0) return nullptr;
      if (arg.size() > name.size() && arg[name.size()] == '=') {
        return argv[i] + name.size() + 1;
      }
      if (arg.size() == name.size() && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (arg == "--smoke") {
      config().smoke = true;
    } else if (const char* jobs = value_of("--jobs")) {
      config().jobs = static_cast<std::size_t>(std::strtoull(jobs, nullptr, 10));
    } else if (const char* path = value_of("--json")) {
      config().json_path = path;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

/// Writes `doc` to the --json path (no-op without --json).  Returns false
/// only on I/O failure.
inline bool write_json(const util::json::Value& doc) {
  if (config().json_path.empty()) return true;
  config().json_written = true;
  if (!util::json::write_file(config().json_path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", config().json_path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", config().json_path.c_str());
  return true;
}

/// Run-dependent smoke measurements, grouped under one "volatile" key so
/// committed BENCH_*.json regenerations diff fingerprint-only: strip every
/// "volatile" object and two runs that behaved identically dump identical
/// text.  Deterministic verdicts (fingerprint_match) stay top-level.
inline util::json::Value smoke_volatile_json(double serial_wall_seconds,
                                             double parallel_wall_seconds,
                                             std::size_t jobs, double speedup) {
  util::json::Object fields;
  fields.emplace_back("serial_wall_seconds", serial_wall_seconds);
  fields.emplace_back("parallel_wall_seconds", parallel_wall_seconds);
  fields.emplace_back("jobs", jobs);
  // Interprets the speedup: a single-core host can only record ~1x no
  // matter how correct the fan-out is.
  fields.emplace_back("hardware_threads", util::resolve_jobs(0));
  fields.emplace_back("speedup", speedup);
  return util::json::Value(std::move(fields));
}

/// Fallback --json document for benches without a richer schema: name and
/// report wall-clock only, so every binary still emits a trajectory point.
inline void write_default_json(const char* argv0, double report_wall_seconds) {
  if (config().json_path.empty() || config().json_written) return;
  const char* base = std::strrchr(argv0, '/');
  util::json::Object doc;
  doc.emplace_back("schema", "ibgp-bench-v1");
  doc.emplace_back("bench", base != nullptr ? base + 1 : argv0);
  doc.emplace_back("report_wall_seconds", report_wall_seconds);
  write_json(util::json::Value(std::move(doc)));
}

inline void heading(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  paper claim: %s\n", experiment, claim);
  std::printf("================================================================\n");
}

/// Runs one (protocol, schedule) cell and prints a report row.
inline engine::RunOutcome report_row(const core::Instance& inst,
                                     core::ProtocolKind protocol, bool synchronous,
                                     std::size_t max_steps = 20000) {
  auto schedule = synchronous ? engine::make_full_set(inst.node_count())
                              : engine::make_round_robin(inst.node_count());
  engine::RunLimits limits;
  limits.max_steps = max_steps;
  const auto outcome = engine::run_protocol(inst, protocol, *schedule, limits);
  std::printf("  %-9s | %-11s | %-10s |", core::protocol_name(protocol),
              synchronous ? "synchronous" : "round-robin",
              engine::run_status_name(outcome.status));
  if (outcome.converged()) {
    std::printf(" steps=%-5zu flaps=%-4zu best: %s\n", outcome.quiescent_since,
                outcome.best_flips, engine::describe_best(inst, outcome.final_best).c_str());
  } else if (outcome.oscillated()) {
    std::printf(" cycle=%-4zu flaps=%zu (persistent oscillation)\n", outcome.cycle_length,
                outcome.best_flips);
  } else {
    std::printf(" no verdict in %zu steps\n", outcome.steps);
  }
  return outcome;
}

/// The standard three-protocol, two-schedule grid.
inline void report_grid(const core::Instance& inst, std::size_t max_steps = 20000) {
  std::printf("  %-9s | %-11s | %-10s |\n", "protocol", "schedule", "verdict");
  std::printf("  ----------+-------------+------------+\n");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    for (const bool synchronous : {false, true}) {
      report_row(inst, kind, synchronous, max_steps);
    }
  }
}

/// google-benchmark driver for a full protocol run on an instance.
inline void run_protocol_benchmark(benchmark::State& state, const core::Instance& inst,
                                   core::ProtocolKind protocol, std::size_t max_steps) {
  for (auto _ : state) {
    auto schedule = engine::make_round_robin(inst.node_count());
    engine::RunLimits limits;
    limits.max_steps = max_steps;
    auto outcome = engine::run_protocol(inst, protocol, *schedule, limits);
    benchmark::DoNotOptimize(outcome.final_hash);
  }
}

}  // namespace ibgp::bench

/// Strips the shared flags (--jobs/--json/--smoke), prints the report,
/// emits the --json document (the report's own, or the minimal fallback),
/// then hands the remaining argv to google-benchmark.
#define IBGP_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                      \
    ::ibgp::bench::strip_common_flags(argc, argv);       \
    const auto ibgp_bench_t0 = std::chrono::steady_clock::now(); \
    report_fn();                                         \
    ::ibgp::bench::write_default_json(                   \
        argv[0], std::chrono::duration<double>(          \
                     std::chrono::steady_clock::now() - ibgp_bench_t0).count()); \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }
