// Experiment E3 — Figure 2: transient route oscillation.
//
// Reproduces: exactly two stable configurations; the synchronous schedule
// oscillates forever while sequential schedules converge (a timing-
// coincidence oscillation); over random fair schedules the STANDARD protocol
// is nondeterministic (both solutions occur), Walton coincides with standard
// (one neighboring AS), and the MODIFIED protocol reaches one schedule-
// independent fixed point — including across router crash/restarts.

#include "bench_common.hpp"

#include "analysis/determinism.hpp"
#include "analysis/stable_search.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

void report() {
  bench::heading("E3 / Figure 2: transient oscillation & nondeterminism",
                 "two stable solutions; outcome is schedule-dependent for "
                 "standard I-BGP, unique for the modified protocol");
  const auto inst = topo::fig2();

  const auto stable = analysis::enumerate_stable_standard(inst);
  std::printf("stable configurations (standard): %zu — exhaustive\n",
              stable.solutions.size());
  for (const auto& solution : stable.solutions) {
    std::printf("    %s\n", engine::describe_best(inst, solution).c_str());
  }

  bench::report_grid(inst);

  std::printf("\noutcome distribution over 400 random fair schedules:\n");
  std::printf("  %-9s | converged | distinct outcomes | mean steps | crash-proof\n",
              "protocol");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    analysis::DeterminismOptions options;
    options.runs = 400;
    const auto report = analysis::check_determinism(inst, kind, options);
    analysis::DeterminismOptions crash_options;
    crash_options.runs = 100;
    crash_options.crash_prob = 1.0;
    const auto crash = analysis::check_determinism(inst, kind, crash_options);
    std::printf("  %-9s | %5zu/400 | %17zu | %10.1f | %s\n", core::protocol_name(kind),
                report.converged, report.outcomes.size(), report.mean_steps,
                crash.deterministic() ? "yes" : "no");
  }
}

void BM_RandomScheduleStandard(benchmark::State& state) {
  const auto inst = topo::fig2();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto schedule = engine::make_random_fair(inst.node_count(), ++seed);
    engine::RunLimits limits;
    limits.max_steps = 5000;
    limits.detect_cycles = false;
    auto outcome = engine::run_protocol(inst, core::ProtocolKind::kStandard, *schedule,
                                        limits);
    benchmark::DoNotOptimize(outcome.final_hash);
  }
}
BENCHMARK(BM_RandomScheduleStandard);

void BM_RandomScheduleModified(benchmark::State& state) {
  const auto inst = topo::fig2();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto schedule = engine::make_random_fair(inst.node_count(), ++seed);
    engine::RunLimits limits;
    limits.max_steps = 5000;
    limits.detect_cycles = false;
    auto outcome = engine::run_protocol(inst, core::ProtocolKind::kModified, *schedule,
                                        limits);
    benchmark::DoNotOptimize(outcome.final_hash);
  }
}
BENCHMARK(BM_RandomScheduleModified);

}  // namespace

IBGP_BENCH_MAIN(report)
