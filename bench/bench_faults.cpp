// bench_faults — resilience under operational churn (the fault harness).
//
// Sweeps fault intensity (session flaps, message loss, crashes) over the
// three protocols and reports, per cell and over a batch of seeds: how many
// campaigns reconverge, how long re-convergence takes after the last fault
// (settle time), flap volume, and whether the post-quiescence invariants
// (analysis/invariants) hold.  The paper's Section 7 theorem predicts the
// modified-protocol column reads "all reconverge, all clean" at every fault
// rate; standard I-BGP has no such guarantee and fails visibly.

#include <cstdio>

#include "bench_common.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "topo/figures.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibgp;

constexpr std::size_t kSeeds = 30;
constexpr std::size_t kBudget = 200000;

struct Cell {
  std::size_t reconverged = 0;
  std::size_t clean = 0;
  std::uint64_t settle_sum = 0;   // over reconverged runs
  std::uint64_t flips_sum = 0;
  std::uint64_t dropped_sum = 0;
};

fault::FaultScriptConfig cell_config(std::uint64_t seed, std::size_t flaps, double loss,
                                     std::size_t crashes) {
  fault::FaultScriptConfig config;
  config.seed = seed;
  config.session_flaps = flaps;
  config.crashes = crashes;
  config.loss_prob = loss;
  config.window_start = 20;
  config.window_end = 400;
  return config;
}

Cell run_cell(const core::Instance& inst, core::ProtocolKind protocol, std::size_t flaps,
              double loss, std::size_t crashes) {
  Cell cell;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto script =
        fault::make_fault_script(inst, cell_config(seed, flaps, loss, crashes));
    fault::CampaignOptions options;
    options.max_deliveries = kBudget;
    const auto campaign = fault::run_campaign(inst, protocol, script, options);
    if (campaign.reconverged()) {
      ++cell.reconverged;
      cell.settle_sum += campaign.settle_time;
      if (campaign.invariants.clean()) ++cell.clean;
    }
    cell.flips_sum += campaign.run.best_flips;
    cell.dropped_sum += campaign.run.messages_dropped;
  }
  return cell;
}

void report() {
  bench::heading("E13: fault campaigns — reconvergence & invariants vs fault rate",
                 "the modified protocol reconverges consistently after any finite "
                 "fault burst (Section 7); standard I-BGP does not");

  struct Level {
    const char* label;
    std::size_t flaps;
    double loss;
    std::size_t crashes;
  };
  const Level levels[] = {
      {"none", 0, 0.0, 0},
      {"light   (2 flaps)", 2, 0.0, 0},
      {"medium  (4 flaps, 5% loss)", 4, 0.05, 0},
      {"heavy   (8 flaps, 10% loss, 1 crash)", 8, 0.10, 1},
  };

  for (const auto& [name, inst] : topo::all_figures()) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    std::printf("\n%s (%zu seeds per cell, budget %zu deliveries):\n", name.c_str(),
                kSeeds, kBudget);
    std::printf("  %-38s | %-9s | %-11s | %-6s | %-9s | %-7s\n", "fault level", "protocol",
                "reconverged", "clean", "settle", "flips");
    std::printf("  %.38s-+-----------+-------------+--------+-----------+--------\n",
                "----------------------------------------");
    for (const auto& level : levels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        const Cell cell = run_cell(inst, protocol, level.flaps, level.loss, level.crashes);
        const double settle =
            cell.reconverged ? static_cast<double>(cell.settle_sum) / cell.reconverged : 0;
        std::printf("  %-38s | %-9s | %5zu/%-5zu | %2zu/%-3zu | %9.1f | %6.1f\n",
                    level.label, core::protocol_name(protocol), cell.reconverged, kSeeds,
                    cell.clean, cell.reconverged, settle,
                    static_cast<double>(cell.flips_sum) / kSeeds);
      }
    }
  }
  std::printf("\n(settle = mean virtual ticks from the last applied fault to quiescence,\n"
              " over reconverged runs; clean = invariant checker found no stale routes,\n"
              " RIB desync, or forwarding loops after quiescence)\n");
}

void BM_FaultCampaign(benchmark::State& state, core::ProtocolKind protocol) {
  const auto inst = topo::fig3();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto script =
        fault::make_fault_script(inst, cell_config(++seed, 4, 0.05, 1));
    fault::CampaignOptions options;
    options.max_deliveries = kBudget;
    const auto campaign = fault::run_campaign(inst, protocol, script, options);
    benchmark::DoNotOptimize(campaign.trace_hash);
  }
}

BENCHMARK_CAPTURE(BM_FaultCampaign, standard, ibgp::core::ProtocolKind::kStandard)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FaultCampaign, modified, ibgp::core::ProtocolKind::kModified)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IBGP_BENCH_MAIN(report)
