// bench_faults — resilience under operational churn (the fault harness).
//
// Sweeps fault intensity (session flaps, message loss, crashes) over the
// three protocols and reports, per cell and over a batch of seeds: how many
// campaigns reconverge, how long re-convergence takes after the last fault
// (settle time), flap volume, and whether the post-quiescence invariants
// (analysis/invariants) hold.  The paper's Section 7 theorem predicts the
// modified-protocol column reads "all reconverge, all clean" at every fault
// rate; standard I-BGP has no such guarantee and fails visibly.
//
// The whole grid is one deterministic parallel sweep (fault/sweep.hpp):
// every (figure, level, protocol, seed) cell is self-contained, so --jobs N
// produces byte-identical per-cell trace hashes to --jobs 1.  --json PATH
// emits the machine-readable result (BENCH_E13.json); --smoke runs a
// reduced CI-sized sweep serially AND in parallel, verifies the two agree
// hash-for-hash, and records the measured speedup in the JSON.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fault/script.hpp"
#include "fault/sweep.hpp"
#include "topo/figures.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibgp;

constexpr std::size_t kSeeds = 30;
constexpr std::size_t kBudget = 200000;

struct Level {
  const char* label;
  std::size_t flaps;
  double loss;
  std::size_t crashes;
};

constexpr Level kLevels[] = {
    {"none", 0, 0.0, 0},
    {"light   (2 flaps)", 2, 0.0, 0},
    {"medium  (4 flaps, 5% loss)", 4, 0.05, 0},
    {"heavy   (8 flaps, 10% loss, 1 crash)", 8, 0.10, 1},
};

struct CellStats {
  std::size_t reconverged = 0;
  std::size_t clean = 0;
  std::uint64_t settle_sum = 0;   // over reconverged runs (settle_time engaged)
  std::uint64_t flips_sum = 0;
  std::uint64_t dropped_sum = 0;
};

fault::FaultScriptConfig cell_config(std::uint64_t seed, std::size_t flaps, double loss,
                                     std::size_t crashes) {
  fault::FaultScriptConfig config;
  config.seed = seed;
  config.session_flaps = flaps;
  config.crashes = crashes;
  config.loss_prob = loss;
  config.window_start = 20;
  config.window_end = 400;
  return config;
}

/// Aggregates `count` consecutive sweep cells starting at `first`.
CellStats aggregate(const fault::SweepResult& sweep, std::size_t first,
                    std::size_t count) {
  CellStats stats;
  for (std::size_t i = first; i < first + count; ++i) {
    const auto& campaign = sweep.cells[i];
    if (campaign.reconverged()) {
      ++stats.reconverged;
      stats.settle_sum += *campaign.settle_time;
      if (campaign.invariants.clean()) ++stats.clean;
    }
    stats.flips_sum += campaign.run.best_flips;
    stats.dropped_sum += campaign.run.messages_dropped;
  }
  return stats;
}

void report() {
  bench::heading("E13: fault campaigns — reconvergence & invariants vs fault rate",
                 "the modified protocol reconverges consistently after any finite "
                 "fault burst (Section 7); standard I-BGP does not");

  // Materialize the whole grid as one sweep: figures outermost, then levels,
  // protocols, seeds innermost — aggregation below walks the same order.
  const auto figures = topo::all_figures();
  std::vector<fault::SweepCell> cells;
  for (const auto& [name, inst] : figures) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    for (const auto& level : kLevels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
          fault::SweepCell cell;
          cell.instance = &inst;
          cell.protocol = protocol;
          cell.script = fault::make_fault_script(
              inst, cell_config(seed, level.flaps, level.loss, level.crashes));
          cell.options.max_deliveries = kBudget;
          cell.group = inst.name() + std::string("/") + level.label;
          cell.seed = seed;
          cells.push_back(std::move(cell));
        }
      }
    }
  }

  bench::ObsSession obs;
  obs.open();
  for (const auto& [name, inst] : figures) {
    if (inst.name() == "fig1a" || inst.name() == "fig3") obs.attach_spf(inst);
  }
  obs.wire(cells, /*with_metrics=*/true, /*with_trace=*/true);

  auto sweep_options = bench::sweep_options("main");
  sweep_options.metrics = &obs.registry;
  const auto sweep = fault::run_sweep(cells, sweep_options);
  std::fprintf(stderr, "sweep: %zu cells in %.2fs on %zu jobs\n", cells.size(),
               sweep.wall_seconds, sweep.jobs);

  std::size_t next = 0;
  for (const auto& [name, inst] : figures) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    std::printf("\n%s (%zu seeds per cell, budget %zu deliveries):\n", name.c_str(),
                kSeeds, kBudget);
    std::printf("  %-38s | %-9s | %-11s | %-6s | %-9s | %-7s\n", "fault level", "protocol",
                "reconverged", "clean", "settle", "flips");
    std::printf("  %.38s-+-----------+-------------+--------+-----------+--------\n",
                "----------------------------------------");
    for (const auto& level : kLevels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        const CellStats stats = aggregate(sweep, next, kSeeds);
        next += kSeeds;
        const double settle =
            stats.reconverged ? static_cast<double>(stats.settle_sum) / stats.reconverged
                              : 0;
        std::printf("  %-38s | %-9s | %5zu/%-5zu | %2zu/%-3zu | %9.1f | %6.1f\n",
                    level.label, core::protocol_name(protocol), stats.reconverged, kSeeds,
                    stats.clean, stats.reconverged, settle,
                    static_cast<double>(stats.flips_sum) / kSeeds);
      }
    }
  }
  std::printf("\n(settle = mean virtual ticks from the last applied fault to quiescence,\n"
              " over reconverged runs; clean = invariant checker found no stale routes,\n"
              " RIB desync, or forwarding loops after quiescence)\n");

  std::printf("\ndecision provenance (whole sweep):\n");
  obs.print_decision_summary();

  if (!bench::config().json_path.empty()) {
    util::json::Object doc;
    doc.emplace_back("schema", "ibgp-bench-v1");
    doc.emplace_back("bench", "bench_faults");
    doc.emplace_back("experiment", "E13");
    doc.emplace_back("mode", "full");
    doc.emplace_back("metrics_fingerprint", obs.fingerprint_hex());
    doc.emplace_back("sweep", fault::sweep_json(cells, sweep));
    bench::write_json(util::json::Value(std::move(doc)));
  }
  obs.finish();
}

// Reduced deterministic sweep for CI: runs serially and in parallel, fails
// on any per-cell hash divergence, prints the (deterministic) per-cell
// hashes to stdout and timing to stderr, and records the speedup in the
// --json document.
int smoke() {
  const auto inst = topo::fig3();
  std::vector<fault::SweepCell> cells;
  // Two fault levels: "none" leaves standard I-BGP oscillating to the
  // delivery budget (the heavy, budget-bound cells that give the speedup
  // measurement something to parallelize); "medium" exercises the fault
  // machinery.
  struct SmokeLevel {
    const char* label;
    std::size_t flaps;
    double loss;
    std::size_t crashes;
  };
  for (const SmokeLevel& level : {SmokeLevel{"none", 0, 0.0, 0},
                                  SmokeLevel{"medium", 4, 0.05, 1}}) {
    for (const auto protocol :
         {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
          core::ProtocolKind::kModified}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        fault::SweepCell cell;
        cell.instance = &inst;
        cell.protocol = protocol;
        cell.script = fault::make_fault_script(
            inst, cell_config(seed, level.flaps, level.loss, level.crashes));
        cell.options.max_deliveries = 100000;
        cell.group = std::string("fig3/") + level.label;
        cell.seed = seed;
        cells.push_back(std::move(cell));
      }
    }
  }

  const std::size_t jobs = bench::config().jobs == 0 ? 4 : bench::config().jobs;
  // Trace rides the serial pass (one interleaving -> stable JSONL); the
  // registry rides the parallel pass, so the decision summary printed below
  // doubles as the cross---jobs counter-determinism check (the CI smoke
  // diff compares this stdout across --jobs 1 and --jobs 8).
  bench::ObsSession obs;
  obs.open();
  obs.attach_spf(inst);
  obs.wire(cells, /*with_metrics=*/false, /*with_trace=*/true);
  const auto serial = fault::run_sweep(cells, bench::sweep_options("serial", 1));
  obs.wire(cells, /*with_metrics=*/true, /*with_trace=*/false);
  const auto parallel =
      fault::run_sweep(cells, bench::sweep_options("parallel", static_cast<int>(jobs)));

  std::printf("bench_faults smoke: %zu cells, fingerprint=%016" PRIx64 "\n",
              cells.size(), serial.fingerprint);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("  cell %2zu %s %-9s seed=%" PRIu64 " hash=%016" PRIx64 "\n", i,
                cells[i].group.c_str(), core::protocol_name(cells[i].protocol),
                cells[i].seed, serial.cells[i].trace_hash);
  }
  obs.print_decision_summary();
  const double speedup =
      parallel.wall_seconds > 0 ? serial.wall_seconds / parallel.wall_seconds : 0;
  std::fprintf(stderr, "serial %.3fs, parallel %.3fs on %zu jobs (%.2fx)\n",
               serial.wall_seconds, parallel.wall_seconds, parallel.jobs, speedup);

  bool ok = serial.fingerprint == parallel.fingerprint;
  for (std::size_t i = 0; ok && i < cells.size(); ++i) {
    ok = serial.cells[i].trace_hash == parallel.cells[i].trace_hash;
  }
  if (!ok) {
    std::fprintf(stderr, "bench_faults smoke: FAIL — serial vs parallel trace "
                         "hashes diverge\n");
  }

  util::json::Object doc;
  doc.emplace_back("schema", "ibgp-bench-v1");
  doc.emplace_back("bench", "bench_faults");
  doc.emplace_back("experiment", "E13");
  doc.emplace_back("mode", "smoke");
  doc.emplace_back("volatile", bench::smoke_volatile_json(
                                   serial.wall_seconds, parallel.wall_seconds,
                                   parallel.jobs, speedup));
  doc.emplace_back("fingerprint_match", ok);
  doc.emplace_back("metrics_fingerprint", obs.fingerprint_hex());
  doc.emplace_back("sweep", fault::sweep_json(cells, parallel));
  if (!bench::write_json(util::json::Value(std::move(doc)))) return 1;
  obs.finish();
  return ok ? 0 : 1;
}

void BM_FaultCampaign(benchmark::State& state, core::ProtocolKind protocol) {
  const auto inst = topo::fig3();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto script =
        fault::make_fault_script(inst, cell_config(++seed, 4, 0.05, 1));
    fault::CampaignOptions options;
    options.max_deliveries = kBudget;
    const auto campaign = fault::run_campaign(inst, protocol, script, options);
    benchmark::DoNotOptimize(campaign.trace_hash);
  }
}

BENCHMARK_CAPTURE(BM_FaultCampaign, standard, ibgp::core::ProtocolKind::kStandard)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FaultCampaign, modified, ibgp::core::ProtocolKind::kModified)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ibgp::bench::strip_common_flags(argc, argv);
  if (ibgp::bench::config().smoke) return smoke();
  report();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
