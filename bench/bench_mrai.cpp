// Experiment E12 (extension) — rate limiting / flap dampening vs the
// protocol fix.
//
// Section 9 recalls the operational mitigation of controlling update
// dissemination ("route flap dampening" [22]).  This bench quantifies why
// that is no substitute for the paper's protocol change: on Fig 1(a) — where
// NO stable configuration exists — a MinRouteAdvertisementInterval slows the
// oscillation (flaps per unit of virtual time drop roughly with 1/MRAI) but
// the flapping never ends; the modified protocol converges under every MRAI
// setting, to the same fixed point, with a handful of messages.

#include "bench_common.hpp"

#include "core/fixed_point.hpp"
#include "engine/event_engine.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

void report() {
  bench::heading("E12 / extension: MRAI / dampening ablation",
                 "rate limiting stretches a persistent oscillation in time "
                 "but cannot end it; the protocol fix does");
  const auto inst = topo::fig1a();

  std::printf("Fig 1(a), event engine, 20000-delivery budget:\n");
  std::printf("  %-9s | %6s | verdict   | virtual time | flaps | flaps/kTick\n",
              "protocol", "MRAI");
  std::printf("  ----------+--------+-----------+--------------+-------+------------\n");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kModified}) {
    for (const engine::SimTime mrai : {0, 10, 50, 200, 1000}) {
      engine::EventEngine engine(inst, kind);
      engine.set_mrai(mrai);
      engine.inject_all_exits();
      const auto result = engine.run(20000);
      const double rate = result.end_time > 0
                              ? 1000.0 * static_cast<double>(result.best_flips) /
                                    static_cast<double>(result.end_time)
                              : 0.0;
      std::printf("  %-9s | %6llu | %-9s | %12llu | %5zu | %10.2f\n",
                  core::protocol_name(kind), static_cast<unsigned long long>(mrai),
                  result.converged ? "converged" : "NO-DRAIN",
                  static_cast<unsigned long long>(result.end_time), result.best_flips,
                  rate);
    }
  }
  std::printf("\n(standard: flap RATE falls as MRAI grows, yet the run never drains —\n"
              " no stable configuration exists to land on.  modified: converges at\n"
              " every MRAI, same fixed point.)\n");
}

void BM_StandardMrai50(benchmark::State& state) {
  const auto inst = topo::fig1a();
  for (auto _ : state) {
    engine::EventEngine engine(inst, core::ProtocolKind::kStandard);
    engine.set_mrai(50);
    engine.inject_all_exits();
    auto result = engine.run(5000);
    benchmark::DoNotOptimize(result.best_flips);
  }
}
BENCHMARK(BM_StandardMrai50);

void BM_ModifiedMrai50(benchmark::State& state) {
  const auto inst = topo::fig1a();
  for (auto _ : state) {
    engine::EventEngine engine(inst, core::ProtocolKind::kModified);
    engine.set_mrai(50);
    engine.inject_all_exits();
    auto result = engine.run();
    benchmark::DoNotOptimize(result.deliveries);
  }
}
BENCHMARK(BM_ModifiedMrai50);

}  // namespace

IBGP_BENCH_MAIN(report)
