// Experiment E10 (extension) — the Section 10 deployment idea: advertise the
// extra routes only where oscillation is DETECTED.
//
// Every node starts on standard I-BGP; a controller upgrades nodes whose
// best route flaps past a threshold within a sliding window to the modified
// protocol.  Measures, on the paper's oscillators and on random oscillating
// ensembles: how many nodes end up upgraded (vs "deploy everywhere"), how
// fast the system settles, and how the detection threshold trades flap
// damage against deployed add-paths state.

#include "bench_common.hpp"

#include "engine/adaptive.hpp"
#include "topo/figures.hpp"
#include "topo/random.hpp"

namespace {

using namespace ibgp;

void report_instance(const char* name, const core::Instance& inst) {
  auto rr = engine::make_round_robin(inst.node_count());
  engine::AdaptiveOptions options;
  const auto result = engine::run_adaptive(inst, *rr, options);
  std::printf("  %-7s | %-9s | steps=%-6zu flaps=%-4zu upgraded %zu/%zu%s",
              name, result.converged ? "converged" : "step-cap", result.steps,
              result.best_flips, result.upgraded.size(), inst.node_count(),
              result.escalated_all ? " (global fallback)" : "");
  if (!result.upgraded.empty()) {
    std::printf("  [");
    for (std::size_t i = 0; i < result.upgraded.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", inst.node_name(result.upgraded[i]).c_str());
    }
    std::printf("]");
  }
  std::printf("\n");
}

void report() {
  bench::heading("E10 / extension: oscillation-triggered modified protocol",
                 "Section 10: 'propagation of extra routes ... only triggered "
                 "when route oscillations are detected'");

  std::printf("paper oscillators under adaptive deployment (round-robin):\n");
  report_instance("fig1a", topo::fig1a());
  report_instance("fig13", topo::fig13());
  {
    bgp::SelectionPolicy policy;
    policy.order = bgp::RuleOrder::kIgpCostFirst;
    report_instance("fig1b*", topo::fig1b().with_policy(policy));
  }

  // Threshold ablation on a random oscillating ensemble.
  topo::RandomConfig config;
  config.clusters = 3;
  config.max_clients = 2;
  config.exits = 5;
  config.max_med = 3;
  config.extra_link_prob = 0.3;

  std::printf("\nthreshold ablation over 300 random instances "
              "(only instances where standard I-BGP oscillates):\n");
  std::printf("  threshold | oscillators | converged | mean upgraded | mean steps | fallbacks\n");
  for (const std::size_t threshold : {2, 3, 5, 8}) {
    std::size_t oscillators = 0, converged = 0, fallbacks = 0;
    double upgraded_total = 0, steps_total = 0;
    for (std::uint64_t seed = 2000; seed < 2300; ++seed) {
      const auto inst = topo::random_instance(config, seed);
      if (!analysis::classify(inst, core::ProtocolKind::kStandard, 4000).oscillates()) {
        continue;
      }
      ++oscillators;
      auto rr = engine::make_round_robin(inst.node_count());
      engine::AdaptiveOptions options;
      options.flap_threshold = threshold;
      const auto result = engine::run_adaptive(inst, *rr, options);
      if (result.converged) {
        ++converged;
        upgraded_total += static_cast<double>(result.upgraded.size());
        steps_total += static_cast<double>(result.steps);
        if (result.escalated_all) ++fallbacks;
      }
    }
    std::printf("  %9zu | %11zu | %9zu | %13.2f | %10.1f | %zu\n", threshold, oscillators,
                converged, converged ? upgraded_total / converged : 0.0,
                converged ? steps_total / converged : 0.0, fallbacks);
  }
  std::printf("\n(mean upgraded << node count means the add-paths state stays "
              "confined to the oscillating core)\n");
}

void BM_AdaptiveFig1a(benchmark::State& state) {
  const auto inst = topo::fig1a();
  for (auto _ : state) {
    auto rr = engine::make_round_robin(inst.node_count());
    auto result = engine::run_adaptive(inst, *rr);
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_AdaptiveFig1a);

void BM_AdaptiveFig13(benchmark::State& state) {
  const auto inst = topo::fig13();
  for (auto _ : state) {
    auto rr = engine::make_round_robin(inst.node_count());
    auto result = engine::run_adaptive(inst, *rr);
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_AdaptiveFig13);

}  // namespace

IBGP_BENCH_MAIN(report)
