// bench_churn — IGP topology churn: oscillation & deflection under runtime
// link-cost/link-failure faults (E16).
//
// The paper prices every route by its IGP shortest-path distance (Section
// 4), so the underlay is a decision input: moving a link metric can flip
// selections across the AS without a single BGP message being lost.  This
// bench sweeps IGP churn intensity — metric jitter, link failures, router
// partitions, and a mixed storm that layers session flaps and graceful
// restarts on top — over the three protocols and reports, per cell batch:
// reconvergence, post-quiescence cleanliness under the churn-aware
// invariants (including the IGP-metric currency check), IGP epoch swaps,
// and the transient damage continuity prices per churn event — forwarding
// loops, blackholes, and RR-induced deflections (packets delivered at an
// exit the source never chose, Fig 12's phenomenon made quantitative).
//
// The whole grid is one deterministic parallel sweep (fault/sweep.hpp):
// SPF recomputation is memoized in the instance's SpfCache keyed by the
// effective link-state vector, shared across worker threads, and the
// per-cell trace hashes cover the full IGP epoch timeline — so --jobs N is
// byte-identical to --jobs 1, which `bench_churn --smoke` verifies by
// running the reduced grid serially AND in parallel in one process.
// --json PATH emits the machine-readable result (BENCH_E16.json).

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fault/script.hpp"
#include "fault/sweep.hpp"
#include "topo/figures.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibgp;

constexpr std::size_t kSeeds = 30;
constexpr std::size_t kBudget = 200000;

struct Level {
  const char* label;
  std::size_t cost_changes;
  std::size_t link_downs;
  std::size_t partitions;
  std::size_t session_flaps;
  std::size_t graceful_restarts;
};

constexpr Level kLevels[] = {
    {"none", 0, 0, 0, 0, 0},
    {"jitter    (4 cost changes)", 4, 0, 0, 0, 0},
    {"failures  (3 link downs)", 0, 3, 0, 0, 0},
    {"partition (1 router isolated)", 0, 0, 1, 0, 0},
    {"mixed     (2+2 churn, 2 flaps, 1 GR)", 2, 2, 0, 2, 1},
};

struct CellStats {
  std::size_t reconverged = 0;
  std::size_t clean = 0;
  std::size_t igp_mismatch = 0;
  std::uint64_t settle_sum = 0;  // over reconverged runs (settle_time engaged)
  std::uint64_t swaps_sum = 0;
  std::uint64_t loop_sum = 0;
  std::uint64_t blackhole_sum = 0;
  std::uint64_t deflection_sum = 0;
};

fault::FaultScriptConfig cell_config(std::uint64_t seed, const Level& level) {
  fault::FaultScriptConfig config;
  config.seed = seed;
  config.window_start = 20;
  config.window_end = 400;
  config.link_cost_changes = level.cost_changes;
  config.link_downs = level.link_downs;
  config.partitions = level.partitions;
  config.session_flaps = level.session_flaps;
  config.graceful_restarts = level.graceful_restarts;
  return config;
}

/// Aggregates `count` consecutive sweep cells starting at `first`.
CellStats aggregate(const fault::SweepResult& sweep, std::size_t first,
                    std::size_t count) {
  CellStats stats;
  for (std::size_t i = first; i < first + count; ++i) {
    const auto& campaign = sweep.cells[i];
    if (campaign.reconverged()) {
      ++stats.reconverged;
      stats.settle_sum += *campaign.settle_time;
      if (campaign.invariants.clean()) ++stats.clean;
    }
    stats.igp_mismatch += campaign.invariants.igp_mismatch;
    stats.swaps_sum += campaign.run.igp_epoch_swaps;
    stats.loop_sum += campaign.continuity.loop_ticks;
    stats.blackhole_sum += campaign.continuity.blackhole_ticks;
    stats.deflection_sum += campaign.continuity.deflection_ticks;
  }
  return stats;
}

std::vector<fault::SweepCell> make_grid(
    const std::vector<std::pair<std::string, core::Instance>>& figures,
                                        std::size_t seeds, std::size_t budget) {
  std::vector<fault::SweepCell> cells;
  for (const auto& [name, inst] : figures) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    for (const auto& level : kLevels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
          fault::SweepCell cell;
          cell.instance = &inst;
          cell.protocol = protocol;
          cell.script = fault::make_fault_script(inst, cell_config(seed, level));
          cell.options.max_deliveries = budget;
          cell.group = inst.name() + std::string("/") + level.label;
          cell.seed = seed;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

void report() {
  bench::heading("E16: IGP churn — oscillation & deflection vs link-fault rate",
                 "routes are IGP distances plus exit paths (Section 4): metric "
                 "churn alone re-prices selections AS-wide, and hop-by-hop "
                 "forwarding deflects where reflection hides the move (Fig 12)");

  const auto figures = topo::all_figures();
  auto cells = make_grid(figures, kSeeds, kBudget);

  bench::ObsSession obs;
  obs.open();
  for (const auto& [name, inst] : figures) {
    if (inst.name() == "fig1a" || inst.name() == "fig3") obs.attach_spf(inst);
  }
  obs.wire(cells, /*with_metrics=*/true, /*with_trace=*/true);

  auto sweep_options = bench::sweep_options("main");
  sweep_options.metrics = &obs.registry;
  const auto sweep = fault::run_sweep(cells, sweep_options);
  std::fprintf(stderr, "sweep: %zu cells in %.2fs on %zu jobs\n", cells.size(),
               sweep.wall_seconds, sweep.jobs);

  std::size_t next = 0;
  for (const auto& [name, inst] : figures) {
    if (inst.name() != "fig1a" && inst.name() != "fig3") continue;
    std::printf("\n%s (%zu seeds per cell, budget %zu deliveries):\n", name.c_str(),
                kSeeds, kBudget);
    std::printf("  %-37s | %-9s | %-11s | %-6s | %-5s | %-7s | %-7s | %-9s\n",
                "churn level", "protocol", "reconverged", "clean", "swaps", "loops",
                "deflect", "blackhole");
    std::printf("  %.37s-+-----------+-------------+--------+-------+---------+---------+----------\n",
                "---------------------------------------");
    for (const auto& level : kLevels) {
      for (const auto protocol :
           {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
            core::ProtocolKind::kModified}) {
        const CellStats stats = aggregate(sweep, next, kSeeds);
        next += kSeeds;
        std::printf("  %-37s | %-9s | %5zu/%-5zu | %2zu/%-3zu | %5.1f | %7.1f | %7.1f | %9.1f\n",
                    level.label, core::protocol_name(protocol), stats.reconverged,
                    kSeeds, stats.clean, stats.reconverged,
                    static_cast<double>(stats.swaps_sum) / kSeeds,
                    static_cast<double>(stats.loop_sum) / kSeeds,
                    static_cast<double>(stats.deflection_sum) / kSeeds,
                    static_cast<double>(stats.blackhole_sum) / kSeeds);
      }
    }
  }
  std::printf("\n(swaps = mean IGP epochs installed per run; loops / deflect /\n"
              " blackhole = mean transient source-ticks from the continuity replay,\n"
              " traced against the epoch live in each interval; clean counts runs the\n"
              " churn-aware invariants — incl. the IGP-metric currency check — passed)\n");

  std::printf("\ndecision provenance (whole sweep):\n");
  obs.print_decision_summary();
  obs.print_span_summary();

  if (!bench::config().json_path.empty()) {
    util::json::Object doc;
    doc.emplace_back("schema", "ibgp-bench-v1");
    doc.emplace_back("bench", "bench_churn");
    doc.emplace_back("experiment", "E16");
    doc.emplace_back("mode", "full");
    doc.emplace_back("metrics_fingerprint", obs.fingerprint_hex());
    if (bench::config().profile) {
      util::json::Object vol;
      vol.emplace_back("spans", obs.span_volatile_json());
      doc.emplace_back("volatile", util::json::Value(std::move(vol)));
    }
    doc.emplace_back("sweep", fault::sweep_json(cells, sweep));
    bench::write_json(util::json::Value(std::move(doc)));
  }
  obs.finish();
}

// Reduced deterministic sweep for CI: runs serially and in parallel, fails
// on any per-cell hash divergence, prints the (deterministic) per-cell
// hashes to stdout and timing to stderr, and records the speedup in the
// --json document.  The grid reuses kLevels, so the serial-vs-parallel
// byte-diff covers the SPF cache shared across worker threads.
int smoke() {
  const auto figures = topo::all_figures();
  auto cells = make_grid(figures, /*seeds=*/3, /*budget=*/100000);

  const std::size_t jobs = bench::config().jobs == 0 ? 4 : bench::config().jobs;
  // Trace -> serial pass (stable JSONL interleaving); metrics -> parallel
  // pass (the printed summary is the cross---jobs determinism check).
  bench::ObsSession obs;
  obs.open();
  for (const auto& [name, inst] : figures) {
    if (inst.name() == "fig1a" || inst.name() == "fig3") obs.attach_spf(inst);
  }
  obs.wire(cells, /*with_metrics=*/false, /*with_trace=*/true);
  const auto serial = fault::run_sweep(cells, bench::sweep_options("serial", 1));
  obs.wire(cells, /*with_metrics=*/true, /*with_trace=*/false);
  const auto parallel =
      fault::run_sweep(cells, bench::sweep_options("parallel", static_cast<int>(jobs)));

  std::printf("bench_churn smoke: %zu cells, fingerprint=%016" PRIx64 "\n",
              cells.size(), serial.fingerprint);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("  cell %3zu %-42s %-9s seed=%" PRIu64 " hash=%016" PRIx64
                " swaps=%zu\n",
                i, cells[i].group.c_str(), core::protocol_name(cells[i].protocol),
                cells[i].seed, serial.cells[i].trace_hash,
                serial.cells[i].run.igp_epoch_swaps);
  }
  obs.print_decision_summary();
  obs.print_span_summary();
  const double speedup =
      parallel.wall_seconds > 0 ? serial.wall_seconds / parallel.wall_seconds : 0;
  std::fprintf(stderr, "serial %.3fs, parallel %.3fs on %zu jobs (%.2fx)\n",
               serial.wall_seconds, parallel.wall_seconds, parallel.jobs, speedup);

  bool ok = serial.fingerprint == parallel.fingerprint;
  for (std::size_t i = 0; ok && i < cells.size(); ++i) {
    ok = serial.cells[i].trace_hash == parallel.cells[i].trace_hash;
  }
  if (!ok) {
    std::fprintf(stderr, "bench_churn smoke: FAIL — serial vs parallel trace "
                         "hashes diverge\n");
  }

  util::json::Object doc;
  doc.emplace_back("schema", "ibgp-bench-v1");
  doc.emplace_back("bench", "bench_churn");
  doc.emplace_back("experiment", "E16");
  doc.emplace_back("mode", "smoke");
  util::json::Object vol =
      bench::smoke_volatile_json(serial.wall_seconds, parallel.wall_seconds,
                                 parallel.jobs, speedup)
          .as_object();
  if (bench::config().profile) vol.emplace_back("spans", obs.span_volatile_json());
  doc.emplace_back("volatile", util::json::Value(std::move(vol)));
  doc.emplace_back("fingerprint_match", ok);
  doc.emplace_back("metrics_fingerprint", obs.fingerprint_hex());
  doc.emplace_back("sweep", fault::sweep_json(cells, parallel));
  if (!bench::write_json(util::json::Value(std::move(doc)))) return 1;
  obs.finish();
  return ok ? 0 : 1;
}

void BM_ChurnCampaign(benchmark::State& state, core::ProtocolKind protocol) {
  const auto inst = topo::fig3();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto script = fault::make_fault_script(inst, cell_config(++seed, kLevels[4]));
    fault::CampaignOptions options;
    options.max_deliveries = kBudget;
    const auto campaign = fault::run_campaign(inst, protocol, script, options);
    benchmark::DoNotOptimize(campaign.trace_hash);
  }
}

BENCHMARK_CAPTURE(BM_ChurnCampaign, standard, ibgp::core::ProtocolKind::kStandard)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ChurnCampaign, modified, ibgp::core::ProtocolKind::kModified)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ibgp::bench::strip_common_flags(argc, argv);
  if (ibgp::bench::config().smoke) return smoke();
  report();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
