// Experiment E11 (extension) — confederations: the other half of the
// RFC 3345 problem statement.
//
// The paper's positive results cover route reflection only (Section 1); the
// persistent-oscillation report [19]/[16] covers confederations too.  This
// bench reproduces the confederation analogue of Figure 1(a) — member
// sub-ASes in place of clusters, border routers in place of reflectors —
// and probes the paper's fix transplanted onto confed-E-BGP: advertise the
// Choose^B survivor set instead of the single best route.

#include "bench_common.hpp"

#include <map>
#include <memory>

#include "confed/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibgp;
using confed::ConfedEngine;
using confed::ConfedProtocol;

void report() {
  bench::heading("E11 / extension: confederations (RFC 3345 Section 2.2)",
                 "the same MED hide/reveal toggle oscillates across member "
                 "sub-AS borders; the Choose^B advertisement settles it");
  const auto inst = confed::rfc3345_confederation();
  std::printf("instance: %zu routers in %zu member sub-ASes, %zu exits\n\n",
              inst.node_count(), inst.sub_as_count(), inst.exits().size());

  std::printf("  %-9s | verdict   | deliveries | flaps | final picks\n", "protocol");
  std::printf("  ----------+-----------+------------+-------+------------\n");
  for (const auto protocol : {ConfedProtocol::kStandard, ConfedProtocol::kModified}) {
    ConfedEngine engine(inst, protocol);
    engine.inject_all_exits();
    const auto result = engine.run(/*max_deliveries=*/100000);
    std::printf("  %-9s | %-9s | %10zu | %5zu |",
                protocol == ConfedProtocol::kStandard ? "standard" : "modified",
                result.converged ? "converged" : "NO-DRAIN", result.deliveries,
                result.best_flips);
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      std::printf(" %s->%s", inst.node_name(v).c_str(),
                  result.final_best[v] == kNoPath
                      ? "-"
                      : inst.exits()[result.final_best[v]].name.c_str());
    }
    std::printf("\n");
  }

  std::printf("\nrandom delay/injection seeds (200 runs):\n");
  for (const auto protocol : {ConfedProtocol::kStandard, ConfedProtocol::kModified}) {
    std::map<std::vector<PathId>, int> outcomes;
    int no_drain = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
      auto rng = std::make_shared<util::Xoshiro256>(seed);
      ConfedEngine engine(inst, protocol,
                          [rng](NodeId, NodeId, std::uint64_t) -> ConfedEngine::SimTime {
                            return 1 + rng->below(30);
                          });
      for (PathId p = 0; p < inst.exits().size(); ++p) {
        engine.inject_exit(p, rng->below(60));
      }
      const auto result = engine.run(200000);
      if (result.converged) {
        ++outcomes[result.final_best];
      } else {
        ++no_drain;
      }
    }
    std::printf("  %-9s : %zu distinct outcome(s), %d no-drain\n",
                protocol == ConfedProtocol::kStandard ? "standard" : "modified",
                outcomes.size(), no_drain);
  }
  // Ensemble sweep: the oscillation rates across random confederations —
  // the question the paper's proofs do not answer.
  std::printf("\nrandom confederation ensemble (800 instances):\n");
  std::printf("  %-9s | no-drain | converged\n", "protocol");
  for (const auto protocol : {ConfedProtocol::kStandard, ConfedProtocol::kModified}) {
    std::size_t no_drain = 0, converged = 0;
    for (std::uint64_t seed = 1; seed <= 800; ++seed) {
      confed::RandomConfedConfig config;
      config.sub_ases = 2 + seed % 3;
      config.max_routers = 1 + seed % 3;
      config.exits = 3 + seed % 4;
      config.max_med = 1 + static_cast<Med>(seed % 3);
      const auto random_inst = confed::random_confederation(config, seed);
      ConfedEngine engine(random_inst, protocol);
      engine.inject_all_exits();
      if (engine.run(protocol == ConfedProtocol::kStandard ? 60000 : 300000).converged) {
        ++converged;
      } else {
        ++no_drain;
      }
    }
    std::printf("  %-9s | %8zu | %zu\n",
                protocol == ConfedProtocol::kStandard ? "standard" : "modified", no_drain,
                converged);
  }

  std::printf("\n(the paper leaves confederations to future work — Section 1; the\n"
              " Choose^B advertisement empirically removes the oscillation here too)\n");
}

void BM_ConfedStandardBudget(benchmark::State& state) {
  const auto inst = confed::rfc3345_confederation();
  for (auto _ : state) {
    ConfedEngine engine(inst, ConfedProtocol::kStandard);
    engine.inject_all_exits();
    auto result = engine.run(5000);
    benchmark::DoNotOptimize(result.best_flips);
  }
}
BENCHMARK(BM_ConfedStandardBudget);

void BM_ConfedModifiedConverges(benchmark::State& state) {
  const auto inst = confed::rfc3345_confederation();
  for (auto _ : state) {
    ConfedEngine engine(inst, ConfedProtocol::kModified);
    engine.inject_all_exits();
    auto result = engine.run();
    benchmark::DoNotOptimize(result.deliveries);
  }
}
BENCHMARK(BM_ConfedModifiedConverges);

}  // namespace

IBGP_BENCH_MAIN(report)
