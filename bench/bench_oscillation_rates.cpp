// Experiment E8 — the Section 7 theorems as ensemble statistics.
//
// The paper proves the modified protocol converges on EVERY configuration;
// classic I-BGP and the Walton variant provably do not.  This bench samples
// random route-reflection ensembles and reports, per protocol: how many
// instances provably oscillate (cycle detected), how many converge, mean
// steps to converge, and forwarding-loop counts at the reached fixed points.
// The expected shape: modified = 0 oscillations, 0 loops, always; the others
// oscillate at a topology-dependent rate that rises with MED density.
//
// Every sampled instance is an independent cell (its own topology from
// seed_base + i, its own engine), so the ensemble fans out over --jobs
// worker threads; per-instance verdicts land in an index-keyed vector and
// the statistics fold in index order, making --jobs N identical to a
// serial run.  --json writes the machine-readable ensemble table.

#include "bench_common.hpp"

#include <vector>

#include "analysis/forwarding.hpp"
#include "topo/random.hpp"

namespace {

using namespace ibgp;

struct EnsembleStats {
  std::size_t oscillated = 0;
  std::size_t converged = 0;
  std::size_t undecided = 0;
  std::size_t loops = 0;        // instances whose fixed point has a forwarding loop
  double mean_steps = 0.0;
};

EnsembleStats sweep(const topo::RandomConfig& config, core::ProtocolKind kind,
                    std::uint64_t seed_base, std::size_t count) {
  struct InstanceVerdict {
    engine::RunStatus status = engine::RunStatus::kStepLimit;
    std::size_t steps = 0;
    bool loop = false;
  };
  std::vector<InstanceVerdict> verdicts(count);
  util::parallel_for(count, util::resolve_jobs(bench::config().jobs), [&](std::size_t i) {
    const auto inst = topo::random_instance(config, seed_base + i);
    auto rr = engine::make_round_robin(inst.node_count());
    engine::RunLimits limits;
    limits.max_steps = 6000;
    const auto outcome = engine::run_protocol(inst, kind, *rr, limits);
    InstanceVerdict& verdict = verdicts[i];
    verdict.status = outcome.status;
    if (outcome.status == engine::RunStatus::kConverged) {
      verdict.steps = outcome.quiescent_since;
      const auto fwd = analysis::analyze_forwarding(inst, outcome.final_best);
      verdict.loop = !fwd.loop_free();
    }
  });

  EnsembleStats stats;
  std::size_t steps_total = 0;
  for (const auto& verdict : verdicts) {
    switch (verdict.status) {
      case engine::RunStatus::kConverged:
        ++stats.converged;
        steps_total += verdict.steps;
        if (verdict.loop) ++stats.loops;
        break;
      case engine::RunStatus::kCycleDetected:
        ++stats.oscillated;
        break;
      case engine::RunStatus::kStepLimit:
        ++stats.undecided;
        break;
    }
  }
  if (stats.converged > 0) {
    stats.mean_steps = static_cast<double>(steps_total) / stats.converged;
  }
  return stats;
}

util::json::Value stats_json(const EnsembleStats& stats) {
  util::json::Object row;
  row.emplace_back("oscillated", stats.oscillated);
  row.emplace_back("converged", stats.converged);
  row.emplace_back("undecided", stats.undecided);
  row.emplace_back("mean_steps", stats.mean_steps);
  row.emplace_back("loops", stats.loops);
  return util::json::Value(std::move(row));
}

void report() {
  bench::heading("E8 / ensemble statistics: who oscillates, how often",
                 "the modified protocol never oscillates and never loops; "
                 "standard and Walton oscillate at MED-dependent rates");

  struct Ensemble {
    const char* name;
    topo::RandomConfig config;
  };
  std::vector<Ensemble> ensembles;
  {
    topo::RandomConfig mild;
    mild.clusters = 3;
    mild.max_clients = 1;
    mild.exits = 4;
    mild.max_med = 1;
    mild.extra_link_prob = 0.15;
    ensembles.push_back({"mild (3 clusters, low MED)", mild});

    topo::RandomConfig medy = mild;
    medy.max_med = 3;
    medy.exits = 5;
    medy.extra_link_prob = 0.3;
    ensembles.push_back({"MED-heavy (3 clusters)", medy});

    topo::RandomConfig big = medy;
    big.clusters = 4;
    big.max_clients = 2;
    big.exits = 6;
    ensembles.push_back({"large (4 clusters, 6 exits)", big});

    topo::RandomConfig shortcutty = medy;
    shortcutty.extra_link_prob = 0.5;
    shortcutty.exits_at_clients_only = true;
    ensembles.push_back({"shortcut-rich, client exits", shortcutty});
  }

  util::json::Array ensemble_rows;
  constexpr std::size_t kCount = 400;
  for (const auto& [name, config] : ensembles) {
    std::printf("\n--- ensemble: %s (%zu instances) ---\n", name, kCount);
    std::printf("  %-9s | oscillate | converge | undecided | mean steps | loops\n",
                "protocol");
    util::json::Object ensemble_row;
    ensemble_row.emplace_back("ensemble", name);
    ensemble_row.emplace_back("instances", kCount);
    for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                            core::ProtocolKind::kModified}) {
      const auto stats = sweep(config, kind, /*seed_base=*/1000, kCount);
      std::printf("  %-9s | %9zu | %8zu | %9zu | %10.1f | %zu\n",
                  core::protocol_name(kind), stats.oscillated, stats.converged,
                  stats.undecided, stats.mean_steps, stats.loops);
      ensemble_row.emplace_back(core::protocol_name(kind), stats_json(stats));
    }
    ensemble_rows.emplace_back(std::move(ensemble_row));
  }

  // The Section 1 operational mitigations, measured: how much of the
  // standard protocol's oscillation rate do the MED workarounds remove, and
  // at what cost?  (They change route selection semantics; the modified
  // protocol removes the oscillations without touching MED semantics.)
  std::printf("\n--- MED-mitigation ablation (standard protocol, MED-heavy ensemble) ---\n");
  std::printf("  %-22s | oscillate | converge | undecided\n", "med mode");
  util::json::Array ablation_rows;
  topo::RandomConfig ablation = ensembles[1].config;
  for (const auto [label, mode] :
       {std::pair{"per-neighbor-AS (spec)", bgp::MedMode::kPerNeighborAs},
        std::pair{"always-compare-med", bgp::MedMode::kAlwaysCompare},
        std::pair{"ignore-med", bgp::MedMode::kIgnore}}) {
    ablation.policy.med = mode;
    const auto stats = sweep(ablation, core::ProtocolKind::kStandard, 1000, kCount);
    std::printf("  %-22s | %9zu | %8zu | %9zu\n", label, stats.oscillated,
                stats.converged, stats.undecided);
    util::json::Object row;
    row.emplace_back("med_mode", label);
    row.emplace_back("stats", stats_json(stats));
    ablation_rows.emplace_back(std::move(row));
  }

  if (!bench::config().json_path.empty()) {
    util::json::Object doc;
    doc.emplace_back("schema", "ibgp-bench-v1");
    doc.emplace_back("bench", "bench_oscillation_rates");
    doc.emplace_back("experiment", "E8");
    doc.emplace_back("ensembles", std::move(ensemble_rows));
    doc.emplace_back("med_ablation", std::move(ablation_rows));
    bench::write_json(util::json::Value(std::move(doc)));
  }
}

void BM_ClassifyStandard(benchmark::State& state) {
  topo::RandomConfig config;
  config.clusters = 3;
  config.exits = 5;
  config.max_med = 3;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto inst = topo::random_instance(config, ++seed);
    auto sig = analysis::classify(inst, core::ProtocolKind::kStandard, 4000);
    benchmark::DoNotOptimize(sig.round_robin);
  }
}
BENCHMARK(BM_ClassifyStandard);

}  // namespace

IBGP_BENCH_MAIN(report)
